//! # sft
//!
//! Umbrella crate for the SFT replication stack — a Rust reproduction of
//! *Strengthened Fault Tolerance in Byzantine Fault Tolerant Replication*
//! (Xiang, Malkhi, Nayak, Ren — ICDCS 2021). Re-exports every workspace
//! crate under one name so examples and downstream experiments can depend
//! on a single `sft`.
//!
//! See the repository `README.md` for the architecture diagram and
//! `PAPER.md` for the paper-to-code map. The layering, bottom-up:
//!
//! - [`crypto`] — SHA-256 / HMAC primitives, hash and signature types, PKI.
//! - [`types`] — ids, strong-votes, endorsement intervals, payloads, codec.
//! - [`core`] — quorum math, block store, vote aggregation, endorsement
//!   tracking (the two-level commit rule's machinery).
//! - [`fbft`] — round-based (DiemBFT-style) commit rules, the paper's main
//!   protocol family.
//! - [`streamlet`] — SFT-Streamlet, the Appendix D protocol this repo runs
//!   end to end.
//! - [`network`] — the `Transport` trait and both implementations: the
//!   deterministic in-process simulator network (delay injection, fault
//!   schedules) and the loopback TCP mesh.
//! - [`sim`] — the generic engine run loop with Byzantine behaviors.
//! - [`loadgen`] — closed-loop clients driving the client gateway,
//!   measuring end-to-end strength-graded ack latency.
//!
//! ## Example
//!
//! ```
//! // Four replicas, ten epochs, one equivocating leader — and agreement
//! // still holds.
//! use sft::sim::{Behavior, SimConfig};
//!
//! let report = SimConfig::new(4, 10).with_behavior(0, Behavior::Equivocate).run();
//! assert!(report.agreement());
//! ```

#![deny(missing_docs)]

pub use sft_core as core;
pub use sft_crypto as crypto;
pub use sft_fbft as fbft;
pub use sft_loadgen as loadgen;
pub use sft_network as network;
pub use sft_sim as sim;
pub use sft_streamlet as streamlet;
pub use sft_types as types;
