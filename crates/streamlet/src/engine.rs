//! The SFT-Streamlet replica as a transport-driven [`ReplicaEngine`].
//!
//! Streamlet epochs are externally clocked (Appendix D assumes synchrony),
//! so the engine owns the epoch clock the lock-step driver used to hold:
//! epoch `e` opens at `(e − 1) × period` where `period = 2δ` (propose,
//! then one delay for the proposal and one for the votes). Expressing the
//! clock as [`ReplicaEngine::next_deadline`] ticks is what lets the same
//! event-driven run loop pace both the externally clocked Streamlet and
//! the self-pacing SFT-DiemBFT — and lets the clock be wall time when the
//! engine runs over sockets.

use sft_core::{
    AckTracker, Admission, BlockStore, EngineObs, EngineStep, MsgKind, OutboundMsg, ReplicaEngine,
    SyncStats, WalRecord,
};
use sft_crypto::{HashValue, SigStats};
use sft_obs::{names, PhaseTimer, SharedRecorder};
use sft_types::{
    ClientAck, ClientRequest, Decode, Encode, ReplicaId, Round, SimDuration, SimTime,
    StrongCommitUpdate,
};

use crate::message::Message;
use crate::replica::Replica;

/// A [`Replica`] plus the epoch clock, implementing [`ReplicaEngine`].
///
/// # Examples
///
/// ```
/// use sft_core::{ProtocolConfig, ReplicaEngine};
/// use sft_crypto::KeyRegistry;
/// use sft_streamlet::{EndorseMode, Replica, StreamletEngine};
/// use sft_types::{SimDuration, SimTime};
///
/// let config = ProtocolConfig::for_replicas(4);
/// let registry = KeyRegistry::deterministic(4);
/// let replica = Replica::new(0, config, registry, EndorseMode::Marker);
/// let engine = StreamletEngine::new(replica, SimDuration::from_millis(200), 10);
/// // Epoch 1 opens at the very first instant.
/// assert_eq!(engine.next_deadline(), Some(SimTime::ZERO));
/// ```
pub struct StreamletEngine {
    replica: Replica,
    /// One full epoch: two message delays (propose + vote).
    period: SimDuration,
    /// Last epoch the clock will open.
    max_epochs: u64,
    /// Next epoch to open (1-based).
    next_epoch: u64,
    obs: EngineObs,
    /// Client submissions awaiting their strength-graded commit acks.
    acks: AckTracker,
}

impl StreamletEngine {
    /// Wraps `replica` with an epoch clock of `period` (use `2δ`) running
    /// through `max_epochs` epochs.
    pub fn new(replica: Replica, period: SimDuration, max_epochs: u64) -> Self {
        Self {
            replica,
            period,
            max_epochs,
            next_epoch: 1,
            obs: EngineObs::new(),
            acks: AckTracker::new(),
        }
    }

    /// The wrapped replica.
    pub fn replica(&self) -> &Replica {
        &self.replica
    }

    /// Mutable access to the wrapped replica (tests and harness setup).
    pub fn replica_mut(&mut self) -> &mut Replica {
        &mut self.replica
    }

    fn epoch_open_at(&self, epoch: u64) -> SimTime {
        SimTime::ZERO + self.period * (epoch - 1)
    }
}

impl ReplicaEngine for StreamletEngine {
    fn id(&self) -> ReplicaId {
        self.replica.id()
    }

    fn on_envelope(&mut self, _from: ReplicaId, payload: &[u8], now: SimTime) -> EngineStep {
        let decode = PhaseTimer::start(&**self.obs.recorder());
        let decoded = Message::from_bytes(payload);
        decode.finish(&**self.obs.recorder(), names::PHASE_DECODE_NS);
        let Ok(msg) = decoded else {
            return EngineStep::empty(); // transports can carry garbage
        };
        let mut step = EngineStep::empty();
        match msg {
            Message::Proposal(proposal) => {
                self.obs.proposal_seen(proposal.block().round(), now);
                if let Some(vote) = self.replica.on_proposal(&proposal) {
                    self.obs.voted(vote.round(), now);
                    step.outbound.push(OutboundMsg::broadcast(
                        MsgKind::Vote,
                        Message::Vote(vote).to_bytes(),
                    ));
                }
            }
            Message::Vote(vote) => {
                // Time vote-ingest steps that ran a deferred batch check:
                // the batch dominates such a step, so its duration is the
                // batch-verify phase.
                let batches = self.replica.sig_stats().batch_calls;
                let verify = PhaseTimer::start(&**self.obs.recorder());
                step.updates = self.replica.on_vote(&vote);
                if self.replica.sig_stats().batch_calls > batches {
                    verify.finish(&**self.obs.recorder(), names::PHASE_BATCH_VERIFY_NS);
                }
            }
            Message::SyncRequest(request) => {
                if let Some(response) = self.replica.on_sync_request(&request) {
                    step.outbound.push(OutboundMsg::to(
                        request.requester(),
                        MsgKind::SyncResponse,
                        Message::SyncResponse(response).to_bytes(),
                    ));
                }
            }
            Message::SyncResponse(response) => {
                step.updates = self.replica.on_sync_response(&response, now);
            }
        }
        step.persist = self.replica.drain_wal();
        self.obs.wal_records(&step.persist, now);
        self.obs.updates(&step.updates, now);
        for update in &step.updates {
            self.acks.observe(update, self.replica.store(), now);
        }
        step
    }

    fn next_deadline(&self) -> Option<SimTime> {
        (self.next_epoch <= self.max_epochs).then(|| self.epoch_open_at(self.next_epoch))
    }

    fn on_tick(&mut self, now: SimTime) -> EngineStep {
        let mut step = EngineStep::empty();
        // Open every epoch whose start has passed (a wall-clock run can
        // overshoot a deadline; catch up in order).
        while self.next_epoch <= self.max_epochs && self.epoch_open_at(self.next_epoch) <= now {
            let epoch = Round::new(self.next_epoch);
            self.next_epoch += 1;
            if let Some(proposal) = self.replica.begin_epoch_sourced(epoch) {
                step.outbound.push(OutboundMsg::broadcast(
                    MsgKind::Proposal,
                    Message::Proposal(proposal).to_bytes(),
                ));
            }
        }
        step.persist = self.replica.drain_wal();
        self.obs.wal_records(&step.persist, now);
        step
    }

    fn restore(&mut self, record: &WalRecord, _now: SimTime) {
        self.replica.replay(record);
        // Never re-open (and re-propose in) an epoch the pre-crash self
        // already reached — the clock resumes strictly after it.
        self.next_epoch = self.next_epoch.max(self.replica.epoch().as_u64() + 1);
    }

    fn poll_sync(&mut self, now: SimTime) -> EngineStep {
        let mut step = EngineStep::empty();
        for (peer, request) in self.replica.take_sync_requests(now) {
            step.outbound.push(OutboundMsg::to(
                peer,
                MsgKind::SyncRequest,
                Message::SyncRequest(request).to_bytes(),
            ));
        }
        step
    }

    fn submit(&mut self, req: &ClientRequest, now: SimTime) -> Option<ClientAck> {
        let txn_id = req.txn_id();
        let verdict = self.replica.submit(req.txn.clone());
        self.acks.record_admission(verdict == Admission::Admitted);
        match verdict {
            Admission::Admitted => {
                self.acks.register(txn_id, req.ack_at, now);
                None
            }
            Admission::Duplicate => Some(ClientAck::Duplicate { txn_id }),
            Admission::Busy => Some(ClientAck::Busy { txn_id }),
        }
    }

    fn drain_acks(&mut self) -> Vec<ClientAck> {
        self.acks.drain()
    }

    fn set_recorder(&mut self, recorder: SharedRecorder) {
        self.replica.set_recorder(recorder.clone());
        self.acks.set_recorder(recorder.clone());
        self.obs.set_recorder(recorder);
    }

    fn endorsement_walk_steps(&self) -> u64 {
        self.replica.walk_steps()
    }

    fn sig_stats(&self) -> SigStats {
        self.replica.sig_stats()
    }

    fn round(&self) -> Round {
        self.replica.epoch()
    }

    fn is_syncing(&self) -> bool {
        self.replica.is_syncing()
    }

    fn committed_chain(&self) -> &[HashValue] {
        self.replica.committed_chain()
    }

    fn commit_log(&self) -> &[StrongCommitUpdate] {
        self.replica.commit_log()
    }

    fn safety_violated(&self) -> bool {
        self.replica.safety_violated()
    }

    fn equivocators_observed(&self) -> usize {
        self.replica.observed_equivocators().len()
    }

    fn sync_stats(&self) -> SyncStats {
        self.replica.sync_stats()
    }

    fn store(&self) -> &BlockStore {
        self.replica.store()
    }
}
