//! # sft-streamlet
//!
//! SFT-Streamlet: the paper's strengthened fault tolerance applied to the
//! Streamlet protocol (Appendix D). Streamlet's simplicity makes it the
//! clearest demonstration of the SFT idea: the base protocol is three rules
//! (propose, vote, commit on three consecutive notarized epochs), and the
//! strengthening changes *none of them* — it only adds endorsement
//! bookkeeping on votes and grades every commit with the strength `x` it
//! has earned.
//!
//! ## Protocol map
//!
//! | Paper concept | Here |
//! |---|---|
//! | epoch leader, proposal (App. D) | [`Replica::begin_epoch`], [`Proposal`] |
//! | voting rule (first proposal extending a longest notarized chain) | [`Replica::on_proposal`] |
//! | notarization at `2f + 1` votes | [`Replica::on_vote`] via [`sft_core::VoteTracker`] |
//! | three-consecutive-epochs commit | [`Replica::on_vote`] (standard commit, strength `f`) |
//! | strong-votes with markers (§3.2) | [`EndorseMode::Marker`], [`sft_types::EndorseInfo`] |
//! | graded commit strength `x ≤ 2f` (Def. 1) | [`Replica::commit_level`], commit-log entries |
//!
//! ## Example
//!
//! ```
//! use sft_core::ProtocolConfig;
//! use sft_streamlet::Replica;
//! use sft_types::Round;
//!
//! let config = ProtocolConfig::for_replicas(7);
//! // Leaders rotate round-robin over all n replicas.
//! assert_eq!(Replica::leader(config, Round::new(8)).as_u16(), 1);
//! ```

#![deny(missing_docs)]

pub mod engine;
pub mod message;
pub mod replica;

pub use engine::StreamletEngine;
pub use message::{Message, Proposal};
pub use replica::Replica;
// Historically defined here; now shared with the round-based replica.
pub use sft_core::{BlockResponse, SyncManager, SyncStats};
pub use sft_types::{BlockRequest, EndorseMode};
