//! The SFT-Streamlet replica state machine.

use std::collections::{HashMap, HashSet};
use std::fmt;

use sft_core::{
    honest_endorse_info, Admission, Block, BlockStore, BlockStoreError, CommitLedger,
    EndorsementTracker, Mempool, PayloadSource, ProtocolConfig, SyncManager, SyncStats,
    VoteOutcome, VoteTracker, WalRecord,
};
use sft_crypto::{HashValue, KeyPair, KeyRegistry, SigStats};
use sft_types::{
    BlockRequest, EndorseMode, Payload, ReplicaId, Round, SimDuration, SimTime, StrongCommitUpdate,
    StrongVote, Transaction, VerifyPolicy,
};

use crate::message::Proposal;

pub use sft_core::BlockResponse;

/// A single SFT-Streamlet replica: epoch state machine, vote aggregation,
/// the two-level commit rule, and the strong-commit log.
///
/// The protocol per epoch `e` (Appendix D, with rounds standing in for
/// Streamlet's epochs):
///
/// 1. the leader of `e` proposes a block extending the tip of a longest
///    notarized chain ([`Replica::begin_epoch`]);
/// 2. every replica votes for the first valid proposal of `e` that extends
///    a longest notarized chain it knows ([`Replica::on_proposal`]), and
///    broadcasts the vote;
/// 3. a block with `2f + 1` votes becomes *notarized*; three notarized
///    blocks at consecutive rounds commit the chain through the middle one
///    ([`Replica::on_vote`]) — the *standard* commit, strength `f`;
/// 4. endorsements carried by strong-votes keep accumulating and raise
///    committed blocks to higher strength levels, up to `2f` — the
///    *strengthened* commits, reported as
///    [`StrongCommitUpdate`]s in the replica's [`commit log`](Replica::commit_log).
///
/// # Examples
///
/// Driving one full epoch of a 4-replica system by hand:
///
/// ```
/// use sft_core::ProtocolConfig;
/// use sft_crypto::KeyRegistry;
/// use sft_streamlet::{EndorseMode, Replica};
/// use sft_types::{Payload, Round};
///
/// let config = ProtocolConfig::for_replicas(4);
/// let registry = KeyRegistry::deterministic(4);
/// let mut replicas: Vec<Replica> = (0..4)
///     .map(|i| Replica::new(i, config, registry.clone(), EndorseMode::Marker))
///     .collect();
///
/// // Epoch 1: replica 1 leads (round-robin), proposes, everyone votes.
/// let epoch = Round::new(1);
/// assert_eq!(Replica::leader(config, epoch), replicas[1].id());
/// let proposal = replicas[1].begin_epoch(epoch, Payload::empty()).expect("leader proposes");
/// let votes: Vec<_> = replicas
///     .iter_mut()
///     .map(|r| {
///         if r.id() != proposal.block().proposer() {
///             r.begin_epoch(epoch, Payload::empty());
///         }
///         r.on_proposal(&proposal).expect("honest replicas vote")
///     })
///     .collect();
/// for vote in &votes {
///     for replica in replicas.iter_mut() {
///         replica.on_vote(vote);
///     }
/// }
/// // One epoch notarizes the block but cannot commit it yet: the
/// // three-consecutive-epochs window is still open.
/// assert!(replicas[0].is_notarized(proposal.block().id()));
/// assert!(replicas[0].committed_chain().is_empty());
/// ```
pub struct Replica {
    id: ReplicaId,
    config: ProtocolConfig,
    key_pair: KeyPair,
    endorse_mode: EndorseMode,
    store: BlockStore,
    votes: VoteTracker,
    endorsements: EndorsementTracker,
    notarized: HashSet<HashValue>,
    /// Notarized children per block id, the index the incremental commit
    /// rule walks instead of rescanning the whole notarized set.
    notarized_children: HashMap<HashValue, Vec<HashValue>>,
    epoch: Round,
    voted_epochs: HashSet<Round>,
    /// Every block this replica ever voted for, for marker/interval
    /// computation (§3.2 / §3.4).
    voted_blocks: Vec<(Round, HashValue)>,
    ledger: CommitLedger,
    commit_log: Vec<StrongCommitUpdate>,
    /// Where [`begin_epoch_sourced`](Self::begin_epoch_sourced) gets its
    /// payloads; `None` means callers always supply payloads explicitly.
    payload_source: Option<PayloadSource>,
    /// Client transactions awaiting inclusion (drained by the mempool
    /// payload source; pruned when other leaders' blocks carry them).
    mempool: Mempool,
    /// Block-sync state: certified-but-unknown targets, in-flight fetches,
    /// and the orphan pool.
    sync: SyncManager,
    /// Commit-rule middles declared while the local chain still had holes;
    /// retried after every sync admission.
    deferred_commits: Vec<HashValue>,
    /// Durable consensus events pending write-ahead persistence, drained
    /// by the engine into `EngineStep::persist`.
    wal: Vec<WalRecord>,
    /// Digests of certificates already logged, so re-certification paths
    /// (sync recovery, replay) never duplicate a `QcFormed` record.
    logged_qcs: HashSet<HashValue>,
}

impl Replica {
    /// Creates replica `id` of an `n`-replica system.
    ///
    /// # Panics
    ///
    /// Panics if the registry holds no key for `id` or fewer than
    /// `config.n()` keys.
    pub fn new(id: u16, config: ProtocolConfig, registry: KeyRegistry, mode: EndorseMode) -> Self {
        assert!(
            registry.len() >= config.n(),
            "registry smaller than the replica set"
        );
        let key_pair = registry
            .key_pair(u64::from(id))
            .expect("key for this replica");
        let store = BlockStore::new();
        let mut notarized = HashSet::new();
        notarized.insert(store.genesis_id());
        Self {
            id: ReplicaId::new(id),
            config,
            key_pair,
            endorse_mode: mode,
            votes: VoteTracker::new(config, registry),
            endorsements: EndorsementTracker::new(config),
            store,
            notarized,
            notarized_children: HashMap::new(),
            epoch: Round::ZERO,
            voted_epochs: HashSet::new(),
            voted_blocks: Vec::new(),
            ledger: CommitLedger::new(),
            commit_log: Vec::new(),
            payload_source: None,
            mempool: Mempool::new(),
            sync: SyncManager::new(config, ReplicaId::new(id)),
            deferred_commits: Vec::new(),
            wal: Vec::new(),
            logged_qcs: HashSet::new(),
        }
    }

    /// Sets the block-sync retry timeout (how long to wait for a response
    /// before re-asking another peer). Drivers derive it from their δ.
    pub fn with_sync_retry(mut self, retry_after: SimDuration) -> Self {
        self.sync.set_retry_after(retry_after);
        self
    }

    /// Configures where [`begin_epoch_sourced`](Self::begin_epoch_sourced)
    /// gets its payloads (a synthetic descriptor or this replica's
    /// mempool).
    pub fn with_payload_source(mut self, source: PayloadSource) -> Self {
        self.payload_source = Some(source);
        self
    }

    /// Switches vote aggregation to `policy` — verify every signature on
    /// arrival (the default) or defer to one batched check at quorum.
    /// Call right after construction, before any vote is ingested.
    pub fn with_verify_policy(mut self, policy: VerifyPolicy) -> Self {
        self.votes = self.votes.with_policy(policy);
        self
    }

    /// Submits a client transaction to this replica's mempool, reporting
    /// the explicit [`Admission`] verdict (`Duplicate` for ids already
    /// pending or on-chain, `Busy` past the admission caps).
    pub fn submit(&mut self, txn: Transaction) -> Admission {
        self.mempool.try_submit(txn)
    }

    /// Replaces the mempool's admission caps (count and encoded bytes);
    /// submissions beyond either answer [`Admission::Busy`] until drains
    /// make room.
    pub fn set_mempool_caps(&mut self, max_pending: usize, max_pending_bytes: u64) {
        self.mempool.set_caps(max_pending, max_pending_bytes);
    }

    /// The replica's transaction pool.
    pub fn mempool(&self) -> &Mempool {
        &self.mempool
    }

    /// This replica's id.
    pub fn id(&self) -> ReplicaId {
        self.id
    }

    /// The protocol configuration.
    pub fn config(&self) -> ProtocolConfig {
        self.config
    }

    /// The current epoch.
    pub fn epoch(&self) -> Round {
        self.epoch
    }

    /// The deterministic round-robin leader of `epoch`.
    pub fn leader(config: ProtocolConfig, epoch: Round) -> ReplicaId {
        ReplicaId::new((epoch.as_u64() % config.n() as u64) as u16)
    }

    /// The replica's block store (all delivered blocks).
    pub fn store(&self) -> &BlockStore {
        &self.store
    }

    /// True if `block_id` has reached the `2f + 1` notarization quorum.
    pub fn is_notarized(&self, block_id: HashValue) -> bool {
        self.notarized.contains(&block_id)
    }

    /// The committed chain, oldest block first (genesis excluded).
    pub fn committed_chain(&self) -> &[HashValue] {
        self.ledger.chain()
    }

    /// The strong-commit log: one [`StrongCommitUpdate`] per commit and per
    /// subsequent strength increase, in the order they happened (§5).
    pub fn commit_log(&self) -> &[StrongCommitUpdate] {
        &self.commit_log
    }

    /// The highest strength level recorded for a committed block, or `None`
    /// if the block is not committed.
    pub fn commit_level(&self, block_id: HashValue) -> Option<u64> {
        if !self.ledger.contains(block_id) {
            return None;
        }
        self.endorsements.strength(block_id)
    }

    /// True if this replica ever observed two conflicting committed chains
    /// — impossible while the fault assumption of the committed levels
    /// holds, and the signal the strengthened rule exists to prevent.
    pub fn safety_violated(&self) -> bool {
        self.ledger.safety_violated()
    }

    /// Replicas caught equivocating by this replica's vote tracker.
    pub fn observed_equivocators(&self) -> &[ReplicaId] {
        self.votes.equivocators()
    }

    /// Advances to `epoch`; if this replica leads it, returns a signed
    /// proposal extending the tip of a longest notarized chain, carrying
    /// `payload`. Non-leaders (and stale epochs) return `None`.
    pub fn begin_epoch(&mut self, epoch: Round, payload: Payload) -> Option<Proposal> {
        if !self.enter_epoch(epoch) || !self.can_extend_tip(epoch) {
            return None;
        }
        Some(self.propose(epoch, payload))
    }

    /// Advances to `epoch`; if this replica leads it, drains the next
    /// payload from its configured [`PayloadSource`] (a batch from the
    /// mempool, or a synthetic descriptor) and proposes it. Returns `None`
    /// for non-leaders, stale epochs, or when no source is configured —
    /// but the epoch advances in every non-stale case, so a source-less
    /// replica still follows the clock (and votes) like everyone else.
    pub fn begin_epoch_sourced(&mut self, epoch: Round) -> Option<Proposal> {
        if !self.enter_epoch(epoch) || !self.can_extend_tip(epoch) {
            return None;
        }
        let source = self.payload_source?;
        let payload = source.next_payload(&mut self.mempool, epoch);
        Some(self.propose(epoch, payload))
    }

    /// Whether a proposal in `epoch` can legally extend the current tip.
    /// False for a replica whose epoch clock lags its synced chain (a
    /// restarted process catching up to live peers): blocks carry strictly
    /// increasing rounds, so a lagging leader declines its slot instead of
    /// proposing a block nobody could vote for.
    fn can_extend_tip(&self, epoch: Round) -> bool {
        self.tip().round() < epoch
    }

    /// Moves to `epoch` (stale epochs are refused) and reports whether this
    /// replica leads it.
    fn enter_epoch(&mut self, epoch: Round) -> bool {
        if epoch <= self.epoch {
            return false;
        }
        self.epoch = epoch;
        Self::leader(self.config, epoch) == self.id
    }

    fn propose(&mut self, epoch: Round, payload: Payload) -> Proposal {
        let tip = self.tip().clone();
        let block = Block::new(&tip, epoch, self.id, payload);
        self.store
            .insert(block.clone())
            .expect("tip is in the store");
        Proposal::new(block, &self.key_pair)
    }

    /// Handles a proposal. Returns this replica's strong-vote if the
    /// Streamlet voting rule fires: the proposal is signed by the epoch's
    /// leader, is the first this replica votes on in the epoch, and extends
    /// the tip of a longest notarized chain. The vote must be broadcast to
    /// all replicas (the caller owns transport).
    pub fn on_proposal(&mut self, proposal: &Proposal) -> Option<StrongVote> {
        if !proposal.verify(self.votes_registry()) {
            return None;
        }
        let block = proposal.block();
        if block.proposer() != Self::leader(self.config, block.round()) {
            return None;
        }
        // Record the block regardless of the voting decision — descendants
        // may arrive later. Orphans (unknown parent — e.g. this replica
        // missed epochs behind a partition) are pooled with the sync
        // manager, which chases the missing ancestry.
        match self.store.insert(block.clone()) {
            Ok(_) => self.sync.note_stored(block.id()),
            Err(BlockStoreError::UnknownParent) => {
                self.sync.note_orphan_block(block.clone(), &self.store);
                return None;
            }
            Err(_) => return None,
        }
        // The chain now carries these transactions: stop offering them.
        if let Payload::Transactions(txns) = block.payload() {
            self.mempool.mark_included(txns.iter());
        }
        if block.round() != self.epoch || self.voted_epochs.contains(&block.round()) {
            return None;
        }
        if !self.extends_longest_notarized(block) {
            // The leader treated the parent as notarized; if this replica
            // never saw that quorum (its votes were lost), fetch the
            // certificate so later proposals on this chain can win votes —
            // the re-convergence path for notarized sets under loss.
            if !self.notarized.contains(&block.parent_id()) {
                self.sync.note_want(block.parent_id());
            }
            return None;
        }
        let endorse =
            honest_endorse_info(self.endorse_mode, &self.store, &self.voted_blocks, block);
        self.voted_epochs.insert(block.round());
        self.voted_blocks.push((block.round(), block.id()));
        let vote = StrongVote::new(block.vote_data(), endorse, &self.key_pair);
        // Write-ahead: the harness persists this record before the vote is
        // routed, so a restart can never contradict it.
        self.wal.push(WalRecord::VoteSent(vote.clone()));
        Some(vote)
    }

    /// Handles a broadcast vote (including this replica's own). Counts it,
    /// records its endorsements, applies the two-level commit rule, and
    /// returns the commit-log entries this vote produced: standard commits
    /// at strength ≥ `f` and strengthened-level increases up to `2f`.
    pub fn on_vote(&mut self, vote: &StrongVote) -> Vec<StrongCommitUpdate> {
        let outcome = self.votes.add_vote(vote);
        // Endorsements are credited only from verified votes: the drain
        // returns the vote just accepted under verify-on-arrival, and the
        // whole batch the quorum check validated under verify-on-quorum
        // (optimistically counted votes carry no endorsement weight until
        // their signatures clear).
        let mut grown = Vec::new();
        for verified in self.votes.take_newly_verified() {
            grown.extend(self.endorsements.record_vote(&verified, &self.store));
        }
        let newly_certified = match outcome {
            VoteOutcome::BadSignature | VoteOutcome::Equivocation | VoteOutcome::Duplicate => None,
            VoteOutcome::Certified(qc) => {
                // Votes are broadcast, so a replica can certify a block it
                // never received (a lost proposal): the sync manager
                // records the certificate and, if needed, fetches the block.
                self.sync.note_certificate(&qc, &self.store);
                if self.logged_qcs.insert(qc.digest()) {
                    self.wal.push(WalRecord::QcFormed(qc.clone()));
                }
                Some(qc.block_id())
            }
            VoteOutcome::Counted(_) => None,
        };

        let mut updates = Vec::new();
        if let Some(block_id) = newly_certified {
            self.note_notarized(block_id);
            for committed_id in self.apply_commit_rule(block_id) {
                if let Some(block) = self.store.get(committed_id).cloned() {
                    self.wal.push(WalRecord::BlockCommitted(block));
                }
                if let Some(update) = self
                    .endorsements
                    .take_level_update(committed_id, &self.store)
                {
                    updates.push(update);
                }
            }
        }
        // Endorsements may have raised the strength of blocks committed
        // earlier (possibly far in the past): report each increase once.
        for block_id in grown {
            if self.ledger.contains(block_id) {
                if let Some(update) = self.endorsements.take_level_update(block_id, &self.store) {
                    updates.push(update);
                }
            }
        }
        self.commit_log.extend(updates.iter().copied());
        updates
    }

    /// The tip of a longest notarized chain (ties broken by round then id,
    /// so all replicas with the same notarized set pick the same tip).
    fn tip(&self) -> &Block {
        self.notarized
            .iter()
            .filter_map(|id| self.store.get(*id))
            .max_by(|a, b| (a.height(), a.round(), a.id()).cmp(&(b.height(), b.round(), b.id())))
            .expect("genesis is always notarized")
    }

    fn extends_longest_notarized(&self, block: &Block) -> bool {
        if !self.notarized.contains(&block.parent_id()) {
            return false;
        }
        let max_height = self.tip().height();
        self.store
            .get(block.parent_id())
            .is_some_and(|parent| parent.height() == max_height)
    }

    /// Streamlet's commit rule: three notarized blocks at consecutive
    /// rounds finalize the chain through the middle one. Returns newly
    /// committed block ids, oldest first.
    ///
    /// Incremental: only windows containing the newly certified block can
    /// have just closed, so the scan is bounded by that block's notarized
    /// children — not the whole notarized set. Assumes blocks are stored
    /// before their certification completes (lock-step delivery guarantees
    /// proposals precede votes; an async network layer must buffer votes
    /// for unknown blocks to keep this invariant).
    fn apply_commit_rule(&mut self, certified: HashValue) -> Vec<HashValue> {
        let Some(block) = self.store.get(certified) else {
            return Vec::new();
        };
        let block_round = block.round();
        let parent_id = block.parent_id();
        let parent_round = block.parent_round();
        let parent_linked =
            self.notarized.contains(&parent_id) && parent_round.precedes(block_round);

        // Candidate middles of consecutive-round windows containing the
        // newly certified block (genesis counts as a window's oldest
        // element at round 0, but never as a middle).
        let mut middles: Vec<HashValue> = Vec::new();

        // (grandparent, parent, certified) — middle = parent.
        if parent_linked && parent_round > Round::ZERO {
            if let Some(parent) = self.store.get(parent_id) {
                if self.notarized.contains(&parent.parent_id())
                    && parent.parent_round().precedes(parent_round)
                {
                    middles.push(parent_id);
                }
            }
        }

        let children = self
            .notarized_children
            .get(&certified)
            .cloned()
            .unwrap_or_default();
        for child_id in children {
            let Some(child) = self.store.get(child_id) else {
                continue;
            };
            let child_round = child.round();
            if !block_round.precedes(child_round) {
                continue;
            }
            // (parent, certified, child) — middle = certified.
            if parent_linked {
                middles.push(certified);
            }
            // (certified, child, grandchild) — middle = child.
            for grandchild_id in self
                .notarized_children
                .get(&child_id)
                .cloned()
                .unwrap_or_default()
            {
                if let Some(grandchild) = self.store.get(grandchild_id) {
                    if child_round.precedes(grandchild.round()) {
                        middles.push(child_id);
                    }
                }
            }
        }

        let best_middle = middles
            .into_iter()
            .filter_map(|id| self.store.get(id))
            .max_by(|a, b| (a.height(), a.round(), a.id()).cmp(&(b.height(), b.round(), b.id())))
            .map(Block::id);
        match best_middle {
            Some(middle_id) => {
                let committed = self.ledger.finalize_through(&self.store, middle_id);
                if committed.is_empty() && !self.ledger.contains(middle_id) {
                    // The window closed but the chain below it has holes
                    // (ancestors still being fetched): finalize once sync
                    // fills them, or a later window will.
                    if !self.deferred_commits.contains(&middle_id) {
                        self.deferred_commits.push(middle_id);
                    }
                }
                committed
            }
            None => Vec::new(),
        }
    }

    /// Marks `block_id` notarized and indexes it under its parent for the
    /// incremental commit rule.
    fn note_notarized(&mut self, block_id: HashValue) {
        self.notarized.insert(block_id);
        if let Some(parent_id) = self.store.get(block_id).map(Block::parent_id) {
            let children = self.notarized_children.entry(parent_id).or_default();
            if !children.contains(&block_id) {
                children.push(block_id);
            }
        }
    }

    /// Takes the durable consensus events buffered since the last drain,
    /// in occurrence order. The engine moves them into
    /// [`EngineStep::persist`](sft_core::EngineStep) so the harness can
    /// write them ahead of the messages they justify.
    pub fn drain_wal(&mut self) -> Vec<WalRecord> {
        std::mem::take(&mut self.wal)
    }

    /// Re-applies one recovered write-ahead-log record at restart.
    ///
    /// Replay restores exactly what the log promised durability for: vote
    /// dedup (the recovered replica never votes twice in an epoch its
    /// pre-crash self voted in), the notarized set behind formed
    /// certificates, and the committed prefix. Records are chronological,
    /// so committed blocks replay parent-first and always attach.
    /// Endorsement tallies are *not* persisted: strength grades resume
    /// accumulating from live votes only, which only under-reports
    /// strength — never a committed block.
    pub fn replay(&mut self, record: &WalRecord) {
        match record {
            WalRecord::VoteSent(vote) => {
                let round = vote.round();
                self.voted_epochs.insert(round);
                self.voted_blocks.push((round, vote.data().block_id()));
                if round > self.epoch {
                    self.epoch = round;
                }
            }
            WalRecord::QcFormed(qc) => {
                self.sync.note_certificate(qc, &self.store);
                self.logged_qcs.insert(qc.digest());
                let block_id = qc.block_id();
                if self.store.contains(block_id) {
                    self.note_notarized(block_id);
                    for committed_id in self.apply_commit_rule(block_id) {
                        if let Some(update) = self
                            .endorsements
                            .take_level_update(committed_id, &self.store)
                        {
                            self.commit_log.push(update);
                        }
                    }
                }
            }
            // Streamlet has no timeout certificates; a foreign record in
            // the log is ignored rather than fatal.
            WalRecord::TcFormed(_) => {}
            WalRecord::BlockCommitted(block) => {
                match self.store.insert(block.clone()) {
                    Ok(_) => self.sync.note_stored(block.id()),
                    Err(BlockStoreError::UnknownParent) => {
                        self.sync.note_orphan_block(block.clone(), &self.store);
                    }
                    Err(_) => {}
                }
                // Replayed commits re-seed the dedup horizon, so a client
                // re-submitting across the crash still gets `Duplicate`.
                if let Payload::Transactions(txns) = block.payload() {
                    self.mempool.mark_included(txns.iter());
                }
                if self.store.contains(block.id()) {
                    // A committed block necessarily carried a quorum.
                    self.note_notarized(block.id());
                    for committed_id in self.ledger.finalize_through(&self.store, block.id()) {
                        if let Some(update) = self
                            .endorsements
                            .take_level_update(committed_id, &self.store)
                        {
                            self.commit_log.push(update);
                        }
                    }
                }
                if block.round() > self.epoch {
                    self.epoch = block.round();
                }
            }
        }
        // Replay-derived records are already in the log being replayed:
        // re-persisting them would duplicate the file on every restart.
        self.wal.clear();
    }

    /// Block-sync fetches now due (new targets and expired retries), to be
    /// sent point-to-point to the named peer. Drivers poll this once per
    /// delivery phase.
    pub fn take_sync_requests(&mut self, now: SimTime) -> Vec<(ReplicaId, BlockRequest)> {
        self.sync.take_requests(now)
    }

    /// Serves a peer's block-sync request from the local store, if this
    /// replica holds both the block and a certificate for it.
    pub fn on_sync_request(&mut self, request: &BlockRequest) -> Option<BlockResponse> {
        self.sync.serve(request, &self.store)
    }

    /// Handles a block-sync response: verifies it against the certificate
    /// chain, admits what attaches, indexes recovered notarized blocks, and
    /// re-runs the commit rule — the path a lagging replica's committed
    /// prefix is rebuilt through. Returns the commit-log entries produced.
    ///
    /// The response's certificate is validated structurally, like every
    /// certificate in this workspace (see the trust-model note in
    /// [`sft_core::sync`]): treating it as proof of notarization extends
    /// the same structural trust granted to a proposal's embedded QC to
    /// the serving peer. Authenticated (threshold-signed) certificates
    /// replace that assumption when real networking lands.
    pub fn on_sync_response(
        &mut self,
        response: &BlockResponse,
        now: SimTime,
    ) -> Vec<StrongCommitUpdate> {
        let admitted = self.sync.on_response_timed(response, &mut self.store, now);
        // The response's certificate may notarize a block this replica
        // already held (a certificate-want): process it alongside the
        // admitted blocks so the notarized set re-converges.
        let mut touched = admitted;
        let target = response.target();
        if !touched.contains(&target) && self.store.contains(target) {
            touched.push(target);
        }
        let mut updates = Vec::new();
        for id in &touched {
            if let Some(Payload::Transactions(txns)) =
                self.store.get(*id).map(Block::payload).cloned()
            {
                self.mempool.mark_included(txns.iter());
            }
            // A block counts as notarized here if this replica certified
            // it itself (possibly while the block was still unknown) or a
            // verified sync response carried its certificate. Index it and
            // let the commit rule see the recovered windows.
            let certified = self.notarized.contains(id) || self.sync.certificate_for(*id).is_some();
            if certified && self.store.contains(*id) {
                if let Some(qc) = self.sync.certificate_for(*id).cloned() {
                    if self.logged_qcs.insert(qc.digest()) {
                        self.wal.push(WalRecord::QcFormed(qc));
                    }
                }
                self.note_notarized(*id);
                for committed_id in self.apply_commit_rule(*id) {
                    if let Some(block) = self.store.get(committed_id).cloned() {
                        self.wal.push(WalRecord::BlockCommitted(block));
                    }
                    if let Some(update) = self
                        .endorsements
                        .take_level_update(committed_id, &self.store)
                    {
                        updates.push(update);
                    }
                }
            }
        }
        for id in self
            .ledger
            .finalize_deferred(&self.store, &mut self.deferred_commits)
        {
            if let Some(block) = self.store.get(id).cloned() {
                self.wal.push(WalRecord::BlockCommitted(block));
            }
            if let Some(update) = self.endorsements.take_level_update(id, &self.store) {
                updates.push(update);
            }
        }
        self.commit_log.extend(updates.iter().copied());
        updates
    }

    /// Block-sync counters (requests sent, blocks recovered, …).
    pub fn sync_stats(&self) -> SyncStats {
        self.sync.stats()
    }

    /// Total endorsement-frontier walk steps taken — the amortization
    /// counter the bench gate watches.
    pub fn walk_steps(&self) -> u64 {
        self.endorsements.walk_steps()
    }

    /// Signature-verification counters from vote aggregation — the
    /// evidence behind the verify-on-quorum scaling claim.
    pub fn sig_stats(&self) -> SigStats {
        self.votes.sig_stats()
    }

    /// Installs the recorder block-sync timing flows into.
    pub fn set_recorder(&mut self, recorder: sft_obs::SharedRecorder) {
        self.sync.set_recorder(recorder);
    }

    /// True while this replica is still chasing missing blocks.
    pub fn is_syncing(&self) -> bool {
        self.sync.is_syncing()
    }

    fn votes_registry(&self) -> &KeyRegistry {
        // The tracker owns the registry clone; reuse it for proposals.
        self.votes.registry()
    }
}

impl fmt::Debug for Replica {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Replica({} epoch={} notarized={} committed={})",
            self.id,
            self.epoch,
            self.notarized.len(),
            self.ledger.chain().len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sft_types::BatchConfig;

    fn replica(id: u16) -> Replica {
        let config = ProtocolConfig::for_replicas(4);
        let registry = KeyRegistry::deterministic(4);
        Replica::new(id, config, registry, EndorseMode::Marker)
    }

    #[test]
    fn sourced_epoch_advances_even_without_a_payload_source() {
        // A source-less replica returns no proposal but must still follow
        // the epoch clock, or it would reject (and never vote on) every
        // current-epoch proposal from the real leader.
        let mut r = replica(1);
        assert!(r.begin_epoch_sourced(Round::new(1)).is_none());
        assert_eq!(r.epoch(), Round::new(1));
    }

    #[test]
    fn sourced_epoch_drains_batches_for_the_leader() {
        let leader = Replica::leader(ProtocolConfig::for_replicas(4), Round::new(1));
        let mut r = replica(leader.as_u16())
            .with_payload_source(PayloadSource::Mempool(BatchConfig::with_max_txns(4)));
        for seq in 0..6 {
            assert_eq!(
                r.submit(Transaction::new(9, seq, vec![0; 4])),
                Admission::Admitted
            );
        }
        let proposal = r
            .begin_epoch_sourced(Round::new(1))
            .expect("leader proposes");
        assert_eq!(proposal.block().payload().txn_count(), 4);
        assert_eq!(r.mempool().len(), 2, "only one batch drained");
    }
}
