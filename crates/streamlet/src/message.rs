//! Wire messages exchanged by SFT-Streamlet replicas.

use std::fmt;

use sft_core::{Block, BlockResponse};
use sft_crypto::{Hasher, KeyPair, KeyRegistry, Signature};
use sft_types::codec::{Decode, DecodeError, Encode};
use sft_types::{BlockRequest, StrongVote};

/// A leader's signed block proposal for an epoch.
///
/// # Examples
///
/// ```
/// use sft_core::Block;
/// use sft_crypto::KeyRegistry;
/// use sft_streamlet::Proposal;
/// use sft_types::{Payload, ReplicaId, Round};
///
/// let registry = KeyRegistry::deterministic(4);
/// let block = Block::new(&Block::genesis(), Round::new(1), ReplicaId::new(1), Payload::empty());
/// let proposal = Proposal::new(block, &registry.key_pair(1).unwrap());
/// assert!(proposal.verify(&registry));
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Proposal {
    block: Block,
    signature: Signature,
}

fn proposal_digest(block: &Block) -> sft_crypto::HashValue {
    Hasher::new("proposal")
        .field(block.id().as_ref())
        .field(&block.round().as_u64().to_be_bytes())
        .finish()
}

impl Proposal {
    /// Creates and signs a proposal. The key pair must belong to the
    /// block's proposer for the proposal to verify.
    pub fn new(block: Block, key_pair: &KeyPair) -> Self {
        let signature = key_pair.sign(proposal_digest(&block).as_ref());
        Self { block, signature }
    }

    /// The proposed block.
    pub fn block(&self) -> &Block {
        &self.block
    }

    /// The proposer's signature over the block id and round.
    pub fn signature(&self) -> &Signature {
        &self.signature
    }

    /// Verifies that the block's claimed proposer signed this proposal.
    pub fn verify(&self, registry: &KeyRegistry) -> bool {
        registry.verify(
            self.block.proposer().as_u64(),
            proposal_digest(&self.block).as_ref(),
            &self.signature,
        )
    }
}

impl fmt::Debug for Proposal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Proposal({:?})", self.block)
    }
}

impl Encode for Proposal {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.block.encode(buf);
        self.signature.encode(buf);
    }
}

impl Decode for Proposal {
    fn decode(buf: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(Self {
            block: Block::decode(buf)?,
            signature: Signature::decode(buf)?,
        })
    }
}

/// Everything an SFT-Streamlet replica sends: proposals from epoch
/// leaders, strong-votes broadcast by every voter, and the point-to-point
/// block-sync exchange.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Message {
    /// A leader's block proposal.
    Proposal(Proposal),
    /// A replica's strong-vote.
    Vote(StrongVote),
    /// A catch-up fetch for a certified-but-unknown block.
    SyncRequest(BlockRequest),
    /// The certified chain segment answering a [`Message::SyncRequest`].
    SyncResponse(BlockResponse),
}

impl Encode for Message {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            Message::Proposal(p) => {
                buf.push(0);
                p.encode(buf);
            }
            Message::Vote(v) => {
                buf.push(1);
                v.encode(buf);
            }
            Message::SyncRequest(r) => {
                buf.push(2);
                r.encode(buf);
            }
            Message::SyncResponse(r) => {
                buf.push(3);
                r.encode(buf);
            }
        }
    }
}

impl Decode for Message {
    fn decode(buf: &mut &[u8]) -> Result<Self, DecodeError> {
        match u8::decode(buf)? {
            0 => Ok(Message::Proposal(Proposal::decode(buf)?)),
            1 => Ok(Message::Vote(StrongVote::decode(buf)?)),
            2 => Ok(Message::SyncRequest(BlockRequest::decode(buf)?)),
            3 => Ok(Message::SyncResponse(BlockResponse::decode(buf)?)),
            t => Err(DecodeError::InvalidTag(t)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sft_types::{EndorseInfo, Payload, ReplicaId, Round};

    fn block() -> Block {
        Block::new(
            &Block::genesis(),
            Round::new(1),
            ReplicaId::new(1),
            Payload::empty(),
        )
    }

    #[test]
    fn proposal_sign_verify() {
        let registry = KeyRegistry::deterministic(4);
        let proposal = Proposal::new(block(), &registry.key_pair(1).unwrap());
        assert!(proposal.verify(&registry));
    }

    #[test]
    fn proposal_signed_by_wrong_replica_fails() {
        let registry = KeyRegistry::deterministic(4);
        // Replica 2 signs a block claiming replica 1 proposed it.
        let proposal = Proposal::new(block(), &registry.key_pair(2).unwrap());
        assert!(!proposal.verify(&registry));
    }

    #[test]
    fn message_codec_roundtrips() {
        let registry = KeyRegistry::deterministic(4);
        let proposal = Proposal::new(block(), &registry.key_pair(1).unwrap());
        let vote = StrongVote::new(
            block().vote_data(),
            EndorseInfo::Marker(Round::ZERO),
            &registry.key_pair(0).unwrap(),
        );
        for msg in [Message::Proposal(proposal), Message::Vote(vote)] {
            let back = Message::from_bytes(&msg.to_bytes()).unwrap();
            assert_eq!(back, msg);
        }
    }

    #[test]
    fn message_bad_tag_rejected() {
        assert_eq!(Message::from_bytes(&[7]), Err(DecodeError::InvalidTag(7)));
    }

    #[test]
    fn tampered_proposal_fails_verification() {
        let registry = KeyRegistry::deterministic(4);
        let proposal = Proposal::new(block(), &registry.key_pair(1).unwrap());
        let other = Block::new(
            &Block::genesis(),
            Round::new(1),
            ReplicaId::new(1),
            Payload::synthetic(1, 1, 7),
        );
        let forged = Proposal {
            block: other,
            signature: *proposal.signature(),
        };
        assert!(!forged.verify(&registry));
    }
}
