//! The perf-regression gate: compares two `BENCH_*.json` run summaries.
//!
//! CI archives the `repro` binary's JSON summaries on every run
//! (`BENCH_streamlet.json` / `BENCH_fbft.json`). The gate turns that
//! archive into an actual check: `scripts/bench_gate` downloads the
//! previous run's artifacts and the [`compare`] function here grades the
//! new run against them — commit latency, throughput, and message/byte
//! complexity each must stay within a tolerance band of the baseline, and
//! the run fails otherwise. The first run (no baseline artifact yet) seeds
//! the baseline and passes.
//!
//! The summaries are this workspace's own flat hand-written JSON (the
//! offline dependency set has no serde), so parsing is a deliberately
//! minimal line scanner over `  "key": value` pairs — nested values (the
//! `sweep` array) are skipped.
//!
//! Every gated metric is *virtual* (simulated time, deterministic message
//! counts): identical code produces bit-identical summaries on any
//! machine, so the default tolerance is tight (5%) — it exists to absorb
//! small intentional shifts, not measurement noise. Keep it tight: the
//! baseline rolls forward every run, so each tolerated regression
//! compounds into the next run's baseline.

use std::collections::BTreeMap;

/// One scalar field of a run summary.
#[derive(Clone, Debug, PartialEq)]
pub enum FieldValue {
    /// A JSON number (integers included; the gate compares as `f64`).
    Number(f64),
    /// A JSON string, unquoted.
    Text(String),
    /// A JSON boolean.
    Bool(bool),
    /// JSON `null` (e.g. `baseline_txns_per_sec` in synthetic mode).
    Null,
}

/// A parsed `BENCH_*.json` summary: the top-level scalar fields.
#[derive(Clone, Debug, Default)]
pub struct Summary {
    fields: BTreeMap<String, FieldValue>,
}

impl Summary {
    /// Parses the scalar fields of a summary produced by the `repro`
    /// binary. Unknown or nested values are ignored, so old and new
    /// schema revisions stay comparable on their shared fields.
    pub fn parse(json: &str) -> Self {
        let mut fields = BTreeMap::new();
        for line in json.lines() {
            let line = line.trim();
            let Some(rest) = line.strip_prefix('"') else {
                continue;
            };
            let Some((key, raw)) = rest.split_once("\":") else {
                continue;
            };
            let raw = raw.trim().trim_end_matches(',');
            let value = if let Some(text) = raw.strip_prefix('"') {
                FieldValue::Text(text.trim_end_matches('"').to_string())
            } else if raw == "true" || raw == "false" {
                FieldValue::Bool(raw == "true")
            } else if raw == "null" {
                FieldValue::Null
            } else if let Ok(number) = raw.parse::<f64>() {
                FieldValue::Number(number)
            } else {
                continue; // nested value ("[", "{") or garbage: skip
            };
            fields.insert(key.to_string(), value);
        }
        Self { fields }
    }

    /// The field, if present.
    pub fn get(&self, key: &str) -> Option<&FieldValue> {
        self.fields.get(key)
    }

    /// The field as a number, if present and numeric.
    pub fn number(&self, key: &str) -> Option<f64> {
        match self.fields.get(key) {
            Some(FieldValue::Number(n)) => Some(*n),
            _ => None,
        }
    }
}

/// Which direction of movement counts as a regression for a metric.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Better {
    /// Larger values are improvements (throughput).
    Higher,
    /// Smaller values are improvements (latency, traffic).
    Lower,
}

/// One gated metric: a summary field plus its improvement direction and
/// tolerance multiplier.
#[derive(Clone, Copy, Debug)]
pub struct Metric {
    /// Summary field name.
    pub field: &'static str,
    /// Improvement direction.
    pub better: Better,
    /// Multiplier on the caller's tolerance. `1.0` for bit-deterministic
    /// virtual metrics; larger for metrics with inherent spread — log
    /// histogram digests quantize to ~12.5% buckets, and `*_ns` phase
    /// timings are wall-clock readings on shared CI runners.
    pub slack: f64,
}

/// Tolerance multiplier for deterministic scalar metrics.
const EXACT: f64 = 1.0;
/// Tolerance multiplier for virtual-time histogram digests: the value is
/// deterministic, but a small true shift can cross a ~12.5% log-bucket
/// boundary and report as a full bucket's jump.
const BUCKETED: f64 = 4.0;
/// Tolerance multiplier for wall-clock phase timings: real nanoseconds
/// measured on whatever CI machine the run landed on. The band exists to
/// catch order-of-magnitude hot-path regressions, not scheduler noise.
const WALL: f64 = 60.0;

/// The metrics the gate holds every run to: commit latency, throughput,
/// message/byte complexity, the block-sync catch-up cost (request and
/// fetch counts should only shrink for a fixed scenario; recovered
/// replicas should never drop), endorsement-walk work, signature-check
/// work (both the verification count — the O(n²)→O(n) batching win — and
/// the number of batch calls), and — when the run recorded them —
/// per-round latency digests and hot-path phase timings.
pub const GATED_METRICS: &[Metric] = &[
    Metric {
        field: "first_commit_us",
        better: Better::Lower,
        slack: EXACT,
    },
    Metric {
        field: "txns_per_sec",
        better: Better::Higher,
        slack: EXACT,
    },
    Metric {
        field: "messages",
        better: Better::Lower,
        slack: EXACT,
    },
    Metric {
        field: "bytes",
        better: Better::Lower,
        slack: EXACT,
    },
    Metric {
        field: "sync_requests",
        better: Better::Lower,
        slack: EXACT,
    },
    Metric {
        field: "sync_blocks_fetched",
        better: Better::Lower,
        slack: EXACT,
    },
    Metric {
        field: "recovered_replicas",
        better: Better::Higher,
        slack: EXACT,
    },
    Metric {
        field: "walk_steps",
        better: Better::Lower,
        slack: EXACT,
    },
    Metric {
        field: "sig_verifications",
        better: Better::Lower,
        slack: EXACT,
    },
    Metric {
        field: "batch_verify_calls",
        better: Better::Lower,
        slack: EXACT,
    },
    Metric {
        field: "disconnects",
        better: Better::Lower,
        slack: EXACT,
    },
    Metric {
        // Client plane (loadgen summaries): every submission must come
        // back as some ack — lost acks are a protocol bug, not noise.
        field: "lost_acks",
        better: Better::Lower,
        slack: EXACT,
    },
    Metric {
        field: "acks_committed",
        better: Better::Higher,
        slack: EXACT,
    },
    Metric {
        field: "client_rejected",
        better: Better::Lower,
        slack: EXACT,
    },
    Metric {
        // Closed-loop end-to-end ack latency over real sockets: wall
        // clock, so only order-of-magnitude regressions trip it.
        field: "e2e_ack_p50_us",
        better: Better::Lower,
        slack: WALL,
    },
    Metric {
        field: "e2e_ack_p99_us",
        better: Better::Lower,
        slack: WALL,
    },
    Metric {
        field: "e2e_txns_per_sec",
        better: Better::Higher,
        slack: WALL,
    },
    Metric {
        // Fsyncs issued by the durability layer. Write-through counts are
        // deterministic (one per record); group-commit counts depend on
        // how many appends each writer-thread wakeup coalesces, which is
        // scheduler timing — so only a blowup back toward one-per-record
        // should trip the gate.
        field: "wal_fsyncs",
        better: Better::Lower,
        slack: WALL,
    },
    Metric {
        field: "round_commit_us_p50",
        better: Better::Lower,
        slack: BUCKETED,
    },
    Metric {
        field: "round_commit_us_p99",
        better: Better::Lower,
        slack: BUCKETED,
    },
    Metric {
        field: "consensus_qc_us_p99",
        better: Better::Lower,
        slack: BUCKETED,
    },
    Metric {
        field: "phase_on_envelope_ns_p99",
        better: Better::Lower,
        slack: WALL,
    },
    Metric {
        field: "phase_persist_ns_p99",
        better: Better::Lower,
        slack: WALL,
    },
    Metric {
        field: "phase_route_ns_p99",
        better: Better::Lower,
        slack: WALL,
    },
];

/// Scenario-identity fields: when any differs between baseline and new
/// run, the runs measured different experiments and the gate skips the
/// numeric comparison (the new run reseeds the baseline) instead of
/// reporting nonsense regressions.
pub const IDENTITY_FIELDS: &[&str] = &[
    "protocol",
    "n",
    "f",
    "epochs",
    "behavior",
    "batch_size",
    "durability",
];

/// The verdict for one summary pair.
#[derive(Clone, Debug, Default)]
pub struct GateResult {
    /// Human-readable per-metric lines (passes and skips included).
    pub notes: Vec<String>,
    /// Regressions beyond tolerance; non-empty means the gate fails.
    pub regressions: Vec<String>,
}

impl GateResult {
    /// True when no gated metric regressed beyond tolerance.
    pub fn passed(&self) -> bool {
        self.regressions.is_empty()
    }
}

/// Grades `new` against `baseline` with a relative `tolerance` (0.25 =
/// 25% slack). Invariant fields (`agreement`, `strength_monotone`) must
/// hold in the new run regardless of the baseline.
pub fn compare(baseline: &Summary, new: &Summary, tolerance: f64) -> GateResult {
    let mut result = GateResult::default();
    for key in ["agreement", "strength_monotone"] {
        if matches!(new.get(key), Some(FieldValue::Bool(false))) {
            result.regressions.push(format!("{key} is false"));
        }
    }
    for key in IDENTITY_FIELDS {
        let (old, new_value) = (baseline.get(key), new.get(key));
        // A field present on only one side is a scenario change too: an
        // old-schema baseline predates the knob, so its workload cannot be
        // assumed comparable (e.g. pre-batching summaries have no
        // `batch_size` but measured a different workload entirely).
        if old != new_value {
            result.notes.push(format!(
                "scenario changed ({key}: {old:?} -> {new_value:?}); baseline reseeded, comparison skipped"
            ));
            return result;
        }
    }
    for metric in GATED_METRICS {
        let (Some(old), Some(current)) = (baseline.number(metric.field), new.number(metric.field))
        else {
            result
                .notes
                .push(format!("{}: missing in one side, skipped", metric.field));
            continue;
        };
        let band = tolerance * metric.slack;
        let (regressed, arrow) = match metric.better {
            Better::Higher => (current < old * (1.0 - band), "fell"),
            Better::Lower => (current > old * (1.0 + band), "rose"),
        };
        let line = format!(
            "{}: {old:.3} -> {current:.3} ({:+.1}%)",
            metric.field,
            (current - old) / old.max(f64::MIN_POSITIVE) * 100.0
        );
        if regressed {
            result.regressions.push(format!(
                "{line} — {arrow} beyond the {:.0}% tolerance",
                band * 100.0
            ));
        } else {
            result.notes.push(line);
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary(txns_per_sec: f64, messages: f64, first_commit_us: f64) -> Summary {
        Summary::parse(&format!(
            "{{\n  \"protocol\": \"fbft\",\n  \"n\": 4,\n  \"batch_size\": 256,\n  \"agreement\": true,\n  \"strength_monotone\": true,\n  \"first_commit_us\": {first_commit_us},\n  \"txns_per_sec\": {txns_per_sec},\n  \"messages\": {messages},\n  \"bytes\": 1000,\n  \"sweep\": [\n    {{\"n\": 4, \"messages\": 99}}\n  ]\n}}\n"
        ))
    }

    #[test]
    fn parser_reads_scalars_and_skips_nested_values() {
        let s = summary(1152.0, 156.0, 400000.0);
        assert_eq!(s.number("txns_per_sec"), Some(1152.0));
        assert_eq!(
            s.get("protocol"),
            Some(&FieldValue::Text("fbft".to_string()))
        );
        assert_eq!(s.get("agreement"), Some(&FieldValue::Bool(true)));
        assert_eq!(s.get("sweep"), None, "nested array is not a scalar field");
        // Sweep entries must not leak their keys into the top level.
        assert_eq!(s.number("messages"), Some(156.0));
    }

    #[test]
    fn parser_handles_null() {
        let s = Summary::parse("{\n  \"baseline_txns_per_sec\": null\n}\n");
        assert_eq!(s.get("baseline_txns_per_sec"), Some(&FieldValue::Null));
        assert_eq!(s.number("baseline_txns_per_sec"), None);
    }

    #[test]
    fn sync_metrics_are_gated_and_zero_baselines_are_safe() {
        // Lossless scenarios report all-zero sync metrics; zero against
        // zero must pass in both improvement directions.
        let base = Summary::parse(
            "{\n  \"protocol\": \"fbft\",\n  \"sync_requests\": 0,\n  \"sync_blocks_fetched\": 0,\n  \"recovered_replicas\": 0\n}\n",
        );
        assert!(compare(&base, &base.clone(), 0.05).passed());
        // Catch-up suddenly costing requests where it cost none is flagged.
        let worse = Summary::parse(
            "{\n  \"protocol\": \"fbft\",\n  \"sync_requests\": 12,\n  \"sync_blocks_fetched\": 0,\n  \"recovered_replicas\": 0\n}\n",
        );
        let result = compare(&base, &worse, 0.05);
        assert!(!result.passed());
        assert!(result.regressions[0].contains("sync_requests"));
        // A replica that used to recover no longer recovering is flagged.
        let recovering = Summary::parse(
            "{\n  \"protocol\": \"fbft\",\n  \"sync_requests\": 2, \n  \"sync_blocks_fetched\": 5,\n  \"recovered_replicas\": 1\n}\n",
        );
        let broken = Summary::parse(
            "{\n  \"protocol\": \"fbft\",\n  \"sync_requests\": 2, \n  \"sync_blocks_fetched\": 5,\n  \"recovered_replicas\": 0\n}\n",
        );
        let result = compare(&recovering, &broken, 0.05);
        assert!(!result.passed());
        assert!(result.regressions[0].contains("recovered_replicas"));
    }

    #[test]
    fn signature_work_growth_fails() {
        // Losing the batching win (verifications creeping back toward
        // O(n²)) must trip the gate even when every other metric holds.
        let base = Summary::parse(
            "{\n  \"protocol\": \"fbft\",\n  \"sig_verifications\": 1200,\n  \"batch_verify_calls\": 40\n}\n",
        );
        assert!(compare(&base, &base.clone(), 0.05).passed());
        let worse = Summary::parse(
            "{\n  \"protocol\": \"fbft\",\n  \"sig_verifications\": 9600,\n  \"batch_verify_calls\": 40\n}\n",
        );
        let result = compare(&base, &worse, 0.05);
        assert!(!result.passed());
        assert!(result.regressions[0].contains("sig_verifications"));
    }

    #[test]
    fn equal_runs_pass() {
        let base = summary(1000.0, 150.0, 400000.0);
        let result = compare(&base, &base.clone(), 0.25);
        assert!(result.passed(), "{:?}", result.regressions);
    }

    #[test]
    fn improvements_and_in_tolerance_noise_pass() {
        let base = summary(1000.0, 150.0, 400000.0);
        let new = summary(2000.0, 140.0, 300000.0);
        assert!(compare(&base, &new, 0.25).passed());
        let noisy = summary(900.0, 160.0, 440000.0); // within 25%
        assert!(compare(&base, &noisy, 0.25).passed());
    }

    #[test]
    fn throughput_drop_beyond_tolerance_fails() {
        let base = summary(1000.0, 150.0, 400000.0);
        let new = summary(500.0, 150.0, 400000.0);
        let result = compare(&base, &new, 0.25);
        assert!(!result.passed());
        assert!(result.regressions[0].contains("txns_per_sec"));
    }

    #[test]
    fn latency_and_message_growth_fail() {
        let base = summary(1000.0, 150.0, 400000.0);
        let slow = summary(1000.0, 150.0, 900000.0);
        assert!(!compare(&base, &slow, 0.25).passed());
        let chatty = summary(1000.0, 400.0, 400000.0);
        assert!(!compare(&base, &chatty, 0.25).passed());
    }

    #[test]
    fn metrics_block_parses_flat_and_wall_timings_get_slack() {
        // The `"metrics": { ... }` block is one scalar per line; the flat
        // line scanner lifts each into the top level, which is exactly how
        // the recorded digests become gateable.
        let render = |phase_p99: u64, commit_p50: u64| {
            Summary::parse(&format!(
                "{{\n  \"protocol\": \"fbft\",\n  \"n\": 4,\n  \"metrics\": {{\n    \"round_commit_us_p50\": {commit_p50},\n    \"phase_on_envelope_ns_p99\": {phase_p99}\n  }},\n  \"sweep\": []\n}}\n"
            ))
        };
        let base = render(1000, 400_000);
        assert_eq!(base.number("phase_on_envelope_ns_p99"), Some(1000.0));
        assert_eq!(base.get("metrics"), None, "the block itself is not a field");
        // 30x the base tolerance: fine for a wall metric (slack 60 at 5%
        // tolerance = 300% band)…
        let noisy = render(2500, 400_000);
        assert!(compare(&base, &noisy, 0.05).passed());
        // …but a >3x wall-clock blowup is a real hot-path regression.
        let blown = render(5000, 400_000);
        let result = compare(&base, &blown, 0.05);
        assert!(!result.passed());
        assert!(result.regressions[0].contains("phase_on_envelope_ns_p99"));
        // Virtual latency digests only get bucket-quantization slack.
        let slower_commit = render(1000, 520_000); // +30% > 4 × 5%
        assert!(!compare(&base, &slower_commit, 0.05).passed());
    }

    #[test]
    fn baseline_without_recorded_metrics_still_compares() {
        // Old artifacts predate the metrics block; the new fields must
        // skip, not fail, so the rollout is self-seeding.
        let old = summary(1000.0, 150.0, 400000.0);
        let new = Summary::parse(&format!(
            "{}  \"round_commit_us_p50\": 12345\n",
            "{\n  \"protocol\": \"fbft\",\n  \"n\": 4,\n  \"batch_size\": 256,\n  \"agreement\": true,\n  \"strength_monotone\": true,\n  \"first_commit_us\": 400000,\n  \"txns_per_sec\": 1000,\n  \"messages\": 150,\n  \"bytes\": 1000,\n"
        ));
        let result = compare(&old, &new, 0.05);
        assert!(result.passed(), "{:?}", result.regressions);
        assert!(result
            .notes
            .iter()
            .any(|n| n.contains("round_commit_us_p50") && n.contains("skipped")));
    }

    #[test]
    fn old_schema_baseline_reseeds_instead_of_failing() {
        // Pre-batching summaries have no batch_size field and measured a
        // synthetic workload; comparing bytes across that schema change
        // would report a huge bogus regression and deadlock CI (the
        // artifact only refreshes once the gate passes).
        let old = Summary::parse(
            "{\n  \"protocol\": \"fbft\",\n  \"n\": 4,\n  \"agreement\": true,\n  \"bytes\": 23529\n}\n",
        );
        let new = summary(1152.0, 156.0, 400000.0);
        let result = compare(&old, &new, 0.25);
        assert!(result.passed(), "{:?}", result.regressions);
        assert!(result.notes[0].contains("scenario changed"));
    }

    #[test]
    fn scenario_change_skips_comparison() {
        let base = summary(1000.0, 150.0, 400000.0);
        let mut new = summary(1.0, 9999.0, 9999999.0);
        new.fields.insert("n".to_string(), FieldValue::Number(7.0));
        let result = compare(&base, &new, 0.25);
        assert!(result.passed(), "different scenario must not fail the gate");
        assert!(result.notes[0].contains("scenario changed"));
    }

    #[test]
    fn broken_invariants_fail_even_against_no_baseline_numbers() {
        let base = Summary::default();
        let new = Summary::parse("{\n  \"agreement\": false\n}\n");
        let result = compare(&base, &new, 0.25);
        assert!(!result.passed());
        assert!(result.regressions[0].contains("agreement"));
    }
}
