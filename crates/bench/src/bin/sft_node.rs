//! `sft-node`: one replica as one OS process.
//!
//! ```text
//! sft-node --id I --peers HOST:PORT,HOST:PORT,... --data-dir DIR [flags]
//!
//!   --id I                 this replica's id (index into --peers)
//!   --peers LIST           full address table, replica 0 first (>= 2 entries)
//!   --data-dir DIR         where wal.log and commit.out live
//!   --listen ADDR          listen address (default: the --peers entry for --id)
//!   --protocol P           streamlet | fbft             (default streamlet)
//!   --epochs E             target epochs/rounds         (default 20)
//!   --budget-ms MS         hard wall-clock budget       (default 60000)
//!   --linger-ms MS         serve peers after finishing  (default 2000)
//!   --sync-every K         fsync every K WAL records    (default 1)
//!   --wal-mode M           sync-every | group-commit    (default sync-every);
//!                          group-commit batches fsyncs on a writer thread
//!                          and gates outbound frames on its durability
//!                          watermark (--sync-every is ignored)
//!   --delta-ms MS          pacing unit δ                (default 25)
//!   --base-timeout-ms MS   fbft base round timeout      (default 1000)
//!   --start-at-unix-ms T   cluster genesis instant as UNIX millis; pass
//!                          the SAME value to every replica so protocol
//!                          clocks align across processes (default: this
//!                          process's start)
//!   --trace-out PATH       append an NDJSON event trace (node lifecycle,
//!                          proposals, votes, QCs, commits) to PATH and
//!                          turn on metric recording; omit for the free
//!                          no-op path
//! ```
//!
//! On startup the node replays `<data-dir>/wal.log` (recovering from a
//! crash at any point, torn tails included) and only then joins the
//! protocol; at exit it writes its committed chain to
//! `<data-dir>/commit.out`, one block hash per line. See the
//! `sft_bench::node` module docs for the recovery semantics.

use std::net::SocketAddr;
use std::process::ExitCode;
use std::time::Duration;

use sft_bench::node::{run_node, NodeOpts, WalMode};
use sft_sim::Protocol;

fn parse_ms(value: &str, what: &str) -> Result<Duration, String> {
    value
        .parse::<u64>()
        .map(Duration::from_millis)
        .map_err(|_| format!("bad {what} {value:?}; need milliseconds"))
}

fn parse_args() -> Result<NodeOpts, String> {
    let mut id: Option<u16> = None;
    let mut peers: Vec<SocketAddr> = Vec::new();
    let mut data_dir: Option<String> = None;
    let mut listen: Option<SocketAddr> = None;
    let mut protocol = Protocol::Streamlet;
    let mut epochs = 20u64;
    let mut budget = Duration::from_secs(60);
    let mut linger = Duration::from_secs(2);
    let mut sync_every = 1u64;
    let mut wal_mode = WalMode::SyncEvery;
    let mut delta = Duration::from_millis(25);
    let mut base_timeout = Duration::from_millis(1000);
    let mut start_at: Option<Duration> = None;
    let mut trace_out: Option<String> = None;

    let raw: Vec<String> = std::env::args().skip(1).collect();
    let mut iter = raw.iter();
    while let Some(arg) = iter.next() {
        let mut value = |what: &str| -> Result<&String, String> {
            iter.next().ok_or(format!("{what} needs a value"))
        };
        match arg.as_str() {
            "--id" => {
                let v = value("--id")?;
                id = Some(v.parse().map_err(|_| format!("bad id {v:?}"))?);
            }
            "--peers" => {
                let v = value("--peers")?;
                peers = v
                    .split(',')
                    .map(|a| a.parse().map_err(|_| format!("bad peer address {a:?}")))
                    .collect::<Result<_, _>>()?;
            }
            "--data-dir" => data_dir = Some(value("--data-dir")?.clone()),
            "--listen" => {
                let v = value("--listen")?;
                listen = Some(v.parse().map_err(|_| format!("bad listen address {v:?}"))?);
            }
            "--protocol" => {
                protocol = match value("--protocol")?.as_str() {
                    "streamlet" => Protocol::Streamlet,
                    "fbft" => Protocol::Fbft,
                    other => return Err(format!("unknown protocol {other:?}")),
                };
            }
            "--epochs" => {
                let v = value("--epochs")?;
                epochs = v.parse().map_err(|_| format!("bad epoch count {v:?}"))?;
            }
            "--budget-ms" => budget = parse_ms(value("--budget-ms")?, "budget")?,
            "--linger-ms" => linger = parse_ms(value("--linger-ms")?, "linger")?,
            "--sync-every" => {
                let v = value("--sync-every")?;
                sync_every = v
                    .parse()
                    .ok()
                    .filter(|k| *k >= 1)
                    .ok_or_else(|| format!("bad sync interval {v:?}; need >= 1"))?;
            }
            "--wal-mode" => {
                wal_mode = match value("--wal-mode")?.as_str() {
                    "sync-every" => WalMode::SyncEvery,
                    "group-commit" => WalMode::GroupCommit,
                    other => return Err(format!("unknown wal mode {other:?}")),
                };
            }
            "--delta-ms" => delta = parse_ms(value("--delta-ms")?, "delta")?,
            "--base-timeout-ms" => {
                base_timeout = parse_ms(value("--base-timeout-ms")?, "base timeout")?;
            }
            "--start-at-unix-ms" => {
                start_at = Some(parse_ms(value("--start-at-unix-ms")?, "start instant")?);
            }
            "--trace-out" => trace_out = Some(value("--trace-out")?.clone()),
            other => return Err(format!("unexpected argument {other:?}")),
        }
    }

    let id = id.ok_or("--id is required")?;
    if peers.len() < 2 {
        return Err("--peers needs at least two addresses".to_string());
    }
    let Some(own) = peers.get(id as usize).copied() else {
        return Err(format!("id {id} out of range for {} peers", peers.len()));
    };
    Ok(NodeOpts {
        id,
        listen: listen.unwrap_or(own),
        peers,
        protocol,
        data_dir: data_dir.ok_or("--data-dir is required")?.into(),
        epochs,
        budget,
        linger,
        sync_every,
        wal_mode,
        delta,
        base_timeout,
        start_at,
        trace_out: trace_out.map(Into::into),
    })
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    match run_node(&opts) {
        Ok(outcome) => {
            println!(
                "sft-node {}: round {}, {} blocks committed, {} WAL records recovered, \
                 {} appended, {} disconnects",
                opts.id,
                outcome.round,
                outcome.committed.len(),
                outcome.recovered,
                outcome.appended,
                outcome.disconnects,
            );
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("sft-node {}: {message}", opts.id);
            ExitCode::FAILURE
        }
    }
}
