//! `crash-harness`: the kill−9 acceptance test for `sft-node` recovery.
//!
//! ```text
//! crash-harness [flags]
//!   --protocol P          streamlet | fbft        (default streamlet)
//!   --replicas N          process count           (default 4)
//!   --epochs E            target epochs/rounds    (default 30)
//!   --budget-ms MS        per-node wall budget    (default 60000)
//!   --kill-after-records K  kill the victim once its WAL holds >= K
//!                           records               (default 8)
//!   --data-root DIR       keep data dirs here instead of a temp dir
//!   --wal-mode M          sync-every | group-commit, forwarded to every
//!                         node: the recovery contract must hold under
//!                         the pipelined WAL too (default sync-every)
//! ```
//!
//! The harness spawns `n` `sft-node` processes on free loopback ports,
//! waits until the victim (replica 1) has durable consensus state, kills
//! it with SIGKILL mid-run, restarts it on the same data directory, and
//! at the end asserts:
//!
//! 1. every replica's `commit.out` agrees on the common committed prefix;
//! 2. the victim's final chain preserves every block its pre-crash WAL
//!    had committed — recovery lost nothing;
//! 3. the victim made progress past its pre-crash prefix;
//! 4. the victim's NDJSON trace (`trace.ndjson`, both incarnations
//!    appended) shows the restarted incarnation finishing its WAL replay
//!    *before* it cast its first vote — recovery ordering, reconstructed
//!    from the event timeline rather than inferred from exit state.
//!
//! Exit status is the CI verdict; data directories are left in place on
//! failure (and printed) so they can be uploaded as artifacts.

use std::net::TcpListener;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, ExitCode, Stdio};
use std::time::{Duration, Instant};

use sft_core::{scan_wal, WalRecord, WAL_FILE_NAME};
use sft_obs::names;

/// The replica that gets killed and restarted.
const VICTIM: usize = 1;

/// Per-node NDJSON trace file, appended across incarnations.
const TRACE_FILE_NAME: &str = "trace.ndjson";

struct Args {
    protocol: String,
    n: usize,
    epochs: u64,
    budget: Duration,
    kill_after_records: usize,
    data_root: Option<PathBuf>,
    wal_mode: String,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        protocol: "streamlet".to_string(),
        n: 4,
        epochs: 30,
        budget: Duration::from_secs(60),
        kill_after_records: 8,
        data_root: None,
        wal_mode: "sync-every".to_string(),
    };
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let mut iter = raw.iter();
    while let Some(arg) = iter.next() {
        let mut value = |what: &str| -> Result<&String, String> {
            iter.next().ok_or(format!("{what} needs a value"))
        };
        match arg.as_str() {
            "--protocol" => {
                let v = value("--protocol")?;
                if v != "streamlet" && v != "fbft" {
                    return Err(format!("unknown protocol {v:?}"));
                }
                args.protocol = v.clone();
            }
            "--replicas" => {
                let v = value("--replicas")?;
                args.n = v
                    .parse()
                    .ok()
                    .filter(|n| *n >= 4)
                    .ok_or_else(|| format!("bad replica count {v:?}; need >= 4"))?;
            }
            "--epochs" => {
                let v = value("--epochs")?;
                args.epochs = v.parse().map_err(|_| format!("bad epoch count {v:?}"))?;
            }
            "--budget-ms" => {
                let v = value("--budget-ms")?;
                args.budget = v
                    .parse::<u64>()
                    .map(Duration::from_millis)
                    .map_err(|_| format!("bad budget {v:?}"))?;
            }
            "--kill-after-records" => {
                let v = value("--kill-after-records")?;
                args.kill_after_records = v
                    .parse()
                    .ok()
                    .filter(|k| *k >= 1)
                    .ok_or_else(|| format!("bad record count {v:?}"))?;
            }
            "--data-root" => args.data_root = Some(value("--data-root")?.into()),
            "--wal-mode" => {
                let v = value("--wal-mode")?;
                if v != "sync-every" && v != "group-commit" {
                    return Err(format!("unknown wal mode {v:?}"));
                }
                args.wal_mode = v.clone();
            }
            other => return Err(format!("unexpected argument {other:?}")),
        }
    }
    Ok(args)
}

/// Reserves `count` distinct loopback ports by bind-then-drop.
fn free_addrs(count: usize) -> Vec<String> {
    let holds: Vec<TcpListener> = (0..count)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind loopback"))
        .collect();
    holds
        .iter()
        .map(|l| l.local_addr().expect("local addr").to_string())
        .collect()
}

/// The `sft-node` binary sits next to this one in the target directory.
fn node_binary() -> PathBuf {
    let mut path = std::env::current_exe().expect("own path");
    path.set_file_name(if cfg!(windows) {
        "sft-node.exe"
    } else {
        "sft-node"
    });
    path
}

fn spawn_node(
    args: &Args,
    peers: &str,
    id: usize,
    dir: &Path,
    genesis_unix_ms: u128,
) -> std::io::Result<Child> {
    Command::new(node_binary())
        .args([
            "--id",
            &id.to_string(),
            "--peers",
            peers,
            "--data-dir",
            &dir.display().to_string(),
            "--protocol",
            &args.protocol,
            "--epochs",
            &args.epochs.to_string(),
            "--budget-ms",
            &args.budget.as_millis().to_string(),
            // The durability discipline under test: the kill −9 /
            // recovery contract must hold under group commit exactly as
            // it does under write-through.
            "--wal-mode",
            &args.wal_mode,
            // Long linger: finished peers keep answering block-sync so
            // the restarted victim can catch up before anyone exits.
            "--linger-ms",
            "8000",
            // One shared genesis instant: every incarnation — the restart
            // included — runs the same cluster-wide protocol clock.
            "--start-at-unix-ms",
            &genesis_unix_ms.to_string(),
            // Appended across incarnations, so the kill and the restart
            // land in one reconstructable timeline.
            "--trace-out",
            &dir.join(TRACE_FILE_NAME).display().to_string(),
        ])
        .stdout(Stdio::inherit())
        .stderr(Stdio::inherit())
        .spawn()
}

/// Block hashes the WAL says were committed, in commit order.
fn committed_in_wal(dir: &Path) -> Result<Vec<String>, String> {
    let path = dir.join(WAL_FILE_NAME);
    let bytes = std::fs::read(&path).map_err(|e| format!("reading {}: {e}", path.display()))?;
    let scan = scan_wal(&bytes).map_err(|e| format!("scanning {}: {e}", path.display()))?;
    Ok(scan
        .records
        .iter()
        .filter_map(|r| match r {
            WalRecord::BlockCommitted(block) => Some(format!("{}", block.id())),
            _ => None,
        })
        .collect())
}

fn wal_record_count(dir: &Path) -> usize {
    let Ok(bytes) = std::fs::read(dir.join(WAL_FILE_NAME)) else {
        return 0;
    };
    scan_wal(&bytes).map_or(0, |scan| scan.records.len())
}

/// Verdict 4: the restarted incarnation's trace must show WAL replay
/// completing — with records actually replayed — before its first
/// outbound vote. File order is the ordering authority: the sink writes
/// whole lines in event order, so index comparison needs no clock.
fn verify_recovery_timeline(dir: &Path) -> Result<(), String> {
    let path = dir.join(TRACE_FILE_NAME);
    let events =
        sft_obs::read_trace(&path).map_err(|e| format!("reading {}: {e}", path.display()))?;
    let restart = events
        .iter()
        .rposition(|e| e.name == names::EV_NODE_START)
        .ok_or("victim trace has no node_start events")?;
    if restart == 0 {
        return Err("victim trace shows only one incarnation; the restart never logged".into());
    }
    let tail = &events[restart..];
    let replay = tail
        .iter()
        .position(|e| e.name == names::EV_WAL_REPLAY_DONE)
        .ok_or("restarted incarnation never finished WAL replay")?;
    let records = tail[replay].get("records").unwrap_or(0);
    if records == 0 {
        return Err("restarted incarnation replayed an empty WAL".into());
    }
    let vote = tail
        .iter()
        .position(|e| e.name == names::EV_VOTE)
        .ok_or("restarted incarnation never voted")?;
    if vote < replay {
        return Err(format!(
            "restarted incarnation voted (event {vote}) before WAL replay completed \
             (event {replay}) — recovery ordering violated"
        ));
    }
    println!(
        "crash-harness: restart timeline OK — {records} records replayed (event {replay}) \
         before the first vote (event {vote})"
    );
    Ok(())
}

fn read_commit_file(dir: &Path) -> Result<Vec<String>, String> {
    let path = dir.join("commit.out");
    let body =
        std::fs::read_to_string(&path).map_err(|e| format!("reading {}: {e}", path.display()))?;
    Ok(body.lines().map(str::to_string).collect())
}

/// Waits for every child, enforcing one shared wall-clock deadline.
fn await_all(children: &mut [(usize, Child)], deadline: Instant) -> Result<(), String> {
    loop {
        let mut running = 0usize;
        for (id, child) in children.iter_mut() {
            match child.try_wait() {
                Ok(Some(status)) if !status.success() => {
                    return Err(format!("replica {id} exited with {status}"));
                }
                Ok(Some(_)) => {}
                Ok(None) => running += 1,
                Err(e) => return Err(format!("waiting on replica {id}: {e}")),
            }
        }
        if running == 0 {
            return Ok(());
        }
        if Instant::now() >= deadline {
            for (_, child) in children.iter_mut() {
                let _ = child.kill();
            }
            return Err(format!(
                "{running} replica(s) still running at the deadline"
            ));
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}

fn run(args: &Args) -> Result<(), String> {
    let data_root = args
        .data_root
        .clone()
        .unwrap_or_else(|| std::env::temp_dir().join(format!("sft-crash-{}", std::process::id())));
    let dirs: Vec<PathBuf> = (0..args.n)
        .map(|i| data_root.join(format!("node-{i}")))
        .collect();
    for dir in &dirs {
        std::fs::create_dir_all(dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
    }
    let peers = free_addrs(args.n).join(",");
    println!(
        "crash-harness: {} x {} sft-node ({}), epochs {}, data under {}",
        args.n,
        args.protocol,
        peers,
        args.epochs,
        data_root.display()
    );

    // Genesis slightly in the future, so every process is up before the
    // first epoch opens and all protocol clocks tick in lockstep.
    let genesis_unix_ms = (std::time::SystemTime::now() + Duration::from_millis(500))
        .duration_since(std::time::UNIX_EPOCH)
        .expect("present-day clock")
        .as_millis();

    let deadline = Instant::now() + args.budget + Duration::from_secs(30);
    let mut children: Vec<(usize, Child)> = Vec::new();
    for (id, dir) in dirs.iter().enumerate() {
        let child = spawn_node(args, &peers, id, dir, genesis_unix_ms)
            .map_err(|e| format!("spawning replica {id}: {e}"))?;
        children.push((id, child));
    }

    // Phase 1: wait until the victim has durable consensus state worth
    // losing, then SIGKILL it mid-run — no shutdown path runs.
    let kill_deadline = Instant::now() + args.budget / 2;
    while wal_record_count(&dirs[VICTIM]) < args.kill_after_records {
        if Instant::now() >= kill_deadline {
            for (_, child) in &mut children {
                let _ = child.kill();
            }
            return Err(format!(
                "victim reached only {} WAL records before the kill deadline",
                wal_record_count(&dirs[VICTIM])
            ));
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    let (_, mut victim_child) = children.remove(VICTIM);
    victim_child.kill().map_err(|e| format!("kill -9: {e}"))?;
    let _ = victim_child.wait();
    let pre_crash = committed_in_wal(&dirs[VICTIM])?;
    println!(
        "crash-harness: killed replica {VICTIM} with {} WAL records ({} committed blocks)",
        wal_record_count(&dirs[VICTIM]),
        pre_crash.len()
    );

    // Phase 2: restart on the same data directory; recovery replays the
    // WAL before the node rejoins.
    let restarted = spawn_node(args, &peers, VICTIM, &dirs[VICTIM], genesis_unix_ms)
        .map_err(|e| format!("restarting replica {VICTIM}: {e}"))?;
    children.push((VICTIM, restarted));

    await_all(&mut children, deadline)?;

    // Phase 3: verdicts.
    let chains: Vec<Vec<String>> = dirs
        .iter()
        .map(|d| read_commit_file(d))
        .collect::<Result<_, _>>()?;
    for (id, chain) in chains.iter().enumerate() {
        if chain.is_empty() {
            return Err(format!("replica {id} committed nothing"));
        }
    }
    for (id, chain) in chains.iter().enumerate().skip(1) {
        let shared = chain.len().min(chains[0].len());
        if chain[..shared] != chains[0][..shared] {
            return Err(format!(
                "committed prefixes diverge between replicas 0 and {id}"
            ));
        }
    }
    let victim_chain = &chains[VICTIM];
    if victim_chain.len() < pre_crash.len() || victim_chain[..pre_crash.len()] != pre_crash[..] {
        return Err(format!(
            "recovery lost committed state: {} blocks pre-crash, final chain {:?}",
            pre_crash.len(),
            victim_chain
        ));
    }
    if victim_chain.len() == pre_crash.len() {
        return Err("restarted victim made no progress past its pre-crash prefix".to_string());
    }
    verify_recovery_timeline(&dirs[VICTIM])?;
    println!(
        "crash-harness OK: prefixes agree on {} replicas; victim kept {} pre-crash blocks \
         and committed {} more after restart",
        args.n,
        pre_crash.len(),
        victim_chain.len() - pre_crash.len()
    );
    if args.data_root.is_none() {
        let _ = std::fs::remove_dir_all(&data_root);
    }
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("crash-harness FAIL: {message}");
            ExitCode::FAILURE
        }
    }
}
