//! End-to-end reproduction driver: runs simulated consensus instances of
//! one (or both) protocols and prints what they did.
//!
//! ```text
//! cargo run -p sft-bench --bin repro [-- n epochs [byzantine] [flags]]
//!   n          replica count           (default 4)
//!   epochs     epochs/rounds to run    (default 10)
//!   byzantine  equivocate | withhold | silent | stall — behavior of replica n-1
//!
//! flags:
//!   --protocol streamlet | fbft | both   which protocol(s) to run (default streamlet)
//!   --json-dir DIR                       also write BENCH_<protocol>.json summaries
//! ```
//!
//! The JSON summaries (`BENCH_streamlet.json` / `BENCH_fbft.json`) are the
//! machine-readable perf trajectory CI archives on every run, so future
//! changes can be compared against a recorded baseline.

use std::fmt::Write as _;
use std::process::ExitCode;

use sft_core::ProtocolConfig;
use sft_sim::{Behavior, Protocol, SimConfig, SimReport};

struct Args {
    n: usize,
    epochs: u64,
    byzantine: Option<Behavior>,
    protocols: Vec<Protocol>,
    json_dir: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        n: 4,
        epochs: 10,
        byzantine: None,
        protocols: vec![Protocol::Streamlet],
        json_dir: None,
    };
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let mut positional = 0usize;
    let mut iter = raw.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--protocol" => {
                let value = iter.next().ok_or("--protocol needs a value")?;
                args.protocols = match value.as_str() {
                    "streamlet" => vec![Protocol::Streamlet],
                    "fbft" => vec![Protocol::Fbft],
                    "both" => vec![Protocol::Streamlet, Protocol::Fbft],
                    other => return Err(format!("unknown protocol {other:?}")),
                };
            }
            "--json-dir" => {
                args.json_dir = Some(iter.next().ok_or("--json-dir needs a value")?.clone());
            }
            value => {
                match positional {
                    0 => {
                        args.n = value
                            .parse()
                            .ok()
                            .filter(|n| *n >= 4)
                            .ok_or_else(|| format!("bad replica count {value:?}; need >= 4"))?;
                    }
                    1 => {
                        args.epochs = value
                            .parse()
                            .map_err(|_| format!("bad epoch count {value:?}"))?;
                    }
                    2 => {
                        args.byzantine = Some(match value {
                            "equivocate" => Behavior::Equivocate,
                            "withhold" => Behavior::WithholdVote,
                            "silent" => Behavior::Silent,
                            "stall" => Behavior::StallLeader,
                            other => {
                                return Err(format!(
                                    "unknown behavior {other:?}; use equivocate | withhold | silent | stall"
                                ))
                            }
                        });
                    }
                    _ => return Err(format!("unexpected argument {value:?}")),
                }
                positional += 1;
            }
        }
    }
    Ok(args)
}

fn protocol_name(protocol: Protocol) -> &'static str {
    match protocol {
        Protocol::Streamlet => "streamlet",
        Protocol::Fbft => "fbft",
    }
}

fn behavior_name(behavior: Option<Behavior>) -> &'static str {
    match behavior {
        None => "honest",
        Some(Behavior::Honest) => "honest",
        Some(Behavior::Equivocate) => "equivocate",
        Some(Behavior::WithholdVote) => "withhold",
        Some(Behavior::Silent) => "silent",
        Some(Behavior::StallLeader) => "stall",
    }
}

/// Renders the run summary as a flat JSON object. Written by hand — the
/// offline dependency set has no serde, and the schema is a dozen scalar
/// fields.
fn summary_json(
    args: &Args,
    protocol: Protocol,
    cfg: ProtocolConfig,
    report: &SimReport,
) -> String {
    let mut out = String::from("{\n");
    let mut field = |key: &str, value: String| {
        let _ = writeln!(out, "  \"{key}\": {value},");
    };
    field("protocol", format!("\"{}\"", protocol_name(protocol)));
    field("n", args.n.to_string());
    field("f", cfg.f().to_string());
    field("epochs", args.epochs.to_string());
    field("behavior", format!("\"{}\"", behavior_name(args.byzantine)));
    field("committed_blocks", report.max_committed().to_string());
    field("max_commit_level", report.max_commit_level().to_string());
    field("strength_ceiling", cfg.max_strength().to_string());
    field("agreement", report.agreement().to_string());
    field(
        "strength_monotone",
        report.commit_strength_monotone().to_string(),
    );
    field(
        "first_commit_us",
        report
            .first_commit_at(0)
            .map_or("null".to_string(), |t| t.as_micros().to_string()),
    );
    field("elapsed_us", report.elapsed.as_micros().to_string());
    field("messages", report.net.messages.to_string());
    // Last field without the trailing comma.
    let _ = write!(out, "  \"bytes\": {}\n}}\n", report.net.bytes);
    out
}

fn run_protocol(args: &Args, protocol: Protocol) -> Result<(), String> {
    let cfg = ProtocolConfig::for_replicas(args.n);
    let mut config = SimConfig::new(args.n, args.epochs).with_protocol(protocol);
    if let Some(behavior) = args.byzantine {
        config = config.with_behavior((args.n - 1) as u16, behavior);
        println!("replica {} is {:?}", args.n - 1, behavior);
    }
    println!(
        "running SFT-{}: n={} (f={}), {} {}, δ={}, quorum={}, 2f ceiling={}",
        if protocol == Protocol::Fbft {
            "DiemBFT"
        } else {
            "Streamlet"
        },
        args.n,
        cfg.f(),
        args.epochs,
        if protocol == Protocol::Fbft {
            "rounds"
        } else {
            "epochs"
        },
        config.delay,
        cfg.quorum(),
        cfg.max_strength(),
    );

    let report = config.run();

    println!(
        "\ncommitted chain (replica 0): {} blocks",
        report.chains[0].len()
    );
    for (at, update) in &report.timelines[0] {
        println!(
            "  t={at}  block r={} h={}  -> level {} ({})",
            update.round(),
            update.height(),
            update.level(),
            if update.level() >= cfg.max_strength() {
                "strong commit, 2f ceiling"
            } else if update.level() as usize == cfg.f() {
                "standard commit"
            } else {
                "strengthened"
            }
        );
    }

    println!(
        "\nnetwork: {} messages, {} bytes, elapsed {}",
        report.net.messages, report.net.bytes, report.elapsed
    );
    if report.equivocators_detected > 0 {
        println!("equivocators detected: {}", report.equivocators_detected);
    }

    if !report.agreement() || report.safety_violations > 0 {
        return Err(format!(
            "replicas disagree (violations: {})",
            report.safety_violations
        ));
    }
    if report.max_committed() == 0 {
        return Err("nothing committed".to_string());
    }
    if !report.commit_strength_monotone() {
        return Err("commit strength regressed".to_string());
    }
    println!(
        "\nOK: agreement holds, max commit level {}",
        report.max_commit_level()
    );

    if let Some(dir) = &args.json_dir {
        let path = format!("{dir}/BENCH_{}.json", protocol_name(protocol));
        let json = summary_json(args, protocol, cfg, &report);
        std::fs::write(&path, json).map_err(|e| format!("writing {path}: {e}"))?;
        println!("wrote {path}");
    }
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    for (i, &protocol) in args.protocols.iter().enumerate() {
        if i > 0 {
            println!("\n{}\n", "=".repeat(64));
        }
        if let Err(message) = run_protocol(&args, protocol) {
            eprintln!("FAIL ({}): {message}", protocol_name(protocol));
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
