//! End-to-end reproduction driver: runs simulated consensus instances of
//! one (or both) protocols and prints what they did.
//!
//! ```text
//! cargo run -p sft-bench --bin repro [-- n epochs [scenario] [flags]]
//!   n          replica count           (default 4)
//!   epochs     epochs/rounds to run    (default 10)
//!   scenario   equivocate | withhold | silent | stall — behavior of replica n-1
//!              partition — replica n-1 cut off until mid-run while replica 0
//!                          equivocates; recovery via block-sync is asserted
//!              lossy     — 15% seeded message loss until GST at mid-run
//!              crash     — replica 0 crash-stops mid-run; survivors must keep going
//!              restart   — replica 0 crash-stops mid-run, then restarts from a
//!                          write-ahead-log replay; committed-prefix parity and
//!                          zero equivocation are asserted
//!
//! flags:
//!   --protocol streamlet | fbft | both   which protocol(s) to run (default streamlet)
//!   --transport sim | tcp                sim (default): deterministic simulator;
//!                                        tcp: the same honest replica set over a
//!                                        loopback TCP mesh, asserting its committed
//!                                        prefix matches the sim run's
//!   --batch-size B                       txns per drained mempool batch; 0 = synthetic
//!                                        descriptor workload (default 256)
//!   --replicas LIST                      comma-separated n sweep, e.g. 4,7,10; the
//!                                        first entry is the headline run
//!   --sweep-delay LIST                   comma-separated network δ sweep in ms,
//!                                        e.g. 50,100,200, recorded in the summary's
//!                                        sweep array
//!   --json-dir DIR                       also write BENCH_<protocol>.json summaries
//! ```
//!
//! Every batched headline run is compared against an *unbatched* baseline
//! (the same scenario at batch size 1, equal simulated time); the run fails
//! if batching does not commit at least twice the transactions — the
//! regression bar CI holds the batching/pipelining path to.
//!
//! The JSON summaries (`BENCH_streamlet.json` / `BENCH_fbft.json`) are the
//! machine-readable perf trajectory CI archives on every run and feeds to
//! `scripts/bench_gate`, so future changes are compared against a recorded
//! baseline instead of asserted fast.

use std::fmt::Write as _;
use std::process::ExitCode;

use sft_core::{scan_wal, MemSink, ProtocolConfig, ReplicaEngine, Wal, WalRecord};
use sft_network::{SimNetwork, SimTransport, Transport};
use sft_sim::{
    build_fbft_engines, build_streamlet_engines, run_over_tcp, Behavior, EngineRunner, NoMischief,
    Protocol, RunPlan, RunnerConfig, SimConfig, SimReport, TcpPacing,
};
use sft_types::{Round, SimDuration, SimTime};

/// What the optional third positional argument selects: a Byzantine
/// behavior for replica `n − 1`, or a partial-synchrony fault schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
enum Scenario {
    #[default]
    Honest,
    Byzantine(Behavior),
    /// Replica n−1 partitioned until mid-run while replica 0 equivocates;
    /// the catch-up acceptance criterion (recovery via block-sync) is
    /// asserted on top of the usual invariants.
    Partition,
    /// 15% seeded message loss until GST at mid-run, all replicas honest.
    Lossy,
    /// Replica 0 crash-stops mid-run (engine dropped, never restarted);
    /// the survivors must keep committing and agreeing.
    Crash,
    /// Replica 0 crash-stops mid-run and is later rebuilt from a
    /// write-ahead-log replay through the real frame codec; committed-
    /// prefix parity and zero equivocation are asserted.
    Restart,
}

/// Which transport the run goes over.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
enum TransportKind {
    /// The deterministic in-process simulator.
    #[default]
    Sim,
    /// A loopback TCP mesh: same replicas, real sockets, wall-clock time.
    Tcp,
}

struct Args {
    n: usize,
    epochs: u64,
    scenario: Scenario,
    protocols: Vec<Protocol>,
    transport: TransportKind,
    batch_size: u32,
    sweep: Vec<usize>,
    delay_sweep_ms: Vec<u64>,
    json_dir: Option<String>,
}

fn parse_replica_count(value: &str) -> Result<usize, String> {
    value
        .parse()
        .ok()
        .filter(|n| *n >= 4)
        .ok_or_else(|| format!("bad replica count {value:?}; need >= 4"))
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        n: 4,
        epochs: 10,
        scenario: Scenario::Honest,
        protocols: vec![Protocol::Streamlet],
        transport: TransportKind::Sim,
        batch_size: 256,
        sweep: Vec::new(),
        delay_sweep_ms: Vec::new(),
        json_dir: None,
    };
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let mut positional = 0usize;
    let mut iter = raw.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--protocol" => {
                let value = iter.next().ok_or("--protocol needs a value")?;
                args.protocols = match value.as_str() {
                    "streamlet" => vec![Protocol::Streamlet],
                    "fbft" => vec![Protocol::Fbft],
                    "both" => vec![Protocol::Streamlet, Protocol::Fbft],
                    other => return Err(format!("unknown protocol {other:?}")),
                };
            }
            "--transport" => {
                let value = iter.next().ok_or("--transport needs a value")?;
                args.transport = match value.as_str() {
                    "sim" => TransportKind::Sim,
                    "tcp" => TransportKind::Tcp,
                    other => return Err(format!("unknown transport {other:?}")),
                };
            }
            "--sweep-delay" => {
                let value = iter.next().ok_or("--sweep-delay needs a value")?;
                args.delay_sweep_ms = value
                    .split(',')
                    .map(|v| {
                        v.parse()
                            .ok()
                            .filter(|ms| *ms > 0)
                            .ok_or_else(|| format!("bad delay {v:?}; need positive ms"))
                    })
                    .collect::<Result<_, _>>()?;
                if args.delay_sweep_ms.is_empty() {
                    return Err("--sweep-delay needs at least one value".to_string());
                }
            }
            "--batch-size" => {
                let value = iter.next().ok_or("--batch-size needs a value")?;
                args.batch_size = value
                    .parse()
                    .map_err(|_| format!("bad batch size {value:?}"))?;
            }
            "--replicas" => {
                let value = iter.next().ok_or("--replicas needs a value")?;
                args.sweep = value
                    .split(',')
                    .map(parse_replica_count)
                    .collect::<Result<_, _>>()?;
                if args.sweep.is_empty() {
                    return Err("--replicas needs at least one value".to_string());
                }
            }
            "--json-dir" => {
                args.json_dir = Some(iter.next().ok_or("--json-dir needs a value")?.clone());
            }
            value => {
                match positional {
                    0 => args.n = parse_replica_count(value)?,
                    1 => {
                        args.epochs = value
                            .parse()
                            .map_err(|_| format!("bad epoch count {value:?}"))?;
                    }
                    2 => {
                        args.scenario = match value {
                            "equivocate" => Scenario::Byzantine(Behavior::Equivocate),
                            "withhold" => Scenario::Byzantine(Behavior::WithholdVote),
                            "silent" => Scenario::Byzantine(Behavior::Silent),
                            "stall" => Scenario::Byzantine(Behavior::StallLeader),
                            "partition" => Scenario::Partition,
                            "lossy" => Scenario::Lossy,
                            "crash" => Scenario::Crash,
                            "restart" => Scenario::Restart,
                            other => {
                                return Err(format!(
                                    "unknown scenario {other:?}; use equivocate | withhold | \
                                     silent | stall | partition | lossy | crash | restart"
                                ))
                            }
                        };
                    }
                    _ => return Err(format!("unexpected argument {value:?}")),
                }
                positional += 1;
            }
        }
    }
    if args.sweep.is_empty() {
        args.sweep = vec![args.n];
    } else {
        args.n = args.sweep[0];
    }
    if matches!(args.scenario, Scenario::Crash | Scenario::Restart)
        && (args.json_dir.is_some() || args.sweep.len() > 1 || !args.delay_sweep_ms.is_empty())
    {
        return Err(
            "crash/restart are acceptance scenarios, not bench runs: they support none of \
             --json-dir / --replicas / --sweep-delay"
                .to_string(),
        );
    }
    if args.transport == TransportKind::Tcp {
        if args.scenario != Scenario::Honest {
            return Err(
                "--transport tcp runs the honest scenario only (fault injection is a \
                 simulator feature)"
                    .to_string(),
            );
        }
        if args.json_dir.is_some() || args.sweep.len() > 1 || !args.delay_sweep_ms.is_empty() {
            return Err(
                "--transport tcp is a parity check, not a bench run: it supports none of \
                 --json-dir / --replicas / --sweep-delay"
                    .to_string(),
            );
        }
    }
    Ok(args)
}

fn protocol_name(protocol: Protocol) -> &'static str {
    match protocol {
        Protocol::Streamlet => "streamlet",
        Protocol::Fbft => "fbft",
    }
}

fn scenario_name(scenario: Scenario) -> &'static str {
    match scenario {
        Scenario::Honest | Scenario::Byzantine(Behavior::Honest) => "honest",
        Scenario::Byzantine(Behavior::Equivocate) => "equivocate",
        Scenario::Byzantine(Behavior::WithholdVote) => "withhold",
        Scenario::Byzantine(Behavior::Silent) => "silent",
        Scenario::Byzantine(Behavior::StallLeader) => "stall",
        Scenario::Partition => "partition",
        Scenario::Lossy => "lossy",
        Scenario::Crash => "crash",
        Scenario::Restart => "restart",
    }
}

/// Seed for the lossy scenario's drop stream — fixed so CI runs are
/// reproducible; the test suite sweeps seeds.
const LOSSY_SEED: u64 = 7;

/// One simulated scenario, ready to run. A non-default `delay` must be
/// applied here, *before* the scenario presets: the partition heal time
/// and the lossy GST are derived from δ, so layering `with_delay` on an
/// already-configured scenario would silently change its shape.
fn configure(
    args: &Args,
    protocol: Protocol,
    n: usize,
    batch_size: u32,
    delay: Option<SimDuration>,
) -> SimConfig {
    let mut config = SimConfig::new(n, args.epochs)
        .with_protocol(protocol)
        .with_batch_size(batch_size)
        // Bench runs record phase timings and per-round latencies for
        // the JSON summary; interactive runs keep the free no-op path.
        .with_recording(args.json_dir.is_some());
    if let Some(delay) = delay {
        config = config.with_delay(delay);
    }
    match args.scenario {
        Scenario::Honest => {}
        Scenario::Byzantine(behavior) => {
            config = config.with_behavior((n - 1) as u16, behavior);
        }
        Scenario::Partition => {
            config = config
                .with_behavior(0, Behavior::Equivocate)
                .with_partitioned_straggler();
        }
        Scenario::Lossy => {
            config = config.with_lossy_links(LOSSY_SEED, 0.15);
        }
        // Crash scenarios need mid-run engine surgery, which a static
        // config cannot express; `run_crash_scenario` drives the runner
        // directly and never comes through here.
        Scenario::Crash | Scenario::Restart => unreachable!("crash scenarios bypass configure"),
    }
    config
}

/// Sanity-checks every run, batched or not: agreement, liveness, and
/// monotone commit strength — plus, for the partition scenario, the
/// block-sync acceptance criterion (the straggler actually recovered).
fn validate(report: &SimReport, scenario: Scenario) -> Result<(), String> {
    if !report.agreement() || report.safety_violations > 0 {
        return Err(format!(
            "replicas disagree (violations: {})",
            report.safety_violations
        ));
    }
    if report.max_committed() == 0 {
        return Err("nothing committed".to_string());
    }
    if !report.commit_strength_monotone() {
        return Err("commit strength regressed".to_string());
    }
    if scenario == Scenario::Partition {
        if report.sync_blocks_fetched == 0 {
            return Err("partition scenario fetched no blocks via sync".to_string());
        }
        if report.recovered_replicas == 0 {
            return Err("partitioned replica did not recover the committed prefix".to_string());
        }
    }
    Ok(())
}

/// One `sweep` array entry: a run at a replica count and network delay.
struct SweepEntry {
    n: usize,
    delay_us: u64,
    report: SimReport,
}

/// Renders the run summary as a flat JSON object (plus a small `sweep`
/// array). Written by hand — the offline dependency set has no serde, and
/// the schema is a dozen scalar fields.
fn summary_json(
    args: &Args,
    protocol: Protocol,
    cfg: ProtocolConfig,
    report: &SimReport,
    baseline: Option<&SimReport>,
    sweep: &[SweepEntry],
) -> String {
    let mut out = String::from("{\n");
    let mut field = |key: &str, value: String| {
        let _ = writeln!(out, "  \"{key}\": {value},");
    };
    field("protocol", format!("\"{}\"", protocol_name(protocol)));
    field("n", args.n.to_string());
    field("f", cfg.f().to_string());
    field("epochs", args.epochs.to_string());
    field("behavior", format!("\"{}\"", scenario_name(args.scenario)));
    field("batch_size", args.batch_size.to_string());
    field("committed_blocks", report.max_committed().to_string());
    field("txns_committed", report.txns_committed.to_string());
    field("txns_per_sec", format!("{:.3}", report.txns_per_sec()));
    field(
        "baseline_txns_committed",
        baseline.map_or("null".to_string(), |b| b.txns_committed.to_string()),
    );
    field(
        "baseline_txns_per_sec",
        baseline.map_or("null".to_string(), |b| format!("{:.3}", b.txns_per_sec())),
    );
    field(
        "batch_speedup",
        baseline.map_or("null".to_string(), |b| {
            format!(
                "{:.3}",
                report.txns_committed as f64 / (b.txns_committed.max(1)) as f64
            )
        }),
    );
    field("max_commit_level", report.max_commit_level().to_string());
    field("strength_ceiling", cfg.max_strength().to_string());
    field("agreement", report.agreement().to_string());
    field(
        "strength_monotone",
        report.commit_strength_monotone().to_string(),
    );
    field(
        "first_commit_us",
        report
            .first_commit_at(0)
            .map_or("null".to_string(), |t| t.as_micros().to_string()),
    );
    field("elapsed_us", report.elapsed.as_micros().to_string());
    field("messages", report.net.messages.to_string());
    field("bytes", report.net.bytes.to_string());
    field("dropped", report.net.dropped.to_string());
    field("sync_requests", report.sync_requests.to_string());
    field(
        "sync_blocks_fetched",
        report.sync_blocks_fetched.to_string(),
    );
    field("recovered_replicas", report.recovered_replicas.to_string());
    field("disconnects", report.net.disconnects.to_string());
    field("walk_steps", report.walk_steps.to_string());
    field("wal_fsyncs", report.wal_fsyncs.to_string());
    field("sig_verifications", report.sig_verifications.to_string());
    field("batch_verify_calls", report.batch_verify_calls.to_string());
    // Recorded counters and histogram digests, one scalar per line so the
    // gate's flat line scanner picks every one of them up individually.
    let flat = report.metrics.flat_fields();
    if !flat.is_empty() {
        let _ = writeln!(out, "  \"metrics\": {{");
        for (i, (name, value)) in flat.iter().enumerate() {
            let comma = if i + 1 == flat.len() { "" } else { "," };
            let _ = writeln!(out, "    \"{name}\": {value}{comma}");
        }
        let _ = writeln!(out, "  }},");
    }
    // The sweep grid: throughput scaling over replica counts (at the
    // default δ) and over network delays (at the headline n).
    let entries: Vec<String> = sweep
        .iter()
        .map(|e| {
            let r = &e.report;
            format!(
                "    {{\"n\": {}, \"delay_us\": {}, \"txns_committed\": {}, \"txns_per_sec\": {:.3}, \"elapsed_us\": {}, \"messages\": {}, \"sig_verifications\": {}, \"batch_verify_calls\": {}}}",
                e.n,
                e.delay_us,
                r.txns_committed,
                r.txns_per_sec(),
                r.elapsed.as_micros(),
                r.net.messages,
                r.sig_verifications,
                r.batch_verify_calls
            )
        })
        .collect();
    let _ = write!(out, "  \"sweep\": [\n{}\n  ]\n}}\n", entries.join(",\n"));
    out
}

fn run_protocol(args: &Args, protocol: Protocol) -> Result<(), String> {
    let cfg = ProtocolConfig::for_replicas(args.n);
    let config = configure(args, protocol, args.n, args.batch_size, None);
    let default_delay_us = config.delay.as_micros();
    println!(
        "running SFT-{}: n={} (f={}), {} {}, δ={}, quorum={}, 2f ceiling={}, batch={}",
        if protocol == Protocol::Fbft {
            "DiemBFT"
        } else {
            "Streamlet"
        },
        args.n,
        cfg.f(),
        args.epochs,
        if protocol == Protocol::Fbft {
            "rounds"
        } else {
            "epochs"
        },
        config.delay,
        cfg.quorum(),
        cfg.max_strength(),
        if args.batch_size == 0 {
            "synthetic".to_string()
        } else {
            args.batch_size.to_string()
        },
    );
    match args.scenario {
        Scenario::Honest => {}
        Scenario::Byzantine(behavior) => println!("replica {} is {:?}", args.n - 1, behavior),
        Scenario::Partition => println!(
            "replica {} partitioned until mid-run; replica 0 equivocates",
            args.n - 1
        ),
        Scenario::Lossy => println!("15% message loss (seed {LOSSY_SEED}) until GST at mid-run"),
        Scenario::Crash | Scenario::Restart => {
            unreachable!("crash scenarios run through run_crash_scenario")
        }
    }

    let report = config.run();
    validate(&report, args.scenario)?;

    println!(
        "\ncommitted chain (replica 0): {} blocks, {} txns ({:.1} txns/s virtual)",
        report.chains[0].len(),
        report.txns_committed,
        report.txns_per_sec(),
    );
    for (at, update) in &report.timelines[0] {
        println!(
            "  t={at}  block r={} h={}  -> level {} ({})",
            update.round(),
            update.height(),
            update.level(),
            if update.level() >= cfg.max_strength() {
                "strong commit, 2f ceiling"
            } else if update.level() as usize == cfg.f() {
                "standard commit"
            } else {
                "strengthened"
            }
        );
    }

    println!(
        "\nnetwork: {} messages, {} bytes, elapsed {}",
        report.net.messages, report.net.bytes, report.elapsed
    );
    println!(
        "signatures: {} verified across {} batch checks",
        report.sig_verifications, report.batch_verify_calls
    );
    if report.equivocators_detected > 0 {
        println!("equivocators detected: {}", report.equivocators_detected);
    }
    if report.net.dropped > 0 || report.sync_requests > 0 {
        println!(
            "faults: {} messages dropped; sync fetched {} blocks over {} requests, {} replica(s) recovered",
            report.net.dropped, report.sync_blocks_fetched, report.sync_requests, report.recovered_replicas
        );
    }

    // The batching bar: against an unbatched (batch-size 1) baseline at
    // equal simulated time, batched+pipelined runs must commit at least
    // twice the transactions. Skipped in synthetic-workload mode.
    let baseline = if args.batch_size >= 2 {
        let baseline = configure(args, protocol, args.n, 1, None).run();
        validate(&baseline, args.scenario)?;
        let speedup = report.txns_committed as f64 / baseline.txns_committed.max(1) as f64;
        println!(
            "batching: {} txns vs {} unbatched at equal simulated time ({speedup:.1}x)",
            report.txns_committed, baseline.txns_committed
        );
        if speedup < 2.0 {
            return Err(format!(
                "batching speedup {speedup:.2}x below the 2x bar (batched {} vs baseline {})",
                report.txns_committed, baseline.txns_committed
            ));
        }
        Some(baseline)
    } else {
        None
    };

    // The sweep grid (headline run reused): larger replica counts at the
    // configured batch size, then the network-δ axis at the headline n.
    let mut sweep: Vec<SweepEntry> = vec![SweepEntry {
        n: args.n,
        delay_us: default_delay_us,
        report: report.clone(),
    }];
    for &n in args.sweep.iter().skip(1) {
        let r = configure(args, protocol, n, args.batch_size, None).run();
        validate(&r, args.scenario)?;
        println!(
            "sweep n={n}: {} committed, {} txns ({:.1} txns/s), {} msgs, {} sig verifies, elapsed {}",
            r.max_committed(),
            r.txns_committed,
            r.txns_per_sec(),
            r.net.messages,
            r.sig_verifications,
            r.elapsed
        );
        sweep.push(SweepEntry {
            n,
            delay_us: default_delay_us,
            report: r,
        });
    }
    for &ms in &args.delay_sweep_ms {
        let delay = SimDuration::from_millis(ms);
        if delay.as_micros() == default_delay_us {
            continue; // the headline entry already covers the default δ
        }
        let r = configure(args, protocol, args.n, args.batch_size, Some(delay)).run();
        validate(&r, args.scenario)?;
        println!(
            "sweep δ={delay}: {} committed, {} txns ({:.1} txns/s), {} msgs, elapsed {}",
            r.max_committed(),
            r.txns_committed,
            r.txns_per_sec(),
            r.net.messages,
            r.elapsed
        );
        sweep.push(SweepEntry {
            n: args.n,
            delay_us: delay.as_micros(),
            report: r,
        });
    }

    println!(
        "\nOK: agreement holds, max commit level {}",
        report.max_commit_level()
    );

    if let Some(dir) = &args.json_dir {
        // Honest runs keep the historical file name; fault scenarios get
        // their own, so one artifact can carry the lossless baseline and
        // the catch-up-cost trajectory side by side and the gate compares
        // like with like (the file name pins the scenario, and the
        // in-file identity fields double-check it).
        let path = match scenario_name(args.scenario) {
            "honest" => format!("{dir}/BENCH_{}.json", protocol_name(protocol)),
            scenario => format!("{dir}/BENCH_{}_{scenario}.json", protocol_name(protocol)),
        };
        let json = summary_json(args, protocol, cfg, &report, baseline.as_ref(), &sweep);
        std::fs::write(&path, json).map_err(|e| format!("writing {path}: {e}"))?;
        println!("wrote {path}");
    }
    Ok(())
}

/// Round-trips `records` through the on-disk frame codec — encode, then
/// scan back — so the restart replay exercises exactly what a rebooted
/// process would read from `wal.log`, not the in-memory records the
/// runner collected.
fn through_wal_codec(records: &[WalRecord]) -> Result<Vec<WalRecord>, String> {
    let mut wal = Wal::new(MemSink::new(), 4);
    for record in records {
        wal.append(record).map_err(|e| format!("wal encode: {e}"))?;
    }
    wal.flush().map_err(|e| format!("wal flush: {e}"))?;
    let scan = scan_wal(wal.sink().bytes()).map_err(|e| format!("wal scan: {e}"))?;
    if scan.records.len() != records.len() {
        return Err(format!(
            "lossy wal round-trip: {} in, {} out",
            records.len(),
            scan.records.len()
        ));
    }
    Ok(scan.records)
}

/// The `crash` / `restart` scenarios: replica 0 is killed mid-run (its
/// engine — all in-memory state — dropped on the floor, exactly what
/// `kill -9` does to a process), and for `restart` later rebuilt from a
/// write-ahead-log replay through the real frame codec. This is the
/// simulated twin of the `crash-harness` binary's OS-process run, on the
/// CI scenario matrix where it is cheap enough to run everywhere.
fn run_crash_scenario(args: &Args, protocol: Protocol) -> Result<(), String> {
    let config = SimConfig::new(args.n, args.epochs)
        .with_protocol(protocol)
        .with_batch_size(args.batch_size);
    let restart = args.scenario == Scenario::Restart;
    println!(
        "running SFT-{} {}: n={}, {} {} — replica 0 killed mid-run{}",
        if protocol == Protocol::Fbft {
            "DiemBFT"
        } else {
            "Streamlet"
        },
        scenario_name(args.scenario),
        args.n,
        args.epochs,
        if protocol == Protocol::Fbft {
            "rounds"
        } else {
            "epochs"
        },
        if restart {
            ", later restarted from its WAL"
        } else {
            ", never restarted"
        },
    );
    match protocol {
        Protocol::Streamlet => {
            let period = config.delay * 2;
            let build = || build_streamlet_engines(&config, period);
            drive_crash(args, &config, build, RunPlan::UntilQuiescent, restart)
        }
        Protocol::Fbft => {
            let build = || build_fbft_engines(&config, config.base_timeout);
            let plan = RunPlan::PastRound(Round::new(args.epochs));
            drive_crash(args, &config, build, plan, restart)
        }
    }
}

/// The crash-scenario event schedule, shared by both protocols: run a
/// third of the schedule, kill replica 0, (optionally) restart it from a
/// codec-round-tripped WAL replay two periods later, then drive well past
/// the target with a sync drain so catch-up fetches and retries fire.
fn drive_crash<E: ReplicaEngine>(
    args: &Args,
    config: &SimConfig,
    build: impl Fn() -> Vec<E>,
    plan: RunPlan,
    restart: bool,
) -> Result<(), String> {
    let victim = 0usize;
    let period = config.delay * 2;
    let transport = SimTransport::new(SimNetwork::new(config.delay), args.n);
    let mut runner = EngineRunner::new(
        build(),
        vec![Behavior::Honest; args.n],
        transport,
        NoMischief,
        RunnerConfig {
            plan,
            horizon: SimTime::ZERO + config.run_horizon,
            drain_bound: config.drain_sync_bound,
            drain_step: config.delay,
        },
    );

    let crash_at = SimTime::ZERO + period * (args.epochs / 3).max(1);
    runner.run_until(crash_at);
    let pre_crash = runner.engine(victim).committed_chain().to_vec();
    let wal_records = runner.persisted(victim).len();
    if wal_records == 0 {
        return Err("victim crashed with an empty WAL; crash point too early".to_string());
    }
    runner.set_behavior(victim, Behavior::Silent);
    println!(
        "replica {victim} killed at {crash_at}: {wal_records} WAL records, {} committed blocks",
        pre_crash.len()
    );

    if restart {
        let restart_at = crash_at + period * 2;
        runner.run_until(restart_at);
        let replayed = through_wal_codec(runner.persisted(victim))?;
        let mut fresh = build().remove(victim);
        for record in &replayed {
            fresh.restore(record, restart_at);
        }
        runner.replace_engine(victim, fresh);
        runner.set_behavior(victim, Behavior::Honest);
        println!(
            "replica {victim} restarted at {restart_at}: {} records replayed through the \
             frame codec",
            replayed.len()
        );
    }

    // Generous tail: self-pacing fbft rounds stall for a timeout whenever
    // the dead (or catching-up) victim holds the leader slot, so give the
    // survivors room; Streamlet's epoch clock simply runs out. Driving in
    // δ steps fires the victim's sync polls and retries along the way.
    let end = match plan {
        RunPlan::UntilQuiescent => SimTime::ZERO + period * (args.epochs + 2),
        RunPlan::PastRound(_) => crash_at + config.base_timeout * 2 * (args.epochs + 6),
    };
    let mut at = runner.transport().now();
    while at < end {
        at += config.delay;
        runner.run_until(at);
    }
    for step in 1..=60u64 {
        runner.run_until(end + config.delay * step);
    }

    let report = runner.report();
    if !report.agreement() || report.safety_violations > 0 {
        return Err(format!(
            "committed prefixes diverge after the crash (violations: {})",
            report.safety_violations
        ));
    }
    if report.equivocators_detected > 0 {
        return Err(format!(
            "{} equivocator(s) observed — a recovered replica contradicted itself",
            report.equivocators_detected
        ));
    }
    let survivor_best = report
        .chains
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != victim)
        .map(|(_, c)| c.len())
        .max()
        .unwrap_or(0);
    if survivor_best <= pre_crash.len() {
        return Err(format!(
            "survivors made no progress past the crash ({survivor_best} vs {} pre-crash)",
            pre_crash.len()
        ));
    }
    let victim_chain = &report.chains[victim];
    if victim_chain.len() < pre_crash.len() || victim_chain[..pre_crash.len()] != pre_crash[..] {
        return Err("the victim's committed prefix rolled back".to_string());
    }
    if restart && victim_chain.len() <= pre_crash.len() {
        return Err(format!(
            "restarted replica made no progress past its pre-crash prefix ({} blocks)",
            pre_crash.len()
        ));
    }
    println!(
        "\nOK: agreement holds; survivors reached {survivor_best} blocks{}",
        if restart {
            format!(
                "; the restarted replica kept {} pre-crash blocks and committed {} more",
                pre_crash.len(),
                report.chains[victim].len() - pre_crash.len()
            )
        } else {
            format!(
                "; the dead replica's chain froze at {} blocks",
                report.chains[victim].len()
            )
        }
    );
    Ok(())
}

/// Runs the honest scenario over a loopback TCP mesh — the same engines
/// the simulator builds, over real sockets, via [`sft_sim::run_over_tcp`]
/// — and asserts the committed prefix matches the deterministic sim
/// run's. This is the acceptance check that the replica runtime is
/// genuinely transport-agnostic.
fn run_tcp_protocol(args: &Args, protocol: Protocol) -> Result<(), String> {
    let config = configure(args, protocol, args.n, args.batch_size, None);
    println!(
        "running SFT-{} over loopback TCP: n={}, {} {}, batch={} (sim reference first)",
        if protocol == Protocol::Fbft {
            "DiemBFT"
        } else {
            "Streamlet"
        },
        args.n,
        args.epochs,
        if protocol == Protocol::Fbft {
            "rounds"
        } else {
            "epochs"
        },
        args.batch_size,
    );

    let sim_report = config.clone().run();
    validate(&sim_report, args.scenario)?;

    // One process hosts every replica, so per-epoch engine work grows
    // with n while the wall-clock epoch does not: widen the pacing unit
    // for large meshes or proposals stop landing inside their epochs.
    let mut pacing = TcpPacing::default();
    pacing.delta = pacing.delta * (1 + args.n as u64 / 8);
    let tcp_report = run_over_tcp(&config, pacing).map_err(|e| format!("tcp mesh: {e}"))?;

    if !tcp_report.agreement() || tcp_report.safety_violations > 0 {
        return Err("tcp replicas disagree".to_string());
    }
    if tcp_report.max_committed() == 0 {
        return Err("tcp run committed nothing".to_string());
    }
    tcp_report
        .check_committed_prefix_of(&sim_report)
        .map_err(|e| format!("tcp vs sim: {e}"))?;
    println!(
        "tcp: {} blocks / {} txns committed in {} wall ({} messages, {} bytes); \
         sim reference: {} blocks — prefixes match on all {} replicas",
        tcp_report.max_committed(),
        tcp_report.txns_committed,
        tcp_report.elapsed,
        tcp_report.net.messages,
        tcp_report.net.bytes,
        sim_report.max_committed(),
        args.n,
    );
    println!("OK: loopback TCP commits the sim run's prefix");
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    for (i, &protocol) in args.protocols.iter().enumerate() {
        if i > 0 {
            println!("\n{}\n", "=".repeat(64));
        }
        let outcome = match (args.transport, args.scenario) {
            (TransportKind::Sim, Scenario::Crash | Scenario::Restart) => {
                run_crash_scenario(&args, protocol)
            }
            (TransportKind::Sim, _) => run_protocol(&args, protocol),
            (TransportKind::Tcp, _) => run_tcp_protocol(&args, protocol),
        };
        if let Err(message) = outcome {
            eprintln!("FAIL ({}): {message}", protocol_name(protocol));
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
