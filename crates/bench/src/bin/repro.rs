//! End-to-end reproduction driver: runs one simulated SFT-Streamlet
//! consensus instance and prints what the protocol did.
//!
//! ```text
//! cargo run -p sft-bench --bin repro [-- n epochs [byzantine]]
//!   n         replica count           (default 4)
//!   epochs    epochs to simulate      (default 10)
//!   byzantine equivocate | withhold | silent — behavior of replica n-1
//! ```

use std::process::ExitCode;

use sft_core::ProtocolConfig;
use sft_sim::{Behavior, SimConfig};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let n: usize = match args.first() {
        None => 4,
        Some(a) => match a.parse() {
            Ok(n) if n >= 4 => n,
            _ => {
                eprintln!("bad replica count {a:?}; need an integer >= 4");
                return ExitCode::FAILURE;
            }
        },
    };
    let epochs: u64 = match args.get(1) {
        None => 10,
        Some(a) => match a.parse() {
            Ok(e) => e,
            Err(_) => {
                eprintln!("bad epoch count {a:?}; need an integer");
                return ExitCode::FAILURE;
            }
        },
    };
    let byzantine = match args.get(2).map(String::as_str) {
        None => None,
        Some("equivocate") => Some(Behavior::Equivocate),
        Some("withhold") => Some(Behavior::WithholdVote),
        Some("silent") => Some(Behavior::Silent),
        Some(other) => {
            eprintln!("unknown behavior {other:?}; use equivocate | withhold | silent");
            return ExitCode::FAILURE;
        }
    };

    let cfg = ProtocolConfig::for_replicas(n);
    let mut config = SimConfig::new(n, epochs);
    if let Some(behavior) = byzantine {
        config = config.with_behavior((n - 1) as u16, behavior);
        println!("replica {} is {:?}", n - 1, behavior);
    }
    println!(
        "running SFT-Streamlet: n={n} (f={}), {epochs} epochs, δ={}, quorum={}, 2f ceiling={}",
        cfg.f(),
        config.delay,
        cfg.quorum(),
        cfg.max_strength(),
    );

    let report = config.run();

    println!(
        "\ncommitted chain (replica 0): {} blocks",
        report.chains[0].len()
    );
    for (at, update) in &report.timelines[0] {
        println!(
            "  t={at}  block r={} h={}  -> level {} ({})",
            update.round(),
            update.height(),
            update.level(),
            if update.level() >= cfg.max_strength() {
                "strong commit, 2f ceiling"
            } else if update.level() as usize == cfg.f() {
                "standard commit"
            } else {
                "strengthened"
            }
        );
    }

    println!(
        "\nnetwork: {} messages, {} bytes, elapsed {}",
        report.net.messages, report.net.bytes, report.elapsed
    );
    if report.equivocators_detected > 0 {
        println!("equivocators detected: {}", report.equivocators_detected);
    }

    if !report.agreement() || report.safety_violations > 0 {
        eprintln!(
            "FAIL: replicas disagree (violations: {})",
            report.safety_violations
        );
        return ExitCode::FAILURE;
    }
    if report.max_committed() == 0 {
        eprintln!("FAIL: nothing committed");
        return ExitCode::FAILURE;
    }
    println!(
        "\nOK: agreement holds, max commit level {}",
        report.max_commit_level()
    );
    ExitCode::SUCCESS
}
