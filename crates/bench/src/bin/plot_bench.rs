//! `plot-bench`: renders bench-trajectory SVG charts from `BENCH_*.json`
//! snapshot directories.
//!
//! ```text
//! plot-bench --out DIR SNAPSHOT_DIR [SNAPSHOT_DIR ...]
//! ```
//!
//! Snapshot directories are given in run order (oldest first — e.g. the
//! restored baseline artifact, then the current run's summaries). Each
//! gated metric present in at least one summary becomes
//! `<out>/<metric>.svg` with one curve per summary file and one point
//! per snapshot. See `sft_bench::plot` for the chart format.

use std::path::PathBuf;
use std::process::ExitCode;

use sft_bench::plot::{charts, load_snapshot, Snapshot};

fn parse_args() -> Result<(PathBuf, Vec<PathBuf>), String> {
    let mut out: Option<PathBuf> = None;
    let mut dirs: Vec<PathBuf> = Vec::new();
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let mut iter = raw.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--out" => {
                let v = iter.next().ok_or("--out needs a value")?;
                out = Some(v.into());
            }
            other if other.starts_with("--") => {
                return Err(format!("unexpected argument {other:?}"));
            }
            dir => dirs.push(dir.into()),
        }
    }
    let out = out.ok_or("--out is required")?;
    if dirs.is_empty() {
        return Err("need at least one snapshot directory".to_string());
    }
    Ok((out, dirs))
}

fn main() -> ExitCode {
    let (out, dirs) = match parse_args() {
        Ok(parsed) => parsed,
        Err(message) => {
            eprintln!("plot-bench: {message}");
            eprintln!("usage: plot-bench --out DIR SNAPSHOT_DIR [SNAPSHOT_DIR ...]");
            return ExitCode::FAILURE;
        }
    };

    let snapshots: Vec<Snapshot> = dirs
        .iter()
        .map(|dir| {
            let label = dir
                .file_name()
                .and_then(|n| n.to_str())
                .unwrap_or("run")
                .to_string();
            load_snapshot(dir, &label)
        })
        .collect();
    let loaded: usize = snapshots.iter().map(|s| s.summaries.len()).sum();
    if loaded == 0 {
        eprintln!("plot-bench: no BENCH_*.json summaries found in the given directories");
        return ExitCode::FAILURE;
    }

    if let Err(e) = std::fs::create_dir_all(&out) {
        eprintln!("plot-bench: creating {}: {e}", out.display());
        return ExitCode::FAILURE;
    }
    let rendered = charts(&snapshots);
    for (name, svg) in &rendered {
        let path = out.join(format!("{name}.svg"));
        if let Err(e) = std::fs::write(&path, svg) {
            eprintln!("plot-bench: writing {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }
    println!(
        "plot-bench: {} charts from {loaded} summaries across {} runs -> {}",
        rendered.len(),
        dirs.len(),
        out.display()
    );
    ExitCode::SUCCESS
}
