//! The perf-regression gate CLI over `BENCH_*.json` summaries.
//!
//! ```text
//! bench_gate BASELINE_DIR NEW_DIR [--tolerance FRACTION]
//! ```
//!
//! Compares every `BENCH_*.json` in `NEW_DIR` against the file of the same
//! name in `BASELINE_DIR` using [`sft_bench::gate::compare`]: commit
//! latency, throughput, and message/byte complexity must stay within the
//! tolerance band (default 0.05 = 5%; the gated metrics are deterministic virtual numbers, so slack is for intentional shifts, not noise). Summaries with no baseline
//! counterpart seed the baseline and pass — that is the first-run path
//! `scripts/bench_gate` relies on. Exits non-zero on any regression.

use std::path::Path;
use std::process::ExitCode;

use sft_bench::gate::{compare, Summary};

struct Args {
    baseline_dir: String,
    new_dir: String,
    tolerance: f64,
}

fn parse_args() -> Result<Args, String> {
    let mut positional = Vec::new();
    let mut tolerance = 0.05;
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let mut iter = raw.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--tolerance" => {
                let value = iter.next().ok_or("--tolerance needs a value")?;
                tolerance = value
                    .parse::<f64>()
                    .ok()
                    .filter(|t| (0.0..1.0).contains(t))
                    .ok_or_else(|| format!("bad tolerance {value:?}; need 0 <= t < 1"))?;
            }
            other if other.starts_with("--") => return Err(format!("unknown flag {other:?}")),
            other => positional.push(other.to_string()),
        }
    }
    let [baseline_dir, new_dir] = positional.try_into().map_err(|extra: Vec<String>| {
        format!(
            "expected BASELINE_DIR NEW_DIR, got {} positional args",
            extra.len()
        )
    })?;
    Ok(Args {
        baseline_dir,
        new_dir,
        tolerance,
    })
}

/// The `BENCH_*.json` files directly inside `dir`, sorted by name.
fn summary_files(dir: &Path) -> Result<Vec<String>, String> {
    let mut names: Vec<String> = std::fs::read_dir(dir)
        .map_err(|e| format!("reading {}: {e}", dir.display()))?
        .filter_map(|entry| entry.ok())
        .filter_map(|entry| entry.file_name().into_string().ok())
        .filter(|name| name.starts_with("BENCH_") && name.ends_with(".json"))
        .collect();
    names.sort();
    Ok(names)
}

fn run() -> Result<bool, String> {
    let args = parse_args()?;
    let new_dir = Path::new(&args.new_dir);
    let baseline_dir = Path::new(&args.baseline_dir);
    let names = summary_files(new_dir)?;
    if names.is_empty() {
        return Err(format!("no BENCH_*.json files in {}", new_dir.display()));
    }
    let mut all_passed = true;
    for name in names {
        let new_path = new_dir.join(&name);
        let new_json = std::fs::read_to_string(&new_path)
            .map_err(|e| format!("reading {}: {e}", new_path.display()))?;
        let new_summary = Summary::parse(&new_json);
        let baseline_path = baseline_dir.join(&name);
        let Ok(baseline_json) = std::fs::read_to_string(&baseline_path) else {
            println!(
                "{name}: no baseline at {} — seeding",
                baseline_path.display()
            );
            continue;
        };
        let result = compare(
            &Summary::parse(&baseline_json),
            &new_summary,
            args.tolerance,
        );
        println!(
            "{name}: {} (tolerance {:.0}%)",
            if result.passed() { "PASS" } else { "FAIL" },
            args.tolerance * 100.0
        );
        for note in &result.notes {
            println!("  {note}");
        }
        for regression in &result.regressions {
            println!("  REGRESSION: {regression}");
        }
        all_passed &= result.passed();
    }
    Ok(all_passed)
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => {
            eprintln!("bench gate failed: performance regressed beyond tolerance");
            ExitCode::FAILURE
        }
        Err(message) => {
            eprintln!("bench_gate: {message}");
            eprintln!("usage: bench_gate BASELINE_DIR NEW_DIR [--tolerance FRACTION]");
            ExitCode::FAILURE
        }
    }
}
