//! # sft-bench
//!
//! Micro-benchmarks and reproduction drivers for the SFT stack.
//!
//! The approved offline dependency set has no benchmarking crate, so this
//! crate ships its own [`Harness`]: a criterion-style timing loop with
//! warmup, automatic iteration calibration, and median-of-samples
//! reporting. The `benches/` directory holds the actual benchmarks (all
//! declared `harness = false` and driven by this harness), and
//! `src/bin/repro.rs` runs one simulated consensus instance end-to-end:
//!
//! ```text
//! cargo bench -p sft-bench               # all microbenchmarks
//! cargo bench -p sft-bench --bench fig8  # one experiment
//! cargo run -p sft-bench --bin repro     # end-to-end consensus run
//! ```

#![deny(missing_docs)]

pub mod gate;
pub mod node;
pub mod plot;

use std::hint::black_box;
use std::time::{Duration, Instant};

/// One benchmark's timing summary, in nanoseconds per iteration.
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// Benchmark name.
    pub name: String,
    /// Iterations per sample after calibration.
    pub iters_per_sample: u64,
    /// Median ns/iteration across samples.
    pub median_ns: f64,
    /// Minimum ns/iteration across samples.
    pub min_ns: f64,
    /// Mean ns/iteration across samples.
    pub mean_ns: f64,
}

impl BenchResult {
    /// Iterations per second implied by the median sample.
    pub fn throughput(&self) -> f64 {
        1e9 / self.median_ns
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// A minimal criterion-style benchmark harness.
///
/// Each benchmark is calibrated so one sample runs for roughly the sample
/// time budget (20 ms by default), then timed over a fixed number of
/// samples (20 by default); the median per-iteration time is the headline
/// number (robust to noise spikes on shared machines).
///
/// # Examples
///
/// ```
/// use sft_bench::Harness;
///
/// let mut harness = Harness::new("example").quick();
/// let result = harness.bench("add", || std::hint::black_box(2u64) + 2);
/// assert!(result.median_ns >= 0.0);
/// ```
pub struct Harness {
    suite: String,
    samples: u32,
    sample_time: Duration,
    results: Vec<BenchResult>,
}

impl Harness {
    /// Creates a harness with the default 20 samples × 20 ms profile.
    pub fn new(suite: &str) -> Self {
        println!("== {suite} ==");
        Self {
            suite: suite.to_string(),
            samples: 20,
            sample_time: Duration::from_millis(20),
            results: Vec::new(),
        }
    }

    /// Shrinks the profile to 5 samples × 2 ms — for doctests and smoke
    /// runs where precision is irrelevant.
    pub fn quick(mut self) -> Self {
        self.samples = 5;
        self.sample_time = Duration::from_millis(2);
        self
    }

    /// Times `f`, prints one summary line, and records the result. The
    /// closure's return value is passed through [`black_box`] so the
    /// optimizer cannot delete the work.
    pub fn bench<T>(&mut self, name: &str, mut f: impl FnMut() -> T) -> BenchResult {
        // Warmup + calibration: grow the iteration count until one batch
        // fills the sample budget.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= self.sample_time || iters >= 1 << 30 {
                break;
            }
            // Aim directly for the budget, with a growth cap.
            let scale = self.sample_time.as_secs_f64() / elapsed.as_secs_f64().max(1e-9);
            iters = (iters as f64 * scale.clamp(1.5, 100.0)).ceil() as u64;
        }

        let mut per_iter: Vec<f64> = (0..self.samples)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..iters {
                    black_box(f());
                }
                start.elapsed().as_nanos() as f64 / iters as f64
            })
            .collect();
        per_iter.sort_by(|a, b| a.total_cmp(b));

        let median = per_iter[per_iter.len() / 2];
        let result = BenchResult {
            name: name.to_string(),
            iters_per_sample: iters,
            median_ns: median,
            min_ns: per_iter[0],
            mean_ns: per_iter.iter().sum::<f64>() / per_iter.len() as f64,
        };
        println!(
            "  {:<40} {:>12}/iter  (min {}, {:.0} iters/sample)",
            result.name,
            format_ns(result.median_ns),
            format_ns(result.min_ns),
            result.iters_per_sample
        );
        self.results.push(result.clone());
        result
    }

    /// All results so far.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Prints a closing line. Call at the end of a bench binary.
    pub fn finish(self) {
        println!("== {}: {} benchmarks ==", self.suite, self.results.len());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_measures_something() {
        let mut harness = Harness::new("test").quick();
        let result = harness.bench("sum", || (0..100u64).sum::<u64>());
        assert!(result.median_ns > 0.0);
        assert!(result.min_ns <= result.median_ns);
        assert!(result.throughput() > 0.0);
        assert_eq!(harness.results().len(), 1);
        harness.finish();
    }

    #[test]
    fn format_spans_units() {
        assert!(format_ns(5.0).ends_with("ns"));
        assert!(format_ns(5_000.0).ends_with("µs"));
        assert!(format_ns(5_000_000.0).ends_with("ms"));
        assert!(format_ns(5e9).ends_with(" s"));
    }
}
