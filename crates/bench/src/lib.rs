//! placeholder
