//! Bench-trajectory plotting: turns a sequence of `BENCH_*.json`
//! snapshot directories into hand-rolled SVG line charts.
//!
//! CI archives the `repro` binary's summaries on every run
//! (`bench-summaries` artifacts) and `scripts/bench_gate` restores the
//! previous run's copy; `scripts/plot_bench` feeds both directories —
//! baseline first, current run last — through [`charts`] and uploads the
//! SVGs, so a reviewer sees each gated metric's trajectory (commit
//! latency, throughput, recorded phase p99s) as a curve instead of a
//! pass/fail verdict. The renderer is deliberately dependency-free: the
//! offline set has no plotting crate, and the handful of SVG elements a
//! polyline chart needs (axes, ticks, paths, labels) fit in a string
//! builder.

use std::fmt::Write as _;

use crate::gate::Summary;

/// The summary fields plotted, one chart each. Metrics missing from every
/// snapshot (e.g. phase timings before recording shipped) produce no
/// chart rather than an empty one.
pub const PLOT_METRICS: &[&str] = &[
    "first_commit_us",
    "txns_per_sec",
    "messages",
    "bytes",
    "round_commit_us_p50",
    "round_commit_us_p99",
    "consensus_qc_us_p99",
    "phase_on_envelope_ns_p99",
    "phase_persist_ns_p99",
    "phase_route_ns_p99",
    "phase_batch_verify_ns_p99",
    "walk_steps",
    "sig_verifications",
    "batch_verify_calls",
];

/// One named curve: `(x, y)` points in draw order.
#[derive(Clone, Debug)]
pub struct Series {
    /// Legend label (the summary file stem, e.g. `BENCH_fbft_lossy`).
    pub label: String,
    /// Points in run order; x is the run index.
    pub points: Vec<(f64, f64)>,
}

/// One run snapshot: a label (directory name or run id) plus the parsed
/// summaries it held, keyed by file stem.
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    /// Where the snapshot came from, used as the x-axis tick label.
    pub label: String,
    /// `(file stem, parsed summary)` pairs, e.g. `("BENCH_fbft", ...)`.
    pub summaries: Vec<(String, Summary)>,
}

/// Builds one chart per [`PLOT_METRICS`] entry across `snapshots` (run
/// order = slice order): each summary stem contributes a series, each
/// snapshot one point. Returns `(chart name, svg body)` pairs; metrics
/// with no data anywhere are omitted.
pub fn charts(snapshots: &[Snapshot]) -> Vec<(String, String)> {
    let mut out = Vec::new();
    for metric in PLOT_METRICS {
        let mut series: Vec<Series> = Vec::new();
        for (run, snapshot) in snapshots.iter().enumerate() {
            for (stem, summary) in &snapshot.summaries {
                let Some(value) = summary.number(metric) else {
                    continue;
                };
                match series.iter_mut().find(|s| s.label == *stem) {
                    Some(s) => s.points.push((run as f64, value)),
                    None => series.push(Series {
                        label: stem.clone(),
                        points: vec![(run as f64, value)],
                    }),
                }
            }
        }
        if series.is_empty() {
            continue;
        }
        let ticks: Vec<String> = snapshots.iter().map(|s| s.label.clone()).collect();
        out.push(((*metric).to_string(), render_chart(metric, &ticks, &series)));
    }
    out
}

/// Fixed qualitative palette; series past its length cycle.
const PALETTE: &[&str] = &[
    "#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b", "#17becf", "#7f7f7f",
];

const WIDTH: f64 = 720.0;
const HEIGHT: f64 = 420.0;
const MARGIN_L: f64 = 84.0;
const MARGIN_R: f64 = 24.0;
const MARGIN_T: f64 = 40.0;
const MARGIN_B: f64 = 56.0;

/// Formats an axis value compactly (`1.2M`, `340k`, `0.85`).
fn format_value(v: f64) -> String {
    let a = v.abs();
    if a >= 1e9 {
        format!("{:.2}G", v / 1e9)
    } else if a >= 1e6 {
        format!("{:.2}M", v / 1e6)
    } else if a >= 1e3 {
        format!("{:.1}k", v / 1e3)
    } else if a >= 1.0 || a == 0.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}

/// Renders one SVG line chart: `title` on top, one x tick per entry of
/// `x_ticks` (run labels), y scaled to the series' range with zero
/// clamped in when it is near, a polyline plus point markers per series,
/// and a legend. Always returns a complete standalone `<svg>` document.
pub fn render_chart(title: &str, x_ticks: &[String], series: &[Series]) -> String {
    let plot_w = WIDTH - MARGIN_L - MARGIN_R;
    let plot_h = HEIGHT - MARGIN_T - MARGIN_B;

    let xs: Vec<f64> = series
        .iter()
        .flat_map(|s| s.points.iter().map(|p| p.0))
        .collect();
    let ys: Vec<f64> = series
        .iter()
        .flat_map(|s| s.points.iter().map(|p| p.1))
        .collect();
    let (x_min, x_max) = bounds(&xs, 0.0);
    // Anchor the y axis at zero when the data lives near it; pad the top.
    let (y_lo, y_hi) = bounds(&ys, 0.05);
    let y_min = if y_lo > 0.0 && y_lo < y_hi * 0.5 {
        0.0
    } else {
        y_lo
    };
    let y_max = if y_hi > y_min { y_hi } else { y_min + 1.0 };
    let x_span = (x_max - x_min).max(1.0);

    let px = |x: f64| MARGIN_L + (x - x_min) / x_span * plot_w;
    let py = |y: f64| MARGIN_T + (1.0 - (y - y_min) / (y_max - y_min)) * plot_h;

    let mut svg = String::new();
    let _ = writeln!(
        svg,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" height="{HEIGHT}" viewBox="0 0 {WIDTH} {HEIGHT}" font-family="monospace" font-size="12">"#
    );
    let _ = writeln!(
        svg,
        r#"<rect width="{WIDTH}" height="{HEIGHT}" fill="white"/>"#
    );
    let _ = writeln!(
        svg,
        r#"<text x="{}" y="22" font-size="15" text-anchor="middle">{}</text>"#,
        WIDTH / 2.0,
        escape(title)
    );

    // Horizontal gridlines + y tick labels.
    for i in 0..=4u32 {
        let y = y_min + (y_max - y_min) * f64::from(i) / 4.0;
        let yy = py(y);
        let _ = writeln!(
            svg,
            r##"<line x1="{MARGIN_L}" y1="{yy:.1}" x2="{:.1}" y2="{yy:.1}" stroke="#dddddd"/>"##,
            WIDTH - MARGIN_R
        );
        let _ = writeln!(
            svg,
            r#"<text x="{:.1}" y="{:.1}" text-anchor="end">{}</text>"#,
            MARGIN_L - 8.0,
            yy + 4.0,
            format_value(y)
        );
    }
    // X ticks: one per run label.
    for (i, label) in x_ticks.iter().enumerate() {
        let xx = px(i as f64);
        let _ = writeln!(
            svg,
            r##"<line x1="{xx:.1}" y1="{:.1}" x2="{xx:.1}" y2="{:.1}" stroke="#dddddd"/>"##,
            MARGIN_T,
            HEIGHT - MARGIN_B
        );
        let _ = writeln!(
            svg,
            r#"<text x="{xx:.1}" y="{:.1}" text-anchor="middle">{}</text>"#,
            HEIGHT - MARGIN_B + 18.0,
            escape(label)
        );
    }
    // Axes.
    let _ = writeln!(
        svg,
        r#"<line x1="{MARGIN_L}" y1="{MARGIN_T}" x2="{MARGIN_L}" y2="{:.1}" stroke="black"/>"#,
        HEIGHT - MARGIN_B
    );
    let _ = writeln!(
        svg,
        r#"<line x1="{MARGIN_L}" y1="{:.1}" x2="{:.1}" y2="{:.1}" stroke="black"/>"#,
        HEIGHT - MARGIN_B,
        WIDTH - MARGIN_R,
        HEIGHT - MARGIN_B
    );

    // Series: polyline + markers, legend entry per series.
    for (i, s) in series.iter().enumerate() {
        let color = PALETTE[i % PALETTE.len()];
        if s.points.len() > 1 {
            let path: Vec<String> = s
                .points
                .iter()
                .map(|(x, y)| format!("{:.1},{:.1}", px(*x), py(*y)))
                .collect();
            let _ = writeln!(
                svg,
                r#"<polyline points="{}" fill="none" stroke="{color}" stroke-width="2"/>"#,
                path.join(" ")
            );
        }
        for (x, y) in &s.points {
            let _ = writeln!(
                svg,
                r#"<circle cx="{:.1}" cy="{:.1}" r="3.5" fill="{color}"/>"#,
                px(*x),
                py(*y)
            );
        }
        let ly = MARGIN_T + 6.0 + i as f64 * 16.0;
        let _ = writeln!(
            svg,
            r#"<rect x="{:.1}" y="{:.1}" width="10" height="10" fill="{color}"/>"#,
            MARGIN_L + 10.0,
            ly
        );
        let _ = writeln!(
            svg,
            r#"<text x="{:.1}" y="{:.1}">{}</text>"#,
            MARGIN_L + 26.0,
            ly + 9.0,
            escape(&s.label)
        );
    }
    svg.push_str("</svg>\n");
    svg
}

/// `(min, max)` of `values` with relative `pad` applied above; `(0, 1)`
/// for an empty slice.
fn bounds(values: &[f64], pad: f64) -> (f64, f64) {
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for v in values {
        min = min.min(*v);
        max = max.max(*v);
    }
    if !min.is_finite() || !max.is_finite() {
        return (0.0, 1.0);
    }
    let span = (max - min).abs().max(max.abs() * 0.01).max(1e-9);
    (min, max + span * pad)
}

/// Minimal XML text escaping for labels.
fn escape(text: &str) -> String {
    text.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

/// Loads every `BENCH_*.json` in `dir` into a [`Snapshot`] labeled
/// `label`. Missing directories yield an empty snapshot (a run whose
/// artifact never existed still occupies its slot on the x axis).
pub fn load_snapshot(dir: &std::path::Path, label: &str) -> Snapshot {
    let mut summaries = Vec::new();
    if let Ok(entries) = std::fs::read_dir(dir) {
        for entry in entries.flatten() {
            let path = entry.path();
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            if !name.starts_with("BENCH_") || !name.ends_with(".json") {
                continue;
            }
            if let Ok(body) = std::fs::read_to_string(&path) {
                let stem = name.trim_end_matches(".json").to_string();
                summaries.push((stem, Summary::parse(&body)));
            }
        }
    }
    summaries.sort_by(|a, b| a.0.cmp(&b.0));
    Snapshot {
        label: label.to_string(),
        summaries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot(label: &str, txns: f64) -> Snapshot {
        Snapshot {
            label: label.to_string(),
            summaries: vec![(
                "BENCH_fbft".to_string(),
                Summary::parse(&format!(
                    "{{\n  \"txns_per_sec\": {txns},\n  \"first_commit_us\": 400000,\n  \"messages\": 150\n}}\n"
                )),
            )],
        }
    }

    #[test]
    fn charts_cover_present_metrics_only() {
        let charts = charts(&[snapshot("base", 1000.0), snapshot("new", 1100.0)]);
        let names: Vec<&str> = charts.iter().map(|(n, _)| n.as_str()).collect();
        assert!(names.contains(&"txns_per_sec"));
        assert!(names.contains(&"first_commit_us"));
        assert!(
            !names.contains(&"phase_persist_ns_p99"),
            "absent metrics produce no chart"
        );
    }

    #[test]
    fn rendered_svg_is_well_formed_and_plots_the_series() {
        let charts = charts(&[snapshot("base", 1000.0), snapshot("new", 1100.0)]);
        let (_, svg) = charts
            .iter()
            .find(|(n, _)| n == "txns_per_sec")
            .expect("txns chart");
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert!(svg.contains("<polyline"), "two runs draw a line");
        assert!(svg.contains("BENCH_fbft"), "legend names the series");
        assert!(svg.matches("<circle").count() >= 2, "one marker per run");
    }

    #[test]
    fn single_snapshot_draws_markers_without_a_line() {
        let charts = charts(&[snapshot("only", 1000.0)]);
        let (_, svg) = &charts[0];
        assert!(!svg.contains("<polyline"));
        assert!(svg.contains("<circle"));
    }

    #[test]
    fn empty_input_yields_no_charts() {
        assert!(charts(&[]).is_empty());
        assert!(charts(&[Snapshot::default()]).is_empty());
    }

    #[test]
    fn labels_are_escaped() {
        let series = [Series {
            label: "a<&>b".to_string(),
            points: vec![(0.0, 1.0)],
        }];
        let svg = render_chart("t<&>t", &["x<y".to_string()], &series);
        assert!(svg.contains("a&lt;&amp;&gt;b"));
        assert!(svg.contains("t&lt;&amp;&gt;t"));
        assert!(!svg.contains("a<&>b"));
    }
}
