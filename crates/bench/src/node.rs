//! The standalone replica runtime behind the `sft-node` binary: one
//! engine, one [`NodeTransport`] endpoint, one write-ahead log.
//!
//! This is the deployment shape the paper assumes — `n` independent
//! processes that only share a network — assembled from the exact pieces
//! the simulator tests: the engines come from the same builders
//! ([`build_streamlet_engines`] / [`build_fbft_engines`]), the loop
//! mirrors the generic `EngineRunner` event loop, and durability follows
//! the same write-ahead discipline: every record in
//! [`EngineStep::persist`] is appended to the log *before* any message it
//! justifies is routed. On startup the node replays `wal.log` into a
//! fresh engine, so a `kill -9` + restart resumes exactly the pre-crash
//! voting history — never equivocating against its former self.
//!
//! ## Data directory
//!
//! ```text
//! <data-dir>/wal.log      append-only record log (truncated to the last
//!                         complete frame on recovery)
//! <data-dir>/commit.out   committed chain, one block hash per line,
//!                         written atomically at exit
//! ```

use std::collections::{HashMap, VecDeque};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use sft_core::{DurableWal, EngineStep, GroupCommitWal, ReplicaEngine, Route, WalRecord, WalStore};
use sft_network::{NodeTransport, ProtocolTag, Transport};
use sft_obs::{names, PhaseTimer, Recorder, Registry, SharedRecorder, TraceEvent, TraceSink};
use sft_sim::{build_fbft_engines, build_streamlet_engines, Protocol, SimConfig};
use sft_types::{
    ClientFrame, Decode, Encode, PersistSeq, ReplicaId, Round, SendGate, SimDuration, SimTime,
};

/// Everything that parameterizes one node process. Parsed from the
/// `sft-node` command line; constructed directly by in-process tests.
#[derive(Clone, Debug)]
pub struct NodeOpts {
    /// This replica's id (an index into `peers`).
    pub id: u16,
    /// Address to listen on (normally `peers[id]`).
    pub listen: SocketAddr,
    /// The full address table, indexed by replica id, own entry included.
    pub peers: Vec<SocketAddr>,
    /// Which protocol the replica set runs.
    pub protocol: Protocol,
    /// Directory holding `wal.log` and `commit.out`.
    pub data_dir: PathBuf,
    /// Target epoch/round count: the node works until its round passes
    /// this (and no block-sync is pending), then lingers and exits.
    pub epochs: u64,
    /// Hard wall-clock budget for the whole run, linger included.
    pub budget: Duration,
    /// How long to keep serving votes and sync responses after reaching
    /// the target, so slower peers (a restarted crasher, say) can finish.
    pub linger: Duration,
    /// fsync batching: sync the log every this many appended records
    /// (1 = every record durable before its message leaves; larger
    /// values trade a bounded durability window for fewer fsyncs).
    /// Ignored under [`WalMode::GroupCommit`], whose writer thread
    /// batches adaptively without widening the durability window.
    pub sync_every: u64,
    /// How the log is written and sends are held back (see [`WalMode`]).
    pub wal_mode: WalMode,
    /// The pacing unit δ: Streamlet epochs span `2δ` of wall clock.
    pub delta: Duration,
    /// SFT-DiemBFT base round timeout.
    pub base_timeout: Duration,
    /// The cluster's shared genesis instant, as a duration since the UNIX
    /// epoch. Every process anchors its protocol clock here, so epoch
    /// boundaries align across machines and a restarted replica resumes
    /// at the cluster's *current* epoch — not at wall time zero of its
    /// own launch. `None` anchors at process start (single-run tooling).
    pub start_at: Option<Duration>,
    /// Where to append the NDJSON event trace (`--trace-out`). `None`
    /// keeps the free no-op recorder; `Some` turns on metric recording
    /// and crash-safe line-framed tracing (the crash harness reads the
    /// resulting timeline back to verify recovery ordering).
    pub trace_out: Option<PathBuf>,
}

impl NodeOpts {
    /// The replica count implied by the address table.
    pub fn n(&self) -> usize {
        self.peers.len()
    }
}

/// How the node writes its log and when outbound frames may leave.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum WalMode {
    /// The classic inline discipline: appends (and their
    /// `sync_every`-batched fsyncs) run on the engine thread, *before*
    /// the step's messages are handed to the transport.
    #[default]
    SyncEvery,
    /// The pipelined discipline: appends enqueue to a dedicated
    /// WAL-writer thread that batches fsyncs adaptively, and every
    /// outbound frame carries a [`SendGate`] holding it in the
    /// transport's peer writers until the durability watermark covers
    /// the records that justify it. Same guarantee as `sync_every = 1`
    /// — no frame leaves before its records are on disk — without an
    /// fsync stall on the engine thread.
    GroupCommit,
}

/// The node's log under either [`WalMode`], unified for the event loop.
enum NodeWal {
    Classic(WalStore),
    Group(GroupCommitWal),
}

impl NodeWal {
    /// Appends one record; returns its persist sequence under the
    /// pipelined mode (`None` classically — persistence is already
    /// complete when this returns, nothing to gate).
    fn append(&mut self, record: &WalRecord) -> Result<Option<PersistSeq>, String> {
        match self {
            NodeWal::Classic(wal) => wal
                .append(record)
                .map(|()| None)
                .map_err(|e| format!("wal append: {e}")),
            NodeWal::Group(wal) => wal
                .append(record)
                .map(Some)
                .map_err(|e| format!("wal append: {e}")),
        }
    }

    /// The gate outbound frames must clear, given the node's last
    /// appended sequence — pipelined mode only.
    fn gate(&self, last_seq: PersistSeq) -> Option<SendGate> {
        match self {
            NodeWal::Classic(_) => None,
            NodeWal::Group(wal) => (last_seq > 0).then(|| SendGate::new(wal.watermark(), last_seq)),
        }
    }

    /// Records appended during this incarnation.
    fn appended(&self) -> u64 {
        match self {
            NodeWal::Classic(wal) => wal.appended(),
            NodeWal::Group(wal) => wal.last_seq(),
        }
    }

    /// Settles the log at shutdown: everything appended is durable.
    fn finish(self) -> Result<(), String> {
        match self {
            NodeWal::Classic(mut wal) => wal.flush().map_err(|e| format!("wal flush: {e}")),
            NodeWal::Group(wal) => wal.finish().map_err(|e| format!("wal finish: {e}")),
        }
    }
}

/// What a finished node reports back (and prints).
#[derive(Clone, Debug)]
pub struct NodeOutcome {
    /// WAL records recovered and replayed at startup.
    pub recovered: usize,
    /// Records appended to the WAL during this incarnation.
    pub appended: u64,
    /// The committed chain, genesis-side first, as lowercase hex.
    pub committed: Vec<String>,
    /// Peer connections lost over the run (see
    /// [`NetworkStats::disconnects`](sft_network::NetworkStats)).
    pub disconnects: u64,
    /// The round the engine ended on.
    pub round: u64,
}

/// Runs one replica process to completion: bind, recover, participate,
/// write `commit.out`.
///
/// # Errors
///
/// Returns a description of any socket or WAL failure.
pub fn run_node(opts: &NodeOpts) -> Result<NodeOutcome, String> {
    let n = opts.n();
    if opts.id as usize >= n {
        return Err(format!("id {} out of range for {} peers", opts.id, n));
    }
    let config = SimConfig::new(n, opts.epochs).with_protocol(opts.protocol);
    let delta = SimDuration::from_micros(opts.delta.as_micros() as u64);
    match opts.protocol {
        Protocol::Streamlet => {
            let engine = build_streamlet_engines(&config, delta * 2).remove(opts.id as usize);
            drive(engine, opts, ProtocolTag::Streamlet)
        }
        Protocol::Fbft => {
            let timeout = SimDuration::from_micros(opts.base_timeout.as_micros() as u64);
            let engine = build_fbft_engines(&config, timeout).remove(opts.id as usize);
            drive(engine, opts, ProtocolTag::Fbft)
        }
    }
}

/// Messages pending same-instant self-delivery (a node hears its own
/// broadcasts without a network round trip, as in every harness).
type Inbox = VecDeque<(ReplicaId, Arc<[u8]>)>;

/// The node event loop around one engine: recover from the WAL, then
/// deliver / tick / sync until the target round is passed (plus linger)
/// or the wall-clock budget runs out.
fn drive<E: ReplicaEngine>(
    mut engine: E,
    opts: &NodeOpts,
    tag: ProtocolTag,
) -> Result<NodeOutcome, String> {
    // One registry per process when --trace-out asks for it; the no-op
    // recorder otherwise, so the unobserved node pays nothing.
    let registry: Option<Arc<Registry>> = match &opts.trace_out {
        Some(path) => {
            let sink =
                TraceSink::open(path).map_err(|e| format!("trace {}: {e}", path.display()))?;
            let registry = Arc::new(Registry::new());
            registry.set_sink(sink);
            Some(registry)
        }
        None => None,
    };
    let recorder: SharedRecorder = match registry.clone() {
        Some(registry) => registry,
        None => sft_obs::noop(),
    };
    engine.set_recorder(Arc::clone(&recorder));

    let store = WalStore::open(&opts.data_dir, opts.sync_every).map_err(|e| format!("wal: {e}"))?;
    let mut transport = NodeTransport::bind_observed(
        ReplicaId::new(opts.id),
        tag,
        opts.listen,
        &opts.peers,
        Arc::clone(&recorder),
    )
    .map_err(|e| format!("bind {}: {e}", opts.listen))?;
    if let Some(since_unix) = opts.start_at {
        transport = transport.with_time_origin(std::time::UNIX_EPOCH + since_unix);
    }
    recorder.trace(&TraceEvent::new(
        names::EV_NODE_START,
        transport.now().as_micros(),
        &[("id", u64::from(opts.id))],
    ));

    // Recovery before the first tick: the engine resumes its pre-crash
    // voting history, locked state, and committed prefix. The replay-done
    // trace event is the recovery milestone the crash harness orders the
    // first outbound vote against.
    let recovered = store.replay_into(&mut engine, transport.now());
    if recovered > 0 {
        eprintln!(
            "sft-node {}: recovered {recovered} WAL records{}",
            opts.id,
            if store.tail_truncated() {
                " (torn tail truncated)"
            } else {
                ""
            }
        );
    }
    recorder.trace(&TraceEvent::new(
        names::EV_WAL_REPLAY_DONE,
        transport.now().as_micros(),
        &[("records", recovered as u64)],
    ));
    // Recovery always reads through the classic store; the pipelined
    // mode upgrades it afterwards, handing the file to the WAL-writer
    // thread. Gate waiters wake through the watermark's own condvar, so
    // no transport wake hook is needed here.
    let mut wal = match opts.wal_mode {
        WalMode::SyncEvery => NodeWal::Classic(store),
        WalMode::GroupCommit => NodeWal::Group(
            store
                .into_group_commit(Arc::clone(&recorder), None)
                .map_err(|e| format!("wal writer: {e}"))?,
        ),
    };
    // The node's last appended persist sequence: what its outbound
    // frames are gated on under the pipelined mode.
    let mut last_seq: PersistSeq = 0;

    let id = ReplicaId::new(opts.id);
    let target = Round::new(opts.epochs);
    let step = SimDuration::from_micros(opts.delta.as_micros() as u64);
    let budget_end = transport.now() + SimDuration::from_micros(opts.budget.as_micros() as u64);
    let linger = SimDuration::from_micros(opts.linger.as_micros() as u64);
    let mut done_at: Option<SimTime> = None;
    let mut inbox: Inbox = VecDeque::new();
    // Which client connection awaits each admitted transaction's ack.
    let mut ack_routes: HashMap<sft_crypto::HashValue, u64> = HashMap::new();

    loop {
        let now = transport.now();
        if now >= budget_end {
            break;
        }
        // Done when the protocol ran its course — an exhausted epoch
        // clock (Streamlet) or the target round passed (fbft) — and no
        // catch-up fetch is pending.
        let course_run = engine.next_deadline().is_none() || engine.round() > target;
        if course_run && !engine.is_syncing() {
            let at = *done_at.get_or_insert(now);
            if now >= at + linger {
                break;
            }
        }
        // Wait for traffic until the next engine deadline (or one pacing
        // step, so the linger/budget clocks keep being checked).
        let mut wake = now + step;
        if let Some(deadline) = engine.next_deadline() {
            wake = wake.min(deadline.max(now));
        }
        for d in transport.poll_deliver(wake) {
            inbox.push_back((d.from, d.payload));
        }
        let now = transport.now();
        // Client gateway ingress: submissions admitted now are eligible
        // for the next proposal this node builds; Busy/Duplicate verdicts
        // are answered on the spot.
        for c in transport.poll_clients() {
            let Ok(ClientFrame::Request(req)) = ClientFrame::from_bytes(&c.payload) else {
                continue;
            };
            let txn_id = req.txn_id();
            match engine.submit(&req, now) {
                Some(verdict) => {
                    let bytes: Arc<[u8]> = ClientFrame::Ack(verdict).to_bytes().into();
                    transport.send_client(c.conn, id, bytes);
                }
                None => {
                    ack_routes.insert(txn_id, c.conn);
                }
            }
        }
        loop {
            while let Some((from, bytes)) = inbox.pop_front() {
                let timer = PhaseTimer::start(&*recorder);
                let step = engine.on_envelope(from, &bytes, now);
                timer.finish(&*recorder, names::PHASE_ON_ENVELOPE_NS);
                absorb(
                    step,
                    id,
                    &mut wal,
                    &mut last_seq,
                    &mut transport,
                    &mut inbox,
                    &*recorder,
                )?;
            }
            let mut fired = false;
            if engine.next_deadline().is_some_and(|d| d <= now) {
                fired = true;
                let timer = PhaseTimer::start(&*recorder);
                let step = engine.on_tick(now);
                timer.finish(&*recorder, names::PHASE_ON_TICK_NS);
                absorb(
                    step,
                    id,
                    &mut wal,
                    &mut last_seq,
                    &mut transport,
                    &mut inbox,
                    &*recorder,
                )?;
            }
            if fired || !inbox.is_empty() {
                continue;
            }
            let step = engine.poll_sync(now);
            absorb(
                step,
                id,
                &mut wal,
                &mut last_seq,
                &mut transport,
                &mut inbox,
                &*recorder,
            )?;
            if inbox.is_empty() {
                break;
            }
        }
        // Stream newly ready strength-graded acks back to their clients.
        for ack in engine.drain_acks() {
            if let Some(conn) = ack_routes.remove(&ack.txn_id()) {
                let bytes: Arc<[u8]> = ClientFrame::Ack(ack).to_bytes().into();
                transport.send_client(conn, id, bytes);
            }
        }
    }

    let appended = wal.appended();
    wal.finish()?;
    recorder.trace(&TraceEvent::new(
        names::EV_NODE_STOP,
        transport.now().as_micros(),
        &[("round", engine.round().as_u64())],
    ));
    if let Some(registry) = &registry {
        registry.flush_sink();
    }
    let committed: Vec<String> = engine
        .committed_chain()
        .iter()
        .map(|h| format!("{h}"))
        .collect();
    write_commit_file(opts, &committed)?;
    Ok(NodeOutcome {
        recovered,
        appended,
        committed,
        disconnects: transport.stats().disconnects,
        round: engine.round().as_u64(),
    })
}

/// Write-ahead discipline, then routing: persist the step's durable
/// records, then send its messages (broadcasts loop back through the
/// inbox so the node hears itself). Classically "persist" means the
/// fsync already happened by the time a message is handed over; under
/// the pipelined mode it means the message carries a [`SendGate`] the
/// transport's peer writers hold until the watermark covers
/// `last_seq`. The engine's own loopback delivery is never gated — a
/// node hearing itself early cannot equivocate against itself.
fn absorb<S: Transport>(
    step: EngineStep,
    id: ReplicaId,
    wal: &mut NodeWal,
    last_seq: &mut PersistSeq,
    transport: &mut S,
    inbox: &mut Inbox,
    recorder: &dyn Recorder,
) -> Result<(), String> {
    let mut step = step;
    let persist = PhaseTimer::start(recorder);
    if !step.persist.is_empty() {
        let wait = PhaseTimer::start(recorder);
        for record in &step.persist {
            if let Some(seq) = wal.append(record)? {
                *last_seq = seq;
            }
        }
        wait.finish(recorder, names::PHASE_PERSIST_WAIT_NS);
        step.persist_seq = (*last_seq > 0).then_some(*last_seq);
    }
    persist.finish(recorder, names::PHASE_PERSIST_NS);
    let route = PhaseTimer::start(recorder);
    for out in step.outbound {
        let gate = wal.gate(*last_seq);
        match (out.route, gate) {
            (Route::Broadcast, Some(gate)) => {
                transport.broadcast_gated(id, Arc::clone(&out.bytes), gate);
                inbox.push_back((id, out.bytes));
            }
            (Route::Broadcast, None) => {
                transport.broadcast(id, Arc::clone(&out.bytes));
                inbox.push_back((id, out.bytes));
            }
            (Route::To(peer), _) if peer == id => inbox.push_back((id, out.bytes)),
            (Route::To(peer), Some(gate)) => transport.send_gated(id, peer, out.bytes, gate),
            (Route::To(peer), None) => transport.send(id, peer, out.bytes),
        }
    }
    route.finish(recorder, names::PHASE_ROUTE_NS);
    Ok(())
}

/// The file the crash harness compares across replicas.
pub const COMMIT_FILE_NAME: &str = "commit.out";

/// Writes the committed chain atomically (tmp + rename), one hash per
/// line, so a reader never observes a half-written file.
fn write_commit_file(opts: &NodeOpts, committed: &[String]) -> Result<(), String> {
    let path = opts.data_dir.join(COMMIT_FILE_NAME);
    let tmp = opts.data_dir.join(format!("{COMMIT_FILE_NAME}.tmp"));
    let mut body = committed.join("\n");
    if !body.is_empty() {
        body.push('\n');
    }
    std::fs::write(&tmp, body).map_err(|e| format!("writing {}: {e}", tmp.display()))?;
    std::fs::rename(&tmp, &path).map_err(|e| format!("renaming to {}: {e}", path.display()))?;
    Ok(())
}
