//! Wire-size accounting: the paper's claim that strong-votes cost "one
//! integer" of marginal overhead (§3.2), plus codec throughput and
//! per-epoch traffic by system size.

use sft_bench::Harness;
use sft_crypto::{HashValue, KeyRegistry};
use sft_sim::SimConfig;
use sft_types::{Decode, Encode, EndorseInfo, Round, RoundIntervalSet, StrongVote, VoteData};

fn main() {
    let mut harness = Harness::new("msg_complexity");

    let registry = KeyRegistry::deterministic(4);
    let kp = registry.key_pair(0).unwrap();
    let data = VoteData::new(
        HashValue::of(b"B9"),
        Round::new(9),
        HashValue::of(b"B8"),
        Round::new(8),
    );

    let vanilla = StrongVote::new(data, EndorseInfo::None, &kp);
    let marker = StrongVote::new(data, EndorseInfo::Marker(Round::new(3)), &kp);
    let mut set = RoundIntervalSet::full_range(Round::new(1), Round::new(9));
    set.subtract(Round::new(4), Round::new(6));
    let intervals = StrongVote::new(data, EndorseInfo::Intervals(set), &kp);

    println!("  vote wire sizes:");
    let base = vanilla.encoded_len();
    for (name, vote) in [
        ("vanilla", &vanilla),
        ("marker (§3.2)", &marker),
        ("intervals (§3.4)", &intervals),
    ] {
        println!(
            "    {:<18} {:>4} B  (+{} B over vanilla)",
            name,
            vote.encoded_len(),
            vote.encoded_len() - base
        );
    }
    assert_eq!(
        marker.encoded_len() - base,
        8,
        "the paper's one-integer overhead"
    );

    harness.bench("vote::encode(marker)", || marker.to_bytes());
    let bytes = marker.to_bytes();
    harness.bench("vote::decode(marker)", || {
        StrongVote::from_bytes(&bytes).unwrap()
    });

    println!("  per-epoch traffic (honest runs, 10 epochs, 1000x450B blocks):");
    for n in [4usize, 7, 10] {
        let epochs = 10;
        let report = SimConfig::new(n, epochs).run();
        println!(
            "    n={:<3} {:>6} msgs  {:>12} B total  ({:.0} B/epoch)",
            n,
            report.net.messages,
            report.net.bytes,
            report.net.bytes as f64 / epochs as f64
        );
    }

    harness.finish();
}
