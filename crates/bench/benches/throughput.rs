//! Hot-path microbenchmarks: vote verification, vote aggregation into
//! quorum certificates, endorsement-walk commit-rule evaluation, and a full
//! simulated epoch.

use sft_bench::Harness;
use sft_core::{Block, BlockStore, EndorsementTracker, ProtocolConfig, VoteTracker};
use sft_crypto::KeyRegistry;
use sft_sim::{SimConfig, Simulation};
use sft_types::{EndorseInfo, Payload, ReplicaId, Round, StrongVote};

/// Builds a linear chain of `len` blocks and returns the store + tip.
fn chain(len: u64) -> (BlockStore, Block) {
    let mut store = BlockStore::new();
    let mut tip = store.genesis().clone();
    for round in 1..=len {
        let block = Block::new(
            &tip,
            Round::new(round),
            ReplicaId::new((round % 4) as u16),
            Payload::synthetic(1000, 450, round),
        );
        store.insert(block.clone()).unwrap();
        tip = block;
    }
    (store, tip)
}

fn main() {
    let mut harness = Harness::new("throughput");

    let config = ProtocolConfig::for_replicas(4);
    let registry = KeyRegistry::deterministic(4);
    let (store, tip) = chain(100);
    let votes: Vec<StrongVote> = (0..4)
        .map(|i| {
            StrongVote::new(
                tip.vote_data(),
                EndorseInfo::Marker(Round::ZERO),
                &registry.key_pair(i).unwrap(),
            )
        })
        .collect();

    harness.bench("strong_vote::verify", || votes[0].verify(&registry));

    harness.bench("vote_tracker::aggregate_quorum(n=4)", || {
        let mut tracker = VoteTracker::new(config, registry.clone());
        for vote in &votes {
            tracker.add_vote(vote);
        }
        tracker.is_certified(tip.id())
    });

    // The commit-rule evaluation path: marker-0 strong-votes endorse a
    // 100-block chain suffix, and the tracker grades the tip's strength.
    harness.bench("endorsement::record_vote(100-deep chain)", || {
        let mut endorsements = EndorsementTracker::new(config);
        for vote in &votes {
            endorsements.record_vote(vote, &store);
        }
        endorsements.strength(tip.id())
    });

    let big_registry = KeyRegistry::deterministic(100);
    let big_config = ProtocolConfig::for_replicas(100);
    let big_votes: Vec<StrongVote> = (0..67)
        .map(|i| {
            StrongVote::new(
                tip.vote_data(),
                EndorseInfo::Marker(Round::ZERO),
                &big_registry.key_pair(i).unwrap(),
            )
        })
        .collect();
    harness.bench("vote_tracker::aggregate_quorum(n=100)", || {
        let mut tracker = VoteTracker::new(big_config, big_registry.clone());
        for vote in &big_votes {
            tracker.add_vote(vote);
        }
        tracker.is_certified(tip.id())
    });

    // One full protocol epoch through the simulator (4 replicas,
    // propose + vote + commit evaluation + network encode/decode).
    let mut epoch = 0u64;
    let mut sim = Simulation::new(SimConfig::new(4, u64::MAX));
    harness.bench("sim::run_epoch(n=4)", || {
        epoch += 1;
        sim.run_epoch(Round::new(epoch));
    });

    harness.finish();
}
