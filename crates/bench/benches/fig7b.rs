//! Fig 7b reproduction: *strong*-commit latency (level `2f`) as a function
//! of the injected delay δ. With marker strong-votes and all replicas
//! honest, the 2f ceiling arrives with the same votes that standard-commit
//! a block — strengthening is latency-free, the paper's headline result.

use sft_bench::Harness;
use sft_sim::SimConfig;
use sft_streamlet::EndorseMode;
use sft_types::{SimDuration, SimTime};

fn main() {
    let mut harness = Harness::new("fig7b_strong_commit_latency");

    println!("  strong-commit (level 2f = 2) latency vs δ (n=4, honest, marker votes):");
    for delay_ms in [50u64, 100, 200] {
        let delay = SimDuration::from_millis(delay_ms);
        let report = SimConfig::new(4, 8)
            .with_delay(delay)
            .with_endorse_mode(EndorseMode::Marker)
            .run();
        let (at, update) = report.timelines[0]
            .iter()
            .find(|(_, update)| update.level() == 2)
            .expect("honest marker runs reach 2f");
        let proposed = SimTime::ZERO + (delay * 2) * (update.round().as_u64() - 1);
        let latency = at.saturating_since(proposed);
        println!(
            "    δ={delay_ms:>3} ms  ->  {latency} (block of epoch {})",
            update.round()
        );
        assert_eq!(
            latency,
            delay * 4,
            "strong commit costs no extra delay over standard"
        );
    }

    harness.bench("sim_to_strong_commit(n=4, δ=100ms)", || {
        SimConfig::new(4, 4).run().max_commit_level()
    });

    harness.finish();
}
