//! Cross-protocol comparison: SFT-DiemBFT (round-based main protocol)
//! vs SFT-Streamlet (Appendix D) under identical delay and fault
//! scenarios — the "two protocols, one harness" experiment the ROADMAP's
//! scenario-diversity goal asks for.
//!
//! Two kinds of numbers come out:
//!
//! - **simulator throughput** (wall time per full run) via the harness —
//!   how expensive each protocol is to simulate;
//! - **protocol metrics** (virtual commit latency, commit strength,
//!   message/byte complexity) printed as a comparison table — the numbers
//!   that correspond to the paper's Figs 7/8, now side by side per
//!   protocol.

use sft_bench::Harness;
use sft_sim::{Behavior, Protocol, SimConfig, SimReport};

const N: usize = 4;
const ROUNDS: u64 = 10;

fn scenario(protocol: Protocol, behavior: Option<Behavior>) -> SimConfig {
    let mut config = SimConfig::new(N, ROUNDS)
        .with_protocol(protocol)
        // Small blocks: these runs measure protocol machinery, not payload
        // hashing (fig7a/b own the workload-sweep question).
        .with_workload(100, 64);
    if let Some(behavior) = behavior {
        config = config.with_behavior((N - 1) as u16, behavior);
    }
    config
}

fn protocol_name(protocol: Protocol) -> &'static str {
    match protocol {
        Protocol::Streamlet => "streamlet",
        Protocol::Fbft => "fbft",
    }
}

fn describe(report: &SimReport) -> String {
    let first_commit = report
        .first_commit_at(0)
        .map_or_else(|| "never".to_string(), |t| t.to_string());
    format!(
        "first commit {first_commit}, {} committed, level {}, elapsed {}, {} msgs, {} B",
        report.max_committed(),
        report.max_commit_level(),
        report.elapsed,
        report.net.messages,
        report.net.bytes,
    )
}

fn main() {
    let scenarios: [(&str, Option<Behavior>); 4] = [
        ("honest", None),
        ("withhold", Some(Behavior::WithholdVote)),
        ("stall_leader", Some(Behavior::StallLeader)),
        ("equivocate", Some(Behavior::Equivocate)),
    ];

    let mut harness = Harness::new("fbft_vs_streamlet");
    for protocol in [Protocol::Streamlet, Protocol::Fbft] {
        for (name, behavior) in scenarios {
            harness.bench(&format!("{}::{name}_n{N}", protocol_name(protocol)), || {
                scenario(protocol, behavior).run().max_committed()
            });
        }
    }

    println!("\n-- protocol metrics (virtual time, identical scenarios) --");
    for (name, behavior) in scenarios {
        for protocol in [Protocol::Streamlet, Protocol::Fbft] {
            let report = scenario(protocol, behavior).run();
            assert!(report.agreement(), "agreement must hold in every scenario");
            println!(
                "  {:<12} {:<10} {}",
                name,
                protocol_name(protocol),
                describe(&report)
            );
        }
    }
    harness.finish();
}
