//! Cross-protocol comparison: SFT-DiemBFT (round-based main protocol)
//! vs SFT-Streamlet (Appendix D) under identical delay and fault
//! scenarios — the "two protocols, one harness" experiment the ROADMAP's
//! scenario-diversity goal asks for.
//!
//! Three kinds of numbers come out:
//!
//! - **simulator throughput** (wall time per full run) via the harness —
//!   how expensive each protocol is to simulate;
//! - **protocol metrics** (virtual commit latency, commit strength,
//!   message/byte complexity) printed as a comparison table — the numbers
//!   that correspond to the paper's Figs 7/8, now side by side per
//!   protocol;
//! - **batched throughput scaling** (committed txns/s of virtual time)
//!   across a replica-count sweep, batched vs unbatched — the number the
//!   batching + pipelining work is graded by.
//!
//! Knobs (environment variables, since cargo-bench owns the CLI):
//!
//! ```text
//! SFT_SWEEP_N=4,7,13   replica counts for the batched scaling sweep
//! SFT_BATCH=256        transactions per drained batch
//! ```

use sft_bench::Harness;
use sft_sim::{Behavior, Protocol, SimConfig, SimReport};

const N: usize = 4;
const ROUNDS: u64 = 10;

fn scenario(protocol: Protocol, behavior: Option<Behavior>) -> SimConfig {
    let mut config = SimConfig::new(N, ROUNDS)
        .with_protocol(protocol)
        // Small blocks: these runs measure protocol machinery, not payload
        // hashing (fig7a/b own the workload-sweep question).
        .with_workload(100, 64);
    if let Some(behavior) = behavior {
        config = config.with_behavior((N - 1) as u16, behavior);
    }
    config
}

fn batched(protocol: Protocol, n: usize, batch: u32) -> SimConfig {
    SimConfig::new(n, ROUNDS)
        .with_protocol(protocol)
        .with_workload(100, 64)
        .with_batch_size(batch)
}

fn protocol_name(protocol: Protocol) -> &'static str {
    match protocol {
        Protocol::Streamlet => "streamlet",
        Protocol::Fbft => "fbft",
    }
}

fn describe(report: &SimReport) -> String {
    let first_commit = report
        .first_commit_at(0)
        .map_or_else(|| "never".to_string(), |t| t.to_string());
    format!(
        "first commit {first_commit}, {} committed, level {}, elapsed {}, {} msgs, {} B",
        report.max_committed(),
        report.max_commit_level(),
        report.elapsed,
        report.net.messages,
        report.net.bytes,
    )
}

fn env_list(name: &str, default: &[usize]) -> Vec<usize> {
    std::env::var(name)
        .ok()
        .map(|raw| {
            raw.split(',')
                .filter_map(|v| v.trim().parse().ok())
                .collect()
        })
        .filter(|list: &Vec<usize>| !list.is_empty())
        .unwrap_or_else(|| default.to_vec())
}

fn env_u32(name: &str, default: u32) -> u32 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let scenarios: [(&str, Option<Behavior>); 4] = [
        ("honest", None),
        ("withhold", Some(Behavior::WithholdVote)),
        ("stall_leader", Some(Behavior::StallLeader)),
        ("equivocate", Some(Behavior::Equivocate)),
    ];

    let mut harness = Harness::new("fbft_vs_streamlet");
    for protocol in [Protocol::Streamlet, Protocol::Fbft] {
        for (name, behavior) in scenarios {
            harness.bench(&format!("{}::{name}_n{N}", protocol_name(protocol)), || {
                scenario(protocol, behavior).run().max_committed()
            });
        }
    }

    println!("\n-- protocol metrics (virtual time, identical scenarios) --");
    for (name, behavior) in scenarios {
        for protocol in [Protocol::Streamlet, Protocol::Fbft] {
            let report = scenario(protocol, behavior).run();
            assert!(report.agreement(), "agreement must hold in every scenario");
            println!(
                "  {:<12} {:<10} {}",
                name,
                protocol_name(protocol),
                describe(&report)
            );
        }
    }

    // Batched throughput scaling: committed txns per virtual second across
    // a replica-count sweep, against the unbatched (batch = 1) baseline.
    let sweep = env_list("SFT_SWEEP_N", &[4, 7, 13]);
    let batch = env_u32("SFT_BATCH", 256).max(2);
    println!("\n-- batched throughput sweep (batch={batch}, honest) --");
    for protocol in [Protocol::Streamlet, Protocol::Fbft] {
        for &n in &sweep {
            let report = batched(protocol, n, batch).run();
            assert!(report.agreement());
            let baseline = batched(protocol, n, 1).run();
            let speedup = report.txns_committed as f64 / baseline.txns_committed.max(1) as f64;
            println!(
                "  {:<10} n={n:<3} {:>8} txns  {:>10.1} txns/s  ({speedup:.0}x over unbatched, {} msgs)",
                protocol_name(protocol),
                report.txns_committed,
                report.txns_per_sec(),
                report.net.messages,
            );
            harness.bench(
                &format!("{}::batched_n{n}_b{batch}", protocol_name(protocol)),
                || batched(protocol, n, batch).run().txns_committed,
            );
        }
    }
    harness.finish();
}
