fn main() {}
