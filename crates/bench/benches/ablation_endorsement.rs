//! Ablation: what does endorsement bookkeeping cost? Runs identical
//! honest workloads with vanilla votes and §3.2 marker strong-votes and
//! compares run time, wire bytes, and the commit levels achieved —
//! reproducing the paper's "negligible overhead" claim (§4).

use sft_bench::Harness;
use sft_sim::SimConfig;
use sft_streamlet::EndorseMode;

fn main() {
    let mut harness = Harness::new("ablation_endorsement");

    for (name, mode) in [
        ("vanilla", EndorseMode::Vanilla),
        ("marker", EndorseMode::Marker),
    ] {
        harness.bench(&format!("sim_20_epochs(n=4, {name})"), || {
            SimConfig::new(4, 20).with_endorse_mode(mode).run()
        });
    }

    println!("  outcome comparison (n=4, 20 epochs):");
    let vanilla = SimConfig::new(4, 20)
        .with_endorse_mode(EndorseMode::Vanilla)
        .run();
    let marker = SimConfig::new(4, 20)
        .with_endorse_mode(EndorseMode::Marker)
        .run();
    for (name, report) in [("vanilla", &vanilla), ("marker", &marker)] {
        println!(
            "    {:<8} committed={:<3} max_level={}  bytes={}",
            name,
            report.max_committed(),
            report.max_commit_level(),
            report.net.bytes
        );
    }
    let overhead = marker.net.bytes as f64 / vanilla.net.bytes as f64 - 1.0;
    println!("    marker wire overhead: {:.4}%", overhead * 100.0);

    harness.finish();
}
