//! Fig 7a reproduction: *standard*-commit latency as a function of the
//! injected one-way delay δ. The simulator's virtual clock makes the
//! numbers exact: a block proposed at the start of epoch `e` standard-
//! commits when the next epoch's votes land, i.e. after 4δ.

use sft_bench::Harness;
use sft_sim::SimConfig;
use sft_types::{SimDuration, SimTime};

/// Latency from a block's proposal to a replica-0 commit entry matching
/// `pick`, for the first block that achieves it.
fn commit_latency(
    report: &sft_sim::SimReport,
    delay: SimDuration,
    pick: impl Fn(u64) -> bool,
) -> Option<SimDuration> {
    report.timelines[0]
        .iter()
        .find(|(_, update)| pick(update.level()))
        .map(|(at, update)| {
            let proposed = SimTime::ZERO + (delay * 2) * (update.round().as_u64() - 1);
            at.saturating_since(proposed)
        })
}

fn main() {
    let mut harness = Harness::new("fig7a_standard_commit_latency");

    println!("  standard-commit latency vs δ (n=4, honest):");
    for delay_ms in [50u64, 100, 200] {
        let delay = SimDuration::from_millis(delay_ms);
        let report = SimConfig::new(4, 8).with_delay(delay).run();
        let latency =
            commit_latency(&report, delay, |level| level >= 1).expect("honest runs commit");
        println!("    δ={delay_ms:>3} ms  ->  {latency}");
        assert_eq!(latency, delay * 4, "standard commit takes two epochs = 4δ");
    }

    harness.bench("sim_to_first_commit(n=4, δ=100ms)", || {
        SimConfig::new(4, 3).run().max_committed()
    });

    harness.finish();
}
