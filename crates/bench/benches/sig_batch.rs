//! Batched vs one-at-a-time signature verification at quorum sizes.
//!
//! A forming quorum certificate carries `2f + 1` signatures over the
//! same vote data. The naive path verifies each on arrival —
//! `O(n)` MACs per certificate, `O(n²)` per round across the cluster.
//! [`KeyRegistry::verify_batch`] checks the whole set in one pass with a
//! single constant-time accept comparison. This benchmark times both
//! paths at the paper's system sizes (n = 4 up to 121) plus the
//! bisection reject path with one forged signature, so the accept-path
//! advantage and the reject-path overhead are both on the record.

use sft_bench::Harness;
use sft_crypto::{BatchItem, KeyRegistry, Signature};

/// Quorum size `2f + 1` for `n = 3f + 1` replicas.
fn quorum(n: usize) -> usize {
    2 * ((n - 1) / 3) + 1
}

fn main() {
    let mut harness = Harness::new("sig_batch");

    for n in [4usize, 31, 61, 121] {
        let registry = KeyRegistry::deterministic(n);
        let q = quorum(n);
        let message = b"vote-data-digest:round-9";
        let sigs: Vec<Signature> = (0..q as u64)
            .map(|i| registry.key_pair(i).unwrap().sign(message))
            .collect();
        let items: Vec<BatchItem> = sigs
            .iter()
            .enumerate()
            .map(|(i, sig)| BatchItem::new(i as u64, message, sig))
            .collect();

        harness.bench(&format!("verify_each(n={n}, q={q})"), || {
            items
                .iter()
                .filter(|item| registry.verify(item.signer, item.message, item.signature))
                .count()
        });
        harness.bench(&format!("verify_batch(n={n}, q={q})"), || {
            registry.verify_batch(&items).is_ok()
        });

        // Reject path: one forged tag forces the bisection. The cost
        // ceiling for a quorum poisoned by a single Byzantine voter.
        let mut forged_sigs = sigs.clone();
        let mut tag = *forged_sigs[q / 2].tag();
        tag[0] ^= 0x80;
        forged_sigs[q / 2] = Signature::from_tag((q / 2) as u64, tag);
        let forged_items: Vec<BatchItem> = forged_sigs
            .iter()
            .enumerate()
            .map(|(i, sig)| BatchItem::new(i as u64, message, sig))
            .collect();
        harness.bench(&format!("verify_batch_reject(n={n}, q={q})"), || {
            registry.verify_batch(&forged_items).is_err()
        });
    }

    harness.finish();
}
