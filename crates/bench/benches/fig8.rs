//! Fig 8 reproduction: commit strength achieved as a function of the
//! number of non-voting replicas. Every withheld vote removes one endorser,
//! so the achievable level falls one step per withholder until the classic
//! quorum itself is at risk: level = n − k − f − 1 for k withholders.

use sft_bench::Harness;
use sft_sim::{Behavior, SimConfig};

fn main() {
    let mut harness = Harness::new("fig8_strength_vs_withholders");

    for n in [4usize, 7] {
        let f = (n - 1) / 3;
        println!("  n={n} (f={f}):");
        for k in 0..=f {
            let mut config = SimConfig::new(n, 10);
            for withholder in 0..k {
                config = config.with_behavior((n - 1 - withholder) as u16, Behavior::WithholdVote);
            }
            let report = config.run();
            let expected = (n - k - f - 1) as u64;
            println!(
                "    {k} withholders -> max commit level {} (expected {expected})",
                report.max_commit_level()
            );
            assert!(report.agreement());
            assert_eq!(report.max_commit_level(), expected);
        }
    }

    harness.bench("sim_with_f_withholders(n=7)", || {
        SimConfig::new(7, 10)
            .with_behavior(5, Behavior::WithholdVote)
            .with_behavior(6, Behavior::WithholdVote)
            .run()
            .max_commit_level()
    });

    harness.finish();
}
