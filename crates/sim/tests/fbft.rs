//! End-to-end SFT-DiemBFT runs: the acceptance scenarios for the round-based
//! main protocol, executed through the full replica + pacemaker + network
//! stack. Mirrors `consensus.rs` (the Streamlet suite) so the two protocols
//! are held to the same bar: agreement under every Byzantine behavior,
//! monotone commit strength, and levels matching
//! `ProtocolConfig::strength_of`.

use sft_core::ProtocolConfig;
use sft_sim::{Behavior, Protocol, SimConfig};
use sft_types::SimTime;

fn fbft(n: usize, rounds: u64) -> SimConfig {
    SimConfig::new(n, rounds).with_protocol(Protocol::Fbft)
}

/// Shared assertions: agreement, no safety violations, and per-block
/// commit-strength monotonicity.
fn assert_sound(report: &sft_sim::SimReport) {
    assert!(
        report.agreement(),
        "committed chains must be prefix-compatible"
    );
    assert_eq!(report.safety_violations, 0);
    assert!(
        report.commit_strength_monotone(),
        "per-block strength levels only climb"
    );
}

/// All-honest n = 4 (f = 1): every round certifies on the 2δ cadence, the
/// 2-chain rule commits continuously, and with all n voters endorsing,
/// commits reach the 2f ceiling — the acceptance criterion for f = 1.
#[test]
fn four_honest_replicas_reach_the_2f_ceiling() {
    let cfg = ProtocolConfig::for_replicas(4);
    let report = fbft(4, 8).run();
    assert_sound(&report);
    assert!(
        report.max_committed() >= 5,
        "8 rounds commit at least 5 blocks, got {}",
        report.max_committed()
    );
    for log in &report.commit_logs {
        assert!(!log.is_empty(), "every replica commits");
        for update in log {
            assert!(update.level() >= cfg.f() as u64);
            assert!(update.level() <= cfg.max_strength());
        }
        assert!(
            log.iter().any(|u| u.level() == cfg.max_strength()),
            "all-honest runs strengthen commits to 2f"
        );
    }
    // First commit: round 1 certifies at 2δ, round 2 at 4δ closes the
    // 2-chain — the same 400 ms Streamlet needs for its first commit.
    assert_eq!(report.first_commit_at(0), Some(SimTime::from_millis(400)));
}

/// All-honest n = 7 (f = 2): the acceptance criterion for f = 2 — commits
/// climb the whole strength ladder to 2f = 4.
#[test]
fn seven_honest_replicas_reach_the_2f_ceiling() {
    let cfg = ProtocolConfig::for_replicas(7);
    let report = fbft(7, 10).run();
    assert_sound(&report);
    assert_eq!(report.max_commit_level(), cfg.max_strength());
    assert_eq!(cfg.max_strength(), 4);
}

/// With f vote-withholding replicas, quorums are exactly 2f + 1, so the
/// protocol stays live but no commit can climb above the standard level f
/// (= `strength_of(2f + 1)`): the strengthened quorum `f + x + 1` for
/// `x > f` is out of reach.
#[test]
fn withheld_votes_cap_commit_strength_at_f() {
    for (n, byz) in [(4usize, &[3u16][..]), (7, &[5, 6][..])] {
        let cfg = ProtocolConfig::for_replicas(n);
        let mut config = fbft(n, 8);
        for &id in byz {
            config = config.with_behavior(id, Behavior::WithholdVote);
        }
        let report = config.run();
        assert_sound(&report);
        assert!(report.max_committed() >= 4, "liveness with f withholders");
        assert_eq!(
            Some(report.max_commit_level()),
            cfg.strength_of(cfg.quorum()),
            "n={n}: 2f+1 endorsers confer exactly level f, never more"
        );
    }
}

/// f crashed (silent) replicas: liveness and the level-f cap look the same
/// as withholding from the honest side — except when a silent replica
/// leads, where the round must close by timeout certificate.
#[test]
fn silent_replicas_force_the_timeout_path_but_not_disagreement() {
    for (n, byz) in [(4usize, &[1u16][..]), (7, &[1, 2][..])] {
        let cfg = ProtocolConfig::for_replicas(n);
        let mut config = fbft(n, 8);
        for &id in byz {
            config = config.with_behavior(id, Behavior::Silent);
        }
        let report = config.run();
        assert_sound(&report);
        assert!(report.max_committed() >= 3, "n={n}: liveness with f silent");
        assert_eq!(
            Some(report.max_commit_level()),
            cfg.strength_of(cfg.quorum()),
            "n={n}: standard commits are exactly f-strong"
        );
        // The silent replicas never commit; every live one does.
        for &id in byz {
            assert!(report.chains[id as usize].is_empty());
        }
        // Rounds led by silent replicas closed via TC: the run takes
        // longer than the happy-path 2δ-per-round cadence.
        let happy_path = SimTime::from_millis(8 * 2 * 100);
        assert!(
            report.elapsed > happy_path,
            "n={n}: timeout rounds stretch the run ({})",
            report.elapsed
        );
    }
}

/// A stalling leader is the surgical version of the silent replica: it
/// votes and aggregates honestly (so strength still reaches the ceiling)
/// but never proposes, forcing a TC exactly once per leadership slot.
#[test]
fn stalling_leader_exercises_tc_recovery_without_losing_strength() {
    for (n, byz) in [(4usize, &[2u16][..]), (7, &[2, 4][..])] {
        let cfg = ProtocolConfig::for_replicas(n);
        let mut config = fbft(n, 9);
        for &id in byz {
            config = config.with_behavior(id, Behavior::StallLeader);
        }
        let report = config.run();
        assert_sound(&report);
        assert!(report.max_committed() >= 3, "n={n}: liveness with stallers");
        assert_eq!(
            report.max_commit_level(),
            cfg.max_strength(),
            "n={n}: stallers still vote, so commits reach the 2f ceiling"
        );
        let happy_path = SimTime::from_millis(9 * 2 * 100);
        assert!(report.elapsed > happy_path, "n={n}: TC rounds cost time");
    }
}

/// An equivocating leader splits the replica set across two conflicting
/// proposals. Neither side reaches a quorum, the round closes by TC,
/// honest replicas flag the double votes, and the chain recovers with no
/// disagreement between honest committed chains.
#[test]
fn equivocating_leaders_cannot_split_commits() {
    for (n, byz) in [(4usize, &[0u16][..]), (7, &[2, 5][..])] {
        let mut config = fbft(n, 10);
        for &id in byz {
            config = config.with_behavior(id, Behavior::Equivocate);
        }
        let report = config.run();
        assert_sound(&report);
        assert!(
            report.max_committed() >= 3,
            "n={n}: chain recovers after equivocated rounds"
        );
        assert!(
            report.equivocators_detected >= 1,
            "n={n}: double votes are caught"
        );
        assert!(
            report.max_commit_level() >= ProtocolConfig::for_replicas(n).f() as u64,
            "n={n}: standard commits stay at least f-strong"
        );
    }
}

/// The same configuration always produces the same bytes: chains, logs,
/// traffic, and virtual clock — the fbft driver is as deterministic as the
/// lock-step Streamlet one.
#[test]
fn fbft_runs_are_deterministic() {
    let mk = || {
        fbft(7, 10)
            .with_behavior(2, Behavior::Equivocate)
            .with_behavior(5, Behavior::StallLeader)
            .run()
    };
    let a = mk();
    let b = mk();
    assert_eq!(a.chains, b.chains);
    assert_eq!(a.commit_logs, b.commit_logs);
    assert_eq!(a.net, b.net);
    assert_eq!(a.elapsed, b.elapsed);
}

/// Interval endorsements (§3.4) plug into the round-based voting path the
/// same way markers do: an all-honest run still reaches the ceiling.
#[test]
fn interval_mode_reaches_the_ceiling_in_fbft() {
    let cfg = ProtocolConfig::for_replicas(4);
    let report = fbft(4, 8)
        .with_endorse_mode(sft_types::EndorseMode::Interval)
        .run();
    assert_sound(&report);
    assert_eq!(report.max_commit_level(), cfg.max_strength());
}

/// Vanilla mode (no endorsement info): the 2-chain commit still works and
/// — because every voter votes for each block directly — an all-honest run
/// still climbs to the ceiling once descendants' *direct* votes arrive;
/// but with a withholder, strength freezes at f exactly as in Streamlet.
#[test]
fn vanilla_mode_commits_without_endorsement_info() {
    let cfg = ProtocolConfig::for_replicas(4);
    let report = fbft(4, 8)
        .with_endorse_mode(sft_types::EndorseMode::Vanilla)
        .with_behavior(3, Behavior::WithholdVote)
        .run();
    assert_sound(&report);
    assert!(report.max_committed() >= 4);
    assert_eq!(Some(report.max_commit_level()), cfg.strength_of(3));
}
