//! Property suite: the pipelined persistence disciplines are observably
//! equivalent to the classic harness.
//!
//! [`DurabilityMode`] changes *where* the run waits for durability, not
//! *what* the protocol decides: write-through fsyncs inline before each
//! send, group commit batches fsyncs on a dedicated writer thread and
//! gates sends on its watermark — but under either discipline no frame
//! leaves before the records that justify it are durable, and under the
//! deterministic simulator the blocking gate makes every schedule
//! identical to the ungated one. These tests drive both protocols
//! through seeded random configurations — Byzantine casts up to `f`,
//! random endorsement modes, random pre-GST message loss — and assert
//! that all three modes produce byte-identical committed chains, commit
//! logs, and traffic, while group commit demonstrably fsyncs no more
//! often than write-through.

use sft_crypto::{RngCore, SplitMix64};
use sft_sim::{Behavior, DurabilityMode, Protocol, SimConfig, SimReport};
use sft_streamlet::EndorseMode;

/// Draws a behavior cast for `n` replicas with at most `f` Byzantine
/// members, each drawn from the full misbehavior menu.
fn random_behaviors(rng: &mut SplitMix64, n: usize, f: usize) -> Vec<Behavior> {
    let mut behaviors = vec![Behavior::Honest; n];
    let byzantine = rng.next_below(f as u64 + 1) as usize;
    for _ in 0..byzantine {
        let victim = rng.next_below(n as u64) as usize;
        behaviors[victim] = match rng.next_below(4) {
            0 => Behavior::Silent,
            1 => Behavior::WithholdVote,
            2 => Behavior::Equivocate,
            _ => Behavior::StallLeader,
        };
    }
    behaviors
}

/// One seeded random configuration, identical in everything but the
/// durability mode under test.
fn random_config(rng: &mut SplitMix64, protocol: Protocol, n: usize, f: usize) -> SimConfig {
    let mut config = SimConfig::new(n, 10).with_protocol(protocol);
    config.behaviors = random_behaviors(rng, n, f);
    config = config.with_endorse_mode(if rng.next_below(2) == 0 {
        EndorseMode::Marker
    } else {
        EndorseMode::Interval
    });
    if rng.next_below(3) == 0 {
        // Pre-GST loss exercises retransmission/sync under every mode.
        config = config.with_lossy_links(rng.next_u64(), 0.2);
    }
    config
}

fn run_with(config: &SimConfig, durability: DurabilityMode) -> SimReport {
    config.clone().with_durability(durability).run()
}

/// The outcome all three disciplines must agree on byte-for-byte: what
/// committed, at what strength, what was sent, and what safety observed.
fn decisions(report: &SimReport) -> impl PartialEq + std::fmt::Debug {
    (
        report.chains.clone(),
        report.commit_logs.clone(),
        report.net,
        report.txns_committed,
        report.safety_violations,
        report.equivocators_detected,
    )
}

fn assert_equivalent(protocol: Protocol, n: usize, f: usize, seed: u64) {
    let mut rng = SplitMix64::new(seed);
    for case in 0..4 {
        let config = random_config(&mut rng, protocol, n, f);
        let classic = run_with(&config, DurabilityMode::InMemory);
        let write_through = run_with(&config, DurabilityMode::WriteThrough);
        let group = run_with(&config, DurabilityMode::GroupCommit);
        for (mode, run) in [("write-through", &write_through), ("group-commit", &group)] {
            assert_eq!(
                decisions(&classic),
                decisions(run),
                "{protocol:?} n={n} seed={seed} case={case}: {mode} diverged \
                 from the classic harness (behaviors {:?})",
                config.behaviors
            );
        }
        assert_eq!(classic.wal_fsyncs, 0, "no wal in memory-only mode");
        if write_through.max_committed() > 0 {
            assert!(
                write_through.wal_fsyncs > 0,
                "{protocol:?} n={n} seed={seed} case={case}: a committing \
                 write-through run fsyncs every persisted record"
            );
            assert!(
                group.wal_fsyncs > 0,
                "{protocol:?} n={n} seed={seed} case={case}: a committing \
                 group-commit run still fsyncs (in groups)"
            );
        }
        // Group commit never syncs *more* often than one-per-record.
        assert!(
            group.wal_fsyncs <= write_through.wal_fsyncs,
            "{protocol:?} n={n} seed={seed} case={case}: group commit \
             fsynced {} times vs write-through's {}",
            group.wal_fsyncs,
            write_through.wal_fsyncs,
        );
    }
}

#[test]
fn streamlet_f1_disciplines_agree() {
    assert_equivalent(Protocol::Streamlet, 4, 1, 0x5EED);
}

#[test]
fn streamlet_f2_disciplines_agree() {
    assert_equivalent(Protocol::Streamlet, 7, 2, 0xFEED);
}

#[test]
fn fbft_f1_disciplines_agree() {
    assert_equivalent(Protocol::Fbft, 4, 1, 0xF00D);
}

#[test]
fn fbft_f2_disciplines_agree() {
    assert_equivalent(Protocol::Fbft, 7, 2, 0xBEEF);
}

// ---------------------------------------------------------------------------
// Gate audit: real protocol traffic clears its gates before hitting the wire.
// ---------------------------------------------------------------------------

/// Wraps [`SimTransport`] to audit the pipelined discipline with real
/// protocol traffic: every frame the runner routes through the gated
/// entry points must clear its [`SendGate`](sft_types::SendGate) —
/// watermark covering the persist sequence that justifies it — before
/// the frame is handed to the network.
struct GateAudit {
    inner: sft_network::SimTransport,
    gated: std::sync::Arc<std::sync::atomic::AtomicU64>,
}

impl GateAudit {
    fn clear(&self, gate: &sft_types::SendGate) {
        gate.wait_open();
        assert!(
            gate.is_open(),
            "frame released before the watermark covered seq {}",
            gate.seq()
        );
        self.gated
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }
}

impl sft_sim::Transport for GateAudit {
    fn replica_count(&self) -> usize {
        self.inner.replica_count()
    }

    fn send(
        &mut self,
        from: sft_types::ReplicaId,
        to: sft_types::ReplicaId,
        p: std::sync::Arc<[u8]>,
    ) {
        self.inner.send(from, to, p);
    }

    fn broadcast(&mut self, from: sft_types::ReplicaId, p: std::sync::Arc<[u8]>) {
        self.inner.broadcast(from, p);
    }

    fn poll_deliver(&mut self, deadline: sft_types::SimTime) -> Vec<sft_network::Delivery> {
        self.inner.poll_deliver(deadline)
    }

    fn now(&self) -> sft_types::SimTime {
        self.inner.now()
    }

    fn next_deliver_at(&self) -> Option<sft_types::SimTime> {
        self.inner.next_deliver_at()
    }

    fn is_idle(&self) -> bool {
        self.inner.is_idle()
    }

    fn stats(&self) -> sft_network::NetworkStats {
        self.inner.stats()
    }

    fn supports_gating(&self) -> bool {
        true
    }

    fn send_gated(
        &mut self,
        from: sft_types::ReplicaId,
        to: sft_types::ReplicaId,
        p: std::sync::Arc<[u8]>,
        gate: sft_types::SendGate,
    ) {
        self.clear(&gate);
        self.inner.send(from, to, p);
    }

    fn broadcast_gated(
        &mut self,
        from: sft_types::ReplicaId,
        p: std::sync::Arc<[u8]>,
        gate: sft_types::SendGate,
    ) {
        self.clear(&gate);
        self.inner.broadcast(from, p);
    }
}

/// Runs `engines` over the auditing transport with per-replica
/// group-commit logs, returning the report and how many frames were
/// gated.
fn audit_run<E: sft_core::ReplicaEngine>(
    engines: Vec<E>,
    config: &SimConfig,
    plan: sft_sim::RunPlan,
) -> (SimReport, u64) {
    use sft_core::{DurableWal, GroupCommitWal, MemSink};
    let gated = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
    let transport = GateAudit {
        inner: sft_network::SimTransport::new(sft_network::SimNetwork::new(config.delay), config.n),
        gated: std::sync::Arc::clone(&gated),
    };
    let mut runner = sft_sim::EngineRunner::new(
        engines,
        config.behaviors.clone(),
        transport,
        sft_sim::NoMischief,
        sft_sim::RunnerConfig {
            plan,
            horizon: sft_types::SimTime::ZERO + config.run_horizon,
            drain_bound: config.drain_sync_bound,
            drain_step: config.delay,
        },
    );
    let wals: Vec<Box<dyn DurableWal>> = (0..config.n)
        .map(|_| {
            Box::new(
                GroupCommitWal::spawn(MemSink::new(), sft_obs::noop(), None)
                    .expect("spawn wal writer"),
            ) as Box<dyn DurableWal>
        })
        .collect();
    runner.set_wals(wals);
    let report = runner.run();
    let gated = gated.load(std::sync::atomic::Ordering::Relaxed);
    (report, gated)
}

/// Both protocols, end to end over the auditing transport: runs commit,
/// agree, and route their post-persist traffic through gates that are
/// provably open at release time.
#[test]
fn real_protocol_traffic_clears_its_gates_before_the_wire() {
    let config = SimConfig::new(4, 8);
    let (report, gated) = audit_run(
        sft_sim::build_streamlet_engines(&config, config.delay * 2),
        &config,
        sft_sim::RunPlan::UntilQuiescent,
    );
    assert!(report.agreement() && report.max_committed() > 0);
    assert!(gated > 0, "streamlet votes ride the gated path");

    let config = SimConfig::new(4, 8).with_protocol(Protocol::Fbft);
    let (report, gated) = audit_run(
        sft_sim::build_fbft_engines(&config, config.base_timeout),
        &config,
        sft_sim::RunPlan::PastRound(sft_types::Round::new(config.epochs)),
    );
    assert!(report.agreement() && report.max_committed() > 0);
    assert!(gated > 0, "fbft votes and proposals ride the gated path");
}

/// The wal-backed metrics surface when recording is on: fsync counters
/// and group-size histograms land in [`SimReport::metrics`], and the
/// hot-path persist wait is attributed to its own phase.
#[test]
fn recorded_metrics_cover_the_wal() {
    use sft_obs::names;
    let report = SimConfig::new(4, 8)
        .with_protocol(Protocol::Fbft)
        .with_recording(true)
        .with_durability(DurabilityMode::GroupCommit)
        .run();
    let fsyncs = report.metrics.counter(names::WAL_FSYNCS).unwrap_or(0);
    assert!(fsyncs > 0, "recorded fsync counter tracks the writer");
    assert_eq!(fsyncs, report.wal_fsyncs, "counter and report field agree");
    let group = report
        .metrics
        .hist(names::WAL_GROUP_SIZE)
        .expect("group-size histogram");
    assert!(group.count > 0 && group.p50 >= 1);
    assert!(
        report.metrics.hist(names::PHASE_PERSIST_WAIT_NS).is_some(),
        "persist wait is attributed to its own phase"
    );
}
