//! Client-plane acceptance: the strength-graded ack contract, end to
//! end over real TCP, plus the admission-control verdicts and the WAL's
//! role in client dedup across a crash/restart.
//!
//! The headline test is the PR's acceptance criterion: a client dialing
//! a replica's client gateway with `ack_at: x` receives its
//! [`ClientAck::Committed`] only once the containing block's
//! strong-commit level has reached `x` — asserted not against the ack
//! alone but against the replica's own strong-commit log, for
//! `x ∈ {0, 1, 2}` on both protocols (n = 4, so 2 = 2f is the ceiling).

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use sft_core::{scan_wal, MemSink, ReplicaEngine, Wal, WalRecord};
use sft_network::{SimNetwork, SimTransport};
use sft_sim::{
    build_streamlet_engines, run_over_tcp_serving, Behavior, EngineRunner, NoMischief, Protocol,
    RunPlan, RunnerConfig, SimConfig, TcpPacing,
};
use sft_types::{
    ClientAck, ClientFrame, ClientRequest, Decode, Encode, Envelope, ProtocolTag, ReplicaId,
    SimTime, Transaction,
};

/// Dials `addr` as client `me`, submits one transaction per entry of
/// `ack_ats`, and reads until every submission has a committed ack (or
/// the replica hangs up). Returns `(requested_x, ack)` pairs.
fn submit_and_collect(
    addr: SocketAddr,
    replica: ReplicaId,
    me: ReplicaId,
    ack_ats: &[u64],
) -> Vec<(u64, ClientAck)> {
    let mut sock = TcpStream::connect(addr).expect("dial the client gateway");
    sock.set_nodelay(true).unwrap();
    sock.write_all(&Envelope::to_peer(me, replica, ProtocolTag::Client, Vec::new()).to_frame())
        .expect("hello");
    let mut want: HashMap<_, u64> = HashMap::new();
    for &x in ack_ats {
        let req = ClientRequest::new(
            Transaction::new(u64::from(me.as_u16()), x, vec![0x77; 32]),
            x,
        );
        want.insert(req.txn_id(), x);
        let payload = ClientFrame::Request(req).to_bytes();
        sock.write_all(&Envelope::to_peer(me, replica, ProtocolTag::Client, payload).to_frame())
            .expect("submit");
    }
    sock.set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    let mut buf = Vec::new();
    let mut tmp = [0u8; 4096];
    let mut got = Vec::new();
    while got.len() < ack_ats.len() {
        match sock.read(&mut tmp) {
            Ok(0) => break,
            Ok(n) => buf.extend_from_slice(&tmp[..n]),
            Err(_) => break,
        }
        while let Ok(Some((env, used))) = Envelope::decode_frame(&buf) {
            buf.drain(..used);
            if let Ok(ClientFrame::Ack(ack)) = ClientFrame::from_bytes(&env.payload) {
                let x = want[&ack.txn_id()];
                got.push((x, ack));
            }
        }
    }
    got
}

/// The acceptance criterion proper, for one protocol.
fn ack_strength_contract(protocol: Protocol, epochs: u64) {
    let config = SimConfig::new(4, epochs)
        .with_protocol(protocol)
        .with_batch_size(8)
        .with_live_clients(true);
    let mut client = None;
    let report = run_over_tcp_serving(&config, TcpPacing::default(), |addrs| {
        let addr = addrs[0];
        client = Some(std::thread::spawn(move || {
            submit_and_collect(addr, ReplicaId::new(0), ReplicaId::new(900), &[0, 1, 2])
        }));
    })
    .expect("loopback mesh");
    let got = client.expect("ready ran").join().expect("client thread");
    assert_eq!(got.len(), 3, "every requested strength was acknowledged");

    // Every ack is judged against the serving replica's own
    // strong-commit log: the strength it reports must be a level that
    // block actually logged, at least the requested x, and exactly the
    // FIRST logged level satisfying x — an ack sent any earlier would
    // precede the strength it certifies.
    let log = &report.commit_logs[0];
    for (x, ack) in got {
        let ClientAck::Committed {
            round, strength, ..
        } = ack
        else {
            panic!("requested x={x}, got a non-committed ack {ack:?}");
        };
        assert!(strength >= x, "x={x} acked below strength: {strength}");
        let levels: Vec<u64> = log
            .iter()
            .filter(|u| u.round() == round)
            .map(|u| u.level())
            .collect();
        assert!(
            levels.contains(&strength),
            "x={x}: ack claims {strength}-strong but replica 0's log for \
             round {round} only shows {levels:?}"
        );
        let first_reaching_x = levels
            .iter()
            .copied()
            .filter(|&l| l >= x)
            .min()
            .expect("some logged level satisfied the ack");
        assert_eq!(
            strength, first_reaching_x,
            "x={x}: the ack fires at the first strength upgrade to reach \
             x, not a later one"
        );
    }
    assert!(report.agreement());
    assert!(report.commit_strength_monotone());
}

#[test]
fn tcp_client_acks_fire_at_requested_strength_streamlet() {
    ack_strength_contract(Protocol::Streamlet, 16);
}

#[test]
fn tcp_client_acks_fire_at_requested_strength_fbft() {
    // SFT-DiemBFT rounds close on QCs and race over loopback; a larger
    // round budget buys the same wall clock Streamlet's paced epochs do.
    ack_strength_contract(Protocol::Fbft, 96);
}

/// Admission control at the engine surface: an admitted submission
/// returns no verdict (the ack comes later, through `drain_acks`), a
/// resubmission is refused as `Duplicate`, and a full mempool answers
/// `Busy` — the backpressure signal clients retry on.
#[test]
fn submit_verdicts_admit_duplicate_and_busy() {
    let config = SimConfig::new(4, 4)
        .with_batch_size(4)
        .with_live_clients(true)
        .with_mempool_txn_cap(1);
    let mut engine = build_streamlet_engines(&config, config.delay * 2).remove(0);
    let now = SimTime::ZERO;
    let first = ClientRequest::new(Transaction::new(9, 0, vec![1, 2, 3]), 0);
    let second = ClientRequest::new(Transaction::new(9, 1, vec![4, 5, 6]), 0);
    assert_eq!(engine.submit(&first, now), None, "admitted: ack deferred");
    assert_eq!(
        engine.submit(&first, now),
        Some(ClientAck::Duplicate {
            txn_id: first.txn_id()
        }),
        "a resubmission is refused, not double-queued"
    );
    assert_eq!(
        engine.submit(&second, now),
        Some(ClientAck::Busy {
            txn_id: second.txn_id()
        }),
        "the cap answers Busy until a drain makes room"
    );
}

/// Round-trips `records` through the on-disk frame codec so the replay
/// exercises what a restarted process reads, not in-memory records.
fn through_wal_codec(records: &[WalRecord]) -> Vec<WalRecord> {
    let mut wal = Wal::new(MemSink::new(), 4);
    for record in records {
        wal.append(record).expect("memory sink never fails");
    }
    wal.flush().expect("memory sink never fails");
    let scan = scan_wal(wal.sink().bytes()).expect("own frames scan clean");
    assert_eq!(scan.records.len(), records.len(), "lossless round-trip");
    scan.records
}

/// Client dedup survives a crash: a replica rebuilt from its WAL refuses
/// a transaction it already committed (`Duplicate`), while an amnesiac
/// rebuild re-admits it — double inclusion, were a client to retry into
/// a crashed-and-forgotten replica. The WAL is load-bearing for the
/// client plane, not just for vote dedup.
#[test]
fn wal_replay_restores_client_dedup_across_restart() {
    let config = SimConfig::new(4, 8).with_batch_size(16);
    let period = config.delay * 2;
    let engines = build_streamlet_engines(&config, period);
    let transport = SimTransport::new(SimNetwork::new(config.delay), 4);
    let mut runner = EngineRunner::new(
        engines,
        vec![Behavior::Honest; 4],
        transport,
        NoMischief,
        RunnerConfig {
            plan: RunPlan::UntilQuiescent,
            horizon: SimTime::ZERO + config.run_horizon,
            drain_bound: config.drain_sync_bound,
            drain_step: config.delay,
        },
    );
    let end = SimTime::ZERO + period * 8;
    runner.run_until(end);
    let report = runner.report();
    assert!(
        report.txns_committed > 0,
        "the batched run committed client transactions"
    );

    // The first pre-fed workload transaction, by construction — it rode
    // the very first batch, so its block is long committed.
    let committed_txn = Transaction::new(0, 0, vec![0xc5; config.txn_bytes as usize]);
    let req = ClientRequest::new(committed_txn, 0);

    // Restart from the WAL: fresh engine (no pre-feed), replay, submit.
    let fresh_config = config.clone().with_live_clients(true);
    let mut recovered = build_streamlet_engines(&fresh_config, period).remove(0);
    for record in &through_wal_codec(runner.persisted(0)) {
        recovered.restore(record, end);
    }
    assert_eq!(
        recovered.submit(&req, end),
        Some(ClientAck::Duplicate {
            txn_id: req.txn_id()
        }),
        "replaying BlockCommitted records re-seeds the dedup set"
    );

    // Amnesiac restart: same rebuild, no replay — the committed
    // transaction is re-admitted as if never seen.
    let mut amnesiac = build_streamlet_engines(&fresh_config, period).remove(0);
    assert_eq!(
        amnesiac.submit(&req, end),
        None,
        "without the WAL the duplicate sails through admission"
    );
}
