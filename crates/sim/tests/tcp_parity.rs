//! The transport-agnosticism acceptance test: the same engines the
//! deterministic simulator builds, driven by the same generic run loop,
//! commit the same chain over a real loopback TCP mesh
//! ([`sft_sim::run_over_tcp`]).
//!
//! Content determinism is what makes this assertable: blocks are a pure
//! function of (parent, round, proposer, payload) and the payload stream
//! is deterministic, so wall-clock jitter can shorten a TCP run's chain
//! but never change its blocks. The CI `tcp-smoke` step runs the larger
//! `repro --transport tcp` variant; this test keeps the path covered by
//! plain `cargo test` with a small, fast configuration.

use sft_sim::{run_over_tcp, Protocol, SimConfig, TcpPacing};

fn tcp_matches_sim(protocol: Protocol) {
    let config = SimConfig::new(4, 6)
        .with_protocol(protocol)
        .with_batch_size(8);
    let sim_report = config.clone().run();
    assert!(sim_report.agreement());
    assert!(sim_report.max_committed() >= 3);

    let tcp_report = run_over_tcp(&config, TcpPacing::default()).expect("loopback mesh");

    assert!(tcp_report.agreement(), "{protocol:?}: tcp replicas agree");
    assert_eq!(tcp_report.safety_violations, 0);
    assert!(
        tcp_report.max_committed() >= 1,
        "{protocol:?}: tcp run commits"
    );
    tcp_report
        .check_committed_prefix_of(&sim_report)
        .unwrap_or_else(|e| panic!("{protocol:?}: {e}"));
}

#[test]
fn streamlet_over_tcp_commits_the_sim_prefix() {
    tcp_matches_sim(Protocol::Streamlet);
}

/// The same parity claim at the first large sweep size. n = 31 means
/// 930 live connections through one writer thread and 31 endpoint
/// readers — the scale the event-driven mesh exists for. Epochs are few:
/// the point is that a wide mesh agrees with the simulator, not a long
/// chain.
#[test]
fn n31_over_tcp_commits_the_sim_prefix() {
    let config = SimConfig::new(31, 4)
        .with_protocol(Protocol::Streamlet)
        .with_batch_size(4);
    let sim_report = config.clone().run();
    assert!(sim_report.agreement());
    assert!(sim_report.max_committed() >= 1);

    let tcp_report = run_over_tcp(&config, TcpPacing::default()).expect("loopback mesh");
    assert!(tcp_report.agreement(), "n=31 tcp replicas agree");
    assert_eq!(tcp_report.safety_violations, 0);
    assert_eq!(tcp_report.net.dropped, 0, "backpressure, not loss");
    tcp_report
        .check_committed_prefix_of(&sim_report)
        .unwrap_or_else(|e| panic!("n=31: {e}"));
}

#[test]
fn fbft_over_tcp_commits_the_sim_prefix() {
    tcp_matches_sim(Protocol::Fbft);
}
