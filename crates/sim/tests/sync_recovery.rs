//! Acceptance scenarios for the block-sync / catch-up subsystem under
//! partial synchrony: partitioned and lossy schedules, every Byzantine
//! behavior, both protocols, f ∈ {1, 2}.
//!
//! The headline criterion: a replica partitioned through an equivocation
//! split — the worst case for falling behind, since the proposals it
//! missed include conflicting twins — recovers the full committed prefix
//! after the partition heals, with agreement and per-block commit-strength
//! monotonicity intact.

use sft_sim::{Behavior, Protocol, SimConfig};

/// The invariants every partial-synchrony run must keep: agreement, no
/// observed safety violation, and monotone per-block commit strength.
fn assert_sound(report: &sft_sim::SimReport) {
    assert!(
        report.agreement(),
        "committed chains must be prefix-compatible"
    );
    assert_eq!(report.safety_violations, 0);
    assert!(
        report.commit_strength_monotone(),
        "per-block strength levels only climb"
    );
}

/// The acceptance criterion: replica n−1 is partitioned away while an
/// equivocating leader splits the rest, the partition heals mid-run, and
/// the straggler recovers the committed prefix via block-sync — for
/// f ∈ {1, 2} on both protocols.
#[test]
fn partitioned_replica_recovers_committed_prefix_after_equivocation_split() {
    for protocol in [Protocol::Streamlet, Protocol::Fbft] {
        for n in [4usize, 7] {
            let report = SimConfig::new(n, 12)
                .with_protocol(protocol)
                .with_behavior(0, Behavior::Equivocate)
                .with_partitioned_straggler()
                .run();
            assert_sound(&report);
            assert!(
                report.max_committed() >= 3,
                "{protocol:?} n={n}: the majority side keeps committing"
            );
            assert!(
                report.sync_blocks_fetched > 0,
                "{protocol:?} n={n}: recovery must go through block-sync"
            );
            assert!(
                report.recovered_replicas >= 1,
                "{protocol:?} n={n}: the straggler counts as recovered"
            );
            // The full committed prefix: the straggler's chain is a prefix
            // of the longest (agreement above) and reaches its tip modulo
            // the commits still in flight when the run stops.
            let straggler = &report.chains[n - 1];
            assert!(
                straggler.len() + 2 >= report.max_committed(),
                "{protocol:?} n={n}: straggler recovered {} of {} commits",
                straggler.len(),
                report.max_committed()
            );
        }
    }
}

/// Every Byzantine behavior stays sound *and live* under seeded message
/// loss with GST mid-run, for f ∈ {1, 2} on both protocols. (Streamlet
/// gets a longer horizon: with an empty leader slot every n epochs, its
/// three-consecutive-epoch windows need a few post-GST epochs to
/// re-converge forked notarized sets.)
#[test]
fn every_behavior_survives_lossy_links() {
    let behaviors = [
        None,
        Some(Behavior::Equivocate),
        Some(Behavior::WithholdVote),
        Some(Behavior::Silent),
        Some(Behavior::StallLeader),
    ];
    for protocol in [Protocol::Streamlet, Protocol::Fbft] {
        let epochs = if protocol == Protocol::Streamlet {
            20
        } else {
            12
        };
        for n in [4usize, 7] {
            for behavior in behaviors {
                for seed in [1u64, 2, 3] {
                    let mut config = SimConfig::new(n, epochs)
                        .with_protocol(protocol)
                        .with_lossy_links(seed, 0.15);
                    if let Some(b) = behavior {
                        config = config.with_behavior(0, b);
                    }
                    let report = config.run();
                    assert_sound(&report);
                    assert!(
                        report.max_committed() > 0,
                        "{protocol:?} n={n} {behavior:?} seed={seed}: \
                         liveness after GST"
                    );
                }
            }
        }
    }
}

/// Runs under a fault schedule are exactly as deterministic as lossless
/// ones: drops come from a seeded stream keyed to send order.
#[test]
fn faulty_runs_are_deterministic() {
    for protocol in [Protocol::Streamlet, Protocol::Fbft] {
        let mk = || {
            SimConfig::new(7, 10)
                .with_protocol(protocol)
                .with_behavior(2, Behavior::Equivocate)
                .with_lossy_links(42, 0.2)
                .run()
        };
        let a = mk();
        let b = mk();
        assert_eq!(a.chains, b.chains);
        assert_eq!(a.commit_logs, b.commit_logs);
        assert_eq!(a.net, b.net);
        assert_eq!(a.sync_requests, b.sync_requests);
        assert_eq!(a.sync_blocks_fetched, b.sync_blocks_fetched);
        assert_eq!(a.elapsed, b.elapsed);
    }
}

/// Lossless runs never touch the sync path: zero requests, zero fetches,
/// zero recovered replicas — so the perf baselines of the happy path are
/// untouched by the subsystem's existence.
#[test]
fn lossless_runs_issue_no_sync_traffic() {
    for protocol in [Protocol::Streamlet, Protocol::Fbft] {
        let report = SimConfig::new(4, 10).with_protocol(protocol).run();
        assert_eq!(report.sync_requests, 0, "{protocol:?}");
        assert_eq!(report.sync_blocks_fetched, 0, "{protocol:?}");
        assert_eq!(report.recovered_replicas, 0, "{protocol:?}");
        assert_eq!(report.net.dropped, 0, "{protocol:?}");
    }
}

/// A partitioned straggler in an otherwise honest system also recovers —
/// the plain-partition variant of the headline scenario, and the one the
/// CI `partition` cell of the scenario matrix mirrors most directly.
#[test]
fn partitioned_replica_recovers_without_byzantine_help() {
    for protocol in [Protocol::Streamlet, Protocol::Fbft] {
        let n = 4;
        let report = SimConfig::new(n, 12)
            .with_protocol(protocol)
            .with_partitioned_straggler()
            .run();
        assert_sound(&report);
        assert!(report.recovered_replicas >= 1, "{protocol:?}");
        let straggler = &report.chains[n - 1];
        assert!(
            straggler.len() + 2 >= report.max_committed(),
            "{protocol:?}: straggler at {} of {}",
            straggler.len(),
            report.max_committed()
        );
    }
}
