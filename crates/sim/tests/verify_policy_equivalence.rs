//! Property suite: deferred quorum-time verification is observably
//! equivalent to eager per-arrival verification.
//!
//! [`VerifyPolicy::OnQuorum`] changes *when* signatures are checked, not
//! *what* the protocol decides: every certificate still rests on the
//! same `2f + 1` (or `f + x + 1`) valid signatures before a replica acts
//! on it. These tests drive both protocols through seeded random
//! configurations — Byzantine casts up to `f`, random endorsement modes,
//! random pre-GST message loss — and assert that the two policies
//! produce byte-identical committed chains, commit logs, and traffic,
//! while the deferred policy demonstrably does its checking in batches.

use sft_crypto::{RngCore, SplitMix64};
use sft_sim::{Behavior, Protocol, SimConfig, SimReport};
use sft_streamlet::EndorseMode;
use sft_types::VerifyPolicy;

/// Draws a behavior cast for `n` replicas with at most `f` Byzantine
/// members, each drawn from the full misbehavior menu.
fn random_behaviors(rng: &mut SplitMix64, n: usize, f: usize) -> Vec<Behavior> {
    let mut behaviors = vec![Behavior::Honest; n];
    let byzantine = rng.next_below(f as u64 + 1) as usize;
    for _ in 0..byzantine {
        let victim = rng.next_below(n as u64) as usize;
        behaviors[victim] = match rng.next_below(4) {
            0 => Behavior::Silent,
            1 => Behavior::WithholdVote,
            2 => Behavior::Equivocate,
            _ => Behavior::StallLeader,
        };
    }
    behaviors
}

/// One seeded random configuration, identical in everything but the
/// verify policy under test. Returns the config and whether its links
/// drop messages.
fn random_config(
    rng: &mut SplitMix64,
    protocol: Protocol,
    n: usize,
    f: usize,
) -> (SimConfig, bool) {
    let mut config = SimConfig::new(n, 10).with_protocol(protocol);
    config.behaviors = random_behaviors(rng, n, f);
    config = config.with_endorse_mode(if rng.next_below(2) == 0 {
        EndorseMode::Marker
    } else {
        EndorseMode::Interval
    });
    let lossy = rng.next_below(3) == 0;
    if lossy {
        // Pre-GST loss exercises retransmission/sync under both policies.
        config = config.with_lossy_links(rng.next_u64(), 0.2);
    }
    (config, lossy)
}

fn run_with(config: &SimConfig, policy: VerifyPolicy) -> SimReport {
    config.clone().with_verify_policy(policy).run()
}

/// The outcome the two policies must agree on under every delivery
/// schedule: what committed, what was sent, and what safety observed.
fn decisions(report: &SimReport) -> impl PartialEq + std::fmt::Debug {
    (
        report.chains.clone(),
        report.net,
        report.txns_committed,
        report.safety_violations,
        report.equivocators_detected,
    )
}

fn assert_equivalent(protocol: Protocol, n: usize, f: usize, seed: u64) {
    let mut rng = SplitMix64::new(seed);
    for case in 0..4 {
        let (config, lossy) = random_config(&mut rng, protocol, n, f);
        let eager = run_with(&config, VerifyPolicy::OnArrival);
        let deferred = run_with(&config, VerifyPolicy::OnQuorum);
        assert_eq!(
            decisions(&eager),
            decisions(&deferred),
            "{protocol:?} n={n} seed={seed} case={case}: policies diverged \
             (behaviors {:?})",
            config.behaviors
        );
        // Strong-commit logs record *when* endorsement quorums were
        // graded. Under reliable delivery the two policies see the same
        // endorsements and the logs match exactly. Under message loss a
        // vote set that never reaches quorum is never batch-verified, so
        // the deferred run legitimately skips the strength observations
        // that eager checking extracted from sub-quorum vote sets —
        // chains and safety above still agree.
        if !lossy {
            assert_eq!(
                eager.commit_logs, deferred.commit_logs,
                "{protocol:?} n={n} seed={seed} case={case}: lossless \
                 strength logs diverged (behaviors {:?})",
                config.behaviors
            );
        }
        assert_eq!(
            eager.batch_verify_calls, 0,
            "eager runs never verify in batches"
        );
        // Deferred runs do their checking in quorum batches whenever the
        // run certified anything at all.
        if deferred.max_committed() > 0 {
            assert!(
                deferred.batch_verify_calls > 0,
                "{protocol:?} n={n} seed={seed} case={case}: a committing \
                 deferred run must have formed batched quorums"
            );
            assert!(
                deferred.sig_verifications < eager.sig_verifications,
                "{protocol:?} n={n} seed={seed} case={case}: deferral must \
                 strictly reduce individual signature checks \
                 ({} vs eager {})",
                deferred.sig_verifications,
                eager.sig_verifications,
            );
        }
    }
}

#[test]
fn streamlet_f1_policies_agree() {
    assert_equivalent(Protocol::Streamlet, 4, 1, 0xA11CE);
}

#[test]
fn streamlet_f2_policies_agree() {
    assert_equivalent(Protocol::Streamlet, 7, 2, 0xB0B);
}

#[test]
fn fbft_f1_policies_agree() {
    assert_equivalent(Protocol::Fbft, 4, 1, 0xCAFE);
}

#[test]
fn fbft_f2_policies_agree() {
    assert_equivalent(Protocol::Fbft, 7, 2, 0xD1CE);
}
