//! In-process crash/restart recovery: a replica is killed mid-run (its
//! engine dropped, exactly what `kill -9` does to a process's memory),
//! rebuilt from nothing, and fed its write-ahead log through the real
//! frame codec before rejoining. The suite proves the two halves of the
//! recovery contract on both protocols and both `f ∈ {1, 2}` system
//! sizes:
//!
//! - **parity** — the restarted replica's committed chain stays a prefix
//!   of the others' and grows past its pre-crash length (it recovers and
//!   keeps up), with zero safety violations and zero equivocation
//!   observations;
//! - **the log is load-bearing** — an *amnesiac* restart (same rebuild,
//!   no WAL replay) votes twice in the same round, and an honest
//!   replica's tracker flags it: without the log, a crashed replica is a
//!   Byzantine replica.

use sft_core::{
    scan_wal, Block, MemSink, ProtocolConfig, QuorumCertificate, ReplicaEngine, Wal, WalRecord,
};
use sft_crypto::KeyRegistry;
use sft_network::{SimNetwork, SimTransport, Transport};
use sft_sim::{
    build_fbft_engines, build_streamlet_engines, Behavior, EngineRunner, NoMischief, RunPlan,
    RunnerConfig, SimConfig,
};
use sft_types::{EndorseMode, Payload, Round, SimTime};

/// Round-trips `records` through the on-disk frame codec — encode, then
/// scan back — so the replay below exercises exactly what a restarted
/// process would read, not the in-memory records the runner collected.
fn through_wal_codec(records: &[WalRecord]) -> Vec<WalRecord> {
    let mut wal = Wal::new(MemSink::new(), 4);
    for record in records {
        wal.append(record).expect("memory sink never fails");
    }
    wal.flush().expect("memory sink never fails");
    let scan = scan_wal(wal.sink().bytes()).expect("own frames scan clean");
    assert_eq!(scan.records.len(), records.len(), "lossless round-trip");
    scan.records
}

/// Kills replica `victim` at `crash_at`, keeps it dark until `restart_at`,
/// rebuilds it from a codec-round-tripped WAL replay, and drives the run
/// to `finish` (with a sync drain in `delay` steps so catch-up fetches and
/// their retries fire). Returns the victim's pre-crash committed chain
/// length for the caller's progress assertion, plus the final report.
fn crash_restart_streamlet(n: usize, epochs: u64) {
    let config = SimConfig::new(n, epochs);
    let period = config.delay * 2;
    let victim = 0usize;

    let engines = build_streamlet_engines(&config, period);
    let transport = SimTransport::new(SimNetwork::new(config.delay), n);
    let mut runner = EngineRunner::new(
        engines,
        vec![Behavior::Honest; n],
        transport,
        NoMischief,
        RunnerConfig {
            plan: RunPlan::UntilQuiescent,
            horizon: SimTime::ZERO + config.run_horizon,
            drain_bound: config.drain_sync_bound,
            drain_step: config.delay,
        },
    );

    // Run a third of the schedule, then kill -9 the victim: its engine
    // (all in-memory state) is dropped on the floor; only the WAL the
    // runner persisted ahead of its sends survives.
    let crash_at = SimTime::ZERO + period * (epochs / 3);
    runner.run_until(crash_at);
    let pre_crash_chain = runner.engine(victim).committed_chain().to_vec();
    assert!(
        !runner.persisted(victim).is_empty(),
        "the victim voted before the crash, so its WAL is non-empty"
    );
    runner.set_behavior(victim, Behavior::Silent);

    // Two epochs of downtime, then restart: a fresh engine replays the
    // recovered records before its first tick.
    let restart_at = crash_at + period * 2;
    runner.run_until(restart_at);
    let mut fresh = build_streamlet_engines(&config, period).remove(victim);
    for record in &through_wal_codec(runner.persisted(victim)) {
        fresh.restore(record, restart_at);
    }
    runner.replace_engine(victim, fresh);
    runner.set_behavior(victim, Behavior::Honest);

    // Finish the schedule, then drain catch-up traffic in δ steps (each
    // step fires the sync poll and retry timers run() would drive).
    let end = SimTime::ZERO + period * epochs;
    runner.run_until(end);
    for step in 1..=60u64 {
        runner.run_until(end + config.delay * step);
    }

    let report = runner.report();
    assert!(report.agreement(), "committed-prefix parity after restart");
    assert_eq!(report.safety_violations, 0);
    assert_eq!(
        report.equivocators_detected, 0,
        "a WAL-recovered replica never contradicts its pre-crash votes"
    );
    let final_chain = &report.chains[victim];
    assert!(
        final_chain.len() > pre_crash_chain.len(),
        "the restarted replica commits past its pre-crash prefix \
         ({} vs {})",
        final_chain.len(),
        pre_crash_chain.len()
    );
    assert_eq!(
        &final_chain[..pre_crash_chain.len()],
        &pre_crash_chain[..],
        "recovery never rolls back a committed block"
    );
}

fn crash_restart_fbft(n: usize, target_rounds: u64) {
    let config = SimConfig::new(n, target_rounds).with_protocol(sft_sim::Protocol::Fbft);
    let victim = 0usize;

    let engines = build_fbft_engines(&config, config.base_timeout);
    let transport = SimTransport::new(SimNetwork::new(config.delay), n);
    let mut runner = EngineRunner::new(
        engines,
        vec![Behavior::Honest; n],
        transport,
        NoMischief,
        RunnerConfig {
            plan: RunPlan::PastRound(Round::new(target_rounds)),
            horizon: SimTime::ZERO + config.run_horizon,
            drain_bound: config.drain_sync_bound,
            drain_step: config.delay,
        },
    );

    // SFT-DiemBFT self-paces at ~2δ per round; crash mid-pipeline.
    let crash_at = SimTime::ZERO + config.delay * target_rounds;
    runner.run_until(crash_at);
    let pre_crash_chain = runner.engine(victim).committed_chain().to_vec();
    assert!(
        !runner.persisted(victim).is_empty(),
        "the victim voted before the crash, so its WAL is non-empty"
    );
    runner.set_behavior(victim, Behavior::Silent);

    let restart_at = crash_at + config.base_timeout * 2;
    runner.run_until(restart_at);
    let mut fresh = build_fbft_engines(&config, config.base_timeout).remove(victim);
    for record in &through_wal_codec(runner.persisted(victim)) {
        fresh.restore(record, restart_at);
    }
    runner.replace_engine(victim, fresh);
    runner.set_behavior(victim, Behavior::Honest);

    // Drive well past the target in δ steps: the survivors keep
    // pipelining rounds, and each step fires the victim's sync poll.
    let end = restart_at + config.base_timeout * 2 * (target_rounds + 4);
    let mut at = runner.transport().now();
    while at < end {
        at += config.delay;
        runner.run_until(at);
    }

    let report = runner.report();
    assert!(report.agreement(), "committed-prefix parity after restart");
    assert_eq!(report.safety_violations, 0);
    assert_eq!(
        report.equivocators_detected, 0,
        "a WAL-recovered replica never contradicts its pre-crash votes"
    );
    let final_chain = &report.chains[victim];
    assert!(
        final_chain.len() > pre_crash_chain.len(),
        "the restarted replica commits past its pre-crash prefix \
         ({} vs {})",
        final_chain.len(),
        pre_crash_chain.len()
    );
    assert_eq!(
        &final_chain[..pre_crash_chain.len()],
        &pre_crash_chain[..],
        "recovery never rolls back a committed block"
    );
}

#[test]
fn streamlet_crash_restart_f1() {
    crash_restart_streamlet(4, 12);
}

#[test]
fn streamlet_crash_restart_f2() {
    crash_restart_streamlet(7, 12);
}

#[test]
fn fbft_crash_restart_f1() {
    crash_restart_fbft(4, 12);
}

#[test]
fn fbft_crash_restart_f2() {
    crash_restart_fbft(7, 12);
}

/// The acceptance criterion that proves the log is load-bearing: replay
/// the same crash with and without the WAL. The amnesiac restart votes
/// again in a round its pre-crash self already voted in — observable
/// equivocation at an honest replica — while the recovered restart
/// refuses, yet still votes in the next round (recovery does not cost
/// liveness).
#[test]
fn streamlet_amnesiac_restart_equivocates_recovered_does_not() {
    use sft_streamlet::{Proposal, Replica};

    let n = 4;
    let config = ProtocolConfig::for_replicas(n);
    let registry = KeyRegistry::deterministic(n);
    let replica = |id: u16| Replica::new(id, config, registry.clone(), EndorseMode::Marker);
    let genesis = Block::genesis();
    let epoch = Round::new(1);
    let leader = Replica::leader(config, epoch);
    let leader_key = registry.key_pair(u64::from(leader.as_u16())).unwrap();

    // Pre-crash: the victim votes for the leader's epoch-1 proposal A.
    let mut victim = replica(0);
    victim.begin_epoch(epoch, Payload::empty());
    let block_a = Block::new(&genesis, epoch, leader, Payload::synthetic(1, 1, 1));
    let vote_a = victim
        .on_proposal(&Proposal::new(block_a, &leader_key))
        .expect("first proposal of the epoch wins the vote");
    let wal = through_wal_codec(&victim.drain_wal());
    assert!(
        wal.iter().any(|r| matches!(r, WalRecord::VoteSent(_))),
        "the vote was logged before it was sent"
    );
    drop(victim); // kill -9

    // A conflicting twin proposal B for the same epoch (an equivocating
    // leader, or simply a redelivery race after the crash).
    let block_b = Block::new(&genesis, epoch, leader, Payload::synthetic(1, 1, 2));
    let twin = Proposal::new(block_b, &leader_key);

    // Amnesiac restart: no replay. It votes again — equivocation an
    // honest tracker attributes to the victim.
    let mut amnesiac = replica(0);
    amnesiac.begin_epoch(epoch, Payload::empty());
    let vote_b = amnesiac
        .on_proposal(&twin)
        .expect("without the WAL the restarted replica double-votes");
    let mut observer = replica(1);
    observer.on_vote(&vote_a);
    observer.on_vote(&vote_b);
    assert_eq!(
        observer.observed_equivocators(),
        [vote_a.author()],
        "a WAL-less restart is indistinguishable from a Byzantine replica"
    );

    // Recovered restart: replay first. Same twin, no second vote.
    let mut recovered = replica(0);
    for record in &wal {
        recovered.replay(record);
    }
    assert!(
        recovered.on_proposal(&twin).is_none(),
        "replay restores vote dedup: no equivocation against the \
         pre-crash self"
    );
    // Liveness is intact: the next epoch's proposal still wins a vote.
    let epoch2 = Round::new(2);
    let leader2 = Replica::leader(config, epoch2);
    let leader2_key = registry.key_pair(u64::from(leader2.as_u16())).unwrap();
    let block_c = Block::new(&genesis, epoch2, leader2, Payload::synthetic(1, 1, 3));
    recovered.begin_epoch(epoch2, Payload::empty());
    assert!(
        recovered
            .on_proposal(&Proposal::new(block_c, &leader2_key))
            .is_some(),
        "recovery only suppresses double votes, not future ones"
    );
}

#[test]
fn fbft_amnesiac_restart_equivocates_recovered_does_not() {
    use sft_fbft::{FbftProposal, FbftReplica};
    use sft_types::SimDuration;

    let n = 4;
    let config = ProtocolConfig::for_replicas(n);
    let registry = KeyRegistry::deterministic(n);
    let timeout = SimDuration::from_millis(400);
    let replica = |id: u16| {
        FbftReplica::new(
            id,
            config,
            registry.clone(),
            EndorseMode::Marker,
            timeout,
            SimTime::ZERO,
        )
    };
    let genesis = Block::genesis();
    let round = Round::new(1);
    let leader = FbftReplica::leader(config, round);
    let leader_key = registry.key_pair(u64::from(leader.as_u16())).unwrap();
    let now = SimTime::ZERO;

    // Pre-crash: the victim votes for the leader's round-1 proposal A.
    let mut victim = replica(0);
    let block_a = Block::new(&genesis, round, leader, Payload::synthetic(1, 1, 1));
    let proposal_a = FbftProposal::new(block_a, QuorumCertificate::genesis(n), None, &leader_key);
    let vote_a = victim
        .on_proposal(&proposal_a, now)
        .vote
        .expect("round-1 proposal wins the vote");
    let wal = through_wal_codec(&victim.drain_wal());
    assert!(
        wal.iter().any(|r| matches!(r, WalRecord::VoteSent(_))),
        "the vote was logged before it was sent"
    );
    drop(victim); // kill -9

    let block_b = Block::new(&genesis, round, leader, Payload::synthetic(1, 1, 2));
    let twin = FbftProposal::new(block_b, QuorumCertificate::genesis(n), None, &leader_key);

    // Amnesiac restart: votes again in round 1.
    let mut amnesiac = replica(0);
    let vote_b = amnesiac
        .on_proposal(&twin, now)
        .vote
        .expect("without the WAL the restarted replica double-votes");
    let mut observer = replica(1);
    observer.on_vote(&vote_a, now);
    observer.on_vote(&vote_b, now);
    assert_eq!(
        observer.observed_equivocators(),
        [vote_a.author()],
        "a WAL-less restart is indistinguishable from a Byzantine replica"
    );

    // Recovered restart: replay suppresses the double vote.
    let mut recovered = replica(0);
    for record in &wal {
        recovered.replay(record, now);
    }
    assert!(
        recovered.on_proposal(&twin, now).vote.is_none(),
        "replay restores vote dedup: no equivocation against the \
         pre-crash self"
    );
}
