//! End-to-end consensus runs: the acceptance scenarios for the two-level
//! commit rule, executed through the full replica + network stack.

use sft_core::ProtocolConfig;
use sft_sim::{Behavior, SimConfig};
use sft_streamlet::EndorseMode;
use sft_types::SimDuration;

/// A stalling leader has no timeout machinery to trip in Streamlet —
/// epochs are externally clocked — so its leadership epochs simply stay
/// empty and notarization resumes in the next epoch. Liveness degrades
/// (the 3-consecutive-epochs window restarts) but agreement and the
/// strength ceiling are untouched, since the staller still votes.
#[test]
fn stalling_leader_only_leaves_empty_epochs() {
    let report = SimConfig::new(4, 12)
        .with_behavior(2, Behavior::StallLeader)
        .run();
    assert!(report.agreement());
    assert_eq!(report.safety_violations, 0);
    assert!(
        report.max_committed() >= 3,
        "commits land between the staller's leadership slots"
    );
    let cfg = ProtocolConfig::for_replicas(4);
    assert_eq!(
        report.max_commit_level(),
        cfg.max_strength(),
        "the staller votes, so strength still reaches 2f"
    );
}

/// §3.4 interval endorsements in the honest Streamlet voting path: an
/// all-honest run behaves exactly like marker mode (clean histories make
/// `I = [1, r]`), reaching the ceiling.
#[test]
fn interval_mode_reaches_the_ceiling() {
    let report = SimConfig::new(4, 8)
        .with_endorse_mode(EndorseMode::Interval)
        .run();
    assert!(report.agreement());
    assert_eq!(
        report.max_commit_level(),
        ProtocolConfig::for_replicas(4).max_strength()
    );
}

/// Under equivocation the interval set is at least as generous as the
/// marker (the marker is its single-interval over-approximation, §3.4), so
/// interval-mode runs can only match or beat marker-mode strength.
#[test]
fn interval_mode_is_at_least_as_strong_as_marker_under_equivocation() {
    let run = |mode| {
        SimConfig::new(4, 12)
            .with_behavior(0, Behavior::Equivocate)
            .with_endorse_mode(mode)
            .run()
    };
    let marker = run(EndorseMode::Marker);
    let interval = run(EndorseMode::Interval);
    assert!(marker.agreement() && interval.agreement());
    assert!(interval.max_commit_level() >= marker.max_commit_level());
    assert!(interval.commit_strength_monotone());
}

/// n = 4 honest replicas reach both commit levels: every block commits via
/// the standard three-consecutive-epochs rule (strength ≥ f = 1), and with
/// all n voters endorsing, commits reach the strong 2f = 2 ceiling.
#[test]
fn four_replicas_reach_standard_and_strong_commit() {
    let report = SimConfig::new(4, 8).run();

    assert!(
        report.agreement(),
        "committed chains must be prefix-compatible"
    );
    assert!(
        report.max_committed() >= 5,
        "8 epochs commit at least 5 blocks"
    );
    assert_eq!(report.safety_violations, 0);

    let cfg = ProtocolConfig::for_replicas(4);
    for log in &report.commit_logs {
        assert!(!log.is_empty(), "every replica commits");
        for update in log {
            assert!(
                update.level() >= cfg.f() as u64,
                "standard commits carry at least strength f"
            );
            assert!(
                update.level() <= cfg.max_strength(),
                "no level beyond the 2f ceiling"
            );
        }
        // The strong commit: some block reached the strengthened quorum of
        // all n = f + 2f + 1 endorsers.
        assert!(
            log.iter().any(|u| u.level() == cfg.max_strength()),
            "all-honest runs strengthen commits to 2f"
        );
    }
}

/// With one vote-withholding replica, quorums are exactly 2f + 1, so the
/// protocol stays live but no commit can climb above the standard level f:
/// the strengthened quorum f + x + 1 for x > f is out of reach.
#[test]
fn withheld_votes_cap_commit_strength_at_f() {
    let report = SimConfig::new(4, 8)
        .with_behavior(3, Behavior::WithholdVote)
        .run();

    assert!(report.agreement());
    assert!(
        report.max_committed() >= 4,
        "liveness with f withheld voters"
    );
    assert_eq!(
        report.max_commit_level(),
        1,
        "3 endorsers = 2f + 1 confer exactly level f, never more"
    );
}

/// A crashed (silent) replica is weaker than a withholding one: liveness
/// and the level-f cap look the same from the honest side.
#[test]
fn silent_replica_does_not_stop_progress() {
    let report = SimConfig::new(4, 8)
        .with_behavior(1, Behavior::Silent)
        .run();

    assert!(report.agreement());
    assert!(report.max_committed() >= 3);
    assert_eq!(report.max_commit_level(), 1);
    // The silent replica never commits; the others all do.
    assert!(report.chains[1].is_empty());
    assert!(report
        .chains
        .iter()
        .enumerate()
        .all(|(i, c)| i == 1 || !c.is_empty()));
}

/// An equivocating leader splits the replica set across two conflicting
/// proposals. Neither side can notarize that epoch, honest replicas flag
/// the double votes, and the chain recovers in later epochs with no
/// disagreement between honest committed chains.
#[test]
fn equivocating_leader_cannot_split_commits() {
    let report = SimConfig::new(4, 10)
        .with_behavior(0, Behavior::Equivocate)
        .run();

    assert!(
        report.agreement(),
        "equivocation must not cause divergent commits"
    );
    assert_eq!(report.safety_violations, 0);
    assert!(
        report.max_committed() >= 3,
        "chain recovers after the equivocated epochs"
    );
    assert!(report.equivocators_detected >= 1, "double votes are caught");
}

/// Detection must not depend on which half of the replica set the
/// equivocator sits in: in both cases it receives (and votes for) both of
/// its own conflicting proposals.
#[test]
fn equivocators_detected_in_both_halves() {
    for id in [0u16, 3] {
        let report = SimConfig::new(4, 10)
            .with_behavior(id, Behavior::Equivocate)
            .run();
        assert!(
            report.equivocators_detected >= 1,
            "equivocating replica {id} went undetected"
        );
        assert!(report.agreement());
    }
}

/// Vanilla votes (no endorsement info) still commit via the standard rule,
/// and — because every voter votes for each block directly — an all-honest
/// run still reaches the ceiling. The marker's value shows up under vote
/// withholding: descendants' votes can no longer strengthen ancestors, so
/// strength stays frozen at commit time.
#[test]
fn vanilla_mode_commits_without_endorsement_info() {
    let report = SimConfig::new(4, 8)
        .with_endorse_mode(EndorseMode::Vanilla)
        .with_behavior(3, Behavior::WithholdVote)
        .run();

    assert!(report.agreement());
    assert!(report.max_committed() >= 4);
    assert_eq!(report.max_commit_level(), 1);
}

/// The same configuration always produces the same bytes: chains, logs,
/// traffic, and virtual clock.
#[test]
fn runs_are_deterministic() {
    let mk = || {
        SimConfig::new(7, 12)
            .with_behavior(2, Behavior::Equivocate)
            .with_behavior(5, Behavior::WithholdVote)
            .with_delay(SimDuration::from_millis(200))
            .run()
    };
    let a = mk();
    let b = mk();
    assert_eq!(a.chains, b.chains);
    assert_eq!(a.commit_logs, b.commit_logs);
    assert_eq!(a.net, b.net);
    assert_eq!(a.elapsed, b.elapsed);
}

/// Larger system: n = 7 (f = 2) honest replicas climb the whole strength
/// ladder to 2f = 4.
#[test]
fn seven_replicas_reach_the_2f_ceiling() {
    let report = SimConfig::new(7, 10).run();
    assert!(report.agreement());
    assert_eq!(report.max_commit_level(), 4);
    assert_eq!(report.safety_violations, 0);
}
