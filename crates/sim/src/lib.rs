//! # sft-sim
//!
//! A deterministic, in-process simulator for SFT-Streamlet: `n` replicas
//! run the full protocol over the [`sft_network::SimNetwork`] transport in
//! lock-step epochs of two message delays (propose → vote), with pluggable
//! Byzantine behaviors per replica. There is no real networking and no
//! wall-clock anywhere, so every run with the same [`SimConfig`] produces
//! byte-identical results on every platform — which is what makes protocol
//! bugs reproducible and the paper's delay-sweep experiments (§4) scriptable.
//!
//! ## Fault injection
//!
//! [`Behavior`] covers the attack shapes the commit rules care about:
//!
//! - [`Behavior::Silent`] — crashed from the start: never proposes, never
//!   votes, never processes a message.
//! - [`Behavior::WithholdVote`] — alive and proposing, but never votes:
//!   starves quorums without detection (the classic "slow replica").
//! - [`Behavior::Equivocate`] — as leader, proposes two conflicting blocks
//!   to the two halves of the replica set; as voter, votes for every
//!   proposal it sees and always attaches a lying marker of 0.
//!
//! ## Example
//!
//! ```
//! use sft_sim::{Behavior, SimConfig};
//!
//! let report = SimConfig::new(4, 10).run();
//! assert!(report.agreement(), "honest runs always agree");
//! assert!(report.max_commit_level() >= 1);
//! ```

#![deny(missing_docs)]

use sft_core::{Block, ProtocolConfig};
use sft_crypto::{HashValue, KeyPair, KeyRegistry};
use sft_network::{NetworkStats, SimNetwork};
use sft_streamlet::{EndorseMode, Message, Proposal, Replica};
use sft_types::{
    Decode, Encode, EndorseInfo, Payload, ReplicaId, Round, SimDuration, SimTime,
    StrongCommitUpdate, StrongVote,
};

/// Per-replica fault model.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Behavior {
    /// Follows the protocol.
    #[default]
    Honest,
    /// Crashed from the start: sends and processes nothing.
    Silent,
    /// Processes everything and proposes when leading, but never votes.
    WithholdVote,
    /// Proposes conflicting blocks to the two halves of the replica set
    /// when leading; votes for every proposal with a forged zero marker.
    Equivocate,
}

/// Simulation parameters. Build with [`SimConfig::new`] and the `with_*`
/// methods, then call [`SimConfig::run`].
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Number of replicas (`n = 3f + 1` recommended).
    pub n: usize,
    /// Number of epochs to run.
    pub epochs: u64,
    /// Behavior per replica; defaults to all-honest.
    pub behaviors: Vec<Behavior>,
    /// Endorsement info honest voters attach.
    pub endorse_mode: EndorseMode,
    /// One-way network delay δ.
    pub delay: SimDuration,
    /// Transactions per proposed block (the paper uses ~1000).
    pub txns_per_block: u32,
    /// Bytes per transaction (the paper uses ~450).
    pub txn_bytes: u32,
}

impl SimConfig {
    /// An all-honest configuration with the paper's workload shape
    /// (1000 × 450 B blocks) and δ = 100 ms.
    pub fn new(n: usize, epochs: u64) -> Self {
        Self {
            n,
            epochs,
            behaviors: vec![Behavior::Honest; n],
            endorse_mode: EndorseMode::Marker,
            delay: SimDuration::from_millis(100),
            txns_per_block: 1000,
            txn_bytes: 450,
        }
    }

    /// Sets replica `id`'s behavior.
    ///
    /// # Panics
    ///
    /// Panics if `id >= n`.
    pub fn with_behavior(mut self, id: u16, behavior: Behavior) -> Self {
        self.behaviors[id as usize] = behavior;
        self
    }

    /// Sets the endorsement mode for honest voters.
    pub fn with_endorse_mode(mut self, mode: EndorseMode) -> Self {
        self.endorse_mode = mode;
        self
    }

    /// Sets the one-way delay δ.
    pub fn with_delay(mut self, delay: SimDuration) -> Self {
        self.delay = delay;
        self
    }

    /// Sets the synthetic workload shape.
    pub fn with_workload(mut self, txns_per_block: u32, txn_bytes: u32) -> Self {
        self.txns_per_block = txns_per_block;
        self.txn_bytes = txn_bytes;
        self
    }

    /// Runs the simulation to completion.
    pub fn run(self) -> SimReport {
        Simulation::new(self).run()
    }
}

/// Everything a finished run reports.
#[derive(Clone, Debug)]
pub struct SimReport {
    /// Committed chain per replica, oldest block first.
    pub chains: Vec<Vec<HashValue>>,
    /// Strong-commit log per replica (§5): standard commits and every
    /// strength increase, in occurrence order.
    pub commit_logs: Vec<Vec<StrongCommitUpdate>>,
    /// The same log entries stamped with the virtual time each replica
    /// produced them — the series the latency experiments (§4, Fig 7/8)
    /// are computed from.
    pub timelines: Vec<Vec<(SimTime, StrongCommitUpdate)>>,
    /// Aggregate network traffic.
    pub net: NetworkStats,
    /// Virtual time at the end of the run.
    pub elapsed: SimTime,
    /// Replicas whose commit rule observed conflicting finalized chains.
    pub safety_violations: usize,
    /// Equivocating replicas detected by at least one honest replica.
    pub equivocators_detected: usize,
}

impl SimReport {
    /// True if all committed chains are pairwise prefix-compatible — the
    /// agreement property of Theorem 1.
    pub fn agreement(&self) -> bool {
        self.chains.iter().enumerate().all(|(i, a)| {
            self.chains[i + 1..].iter().all(|b| {
                let common = a.len().min(b.len());
                a[..common] == b[..common]
            })
        })
    }

    /// The longest committed chain across replicas.
    pub fn max_committed(&self) -> usize {
        self.chains.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// The highest strength level any replica recorded for any commit.
    pub fn max_commit_level(&self) -> u64 {
        self.commit_logs
            .iter()
            .flatten()
            .map(StrongCommitUpdate::level)
            .max()
            .unwrap_or(0)
    }
}

struct Node {
    behavior: Behavior,
    replica: Replica,
    key_pair: KeyPair,
    /// Blocks this (Byzantine) node already cast a forged vote for in the
    /// current epoch, to avoid unbounded duplicates.
    equivocation_votes: Vec<HashValue>,
}

/// The simulator: owns the replicas and the network, runs lock-step
/// epochs. Most callers use [`SimConfig::run`]; the struct is public so
/// benchmarks can drive epochs one at a time.
pub struct Simulation {
    config: SimConfig,
    protocol: ProtocolConfig,
    nodes: Vec<Node>,
    net: SimNetwork,
    timelines: Vec<Vec<(SimTime, StrongCommitUpdate)>>,
}

impl Simulation {
    /// Builds replicas, keys, and the network for `config`.
    ///
    /// # Panics
    ///
    /// Panics if `config.behaviors` is not exactly `n` entries.
    pub fn new(config: SimConfig) -> Self {
        assert_eq!(config.behaviors.len(), config.n, "one behavior per replica");
        let protocol = ProtocolConfig::for_replicas(config.n);
        let registry = KeyRegistry::deterministic(config.n);
        let nodes = (0..config.n as u16)
            .map(|id| Node {
                behavior: config.behaviors[id as usize],
                replica: Replica::new(id, protocol, registry.clone(), config.endorse_mode),
                key_pair: registry.key_pair(u64::from(id)).expect("registry covers n"),
                equivocation_votes: Vec::new(),
            })
            .collect();
        Self {
            net: SimNetwork::new(config.delay),
            timelines: vec![Vec::new(); config.n],
            config,
            protocol,
            nodes,
        }
    }

    /// The protocol configuration derived from `n`.
    pub fn protocol(&self) -> ProtocolConfig {
        self.protocol
    }

    /// Runs all configured epochs and reports.
    pub fn run(mut self) -> SimReport {
        for epoch in 1..=self.config.epochs {
            self.run_epoch(Round::new(epoch));
        }
        self.report()
    }

    /// Runs one epoch: propose at `T`, deliver + vote at `T + δ`, deliver
    /// votes and evaluate commits at `T + 2δ`.
    pub fn run_epoch(&mut self, epoch: Round) {
        let n = self.config.n;
        let payload = Payload::synthetic(
            self.config.txns_per_block,
            self.config.txn_bytes,
            epoch.as_u64(),
        );

        // Phase 1 — propose. Self-routed messages skip the network (a
        // replica hears itself immediately), everything else pays δ.
        let mut self_inbox: Vec<(ReplicaId, Message)> = Vec::new();
        for i in 0..n {
            let node = &mut self.nodes[i];
            node.equivocation_votes.clear();
            let proposals = match node.behavior {
                Behavior::Silent => Vec::new(),
                Behavior::Honest | Behavior::WithholdVote => node
                    .replica
                    .begin_epoch(epoch, payload.clone())
                    .into_iter()
                    .collect(),
                Behavior::Equivocate => equivocating_proposals(node, epoch, &payload),
            };
            match proposals.as_slice() {
                [] => {}
                [proposal] => {
                    let msg = Message::Proposal(proposal.clone());
                    self.net
                        .broadcast(proposal.block().proposer(), n, &msg.to_bytes());
                    self_inbox.push((proposal.block().proposer(), msg));
                }
                [a, b] => {
                    // Split-brain delivery: low ids see A, high ids see B.
                    let from = a.block().proposer();
                    for to in 0..n as u16 {
                        let target = ReplicaId::new(to);
                        let msg = if (to as usize) < n / 2 {
                            Message::Proposal(a.clone())
                        } else {
                            Message::Proposal(b.clone())
                        };
                        if target == from {
                            self_inbox.push((target, msg));
                        } else {
                            self.net.send(from, target, msg.to_bytes());
                        }
                    }
                    // The equivocator also sees the twin its own half did
                    // NOT receive, so it casts the conflicting votes honest
                    // trackers will flag regardless of which half it sits in.
                    let twin = if (from.as_usize()) < n / 2 { b } else { a };
                    self_inbox.push((from, Message::Proposal(twin.clone())));
                }
                _ => unreachable!("at most two proposals per epoch"),
            }
        }

        // Phase 2 — deliver proposals, collect votes.
        let mid = self.net.now() + self.config.delay;
        let mut votes: Vec<StrongVote> = Vec::new();
        let mut vote_inbox: Vec<(ReplicaId, Message)> = Vec::new();
        let deliveries = self_inbox
            .into_iter()
            .chain(self.net.deliver_due(mid).into_iter().map(|e| {
                let msg = Message::from_bytes(&e.payload).expect("well-formed wire message");
                (e.to, msg)
            }));
        for (to, msg) in deliveries {
            let Message::Proposal(proposal) = msg else {
                continue;
            };
            let node = &mut self.nodes[to.as_usize()];
            for vote in node.handle_proposal(&proposal) {
                let msg = Message::Vote(vote.clone());
                self.net.broadcast(to, n, &msg.to_bytes());
                vote_inbox.push((to, msg));
                votes.push(vote);
            }
        }

        // Phase 3 — deliver votes everywhere, evaluate the commit rules.
        let end = mid + self.config.delay;
        let deliveries = vote_inbox
            .into_iter()
            .chain(self.net.deliver_due(end).into_iter().map(|e| {
                let msg = Message::from_bytes(&e.payload).expect("well-formed wire message");
                (e.to, msg)
            }));
        for (to, msg) in deliveries {
            let Message::Vote(vote) = msg else { continue };
            let node = &mut self.nodes[to.as_usize()];
            if node.behavior != Behavior::Silent {
                let now = self.net.now();
                let updates = node.replica.on_vote(&vote);
                self.timelines[to.as_usize()].extend(updates.into_iter().map(|u| (now, u)));
            }
        }
    }

    /// Snapshot of the current run state as a report.
    pub fn report(&self) -> SimReport {
        let chains = self
            .nodes
            .iter()
            .map(|node| node.replica.committed_chain().to_vec())
            .collect();
        let commit_logs = self
            .nodes
            .iter()
            .map(|node| node.replica.commit_log().to_vec())
            .collect();
        let safety_violations = self
            .nodes
            .iter()
            .filter(|node| node.replica.safety_violated())
            .count();
        let equivocators_detected = self
            .nodes
            .iter()
            .map(|node| node.replica.observed_equivocators().len())
            .max()
            .unwrap_or(0);
        SimReport {
            chains,
            commit_logs,
            timelines: self.timelines.clone(),
            net: self.net.stats(),
            elapsed: self.net.now(),
            safety_violations,
            equivocators_detected,
        }
    }

    /// Immutable access to replica `id`, for tests and benches.
    pub fn replica(&self, id: u16) -> &Replica {
        &self.nodes[id as usize].replica
    }
}

/// As the epoch leader, produce one honest proposal plus one conflicting
/// sibling with a different payload tag. Non-leaders produce nothing.
fn equivocating_proposals(node: &mut Node, epoch: Round, payload: &Payload) -> Vec<Proposal> {
    let Some(honest) = node.replica.begin_epoch(epoch, payload.clone()) else {
        return Vec::new();
    };
    let parent = node
        .replica
        .store()
        .get(honest.block().parent_id())
        .expect("parent of own proposal")
        .clone();
    let conflicting_payload = Payload::synthetic(1, 1, u64::MAX - epoch.as_u64());
    let twin = Block::new(&parent, epoch, node.replica.id(), conflicting_payload);
    let twin = Proposal::new(twin, &node.key_pair);
    vec![honest, twin]
}

impl Node {
    /// Processes one delivered proposal according to the node's behavior,
    /// returning the votes it broadcasts.
    fn handle_proposal(&mut self, proposal: &Proposal) -> Vec<StrongVote> {
        match self.behavior {
            Behavior::Silent => Vec::new(),
            Behavior::WithholdVote => {
                let _ = self.replica.on_proposal(proposal);
                Vec::new()
            }
            Behavior::Honest => self.replica.on_proposal(proposal).into_iter().collect(),
            Behavior::Equivocate => {
                // Vote for everything, once per block, with a forged
                // clean-history marker.
                let block_id = proposal.block().id();
                if self.equivocation_votes.contains(&block_id) {
                    return Vec::new();
                }
                self.equivocation_votes.push(block_id);
                // Keep the replica's store current so later epochs work.
                let _ = self.replica.on_proposal(proposal);
                vec![StrongVote::new(
                    proposal.block().vote_data(),
                    EndorseInfo::Marker(Round::ZERO),
                    &self.key_pair,
                )]
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn honest_run_commits_and_strengthens() {
        let report = SimConfig::new(4, 6).run();
        assert!(report.agreement());
        // 6 epochs, commits start landing from epoch 3 on.
        assert!(report.max_committed() >= 3);
        assert_eq!(
            report.max_commit_level(),
            2,
            "all-honest n=4 reaches the 2f ceiling"
        );
        assert_eq!(report.safety_violations, 0);
        // First commit lands when the second epoch's votes arrive: 4δ.
        let first_commit = report.timelines[0].first().expect("replica 0 commits").0;
        assert_eq!(first_commit, SimTime::from_millis(400));
    }

    #[test]
    fn network_accounting_is_nontrivial() {
        let report = SimConfig::new(4, 4).run();
        // Each epoch: 3 proposal sends + 4 voters × 3 vote sends.
        assert!(report.net.messages > 0);
        assert!(
            report.net.bytes > report.net.messages,
            "messages carry payloads"
        );
        assert_eq!(report.elapsed, SimTime::from_millis(4 * 2 * 100));
    }

    #[test]
    fn deterministic_across_runs() {
        let a = SimConfig::new(7, 8)
            .with_behavior(2, Behavior::Equivocate)
            .run();
        let b = SimConfig::new(7, 8)
            .with_behavior(2, Behavior::Equivocate)
            .run();
        assert_eq!(a.chains, b.chains);
        assert_eq!(a.commit_logs, b.commit_logs);
        assert_eq!(a.net, b.net);
    }

    #[test]
    #[should_panic(expected = "one behavior per replica")]
    fn behavior_count_must_match() {
        let mut config = SimConfig::new(4, 1);
        config.behaviors.pop();
        Simulation::new(config);
    }
}
