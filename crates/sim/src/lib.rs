//! # sft-sim
//!
//! The run harness for the SFT protocol family: one generic
//! [`run_engine`] loop ([`EngineRunner`]) drives any
//! [`ReplicaEngine`](sft_core::ReplicaEngine) set over any
//! [`Transport`] — the deterministic in-process [`SimTransport`] or the
//! real-socket [`TcpCluster`] — with pluggable Byzantine behaviors per
//! replica.
//!
//! Under [`SimTransport`] there is no real networking and no wall-clock
//! anywhere, so every run with the same [`SimConfig`] produces
//! byte-identical results on every platform — which is what makes
//! protocol bugs reproducible and the paper's delay-sweep experiments
//! (§4) scriptable. The same engines over [`TcpCluster`] commit the same
//! chain (content is deterministic; only timing is not), which
//! `repro --transport tcp` asserts.
//!
//! Two protocols share the harness ([`Protocol`]):
//!
//! - [`Protocol::Streamlet`] — the Appendix-D variant: epochs of two
//!   message delays, clocked by the engine's own epoch schedule
//!   ([`RunPlan::UntilQuiescent`]), built by [`Simulation`];
//! - [`Protocol::Fbft`] — the main-body SFT-DiemBFT protocol: self-paced
//!   by deliveries and pacemaker deadlines ([`RunPlan::PastRound`]), so
//!   the timeout/TC recovery path runs exactly as the pacemaker schedules
//!   it, built by [`FbftSimulation`].
//!
//! ## Fault injection
//!
//! [`Behavior`] covers the attack shapes the commit rules care about:
//!
//! - [`Behavior::Silent`] — crashed from the start: never proposes, never
//!   votes, never processes a message.
//! - [`Behavior::WithholdVote`] — alive and proposing, but never votes:
//!   starves quorums without detection (the classic "slow replica").
//! - [`Behavior::Equivocate`] — as leader, proposes two conflicting blocks
//!   to the two halves of the replica set; as voter, votes for every
//!   proposal it sees and always attaches a lying marker of 0.
//! - [`Behavior::StallLeader`] — follows the protocol except that it never
//!   proposes when leading. In SFT-DiemBFT this forces the timeout/TC path
//!   every time its turn comes; in Streamlet (externally clocked epochs,
//!   no timeout machinery) its epochs simply stay empty.
//!
//! ## Example
//!
//! ```
//! use sft_sim::{Behavior, Protocol, SimConfig};
//!
//! let report = SimConfig::new(4, 10).run();
//! assert!(report.agreement(), "honest runs always agree");
//! assert!(report.max_commit_level() >= 1);
//!
//! // The same scenario against the round-based main protocol.
//! let report = SimConfig::new(4, 10).with_protocol(Protocol::Fbft).run();
//! assert!(report.agreement());
//! ```

#![deny(missing_docs)]

pub mod fbft_driver;
pub mod runner;
pub mod streamlet_driver;

use sft_core::{BlockStore, PayloadSource, SyncStats};
use sft_crypto::HashValue;
use sft_network::{NetworkStats, ProtocolTag};
use sft_types::{
    BatchConfig, EndorseMode, ReplicaId, Round, SimDuration, SimTime, StrongCommitUpdate,
    Transaction, VerifyPolicy,
};

pub use fbft_driver::{build_fbft_engines, FbftMischief, FbftSimulation};
pub use runner::{run_engine, EngineRunner, Mischief, NoMischief, RunPlan, RunnerConfig};
pub use sft_network::{FaultSchedule, Partition, SimTransport, TcpCluster, Transport};
pub use streamlet_driver::{build_streamlet_engines, Simulation, StreamletMischief};

/// The throughput numerator both drivers report: the transaction count of
/// the longest committed chain across replicas, each chain's blocks
/// resolved against that replica's own store. One definition, shared, so
/// the cross-protocol comparison can never diverge between drivers.
pub(crate) fn max_committed_txns<'a>(
    nodes: impl Iterator<Item = (&'a [HashValue], &'a BlockStore)>,
) -> u64 {
    nodes
        .map(|(chain, store)| {
            chain
                .iter()
                .filter_map(|id| store.get(*id))
                .map(|block| block.payload().txn_count() as u64)
                .sum()
        })
        .max()
        .unwrap_or(0)
}

/// Per-replica fault model.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Behavior {
    /// Follows the protocol.
    #[default]
    Honest,
    /// Crashed from the start: sends and processes nothing.
    Silent,
    /// Processes everything and proposes when leading, but never votes.
    WithholdVote,
    /// Proposes conflicting blocks to the two halves of the replica set
    /// when leading; votes for every proposal with a forged zero marker.
    Equivocate,
    /// Honest in every way except that it never proposes when leading —
    /// the scenario that exercises the timeout/TC recovery path.
    StallLeader,
}

/// Which protocol the simulated replicas run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Protocol {
    /// SFT-Streamlet (Appendix D): height-based, lock-step epochs.
    #[default]
    Streamlet,
    /// SFT-DiemBFT (§2–§3): round-based, pacemaker-driven with timeouts.
    Fbft,
}

/// How a run persists (and waits for) its write-ahead log.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum DurabilityMode {
    /// The classic harness: persist records are mirrored into the
    /// runner's in-memory log (crash tests replay it) but nothing is
    /// fsynced and nothing is gated. Zero overhead; no durability.
    #[default]
    InMemory,
    /// One fsync per persisted record, inline on the engine loop, before
    /// the messages it justifies are routed — the literal
    /// persist-before-send baseline (`sync_every = 1`).
    WriteThrough,
    /// The pipelined discipline: appends go to a dedicated WAL-writer
    /// thread that batches fsyncs adaptively and publishes a durability
    /// watermark; outbound messages are *gated* on the watermark instead
    /// of waiting inline. Same durability guarantee as
    /// [`WriteThrough`](Self::WriteThrough) — no frame leaves before its
    /// records are on disk — at a fraction of the fsync count.
    GroupCommit,
}

/// Simulation parameters. Build with [`SimConfig::new`] and the `with_*`
/// methods, then call [`SimConfig::run`].
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Number of replicas (`n = 3f + 1` recommended).
    pub n: usize,
    /// Number of epochs (Streamlet) or rounds (SFT-DiemBFT) to run.
    pub epochs: u64,
    /// Which protocol the replicas run.
    pub protocol: Protocol,
    /// Behavior per replica; defaults to all-honest.
    pub behaviors: Vec<Behavior>,
    /// Endorsement info honest voters attach.
    pub endorse_mode: EndorseMode,
    /// One-way network delay δ.
    pub delay: SimDuration,
    /// Base round timeout for the SFT-DiemBFT pacemaker (ignored by
    /// Streamlet, whose epochs are externally clocked). Must exceed the
    /// 2δ propose-plus-vote exchange; defaults to 4δ.
    pub base_timeout: SimDuration,
    /// Transactions per proposed block (the paper uses ~1000).
    pub txns_per_block: u32,
    /// Bytes per transaction (the paper uses ~450).
    pub txn_bytes: u32,
    /// Transactions per batch leaders drain from their mempools. `0` (the
    /// default) keeps the synthetic-descriptor workload: blocks *describe*
    /// `txns_per_block × txn_bytes` batches without materializing them.
    /// `> 0` switches to the batched client workload: every replica's
    /// mempool is fed the same deterministic client transaction stream
    /// (`txn_bytes` each) and leaders drain real
    /// [`Payload::Transactions`](sft_types::Payload) batches of this size.
    pub batch_size: u32,
    /// Partial-synchrony fault schedule for the network (seeded message
    /// loss before GST, optional partition with a heal time). `None` keeps
    /// the lossless synchronous transport.
    pub faults: Option<FaultSchedule>,
    /// Maximum post-schedule drain iterations: after the last epoch (or
    /// past the target round), the runner keeps virtual time moving in δ
    /// steps — so in-flight messages settle and block-sync retry timers
    /// still fire — for at most this many steps. Defaults to
    /// `4 × epochs + 32`, the bound the drivers used to hard-code.
    pub drain_sync_bound: u64,
    /// Hard virtual-time ceiling on a run: a runaway guard for Byzantine
    /// scenarios under heavy loss that could otherwise sync forever
    /// against the endless pipelined event stream. Defaults to
    /// `base_timeout × 64 × (epochs + 8)`, the guard the fbft run loop
    /// used to hard-code; it tracks later `with_delay` /
    /// `with_base_timeout` calls unless explicitly overridden.
    pub run_horizon: SimDuration,
    /// Serve live clients instead of the driver-fed workload: in batched
    /// mode (`batch_size > 0`), skip pre-feeding the deterministic client
    /// stream so blocks carry exactly what real clients submit through
    /// the transport's client gateway. Leaders still propose every slot
    /// (an empty mempool makes an empty block), so the protocol paces
    /// itself identically whether clients are quiet or flooding.
    pub live_clients: bool,
    /// Admission-control cap on every replica's mempool: at most this
    /// many pending transactions before `submit` answers `Busy`.
    /// `None` (the default) leaves admission unbounded.
    pub mempool_txn_cap: Option<u32>,
    /// Record run-loop phase timings, per-round consensus latencies, and
    /// per-kind traffic counters into [`SimReport::metrics`]. Off by
    /// default: the no-op recorder keeps the hot path free.
    pub recording: bool,
    /// When replicas verify vote/timeout signatures. Defaults to
    /// [`VerifyPolicy::OnQuorum`]: count optimistically and run one
    /// batched check when the quorum closes, dropping per-replica
    /// verifications per certified round from O(n²) to O(n) — the knob
    /// that makes n = 31/61/121 sweeps tractable. Set
    /// [`VerifyPolicy::OnArrival`] to restore eager per-message checking.
    pub verify_policy: VerifyPolicy,
    /// How replicas persist their write-ahead logs (see
    /// [`DurabilityMode`]). Simulated runs back the logs with in-memory
    /// sinks — the *discipline* (sequencing, gating, group boundaries) is
    /// exercised without real disks, and [`run_over_tcp`] swaps in file
    /// sinks for real fsyncs. Defaults to [`DurabilityMode::InMemory`].
    pub durability: DurabilityMode,
}

/// The per-replica durable logs a simulated run installs for `config`:
/// in-memory sinks under the configured persistence discipline — the
/// sequencing, gating, and group boundaries are exercised for real while
/// the "disk" stays a byte vector — or `None` for the zero-overhead
/// classic harness. `recorder` receives the WAL fsync/group-size metrics
/// (pass the runner's registry, or [`sft_obs::noop`]).
pub(crate) fn sim_wals(
    config: &SimConfig,
    recorder: &sft_obs::SharedRecorder,
) -> Option<Vec<Box<dyn sft_core::DurableWal>>> {
    use sft_core::{DurableWal, GroupCommitWal, MemSink, WriteThroughWal};
    use std::sync::Arc;
    let build = |mode: DurabilityMode| -> Box<dyn DurableWal> {
        match mode {
            DurabilityMode::InMemory => unreachable!("no wal in memory-only mode"),
            DurabilityMode::WriteThrough => {
                Box::new(WriteThroughWal::new(MemSink::new(), Arc::clone(recorder)))
            }
            DurabilityMode::GroupCommit => Box::new(
                GroupCommitWal::spawn(MemSink::new(), Arc::clone(recorder), None)
                    .expect("spawn wal writer"),
            ),
        }
    };
    match config.durability {
        DurabilityMode::InMemory => None,
        mode => Some((0..config.n).map(|_| build(mode)).collect()),
    }
}

/// The default post-schedule drain bound for a run of `epochs`.
fn default_drain_bound(epochs: u64) -> u64 {
    epochs.saturating_mul(4).saturating_add(32)
}

/// The default run horizon for `base_timeout` and `epochs`.
fn default_horizon(base_timeout: SimDuration, epochs: u64) -> SimDuration {
    SimDuration::from_micros(
        base_timeout
            .as_micros()
            .saturating_mul(64)
            .saturating_mul(epochs.saturating_add(8)),
    )
}

impl SimConfig {
    /// An all-honest Streamlet configuration with the paper's workload
    /// shape (1000 × 450 B blocks) and δ = 100 ms.
    pub fn new(n: usize, epochs: u64) -> Self {
        let delay = SimDuration::from_millis(100);
        let base_timeout = delay * 4;
        Self {
            n,
            epochs,
            protocol: Protocol::Streamlet,
            behaviors: vec![Behavior::Honest; n],
            endorse_mode: EndorseMode::Marker,
            delay,
            base_timeout,
            txns_per_block: 1000,
            txn_bytes: 450,
            batch_size: 0,
            faults: None,
            drain_sync_bound: default_drain_bound(epochs),
            run_horizon: default_horizon(base_timeout, epochs),
            live_clients: false,
            mempool_txn_cap: None,
            recording: false,
            verify_policy: VerifyPolicy::OnQuorum,
            durability: DurabilityMode::InMemory,
        }
    }

    /// Serves live clients instead of pre-feeding the deterministic
    /// workload (see [`SimConfig::live_clients`]).
    pub fn with_live_clients(mut self, live: bool) -> Self {
        self.live_clients = live;
        self
    }

    /// Caps every replica's mempool at `cap` pending transactions (see
    /// [`SimConfig::mempool_txn_cap`]).
    pub fn with_mempool_txn_cap(mut self, cap: u32) -> Self {
        self.mempool_txn_cap = Some(cap);
        self
    }

    /// Turns metric recording on or off (see [`SimConfig::recording`]).
    pub fn with_recording(mut self, recording: bool) -> Self {
        self.recording = recording;
        self
    }

    /// Selects when replicas verify vote/timeout signatures (see
    /// [`SimConfig::verify_policy`]).
    pub fn with_verify_policy(mut self, policy: VerifyPolicy) -> Self {
        self.verify_policy = policy;
        self
    }

    /// Selects the WAL persistence discipline (see
    /// [`SimConfig::durability`]).
    pub fn with_durability(mut self, durability: DurabilityMode) -> Self {
        self.durability = durability;
        self
    }

    /// Selects the protocol the replicas run.
    pub fn with_protocol(mut self, protocol: Protocol) -> Self {
        self.protocol = protocol;
        self
    }

    /// Sets replica `id`'s behavior.
    ///
    /// # Panics
    ///
    /// Panics if `id >= n`.
    pub fn with_behavior(mut self, id: u16, behavior: Behavior) -> Self {
        self.behaviors[id as usize] = behavior;
        self
    }

    /// Sets the endorsement mode for honest voters.
    pub fn with_endorse_mode(mut self, mode: EndorseMode) -> Self {
        self.endorse_mode = mode;
        self
    }

    /// Sets the one-way delay δ. The base round timeout follows to 4δ
    /// (and the run horizon with it) unless they were explicitly
    /// overridden — builder order does not matter.
    pub fn with_delay(mut self, delay: SimDuration) -> Self {
        if self.base_timeout == self.delay * 4 {
            self.set_base_timeout(delay * 4);
        }
        self.delay = delay;
        self
    }

    /// Sets the SFT-DiemBFT base round timeout explicitly. The run horizon
    /// follows unless it was explicitly overridden.
    pub fn with_base_timeout(mut self, timeout: SimDuration) -> Self {
        self.set_base_timeout(timeout);
        self
    }

    /// Updates `base_timeout`, re-deriving the horizon default if the
    /// caller never overrode it.
    fn set_base_timeout(&mut self, timeout: SimDuration) {
        if self.run_horizon == default_horizon(self.base_timeout, self.epochs) {
            self.run_horizon = default_horizon(timeout, self.epochs);
        }
        self.base_timeout = timeout;
    }

    /// Overrides the post-schedule drain bound (see
    /// [`SimConfig::drain_sync_bound`]).
    pub fn with_drain_sync_bound(mut self, bound: u64) -> Self {
        self.drain_sync_bound = bound;
        self
    }

    /// Overrides the run horizon (see [`SimConfig::run_horizon`]).
    pub fn with_run_horizon(mut self, horizon: SimDuration) -> Self {
        self.run_horizon = horizon;
        self
    }

    /// Sets the synthetic workload shape.
    pub fn with_workload(mut self, txns_per_block: u32, txn_bytes: u32) -> Self {
        self.txns_per_block = txns_per_block;
        self.txn_bytes = txn_bytes;
        self
    }

    /// Switches to the batched client workload: leaders drain real
    /// transaction batches of `batch_size` from their mempools (see
    /// [`SimConfig::batch_size`]). `0` restores the synthetic descriptor
    /// workload.
    pub fn with_batch_size(mut self, batch_size: u32) -> Self {
        self.batch_size = batch_size;
        self
    }

    /// Applies a partial-synchrony fault schedule to the network.
    pub fn with_faults(mut self, faults: FaultSchedule) -> Self {
        self.faults = Some(faults);
        self
    }

    /// The lossy-link preset: drop each message with probability
    /// `drop_probability` until GST at half the nominal run length
    /// (`epochs × δ`), reliable delivery after — the scenario every
    /// Byzantine behavior is re-run under in CI.
    pub fn with_lossy_links(self, seed: u64, drop_probability: f64) -> Self {
        let gst = SimTime::ZERO + self.delay * self.epochs;
        self.with_faults(FaultSchedule::lossy(seed, drop_probability, gst))
    }

    /// The partition preset: replica `n − 1` is cut off from everyone else
    /// until half the nominal run length (`epochs × δ`), then the cut
    /// heals — the scenario the block-sync acceptance criterion measures
    /// (the isolated replica must recover the committed prefix).
    pub fn with_partitioned_straggler(self) -> Self {
        let straggler = ReplicaId::new((self.n - 1) as u16);
        let heal_at = SimTime::ZERO + self.delay * self.epochs;
        self.with_faults(FaultSchedule::partition(vec![straggler], heal_at))
    }

    /// The payload source replicas propose from under this configuration.
    pub(crate) fn payload_source(&self) -> PayloadSource {
        if self.batch_size > 0 {
            PayloadSource::Mempool(BatchConfig {
                max_txns: self.batch_size,
                // The sweep knob is the count; leave bytes uncapped so
                // `batch_size` is authoritative.
                max_bytes: u64::MAX,
            })
        } else {
            PayloadSource::Synthetic {
                txn_count: self.txns_per_block,
                txn_bytes: self.txn_bytes,
            }
        }
    }

    /// The deterministic client transaction stream fed to every replica's
    /// mempool in batched mode: enough full batches for every round the run
    /// can reach, identical on every replica (clients broadcast their
    /// transactions), empty in synthetic mode.
    pub(crate) fn client_workload(&self) -> Vec<Transaction> {
        if self.batch_size == 0 || self.live_clients {
            return Vec::new();
        }
        // One batch per round target, with slack for timeout-skipped rounds.
        let total = (self.epochs + 4) * u64::from(self.batch_size);
        let clients = 16u64;
        (0..total)
            .map(|i| {
                Transaction::new(
                    i % clients,
                    i / clients,
                    vec![0xc5; self.txn_bytes as usize],
                )
            })
            .collect()
    }

    /// Runs the simulation to completion under the configured protocol.
    pub fn run(self) -> SimReport {
        match self.protocol {
            Protocol::Streamlet => Simulation::new(self).run(),
            Protocol::Fbft => FbftSimulation::new(self).run(),
        }
    }
}

/// Wall-clock pacing for a loopback TCP run of a [`SimConfig`] replica
/// set. The defaults leave orders of magnitude of scheduler slack over
/// loopback latency (tens of microseconds) while keeping runs short.
#[derive(Clone, Copy, Debug)]
pub struct TcpPacing {
    /// The pacing unit: Streamlet epochs span two of these, and the
    /// post-run drain advances in steps of it.
    pub delta: SimDuration,
    /// SFT-DiemBFT base round timeout. Keep far above loopback round
    /// latency so rounds close on QCs, never on spurious wall-clock TCs.
    pub base_timeout: SimDuration,
    /// Hard wall-clock ceiling on the run.
    pub horizon: SimDuration,
}

impl Default for TcpPacing {
    fn default() -> Self {
        Self {
            delta: SimDuration::from_millis(25),
            base_timeout: SimDuration::from_secs(5),
            horizon: SimDuration::from_secs(120),
        }
    }
}

/// Runs `config`'s replica set — the exact engines [`SimConfig::run`]
/// would build — over a loopback TCP mesh instead of the simulator, under
/// the generic [`run_engine`] loop. This is the transport-parity harness
/// `repro --transport tcp` and the `tcp_parity` suite share: content
/// determinism means the TCP run commits the sim run's chain (check with
/// [`SimReport::check_committed_prefix_of`]); only its length can differ.
///
/// # Errors
///
/// Returns any socket error raised while building the mesh.
pub fn run_over_tcp(config: &SimConfig, pacing: TcpPacing) -> std::io::Result<SimReport> {
    run_over_tcp_serving(config, pacing, |_| {})
}

/// [`run_over_tcp`] with a live client plane: once the mesh is up —
/// but before the first round fires — `ready` receives one socket
/// address per replica, each the client gateway of the corresponding
/// replica's [`TcpCluster`] listener. Dial them with a
/// [`ProtocolTag::Client`] hello frame (see the crate README's
/// "Client API") and submit [`sft_types::ClientRequest`]s; the run
/// loop serves admission and acks in-line with consensus. `ready` runs
/// on the caller's thread, so spawn client threads from it rather than
/// blocking — the replicas only start exchanging messages after it
/// returns.
///
/// # Errors
///
/// Returns any socket error raised while building the mesh.
pub fn run_over_tcp_serving(
    config: &SimConfig,
    pacing: TcpPacing,
    ready: impl FnOnce(&[std::net::SocketAddr]),
) -> std::io::Result<SimReport> {
    let behaviors = config.behaviors.clone();
    let horizon = SimTime::ZERO + pacing.horizon;
    // One registry serves the transport's frame counters and the
    // runner's phase timings alike, so the report's metrics are whole.
    let recorder = config
        .recording
        .then(|| std::sync::Arc::new(sft_obs::Registry::new()) as sft_obs::SharedRecorder);
    let tag = match config.protocol {
        Protocol::Streamlet => ProtocolTag::Streamlet,
        Protocol::Fbft => ProtocolTag::Fbft,
    };
    let mut cluster = TcpCluster::loopback(config.n, tag)?;
    if let Some(recorder) = &recorder {
        cluster.set_recorder(std::sync::Arc::clone(recorder));
    }
    let addrs = (0..config.n as u16)
        .map(|id| cluster.client_addr(ReplicaId::new(id)))
        .collect::<std::io::Result<Vec<_>>>()?;
    ready(&addrs);
    // Unlike the simulator's in-memory sinks, TCP runs persist to real
    // files: the fsyncs (and the group-commit win over them) are real.
    let (wals, wal_root) = tcp_wals(config, &cluster, recorder.as_ref())?;
    let report = match config.protocol {
        Protocol::Streamlet => {
            let mut runner = EngineRunner::new(
                build_streamlet_engines(config, pacing.delta * 2),
                behaviors,
                cluster,
                NoMischief,
                RunnerConfig {
                    plan: RunPlan::UntilQuiescent,
                    horizon,
                    drain_bound: config.drain_sync_bound,
                    drain_step: pacing.delta,
                },
            );
            if let Some(recorder) = recorder {
                runner.set_recorder(recorder);
            }
            if let Some(wals) = wals {
                runner.set_wals(wals);
            }
            runner.run()
        }
        Protocol::Fbft => {
            let mut runner = EngineRunner::new(
                build_fbft_engines(config, pacing.base_timeout),
                behaviors,
                cluster,
                NoMischief,
                RunnerConfig {
                    plan: RunPlan::PastRound(Round::new(config.epochs)),
                    horizon,
                    drain_bound: config.drain_sync_bound,
                    drain_step: pacing.delta,
                },
            );
            if let Some(recorder) = recorder {
                runner.set_recorder(recorder);
            }
            if let Some(wals) = wals {
                runner.set_wals(wals);
            }
            runner.run()
        }
    };
    // The runner (and with it every WAL-writer thread) is gone; the logs
    // were scratch state for this run only.
    if let Some(root) = wal_root {
        let _ = std::fs::remove_dir_all(root);
    }
    Ok(report)
}

/// Monotone discriminator for concurrent/successive TCP runs in one
/// process, so their scratch WAL directories never collide.
static TCP_WAL_RUN: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// The per-replica durable logs for a TCP run plus the scratch directory
/// root to remove afterwards; both `None` under [`DurabilityMode::InMemory`].
type TcpWals = (
    Option<Vec<Box<dyn sft_core::DurableWal>>>,
    Option<std::path::PathBuf>,
);

/// Builds the file-backed per-replica durable logs for a TCP run (and the
/// scratch directory root to remove afterwards), or `(None, None)` under
/// [`DurabilityMode::InMemory`]. Group-commit logs get the cluster's
/// writer wake hook, so a completed fsync immediately releases the frames
/// it gates instead of waiting out the writer's retry tick.
fn tcp_wals(
    config: &SimConfig,
    cluster: &TcpCluster,
    recorder: Option<&sft_obs::SharedRecorder>,
) -> std::io::Result<TcpWals> {
    if config.durability == DurabilityMode::InMemory {
        return Ok((None, None));
    }
    let run = TCP_WAL_RUN.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let root = std::env::temp_dir().join(format!("sft-wal-{}-{run}", std::process::id()));
    let wal_err = |e: sft_core::WalError| std::io::Error::other(e.to_string());
    let mut wals: Vec<Box<dyn sft_core::DurableWal>> = Vec::with_capacity(config.n);
    for id in 0..config.n {
        let dir = root.join(format!("replica-{id}"));
        std::fs::create_dir_all(&dir)?;
        let store = sft_core::WalStore::open(&dir, 1).map_err(wal_err)?;
        let recorder = recorder.map_or_else(sft_obs::noop, std::sync::Arc::clone);
        wals.push(match config.durability {
            DurabilityMode::InMemory => unreachable!("handled above"),
            DurabilityMode::WriteThrough => {
                Box::new(store.into_write_through(recorder).map_err(wal_err)?)
            }
            DurabilityMode::GroupCommit => Box::new(
                store
                    .into_group_commit(recorder, Some(cluster.writer_wake_hook()))
                    .map_err(wal_err)?,
            ),
        });
    }
    Ok((Some(wals), Some(root)))
}

/// Everything a finished run reports, protocol independent.
#[derive(Clone, Debug)]
pub struct SimReport {
    /// Committed chain per replica, oldest block first.
    pub chains: Vec<Vec<HashValue>>,
    /// Strong-commit log per replica (§5): standard commits and every
    /// strength increase, in occurrence order.
    pub commit_logs: Vec<Vec<StrongCommitUpdate>>,
    /// The same log entries stamped with the virtual time each replica
    /// produced them — the series the latency experiments (§4, Fig 7/8)
    /// are computed from.
    pub timelines: Vec<Vec<(SimTime, StrongCommitUpdate)>>,
    /// Aggregate network traffic.
    pub net: NetworkStats,
    /// Transactions carried by the longest committed chain (batched mode
    /// counts drained client transactions; synthetic mode counts described
    /// ones) — the numerator of the throughput metric.
    pub txns_committed: u64,
    /// Virtual time at the end of the run.
    pub elapsed: SimTime,
    /// Replicas whose commit rule observed conflicting finalized chains.
    pub safety_violations: usize,
    /// Equivocating replicas detected by at least one honest replica.
    pub equivocators_detected: usize,
    /// Block-sync requests issued across all replicas (retries included).
    pub sync_requests: u64,
    /// Blocks recovered via block-sync across all replicas.
    pub sync_blocks_fetched: u64,
    /// Replicas that fell behind, fetched blocks via sync, and ended the
    /// run with a non-empty committed chain — the catch-up success count.
    pub recovered_replicas: usize,
    /// Total endorsement-walk steps across all replicas — how much work
    /// the §3 ancestor walk did while grading commits (0 when the engine
    /// does not expose the tracker).
    pub walk_steps: u64,
    /// Individual signature verifications across all replicas (eager
    /// checks, deferred-path probes, and post-QC stragglers). Under
    /// [`VerifyPolicy::OnQuorum`] this stays O(n) per certified round;
    /// under [`VerifyPolicy::OnArrival`] it is O(n²) — the drop the bench
    /// gate bands.
    pub sig_verifications: u64,
    /// Batched quorum verifications run across all replicas (one per
    /// certificate formed under [`VerifyPolicy::OnQuorum`]; 0 under
    /// [`VerifyPolicy::OnArrival`]).
    pub batch_verify_calls: u64,
    /// WAL fsyncs across all replicas. 0 under
    /// [`DurabilityMode::InMemory`]; one per persisted record under
    /// [`DurabilityMode::WriteThrough`]; one per *group* under
    /// [`DurabilityMode::GroupCommit`] — the drop between the last two is
    /// the group-commit win.
    pub wal_fsyncs: u64,
    /// Counters and latency histograms recorded during the run. Empty
    /// unless the run was built with [`SimConfig::with_recording`] (or a
    /// recorder was installed on the runner directly).
    pub metrics: sft_obs::MetricsSnapshot,
}

/// Aggregates per-replica sync counters into the three report metrics:
/// total requests, total blocks fetched, and the recovered-replica count.
pub(crate) fn sync_report_fields<'a>(
    nodes: impl Iterator<Item = (SyncStats, &'a [HashValue])>,
) -> (u64, u64, usize) {
    let mut requests = 0;
    let mut fetched = 0;
    let mut recovered = 0;
    for (stats, chain) in nodes {
        requests += stats.requests_sent;
        fetched += stats.blocks_admitted;
        if stats.blocks_admitted > 0 && !chain.is_empty() {
            recovered += 1;
        }
    }
    (requests, fetched, recovered)
}

impl SimReport {
    /// True if all committed chains are pairwise prefix-compatible — the
    /// agreement property of Theorem 1.
    pub fn agreement(&self) -> bool {
        self.chains.iter().enumerate().all(|(i, a)| {
            self.chains[i + 1..].iter().all(|b| {
                let common = a.len().min(b.len());
                a[..common] == b[..common]
            })
        })
    }

    /// The longest committed chain across replicas.
    pub fn max_committed(&self) -> usize {
        self.chains.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// The highest strength level any replica recorded for any commit.
    pub fn max_commit_level(&self) -> u64 {
        self.commit_logs
            .iter()
            .flatten()
            .map(StrongCommitUpdate::level)
            .max()
            .unwrap_or(0)
    }

    /// Committed transactions per *virtual* second — the throughput number
    /// the batching/pipelining work is measured by. Zero if no time passed.
    pub fn txns_per_sec(&self) -> f64 {
        let micros = self.elapsed.as_micros();
        if micros == 0 {
            return 0.0;
        }
        self.txns_committed as f64 * 1e6 / micros as f64
    }

    /// The virtual instant of the first commit-log entry on replica
    /// `id`'s timeline, if it ever committed — the per-run latency number
    /// the cross-protocol comparison charts.
    pub fn first_commit_at(&self, id: usize) -> Option<SimTime> {
        self.timelines.get(id)?.first().map(|(at, _)| *at)
    }

    /// Verifies that every committed chain in this report is a prefix of
    /// the longest committed chain in `reference` — the transport-parity
    /// acceptance criterion (same blocks, same order; only run length may
    /// differ between transports). Returns a description of the first
    /// divergence.
    ///
    /// # Errors
    ///
    /// Returns why the prefix property does not hold.
    pub fn check_committed_prefix_of(&self, reference: &SimReport) -> Result<(), String> {
        let reference_chain = reference
            .chains
            .iter()
            .max_by_key(|c| c.len())
            .ok_or_else(|| "reference report has no replicas".to_string())?;
        for (id, chain) in self.chains.iter().enumerate() {
            if chain.len() > reference_chain.len() {
                return Err(format!(
                    "replica {id} committed {} blocks vs the reference's {}",
                    chain.len(),
                    reference_chain.len()
                ));
            }
            if chain[..] != reference_chain[..chain.len()] {
                return Err(format!(
                    "replica {id}'s committed chain diverges from the reference"
                ));
            }
        }
        Ok(())
    }

    /// Per-block strength levels never decrease in any replica's commit
    /// log — the monotonicity the §5 log format promises light clients.
    pub fn commit_strength_monotone(&self) -> bool {
        self.commit_logs.iter().all(|log| {
            let mut best: std::collections::HashMap<HashValue, u64> = Default::default();
            log.iter().all(|update| {
                let prev = best.insert(update.block_id(), update.level());
                prev.is_none_or(|p| p <= update.level())
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn honest_run_commits_and_strengthens() {
        let report = SimConfig::new(4, 6).run();
        assert!(report.agreement());
        // 6 epochs, commits start landing from epoch 3 on.
        assert!(report.max_committed() >= 3);
        assert_eq!(
            report.max_commit_level(),
            2,
            "all-honest n=4 reaches the 2f ceiling"
        );
        assert_eq!(report.safety_violations, 0);
        // First commit lands when the second epoch's votes arrive: 4δ.
        assert_eq!(report.first_commit_at(0), Some(SimTime::from_millis(400)));
    }

    #[test]
    fn network_accounting_is_nontrivial() {
        let report = SimConfig::new(4, 4).run();
        // Each epoch: 3 proposal sends + 4 voters × 3 vote sends.
        assert!(report.net.messages > 0);
        assert!(
            report.net.bytes > report.net.messages,
            "messages carry payloads"
        );
        assert_eq!(report.elapsed, SimTime::from_millis(4 * 2 * 100));
    }

    #[test]
    fn deterministic_across_runs() {
        let a = SimConfig::new(7, 8)
            .with_behavior(2, Behavior::Equivocate)
            .run();
        let b = SimConfig::new(7, 8)
            .with_behavior(2, Behavior::Equivocate)
            .run();
        assert_eq!(a.chains, b.chains);
        assert_eq!(a.commit_logs, b.commit_logs);
        assert_eq!(a.net, b.net);
    }

    #[test]
    fn recording_off_keeps_metrics_empty() {
        let report = SimConfig::new(4, 4).run();
        assert!(report.metrics.is_empty());
    }

    #[test]
    fn recording_captures_phases_and_round_latencies() {
        use sft_obs::names;
        for protocol in [Protocol::Streamlet, Protocol::Fbft] {
            let report = SimConfig::new(4, 6)
                .with_protocol(protocol)
                .with_recording(true)
                .run();
            let metrics = &report.metrics;
            for phase in [
                names::PHASE_ON_ENVELOPE_NS,
                names::PHASE_PERSIST_NS,
                names::PHASE_ROUTE_NS,
            ] {
                let hist = metrics.hist(phase).unwrap_or_else(|| {
                    panic!("{protocol:?} missing {phase}");
                });
                assert!(hist.p50 > 0 && hist.p99 > 0, "{protocol:?} {phase}");
            }
            let commit = metrics
                .hist(names::ROUND_COMMIT_US)
                .expect("commit latency");
            assert!(commit.count > 0 && commit.p50 > 0, "{protocol:?} commits");
            assert!(metrics.counter(names::CONSENSUS_VOTES_CAST).unwrap_or(0) > 0);
            assert!(metrics.counter(names::CONSENSUS_QC_FORMED).unwrap_or(0) > 0);
            assert!(metrics.counter(names::NET_MSGS[0]).unwrap_or(0) > 0);
            assert!(metrics.counter(names::NET_BYTES[1]).unwrap_or(0) > 0);
        }
        // Streamlet's epoch clock fires deadlines, so tick timing shows up.
        let report = SimConfig::new(4, 4).with_recording(true).run();
        assert!(report.metrics.hist(names::PHASE_ON_TICK_NS).is_some());
    }

    #[test]
    fn walk_steps_are_reported() {
        let report = SimConfig::new(4, 6).run();
        assert!(report.walk_steps > 0, "honest runs grade endorsements");
    }

    #[test]
    #[should_panic(expected = "one behavior per replica")]
    fn behavior_count_must_match() {
        let mut config = SimConfig::new(4, 1);
        config.behaviors.pop();
        Simulation::new(config);
    }
}
