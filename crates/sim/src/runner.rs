//! The generic engine run loop: one discrete event loop that drives any
//! [`ReplicaEngine`] over any [`Transport`].
//!
//! This is the layer cut that used to be duplicated across
//! `streamlet_driver` and `fbft_driver`: decode-free dispatch (engines eat
//! envelope bytes), same-instant cascades (a replica hears its own
//! broadcasts without paying the network delay), deadline firing, the
//! bounded post-run sync drain, Byzantine behavior filtering, and
//! [`SimReport`] assembly all live here exactly once. The protocol crates
//! contribute engines; the drivers contribute only construction and the
//! protocol-specific Byzantine payloads ([`Mischief`]).
//!
//! ## Behaviors without protocol knowledge
//!
//! Outbound messages carry a [`MsgKind`] tag, so most of the fault model
//! is pure routing policy:
//!
//! - [`Behavior::Silent`] — never delivered to, never ticked;
//! - [`Behavior::WithholdVote`] — its `Vote`s are dropped at the source;
//! - [`Behavior::StallLeader`] — its `Proposal`s are dropped (and the
//!   drivers additionally give it no payload source, so it never builds
//!   one);
//! - [`Behavior::Equivocate`] — its honest `Vote`s are replaced by forged
//!   ones and its `Proposal` broadcasts become split-brain twin pairs.
//!
//! Only the *contents* of the forged votes and twin proposals are
//! protocol-specific; the [`Mischief`] hook supplies those.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use sft_core::{DurableWal, EngineStep, MsgKind, OutboundMsg, ReplicaEngine, Route, WalRecord};
use sft_crypto::HashValue;
use sft_network::Transport;
use sft_obs::{names, PhaseTimer, SharedRecorder};
use sft_types::{
    ClientFrame, Decode, Encode, PersistSeq, ReplicaId, Round, SendGate, SimDuration, SimTime,
    StrongCommitUpdate,
};

use crate::{Behavior, SimReport};

/// Index of a [`MsgKind`] into the per-kind [`names::NET_MSGS`] /
/// [`names::NET_BYTES`] counter tables.
fn kind_index(kind: MsgKind) -> usize {
    match kind {
        MsgKind::Proposal => 0,
        MsgKind::Vote => 1,
        MsgKind::Timeout => 2,
        MsgKind::SyncRequest => 3,
        MsgKind::SyncResponse => 4,
    }
}

/// How a run decides it is finished.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunPlan {
    /// Externally clocked protocols (Streamlet): run until the engines
    /// schedule nothing further, then drain in-flight traffic and catch-up
    /// fetches (bounded) until the transport is quiet and no live replica
    /// is still syncing.
    UntilQuiescent,
    /// Self-pacing protocols (SFT-DiemBFT): run until every honest replica
    /// has moved past this round *and* none is still block-syncing — the
    /// majority keeps pipelining rounds, so events keep flowing until a
    /// straggler has caught up.
    PastRound(Round),
}

/// The protocol-specific payloads Byzantine behaviors need: everything
/// else about the fault model is generic routing policy in the runner.
pub trait Mischief<E: ReplicaEngine> {
    /// Twin an equivocating leader's proposal: returns the two conflicting
    /// encodings (the honest half and a sibling with a different payload)
    /// for split-brain delivery, or `None` if `proposal_bytes` cannot be
    /// twinned (the runner then broadcasts it honestly).
    fn twin(
        &mut self,
        node: usize,
        engine: &E,
        proposal_bytes: &[u8],
    ) -> Option<(Vec<u8>, Vec<u8>)>;

    /// The forged vote an equivocator broadcasts for an ingested proposal
    /// (at most once per block), or `None` if `incoming` is not a proposal
    /// or was already voted on.
    fn forge_vote(&mut self, node: usize, engine: &E, incoming: &[u8]) -> Option<Vec<u8>>;
}

/// The no-op [`Mischief`]: every replica is honest. This is what real
/// deployments (the TCP transport) run with.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoMischief;

impl<E: ReplicaEngine> Mischief<E> for NoMischief {
    fn twin(&mut self, _: usize, _: &E, _: &[u8]) -> Option<(Vec<u8>, Vec<u8>)> {
        None
    }

    fn forge_vote(&mut self, _: usize, _: &E, _: &[u8]) -> Option<Vec<u8>> {
        None
    }
}

/// Pacing and safety bounds for a run, independent of protocol and
/// transport.
#[derive(Clone, Copy, Debug)]
pub struct RunnerConfig {
    /// The completion rule.
    pub plan: RunPlan,
    /// Hard virtual-time ceiling: a runaway guard, generous enough that no
    /// legitimate schedule (timeout back-off included) comes near it.
    pub horizon: SimTime,
    /// Maximum post-schedule drain iterations (each one processes pending
    /// events or advances time by one drain step).
    pub drain_bound: u64,
    /// How far to advance time per drain iteration when no event is
    /// scheduled but catch-up work remains (use the network delay δ).
    pub drain_step: SimDuration,
}

/// Messages pending immediate (same-instant) delivery: `(to, from, bytes)`.
/// A replica's own broadcasts loop back through here without paying the
/// transport delay.
type Inbox = VecDeque<(ReplicaId, ReplicaId, Arc<[u8]>)>;

/// The generic run harness: `n` engines, their behaviors, one transport,
/// and one [`Mischief`] hook. See the [module docs](self).
pub struct EngineRunner<E: ReplicaEngine, T: Transport, M: Mischief<E>> {
    engines: Vec<E>,
    behaviors: Vec<Behavior>,
    transport: T,
    mischief: M,
    config: RunnerConfig,
    timelines: Vec<Vec<(SimTime, StrongCommitUpdate)>>,
    /// Per-replica write-ahead logs: every durable record the engines
    /// emitted, appended *before* the messages it justifies were routed —
    /// the in-memory stand-in for the on-disk WAL a real node keeps.
    persisted: Vec<Vec<WalRecord>>,
    /// Per-replica durable logs, when the run is pipelined: every persist
    /// record is appended here too, and every outbound message is gated on
    /// the watermark covering the replica's last appended sequence —
    /// persist-before-send becomes watermark-before-flush. `None` keeps
    /// the classic in-memory-only discipline (no gating, no fsyncs).
    wals: Option<Vec<Box<dyn DurableWal>>>,
    /// Replica `i`'s last appended persist sequence (0 = nothing appended)
    /// — the sequence its next outbound frames are gated on.
    last_seq: Vec<PersistSeq>,
    drain_used: u64,
    /// Which client connection is waiting on each admitted transaction's
    /// ack — the routing table from [`ReplicaEngine::drain_acks`] back to
    /// [`Transport::send_client`]. Empty (and cost-free) on transports
    /// without a client gateway.
    ack_routes: HashMap<HashValue, u64>,
    /// Where run-loop phase timings and per-kind traffic counters go;
    /// the no-op recorder by default, so instrumentation is free.
    recorder: SharedRecorder,
}

impl<E: ReplicaEngine, T: Transport, M: Mischief<E>> EngineRunner<E, T, M> {
    /// Builds a runner.
    ///
    /// # Panics
    ///
    /// Panics if `engines` and `behaviors` disagree in length or the
    /// transport connects a different number of replicas.
    pub fn new(
        engines: Vec<E>,
        behaviors: Vec<Behavior>,
        transport: T,
        mischief: M,
        config: RunnerConfig,
    ) -> Self {
        assert_eq!(engines.len(), behaviors.len(), "one behavior per replica");
        assert_eq!(
            engines.len(),
            transport.replica_count(),
            "transport sized for the replica set"
        );
        let n = engines.len();
        Self {
            engines,
            behaviors,
            transport,
            mischief,
            config,
            timelines: vec![Vec::new(); n],
            persisted: vec![Vec::new(); n],
            wals: None,
            last_seq: vec![0; n],
            drain_used: 0,
            ack_routes: HashMap::new(),
            recorder: sft_obs::noop(),
        }
    }

    /// Installs a live recorder: the run loop starts timing its phases
    /// and counting per-kind traffic, and every engine starts reporting
    /// its per-round consensus events into the same registry.
    pub fn set_recorder(&mut self, recorder: SharedRecorder) {
        for engine in &mut self.engines {
            engine.set_recorder(Arc::clone(&recorder));
        }
        self.recorder = recorder;
    }

    /// Installs one durable log per replica and switches the run to the
    /// pipelined persistence discipline: every persist record is appended
    /// to the replica's [`DurableWal`] before its step's messages are
    /// routed, and every outbound message carries a [`SendGate`] that
    /// holds it in the transport until the log's durability watermark
    /// covers the replica's last appended record.
    ///
    /// # Panics
    ///
    /// Panics if `wals` is not exactly one log per replica.
    pub fn set_wals(&mut self, wals: Vec<Box<dyn DurableWal>>) {
        assert_eq!(wals.len(), self.engines.len(), "one wal per replica");
        self.wals = Some(wals);
    }

    /// Immutable access to engine `i`, for tests and benches.
    pub fn engine(&self, i: usize) -> &E {
        &self.engines[i]
    }

    /// Replica `i`'s write-ahead log so far, in persistence order — what
    /// a crash at this instant would leave on disk.
    pub fn persisted(&self, i: usize) -> &[WalRecord] {
        &self.persisted[i]
    }

    /// Swaps in a replacement engine for replica `i` and returns the old
    /// one — the in-process analogue of `kill -9` plus restart. The
    /// replacement arrives with whatever state the caller rebuilt (nothing
    /// for an amnesiac restart, a [`restore`](ReplicaEngine::restore)
    /// replay of [`persisted`](Self::persisted) for a recovering one); its
    /// WAL keeps growing where the old engine's left off.
    pub fn replace_engine(&mut self, i: usize, engine: E) -> E {
        assert_eq!(
            engine.id(),
            self.engines[i].id(),
            "replacement must keep the replica's identity"
        );
        std::mem::replace(&mut self.engines[i], engine)
    }

    /// Reassigns replica `i`'s behavior mid-run (e.g. `Silent` while it is
    /// "down" between a crash and its restart).
    pub fn set_behavior(&mut self, i: usize, behavior: Behavior) {
        self.behaviors[i] = behavior;
    }

    /// The transport, for stats inspection.
    pub fn transport(&self) -> &T {
        &self.transport
    }

    /// Runs to completion per the configured [`RunPlan`] and reports.
    pub fn run(mut self) -> SimReport {
        loop {
            if let RunPlan::PastRound(target) = self.config.plan {
                if self.honest_min_round() > target && !self.sync_active() {
                    break;
                }
            }
            match self.next_event_time() {
                Some(t) if t <= self.config.horizon => self.step_instant(t),
                Some(_) => break, // horizon tripped: runaway guard
                None => {
                    // Nothing scheduled. Keep time moving in drain steps
                    // while in-flight traffic or catch-up fetches remain
                    // (bounded), so sync retry timers still fire.
                    if (!self.transport.is_idle() || self.sync_active())
                        && self.drain_used < self.config.drain_bound
                    {
                        self.drain_used += 1;
                        let t = self.transport.now() + self.config.drain_step;
                        self.step_instant(t);
                    } else {
                        break;
                    }
                }
            }
        }
        // Settle durability before reporting: every appended record is
        // fsynced (so the fsync count is stable) and every gated frame's
        // watermark is reachable — nothing is left waiting on a sync that
        // will never come.
        if let Some(wals) = &mut self.wals {
            for wal in wals.iter_mut() {
                wal.barrier().expect("wal barrier");
            }
        }
        self.report()
    }

    /// Advances through every scheduled event at or before `until`, then
    /// to `until` itself — the incremental API benchmarks drive epochs
    /// with.
    pub fn run_until(&mut self, until: SimTime) {
        while let Some(next) = self.next_event_time() {
            if next > until {
                break;
            }
            self.step_instant(next);
        }
        if self.transport.now() < until {
            self.step_instant(until);
        }
    }

    /// The earliest pending event: a transport delivery or a live replica's
    /// deadline. `None` when nothing is scheduled (the transport may still
    /// hold traffic it cannot time — the run loop's drain covers that).
    fn next_event_time(&self) -> Option<SimTime> {
        let deadline = self
            .engines
            .iter()
            .zip(&self.behaviors)
            .filter(|(_, b)| **b != Behavior::Silent)
            .filter_map(|(e, _)| e.next_deadline())
            .min();
        let delivery = self.transport.next_deliver_at();
        match (deadline, delivery) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Processes everything that happens up to (and at) instant `target`:
    /// due deliveries, due deadlines, and every message the engines chain
    /// off them — iterating until the instant produces nothing further
    /// (self-deliveries cascade within it), then draining due block-sync
    /// fetches.
    fn step_instant(&mut self, target: SimTime) {
        // A freshly restarted engine can report a deadline already in the
        // past (its clock resumes where the pre-crash replica left off);
        // overdue work fires at the current instant — time never rewinds.
        let target = target.max(self.transport.now());
        let deliveries = self.transport.poll_deliver(target);
        // A socket transport may return early (arrival before the
        // deadline); its clock, not the target, is the processing instant.
        let now = self.transport.now();
        let mut inbox: Inbox = deliveries
            .into_iter()
            .map(|d| (d.to, d.from, d.payload))
            .collect();
        // Client ingress rides the same instant: submissions admitted here
        // are eligible for the very proposals this instant builds.
        self.serve_clients(now);
        loop {
            while let Some((to, from, bytes)) = inbox.pop_front() {
                self.handle(to, from, bytes, now, &mut inbox);
            }
            if self.fire_due_ticks(now, &mut inbox) || !inbox.is_empty() {
                continue;
            }
            self.poll_sync(now, &mut inbox);
            if inbox.is_empty() {
                break;
            }
        }
        self.flush_acks();
    }

    /// The client-ingress leg: drains the transport's client gateway,
    /// submits each request to the replica it addressed, and answers
    /// immediate verdicts (`Busy`, `Duplicate`) on the spot. Admitted
    /// requests are answered later, by [`flush_acks`](Self::flush_acks),
    /// when their commit reaches the requested strength. A no-op (one
    /// empty poll) on transports without a client gateway.
    fn serve_clients(&mut self, now: SimTime) {
        for delivery in self.transport.poll_clients() {
            let i = delivery.replica.as_usize();
            if i >= self.engines.len() || self.behaviors[i] == Behavior::Silent {
                continue;
            }
            let Ok(ClientFrame::Request(req)) = ClientFrame::from_bytes(&delivery.payload) else {
                continue; // unparseable interior, or an ack sent inward
            };
            let txn_id = req.txn_id();
            match self.engines[i].submit(&req, now) {
                Some(verdict) => {
                    let bytes: Arc<[u8]> = ClientFrame::Ack(verdict).to_bytes().into();
                    self.transport
                        .send_client(delivery.conn, delivery.replica, bytes);
                }
                None => {
                    self.ack_routes.insert(txn_id, delivery.conn);
                }
            }
        }
    }

    /// Streams every newly ready strength-graded ack back down the client
    /// connection that asked for it. Acks for transactions nobody is
    /// waiting on (driver-fed workload, a departed client's re-submission
    /// by someone else) are dropped — acks are a courtesy, not state.
    fn flush_acks(&mut self) {
        for i in 0..self.engines.len() {
            let acks = self.engines[i].drain_acks();
            if acks.is_empty() {
                continue;
            }
            let replica = self.engines[i].id();
            for ack in acks {
                let Some(conn) = self.ack_routes.remove(&ack.txn_id()) else {
                    continue;
                };
                let bytes: Arc<[u8]> = ClientFrame::Ack(ack).to_bytes().into();
                self.transport.send_client(conn, replica, bytes);
            }
        }
    }

    /// Routes one delivered payload to its engine, applying behavior
    /// policy to everything the engine wants sent in response.
    fn handle(
        &mut self,
        to: ReplicaId,
        from: ReplicaId,
        bytes: Arc<[u8]>,
        now: SimTime,
        inbox: &mut Inbox,
    ) {
        let i = to.as_usize();
        if self.behaviors[i] == Behavior::Silent {
            return;
        }
        let timer = PhaseTimer::start(&*self.recorder);
        let step = self.engines[i].on_envelope(from, &bytes, now);
        timer.finish(&*self.recorder, names::PHASE_ON_ENVELOPE_NS);
        // An equivocator votes for every proposal it sees — with a forged
        // clean-history marker, in place of the honest vote the policy
        // below discards.
        if self.behaviors[i] == Behavior::Equivocate {
            if let Some(forged) = self.mischief.forge_vote(i, &self.engines[i], &bytes) {
                self.route(i, OutboundMsg::broadcast(MsgKind::Vote, forged), inbox);
            }
        }
        self.absorb(i, step, now, inbox);
    }

    /// Records a step's commit-log entries on node `i`'s timeline and
    /// routes its outbound messages through the behavior filter.
    fn absorb(&mut self, i: usize, step: EngineStep, now: SimTime, inbox: &mut Inbox) {
        // Write-ahead discipline: durable records land in the log before
        // any message they justify is routed, so a crash after a send can
        // never find the log missing the vote that went out. With durable
        // logs installed, `append` only *enqueues* (group commit) or
        // fsyncs inline (write-through); what the hot path actually waits
        // is recorded separately as the persist-wait phase.
        let persist = PhaseTimer::start(&*self.recorder);
        if !step.persist.is_empty() {
            if let Some(wals) = &mut self.wals {
                let wait = PhaseTimer::start(&*self.recorder);
                for record in &step.persist {
                    self.last_seq[i] = wals[i].append(record).expect("wal append");
                }
                wait.finish(&*self.recorder, names::PHASE_PERSIST_WAIT_NS);
            }
        }
        self.persisted[i].extend(step.persist);
        persist.finish(&*self.recorder, names::PHASE_PERSIST_NS);
        self.timelines[i].extend(step.updates.into_iter().map(|u| (now, u)));
        let route = PhaseTimer::start(&*self.recorder);
        for out in step.outbound {
            self.route_filtered(i, out, inbox);
        }
        route.finish(&*self.recorder, names::PHASE_ROUTE_NS);
    }

    /// Behavior policy for one outbound message — see the module docs.
    fn route_filtered(&mut self, i: usize, out: OutboundMsg, inbox: &mut Inbox) {
        match (self.behaviors[i], out.kind) {
            (Behavior::WithholdVote, MsgKind::Vote) => return,
            (Behavior::Equivocate, MsgKind::Vote) => return, // forged instead
            (Behavior::StallLeader, MsgKind::Proposal) => return,
            (Behavior::Equivocate, MsgKind::Proposal) if out.route == Route::Broadcast => {
                self.split_brain(i, out.bytes, inbox);
                return;
            }
            _ => {}
        }
        self.route(i, out, inbox);
    }

    /// The gate replica `i`'s next outbound frames must clear, if the run
    /// is pipelined: the durability watermark must cover the replica's
    /// last appended persist sequence before any frame hits the wire.
    /// `None` when no durable logs are installed or nothing was ever
    /// appended (nothing to justify — sending is free).
    fn gate_for(&self, i: usize) -> Option<SendGate> {
        let wals = self.wals.as_ref()?;
        let seq = self.last_seq[i];
        (seq > 0).then(|| SendGate::new(wals[i].watermark(), seq))
    }

    /// Sends one message: broadcasts go over the transport (encoded once,
    /// recipients share the buffer) and loop back to the sender
    /// immediately; point-to-point sends pay the transport delay.
    ///
    /// Pipelined runs route through the transport's gated entry points,
    /// so the frame is held (in the transport, off the engine loop) until
    /// the WAL watermark covers the records that justify it. The sender's
    /// own loopback delivery is *not* gated: a replica hearing its own
    /// message early cannot equivocate against itself, and its WAL replay
    /// restores the same state after a crash.
    fn route(&mut self, i: usize, out: OutboundMsg, inbox: &mut Inbox) {
        let from = self.engines[i].id();
        if self.recorder.enabled() {
            // One message per transport recipient, mirroring the
            // aggregate NetworkStats accounting but split per kind.
            let recipients = match out.route {
                Route::Broadcast => (self.engines.len() - 1) as u64,
                Route::To(_) => 1,
            };
            let kind = kind_index(out.kind);
            self.recorder.add(names::NET_MSGS[kind], recipients);
            self.recorder
                .add(names::NET_BYTES[kind], recipients * out.bytes.len() as u64);
        }
        let gate = self.gate_for(i);
        match (out.route, gate) {
            (Route::Broadcast, Some(gate)) => {
                self.transport
                    .broadcast_gated(from, Arc::clone(&out.bytes), gate);
                inbox.push_back((from, from, out.bytes));
            }
            (Route::Broadcast, None) => {
                self.transport.broadcast(from, Arc::clone(&out.bytes));
                inbox.push_back((from, from, out.bytes));
            }
            (Route::To(peer), Some(gate)) => {
                self.transport.send_gated(from, peer, out.bytes, gate);
            }
            (Route::To(peer), None) => self.transport.send(from, peer, out.bytes),
        }
    }

    /// Split-brain delivery of an equivocating leader's twin proposals:
    /// low ids see A, high ids see B, and the equivocator itself sees both
    /// (so it casts the conflicting votes honest trackers will flag). Each
    /// twin is encoded once; its recipients share the buffer.
    fn split_brain(&mut self, i: usize, honest: Arc<[u8]>, inbox: &mut Inbox) {
        let Some((a, b)) = self.mischief.twin(i, &self.engines[i], &honest) else {
            self.route(i, OutboundMsg::broadcast(MsgKind::Proposal, honest), inbox);
            return;
        };
        let halves: [Arc<[u8]>; 2] = [a.into(), b.into()];
        let n = self.engines.len();
        let from = self.engines[i].id();
        for to in 0..n as u16 {
            let target = ReplicaId::new(to);
            let half = usize::from(to as usize >= n / 2);
            if target == from {
                inbox.push_back((target, from, Arc::clone(&halves[half])));
            } else {
                self.transport.send(from, target, Arc::clone(&halves[half]));
            }
        }
        // The equivocator also sees the twin its own half did NOT receive.
        let other = usize::from(from.as_usize() < n / 2);
        inbox.push_back((from, from, Arc::clone(&halves[other])));
    }

    /// Fires every live engine whose deadline has passed. Returns whether
    /// any deadline was consumed (the instant may need another cascade).
    fn fire_due_ticks(&mut self, now: SimTime, inbox: &mut Inbox) -> bool {
        let mut fired = false;
        for i in 0..self.engines.len() {
            if self.behaviors[i] == Behavior::Silent {
                continue;
            }
            if self.engines[i].next_deadline().is_some_and(|d| d <= now) {
                fired = true;
                let timer = PhaseTimer::start(&*self.recorder);
                let step = self.engines[i].on_tick(now);
                timer.finish(&*self.recorder, names::PHASE_ON_TICK_NS);
                self.absorb(i, step, now, inbox);
            }
        }
        fired
    }

    /// Drains every live engine's due block-sync fetches, sent
    /// point-to-point to the chosen peers.
    fn poll_sync(&mut self, now: SimTime, inbox: &mut Inbox) {
        for i in 0..self.engines.len() {
            if self.behaviors[i] == Behavior::Silent {
                continue;
            }
            let step = self.engines[i].poll_sync(now);
            self.absorb(i, step, now, inbox);
        }
    }

    /// True while catch-up work remains on the replicas the plan cares
    /// about: every live replica for quiescent runs, honest-ish replicas
    /// (the progress measure) for self-pacing ones.
    fn sync_active(&self) -> bool {
        self.engines
            .iter()
            .zip(&self.behaviors)
            .filter(|(_, b)| match self.config.plan {
                RunPlan::UntilQuiescent => **b != Behavior::Silent,
                RunPlan::PastRound(_) => {
                    matches!(**b, Behavior::Honest | Behavior::StallLeader)
                }
            })
            .any(|(e, _)| e.is_syncing())
    }

    /// The smallest current round among honest replicas (the run's
    /// progress measure). Falls back to the global maximum if the
    /// configuration has no fully honest replica.
    fn honest_min_round(&self) -> Round {
        self.engines
            .iter()
            .zip(&self.behaviors)
            .filter(|(_, b)| matches!(**b, Behavior::Honest | Behavior::StallLeader))
            .map(|(e, _)| e.round())
            .min()
            .unwrap_or_else(|| {
                self.engines
                    .iter()
                    .map(ReplicaEngine::round)
                    .max()
                    .expect("at least one replica")
            })
    }

    /// Snapshot of the current run state as a report.
    pub fn report(&self) -> SimReport {
        let chains: Vec<Vec<sft_crypto::HashValue>> = self
            .engines
            .iter()
            .map(|e| e.committed_chain().to_vec())
            .collect();
        let commit_logs = self
            .engines
            .iter()
            .map(|e| e.commit_log().to_vec())
            .collect();
        let safety_violations = self.engines.iter().filter(|e| e.safety_violated()).count();
        let equivocators_detected = self
            .engines
            .iter()
            .map(ReplicaEngine::equivocators_observed)
            .max()
            .unwrap_or(0);
        let txns_committed = crate::max_committed_txns(
            self.engines
                .iter()
                .map(|e| (e.committed_chain(), e.store())),
        );
        let (sync_requests, sync_blocks_fetched, recovered_replicas) = crate::sync_report_fields(
            self.engines
                .iter()
                .map(|e| (e.sync_stats(), e.committed_chain())),
        );
        let walk_steps = self
            .engines
            .iter()
            .map(ReplicaEngine::endorsement_walk_steps)
            .sum();
        let mut sig_stats = sft_crypto::SigStats::default();
        for engine in &self.engines {
            sig_stats.merge(engine.sig_stats());
        }
        let wal_fsyncs = self
            .wals
            .as_ref()
            .map_or(0, |wals| wals.iter().map(|w| w.fsyncs()).sum());
        SimReport {
            chains,
            commit_logs,
            timelines: self.timelines.clone(),
            net: self.transport.stats(),
            txns_committed,
            elapsed: self.transport.now(),
            safety_violations,
            equivocators_detected,
            sync_requests,
            sync_blocks_fetched,
            recovered_replicas,
            walk_steps,
            sig_verifications: sig_stats.verifications,
            batch_verify_calls: sig_stats.batch_calls,
            wal_fsyncs,
            metrics: self.recorder.snapshot(),
        }
    }
}

/// One-call form of the generic loop: builds an [`EngineRunner`] and runs
/// it to completion. This is the entry point the `repro --transport tcp`
/// path uses — the same loop the simulator runs, over real sockets.
pub fn run_engine<E: ReplicaEngine, T: Transport, M: Mischief<E>>(
    engines: Vec<E>,
    behaviors: Vec<Behavior>,
    transport: T,
    mischief: M,
    config: RunnerConfig,
) -> SimReport {
    EngineRunner::new(engines, behaviors, transport, mischief, config).run()
}
