//! The SFT-Streamlet simulation driver: builds [`StreamletEngine`]s over a
//! [`SimTransport`] and hands them to the generic
//! [`EngineRunner`].
//!
//! Epochs of two message delays (propose at `T`, deliver + vote at
//! `T + δ`, count at `T + 2δ`) come out of the engine's own epoch clock —
//! matching the synchrony assumption of Appendix D, where epochs are
//! externally clocked. What used to be this driver's hand-rolled dispatch,
//! sync drain, and report plumbing now lives in the shared runner; only
//! construction and the Streamlet-specific Byzantine payloads
//! ([`StreamletMischief`]) remain.

use sft_core::{Block, ProtocolConfig, ReplicaEngine};
use sft_crypto::{HashValue, KeyRegistry};
use sft_network::{SimNetwork, SimTransport};
use sft_streamlet::{Message, Proposal, Replica, StreamletEngine};
use sft_types::{Decode, Encode, EndorseInfo, Payload, Round, SimTime, StrongVote};

use crate::runner::{EngineRunner, Mischief, RunPlan, RunnerConfig};
use crate::{Behavior, SimConfig, SimReport};

/// Streamlet's protocol-specific Byzantine payloads: conflicting twin
/// proposals and forged zero-marker votes.
pub struct StreamletMischief {
    registry: KeyRegistry,
    /// Blocks each (Byzantine) node already cast a forged vote for, to
    /// avoid unbounded duplicates.
    forged: Vec<std::collections::HashSet<HashValue>>,
}

impl StreamletMischief {
    fn new(n: usize) -> Self {
        Self {
            registry: KeyRegistry::deterministic(n),
            forged: vec![Default::default(); n],
        }
    }
}

impl Mischief<StreamletEngine> for StreamletMischief {
    fn twin(
        &mut self,
        node: usize,
        engine: &StreamletEngine,
        proposal_bytes: &[u8],
    ) -> Option<(Vec<u8>, Vec<u8>)> {
        let Ok(Message::Proposal(honest)) = Message::from_bytes(proposal_bytes) else {
            return None;
        };
        let parent = engine.store().get(honest.block().parent_id())?.clone();
        let epoch = honest.block().round();
        let conflicting_payload = Payload::synthetic(1, 1, u64::MAX - epoch.as_u64());
        let twin_block = Block::new(&parent, epoch, engine.id(), conflicting_payload);
        let key_pair = self.registry.key_pair(node as u64).expect("key for node");
        let twin = Proposal::new(twin_block, &key_pair);
        Some((proposal_bytes.to_vec(), Message::Proposal(twin).to_bytes()))
    }

    fn forge_vote(
        &mut self,
        node: usize,
        _engine: &StreamletEngine,
        incoming: &[u8],
    ) -> Option<Vec<u8>> {
        let Ok(Message::Proposal(proposal)) = Message::from_bytes(incoming) else {
            return None;
        };
        if !self.forged[node].insert(proposal.block().id()) {
            return None;
        }
        let key_pair = self.registry.key_pair(node as u64).expect("key for node");
        let vote = StrongVote::new(
            proposal.block().vote_data(),
            EndorseInfo::Marker(Round::ZERO),
            &key_pair,
        );
        Some(Message::Vote(vote).to_bytes())
    }
}

/// Builds the Streamlet engine set for `config`: one [`StreamletEngine`]
/// per replica with the configured payload source and the deterministic
/// client workload fed through the mempool's admission path (the same
/// `submit` every live client goes through, minus the ack registration —
/// the harness is not waiting on acks). Stalling leaders get no payload source — their
/// whole deviation is "never propose", and a source-less engine still
/// follows the epoch clock (and votes) like everyone else.
///
/// Public so non-sim transports (the TCP repro path) can run the exact
/// same replica set over real sockets; they pass their own `period`
/// (wall-clock there, `2δ` virtual here).
pub fn build_streamlet_engines(
    config: &SimConfig,
    period: sft_types::SimDuration,
) -> Vec<StreamletEngine> {
    let protocol = ProtocolConfig::for_replicas(config.n);
    let registry = KeyRegistry::deterministic(config.n);
    let source = config.payload_source();
    let workload = config.client_workload();
    (0..config.n as u16)
        .map(|id| {
            let behavior = config.behaviors[id as usize];
            let mut replica = Replica::new(id, protocol, registry.clone(), config.endorse_mode)
                .with_verify_policy(config.verify_policy)
                // Two epochs of silence before re-asking another peer.
                .with_sync_retry(config.delay * 4);
            if behavior != Behavior::StallLeader {
                replica = replica.with_payload_source(source);
            }
            if let Some(cap) = config.mempool_txn_cap {
                replica.set_mempool_caps(cap as usize, u64::MAX);
            }
            for txn in &workload {
                let admitted = replica.submit(txn.clone());
                debug_assert_eq!(admitted, sft_core::Admission::Admitted);
            }
            StreamletEngine::new(replica, period, config.epochs)
        })
        .collect()
}

type Runner = EngineRunner<StreamletEngine, SimTransport, StreamletMischief>;

/// The Streamlet simulator: engines plus the generic runner. Most callers
/// use [`SimConfig::run`]; the struct is public so benchmarks can drive
/// epochs one at a time.
pub struct Simulation {
    runner: Runner,
    protocol: ProtocolConfig,
    period: sft_types::SimDuration,
}

impl Simulation {
    /// Builds replicas, keys, and the network for `config`. In batched mode
    /// every replica's mempool is pre-fed the same deterministic client
    /// transaction stream.
    ///
    /// # Panics
    ///
    /// Panics if `config.behaviors` is not exactly `n` entries.
    pub fn new(config: SimConfig) -> Self {
        assert_eq!(config.behaviors.len(), config.n, "one behavior per replica");
        let protocol = ProtocolConfig::for_replicas(config.n);
        let period = config.delay * 2;
        let engines = build_streamlet_engines(&config, period);
        let mischief = StreamletMischief::new(config.n);
        let mut net = SimNetwork::new(config.delay);
        if let Some(faults) = &config.faults {
            net = net.with_faults(faults.clone());
        }
        let transport = SimTransport::new(net, config.n);
        let mut runner = EngineRunner::new(
            engines,
            config.behaviors.clone(),
            transport,
            mischief,
            RunnerConfig {
                plan: RunPlan::UntilQuiescent,
                horizon: SimTime::ZERO + config.run_horizon,
                drain_bound: config.drain_sync_bound,
                drain_step: config.delay,
            },
        );
        let recorder: sft_obs::SharedRecorder = if config.recording {
            std::sync::Arc::new(sft_obs::Registry::new())
        } else {
            sft_obs::noop()
        };
        if config.recording {
            runner.set_recorder(std::sync::Arc::clone(&recorder));
        }
        if let Some(wals) = crate::sim_wals(&config, &recorder) {
            runner.set_wals(wals);
        }
        Self {
            runner,
            protocol,
            period,
        }
    }

    /// The protocol configuration derived from `n`.
    pub fn protocol(&self) -> ProtocolConfig {
        self.protocol
    }

    /// Runs all configured epochs, lets catch-up traffic settle, and
    /// reports.
    pub fn run(self) -> SimReport {
        self.runner.run()
    }

    /// Advances the run through the end of `epoch` (an epoch spans two
    /// message delays). Benchmarks drive the simulation one epoch at a
    /// time with this.
    pub fn run_epoch(&mut self, epoch: Round) {
        self.runner
            .run_until(SimTime::ZERO + self.period * epoch.as_u64());
    }

    /// Snapshot of the current run state as a report.
    pub fn report(&self) -> SimReport {
        self.runner.report()
    }

    /// Immutable access to replica `id`, for tests and benches.
    pub fn replica(&self, id: u16) -> &Replica {
        self.runner.engine(id as usize).replica()
    }
}
