//! The lock-step SFT-Streamlet driver: epochs of two message delays
//! (propose at `T`, vote at `T + δ`, count at `T + 2δ`), matching the
//! synchrony assumption of Appendix D where epochs are externally clocked.
//!
//! Leaders draw payloads from their replica's configured payload source —
//! batched client transactions from the mempool, or the synthetic workload
//! descriptor — and every broadcast message is encoded exactly once, with
//! all recipients sharing the buffer.

use std::sync::Arc;

use sft_core::{Block, ProtocolConfig};
use sft_crypto::HashValue;
use sft_network::SimNetwork;
use sft_streamlet::{Message, Proposal, Replica};
use sft_types::{
    Decode, Encode, EndorseInfo, Payload, ReplicaId, Round, SimTime, StrongCommitUpdate, StrongVote,
};

use crate::{Behavior, SimConfig, SimReport};

struct Node {
    behavior: Behavior,
    replica: Replica,
    key_pair: sft_crypto::KeyPair,
    /// Blocks this (Byzantine) node already cast a forged vote for in the
    /// current epoch, to avoid unbounded duplicates.
    equivocation_votes: Vec<HashValue>,
}

/// The Streamlet simulator: owns the replicas and the network, runs
/// lock-step epochs. Most callers use [`SimConfig::run`]; the struct is
/// public so benchmarks can drive epochs one at a time.
pub struct Simulation {
    config: SimConfig,
    protocol: ProtocolConfig,
    nodes: Vec<Node>,
    net: SimNetwork,
    timelines: Vec<Vec<(SimTime, StrongCommitUpdate)>>,
}

impl Simulation {
    /// Builds replicas, keys, and the network for `config`. In batched mode
    /// every replica's mempool is pre-fed the same deterministic client
    /// transaction stream.
    ///
    /// # Panics
    ///
    /// Panics if `config.behaviors` is not exactly `n` entries.
    pub fn new(config: SimConfig) -> Self {
        assert_eq!(config.behaviors.len(), config.n, "one behavior per replica");
        let protocol = ProtocolConfig::for_replicas(config.n);
        let registry = sft_crypto::KeyRegistry::deterministic(config.n);
        let source = config.payload_source();
        let workload = config.client_workload();
        let nodes = (0..config.n as u16)
            .map(|id| {
                let behavior = config.behaviors[id as usize];
                let mut replica = Replica::new(id, protocol, registry.clone(), config.endorse_mode)
                    // Two epochs of silence before re-asking another peer.
                    .with_sync_retry(config.delay * 4);
                // A stalling leader's whole deviation is "never propose":
                // leaving it source-less keeps its mempool untouched
                // (begin_epoch_sourced still advances its epoch) — same
                // approach as the fbft driver.
                if behavior != Behavior::StallLeader {
                    replica = replica.with_payload_source(source);
                }
                for txn in &workload {
                    replica.submit_transaction(txn.clone());
                }
                Node {
                    behavior,
                    replica,
                    key_pair: registry.key_pair(u64::from(id)).expect("registry covers n"),
                    equivocation_votes: Vec::new(),
                }
            })
            .collect();
        let mut net = SimNetwork::new(config.delay);
        if let Some(faults) = &config.faults {
            net = net.with_faults(faults.clone());
        }
        Self {
            net,
            timelines: vec![Vec::new(); config.n],
            config,
            protocol,
            nodes,
        }
    }

    /// The protocol configuration derived from `n`.
    pub fn protocol(&self) -> ProtocolConfig {
        self.protocol
    }

    /// Runs all configured epochs, lets catch-up traffic settle, and
    /// reports.
    pub fn run(mut self) -> SimReport {
        for epoch in 1..=self.config.epochs {
            self.run_epoch(Round::new(epoch));
        }
        self.drain_sync();
        self.report()
    }

    /// Runs one epoch: propose at `T`, deliver + vote at `T + δ`, deliver
    /// votes and evaluate commits at `T + 2δ`.
    pub fn run_epoch(&mut self, epoch: Round) {
        let n = self.config.n;

        // Phase 1 — propose. Self-routed messages skip the network (a
        // replica hears itself immediately), everything else pays δ.
        let mut self_inbox: Vec<(ReplicaId, Message)> = Vec::new();
        for i in 0..n {
            let node = &mut self.nodes[i];
            node.equivocation_votes.clear();
            let proposals = match node.behavior {
                Behavior::Silent => Vec::new(),
                Behavior::StallLeader => {
                    // Advances its epoch like everyone else, but its own
                    // proposal (if leading) is never sent anywhere.
                    let _ = node.replica.begin_epoch_sourced(epoch);
                    Vec::new()
                }
                Behavior::Honest | Behavior::WithholdVote => node
                    .replica
                    .begin_epoch_sourced(epoch)
                    .into_iter()
                    .collect(),
                Behavior::Equivocate => equivocating_proposals(node, epoch),
            };
            match proposals.as_slice() {
                [] => {}
                [proposal] => {
                    let msg = Message::Proposal(proposal.clone());
                    self.net
                        .broadcast(proposal.block().proposer(), n, msg.to_bytes());
                    self_inbox.push((proposal.block().proposer(), msg));
                }
                [a, b] => {
                    // Split-brain delivery: low ids see A, high ids see B.
                    // Each twin is encoded once; recipients share the buffer.
                    let from = a.block().proposer();
                    let halves = [Message::Proposal(a.clone()), Message::Proposal(b.clone())];
                    let bytes: [Arc<[u8]>; 2] =
                        [halves[0].to_bytes().into(), halves[1].to_bytes().into()];
                    for to in 0..n as u16 {
                        let target = ReplicaId::new(to);
                        let half = usize::from(to as usize >= n / 2);
                        if target == from {
                            self_inbox.push((target, halves[half].clone()));
                        } else {
                            self.net.send(from, target, Arc::clone(&bytes[half]));
                        }
                    }
                    // The equivocator also sees the twin its own half did
                    // NOT receive, so it casts the conflicting votes honest
                    // trackers will flag regardless of which half it sits in.
                    let other = usize::from(from.as_usize() < n / 2);
                    self_inbox.push((from, halves[other].clone()));
                }
                _ => unreachable!("at most two proposals per epoch"),
            }
        }

        // Phase 2 — deliver proposals (and any due sync traffic), collect
        // votes.
        let mid = self.net.now() + self.config.delay;
        let mut vote_inbox: Vec<(ReplicaId, Message)> = Vec::new();
        let deliveries: Vec<(ReplicaId, Message)> = self_inbox
            .into_iter()
            .chain(self.net.deliver_due(mid).into_iter().map(|e| {
                let msg = Message::from_bytes(&e.payload).expect("well-formed wire message");
                (e.to, msg)
            }))
            .collect();
        for (to, msg) in deliveries {
            self.dispatch(to, msg, &mut vote_inbox);
        }
        self.poll_sync_requests();

        // Phase 3 — deliver votes (and any due sync traffic) everywhere,
        // evaluate the commit rules.
        let end = mid + self.config.delay;
        let deliveries: Vec<(ReplicaId, Message)> = vote_inbox
            .into_iter()
            .chain(self.net.deliver_due(end).into_iter().map(|e| {
                let msg = Message::from_bytes(&e.payload).expect("well-formed wire message");
                (e.to, msg)
            }))
            .collect();
        let mut late_votes = Vec::new();
        for (to, msg) in deliveries {
            self.dispatch(to, msg, &mut late_votes);
        }
        for (to, msg) in late_votes {
            // Votes a proposal delivered this phase attracted: everyone
            // already received the broadcast copy over the network; only
            // the self-loop copy is outstanding.
            let mut none = Vec::new();
            self.dispatch(to, msg, &mut none);
        }
        self.poll_sync_requests();
    }

    /// Routes one delivered message to its replica according to behavior.
    /// Votes produced in response to a proposal are broadcast immediately
    /// and their self-loop copies appended to `vote_inbox` for same-phase
    /// processing (a replica hears itself without paying δ).
    fn dispatch(
        &mut self,
        to: ReplicaId,
        msg: Message,
        vote_inbox: &mut Vec<(ReplicaId, Message)>,
    ) {
        let i = to.as_usize();
        if self.nodes[i].behavior == Behavior::Silent {
            return;
        }
        let n = self.config.n;
        match msg {
            Message::Proposal(proposal) => {
                for vote in self.nodes[i].handle_proposal(&proposal) {
                    let msg = Message::Vote(vote);
                    self.net.broadcast(to, n, msg.to_bytes());
                    vote_inbox.push((to, msg));
                }
            }
            Message::Vote(vote) => {
                let now = self.net.now();
                let updates = self.nodes[i].replica.on_vote(&vote);
                self.timelines[i].extend(updates.into_iter().map(|u| (now, u)));
            }
            Message::SyncRequest(request) => {
                if let Some(response) = self.nodes[i].replica.on_sync_request(&request) {
                    self.net.send(
                        to,
                        request.requester(),
                        Message::SyncResponse(response).to_bytes(),
                    );
                }
            }
            Message::SyncResponse(response) => {
                let now = self.net.now();
                let updates = self.nodes[i].replica.on_sync_response(&response);
                self.timelines[i].extend(updates.into_iter().map(|u| (now, u)));
            }
        }
    }

    /// Sends every replica's due block-sync requests point-to-point.
    fn poll_sync_requests(&mut self) {
        let now = self.net.now();
        for i in 0..self.config.n {
            if self.nodes[i].behavior == Behavior::Silent {
                continue;
            }
            let from = self.nodes[i].replica.id();
            for (peer, request) in self.nodes[i].replica.take_sync_requests(now) {
                self.net
                    .send(from, peer, Message::SyncRequest(request).to_bytes());
            }
        }
    }

    /// After the final epoch, keeps virtual time moving in δ steps until
    /// in-flight messages and catch-up fetches settle (bounded) — the
    /// window in which a replica that fell behind under loss or partition
    /// finishes recovering the committed prefix. A lossless run breaks out
    /// immediately, so its report is identical to the pre-sync driver's.
    fn drain_sync(&mut self) {
        let max_steps = 4 * self.config.epochs + 32;
        for _ in 0..max_steps {
            let syncing = self
                .nodes
                .iter()
                .any(|n| n.behavior != Behavior::Silent && n.replica.is_syncing());
            if self.net.pending() == 0 && !syncing {
                break;
            }
            let next = self.net.now() + self.config.delay;
            let deliveries: Vec<(ReplicaId, Message)> = self
                .net
                .deliver_due(next)
                .into_iter()
                .map(|e| {
                    let msg = Message::from_bytes(&e.payload).expect("well-formed wire message");
                    (e.to, msg)
                })
                .collect();
            let mut votes = Vec::new();
            for (to, msg) in deliveries {
                self.dispatch(to, msg, &mut votes);
            }
            for (to, msg) in votes {
                let mut none = Vec::new();
                self.dispatch(to, msg, &mut none);
            }
            self.poll_sync_requests();
        }
    }

    /// Snapshot of the current run state as a report.
    pub fn report(&self) -> SimReport {
        let chains = self
            .nodes
            .iter()
            .map(|node| node.replica.committed_chain().to_vec())
            .collect();
        let commit_logs = self
            .nodes
            .iter()
            .map(|node| node.replica.commit_log().to_vec())
            .collect();
        let safety_violations = self
            .nodes
            .iter()
            .filter(|node| node.replica.safety_violated())
            .count();
        let equivocators_detected = self
            .nodes
            .iter()
            .map(|node| node.replica.observed_equivocators().len())
            .max()
            .unwrap_or(0);
        let txns_committed = crate::max_committed_txns(
            self.nodes
                .iter()
                .map(|node| (node.replica.committed_chain(), node.replica.store())),
        );
        let (sync_requests, sync_blocks_fetched, recovered_replicas) = crate::sync_report_fields(
            self.nodes
                .iter()
                .map(|node| (node.replica.sync_stats(), node.replica.committed_chain())),
        );
        SimReport {
            chains,
            commit_logs,
            timelines: self.timelines.clone(),
            net: self.net.stats(),
            txns_committed,
            elapsed: self.net.now(),
            safety_violations,
            equivocators_detected,
            sync_requests,
            sync_blocks_fetched,
            recovered_replicas,
        }
    }

    /// Immutable access to replica `id`, for tests and benches.
    pub fn replica(&self, id: u16) -> &Replica {
        &self.nodes[id as usize].replica
    }
}

/// As the epoch leader, produce one honest proposal plus one conflicting
/// sibling with a different payload tag. Non-leaders produce nothing.
fn equivocating_proposals(node: &mut Node, epoch: Round) -> Vec<Proposal> {
    let Some(honest) = node.replica.begin_epoch_sourced(epoch) else {
        return Vec::new();
    };
    let parent = node
        .replica
        .store()
        .get(honest.block().parent_id())
        .expect("parent of own proposal")
        .clone();
    let conflicting_payload = Payload::synthetic(1, 1, u64::MAX - epoch.as_u64());
    let twin = Block::new(&parent, epoch, node.replica.id(), conflicting_payload);
    let twin = Proposal::new(twin, &node.key_pair);
    vec![honest, twin]
}

impl Node {
    /// Processes one delivered proposal according to the node's behavior,
    /// returning the votes it broadcasts.
    fn handle_proposal(&mut self, proposal: &Proposal) -> Vec<StrongVote> {
        match self.behavior {
            Behavior::Silent => Vec::new(),
            Behavior::WithholdVote => {
                let _ = self.replica.on_proposal(proposal);
                Vec::new()
            }
            Behavior::Honest | Behavior::StallLeader => {
                self.replica.on_proposal(proposal).into_iter().collect()
            }
            Behavior::Equivocate => {
                // Vote for everything, once per block, with a forged
                // clean-history marker.
                let block_id = proposal.block().id();
                if self.equivocation_votes.contains(&block_id) {
                    return Vec::new();
                }
                self.equivocation_votes.push(block_id);
                // Keep the replica's store current so later epochs work.
                let _ = self.replica.on_proposal(proposal);
                vec![StrongVote::new(
                    proposal.block().vote_data(),
                    EndorseInfo::Marker(Round::ZERO),
                    &self.key_pair,
                )]
            }
        }
    }
}
