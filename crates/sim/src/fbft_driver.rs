//! The SFT-DiemBFT simulation driver: builds [`FbftEngine`]s over a
//! [`SimTransport`] and hands them to the generic
//! [`EngineRunner`].
//!
//! SFT-DiemBFT rounds are paced by the replicas themselves — a round ends
//! when its QC forms or its timeout certificate closes it — so the run
//! plan is [`RunPlan::PastRound`]: events flow until every honest replica
//! has moved past the target round and finished block-syncing (or the
//! horizon guard trips). Proposals stay *pipelined*: the replica that
//! forms a certificate chains the next-round proposal in the same step,
//! and the runner only dispatches what the engines chain. What used to be
//! this driver's hand-rolled event loop, dispatch, and report plumbing now
//! lives in the shared runner; only construction and the DiemBFT-specific
//! Byzantine payloads ([`FbftMischief`]) remain.

use sft_core::{Block, ProtocolConfig, ReplicaEngine};
use sft_crypto::{HashValue, KeyRegistry};
use sft_fbft::{FbftEngine, FbftMessage, FbftProposal, FbftReplica};
use sft_network::{SimNetwork, SimTransport};
use sft_types::{Decode, Encode, EndorseInfo, Payload, Round, SimTime, StrongVote};

use crate::runner::{EngineRunner, Mischief, RunPlan, RunnerConfig};
use crate::{Behavior, SimConfig, SimReport};

/// SFT-DiemBFT's protocol-specific Byzantine payloads: conflicting twin
/// proposals (sharing the honest proposal's QC/TC justification) and
/// forged zero-marker votes.
pub struct FbftMischief {
    registry: KeyRegistry,
    /// Blocks each (Byzantine) node already forged a vote for.
    forged: Vec<std::collections::HashSet<HashValue>>,
}

impl FbftMischief {
    fn new(n: usize) -> Self {
        Self {
            registry: KeyRegistry::deterministic(n),
            forged: vec![Default::default(); n],
        }
    }
}

impl Mischief<FbftEngine> for FbftMischief {
    fn twin(
        &mut self,
        node: usize,
        engine: &FbftEngine,
        proposal_bytes: &[u8],
    ) -> Option<(Vec<u8>, Vec<u8>)> {
        let Ok(FbftMessage::Proposal(honest)) = FbftMessage::from_bytes(proposal_bytes) else {
            return None;
        };
        let parent = engine.store().get(honest.block().parent_id())?.clone();
        let round = honest.block().round();
        let conflicting_payload = Payload::synthetic(1, 1, u64::MAX - round.as_u64());
        let twin_block = Block::new(&parent, round, engine.id(), conflicting_payload);
        let key_pair = self.registry.key_pair(node as u64).expect("key for node");
        let twin = FbftProposal::new(
            twin_block,
            honest.qc().clone(),
            honest.tc().cloned(),
            &key_pair,
        );
        Some((
            proposal_bytes.to_vec(),
            FbftMessage::Proposal(twin).to_bytes(),
        ))
    }

    fn forge_vote(
        &mut self,
        node: usize,
        _engine: &FbftEngine,
        incoming: &[u8],
    ) -> Option<Vec<u8>> {
        let Ok(FbftMessage::Proposal(proposal)) = FbftMessage::from_bytes(incoming) else {
            return None;
        };
        if !self.forged[node].insert(proposal.block().id()) {
            return None;
        }
        let key_pair = self.registry.key_pair(node as u64).expect("key for node");
        let vote = StrongVote::new(
            proposal.block().vote_data(),
            EndorseInfo::Marker(Round::ZERO),
            &key_pair,
        );
        Some(FbftMessage::Vote(vote).to_bytes())
    }
}

/// Builds the SFT-DiemBFT engine set for `config`: one [`FbftEngine`] per
/// replica with the configured payload source and the deterministic client
/// workload fed through the mempool's admission path (the paper's
/// "sufficiently many transactions" assumption, §4 — the same `submit`
/// every live client goes through, minus the ack registration). Stalling
/// leaders get no payload source, which disables
/// their chaining path while every other part of the protocol runs
/// normally.
///
/// Public so non-sim transports (the TCP repro path) can run the exact
/// same replica set over real sockets; they pass their own `base_timeout`
/// (wall-clock there, virtual here).
pub fn build_fbft_engines(
    config: &SimConfig,
    base_timeout: sft_types::SimDuration,
) -> Vec<FbftEngine> {
    let protocol = ProtocolConfig::for_replicas(config.n);
    let registry = KeyRegistry::deterministic(config.n);
    let source = config.payload_source();
    let workload = config.client_workload();
    (0..config.n as u16)
        .map(|id| {
            let behavior = config.behaviors[id as usize];
            let mut replica = FbftReplica::new(
                id,
                protocol,
                registry.clone(),
                config.endorse_mode,
                base_timeout,
                SimTime::ZERO,
            )
            .with_verify_policy(config.verify_policy);
            if behavior != Behavior::StallLeader {
                replica = replica.with_payload_source(source);
            }
            if let Some(cap) = config.mempool_txn_cap {
                replica.set_mempool_caps(cap as usize, u64::MAX);
            }
            for txn in &workload {
                let admitted = replica.submit(txn.clone());
                debug_assert_eq!(admitted, sft_core::Admission::Admitted);
            }
            FbftEngine::new(replica)
        })
        .collect()
}

type Runner = EngineRunner<FbftEngine, SimTransport, FbftMischief>;

/// The SFT-DiemBFT simulator. Most callers use
/// [`SimConfig::run`](crate::SimConfig::run) with
/// [`Protocol::Fbft`](crate::Protocol::Fbft); the struct is public so
/// benchmarks can construct and run it directly.
pub struct FbftSimulation {
    runner: Runner,
    protocol: ProtocolConfig,
}

impl FbftSimulation {
    /// Builds replicas, keys, and the network for `config`.
    ///
    /// # Panics
    ///
    /// Panics if `config.behaviors` is not exactly `n` entries.
    pub fn new(config: SimConfig) -> Self {
        assert_eq!(config.behaviors.len(), config.n, "one behavior per replica");
        let protocol = ProtocolConfig::for_replicas(config.n);
        let engines = build_fbft_engines(&config, config.base_timeout);
        let mischief = FbftMischief::new(config.n);
        let mut net = SimNetwork::new(config.delay);
        if let Some(faults) = &config.faults {
            net = net.with_faults(faults.clone());
        }
        let transport = SimTransport::new(net, config.n);
        let mut runner = EngineRunner::new(
            engines,
            config.behaviors.clone(),
            transport,
            mischief,
            RunnerConfig {
                plan: RunPlan::PastRound(Round::new(config.epochs)),
                horizon: SimTime::ZERO + config.run_horizon,
                drain_bound: config.drain_sync_bound,
                drain_step: config.delay,
            },
        );
        let recorder: sft_obs::SharedRecorder = if config.recording {
            std::sync::Arc::new(sft_obs::Registry::new())
        } else {
            sft_obs::noop()
        };
        if config.recording {
            runner.set_recorder(std::sync::Arc::clone(&recorder));
        }
        if let Some(wals) = crate::sim_wals(&config, &recorder) {
            runner.set_wals(wals);
        }
        Self { runner, protocol }
    }

    /// The protocol configuration derived from `n`.
    pub fn protocol(&self) -> ProtocolConfig {
        self.protocol
    }

    /// Immutable access to replica `id`, for tests and benches.
    pub fn replica(&self, id: u16) -> &FbftReplica {
        self.runner.engine(id as usize).replica()
    }

    /// Runs until every honest replica passes the target round *and* no
    /// honest replica is still block-syncing (or no event can ever fire
    /// again, or the time horizon trips) and reports.
    pub fn run(self) -> SimReport {
        self.runner.run()
    }

    /// Snapshot of the current run state as a report.
    pub fn report(&self) -> SimReport {
        self.runner.report()
    }
}
