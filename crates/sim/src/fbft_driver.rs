//! The event-driven SFT-DiemBFT driver.
//!
//! Unlike Streamlet's externally clocked epochs, SFT-DiemBFT rounds are
//! paced by the replicas themselves: a round ends when its QC forms or its
//! timeout certificate closes it. The driver therefore runs a discrete
//! event loop over two event sources — network deliveries and pacemaker
//! deadlines — advancing virtual time to the earliest pending event,
//! draining every consequence at that instant (self-delivered messages are
//! free, like a replica hearing itself), and repeating until every honest
//! replica has moved past the target round.
//!
//! Proposals are *pipelined*: the replica that forms a certificate (QC via
//! [`FbftReplica::on_vote`], TC via [`FbftReplica::on_timeout_msg`], or a
//! straggler catching up in [`FbftReplica::on_proposal`]) returns the
//! chained next-round proposal in the same [`StepOutcome`], with the fresh
//! certificate riding it. The driver only dispatches what the replicas
//! chain — there is no per-instant propose poll — and each broadcast
//! message is encoded once, all recipients sharing the buffer.

use std::collections::{HashSet, VecDeque};
use std::sync::Arc;

use sft_core::{Block, ProtocolConfig};
use sft_crypto::{HashValue, KeyPair, KeyRegistry};
use sft_fbft::{FbftMessage, FbftProposal, FbftReplica, StepOutcome};
use sft_network::SimNetwork;
use sft_types::{
    Decode, Encode, EndorseInfo, Payload, ReplicaId, Round, SimTime, StrongCommitUpdate, StrongVote,
};

use crate::{Behavior, SimConfig, SimReport};

struct Node {
    behavior: Behavior,
    replica: FbftReplica,
    key_pair: KeyPair,
    /// Blocks this (Byzantine) node already forged a vote for.
    forged_votes: HashSet<HashValue>,
}

/// Messages pending immediate (same-instant) delivery: a replica's own
/// broadcasts loop back to it without paying the network delay.
type Inbox = VecDeque<(ReplicaId, FbftMessage)>;

/// The SFT-DiemBFT simulator. Most callers use
/// [`SimConfig::run`](crate::SimConfig::run) with
/// [`Protocol::Fbft`](crate::Protocol::Fbft); the struct is public so
/// benchmarks can construct and run it directly.
pub struct FbftSimulation {
    config: SimConfig,
    protocol: ProtocolConfig,
    nodes: Vec<Node>,
    net: SimNetwork,
    timelines: Vec<Vec<(SimTime, StrongCommitUpdate)>>,
}

impl FbftSimulation {
    /// Builds replicas, keys, and the network for `config`. In batched mode
    /// every replica's mempool is pre-fed the same deterministic client
    /// transaction stream (the paper's "sufficiently many transactions"
    /// assumption, §4).
    ///
    /// # Panics
    ///
    /// Panics if `config.behaviors` is not exactly `n` entries.
    pub fn new(config: SimConfig) -> Self {
        assert_eq!(config.behaviors.len(), config.n, "one behavior per replica");
        let protocol = ProtocolConfig::for_replicas(config.n);
        let registry = KeyRegistry::deterministic(config.n);
        let source = config.payload_source();
        let workload = config.client_workload();
        let nodes = (0..config.n as u16)
            .map(|id| {
                let behavior = config.behaviors[id as usize];
                let mut replica = FbftReplica::new(
                    id,
                    protocol,
                    registry.clone(),
                    config.endorse_mode,
                    config.base_timeout,
                    SimTime::ZERO,
                );
                // A stalling leader's whole deviation is "never propose":
                // leaving it source-less disables its chaining path while
                // every other part of the protocol runs normally.
                if behavior != Behavior::StallLeader {
                    replica = replica.with_payload_source(source);
                }
                for txn in &workload {
                    replica.submit_transaction(txn.clone());
                }
                Node {
                    behavior,
                    replica,
                    key_pair: registry.key_pair(u64::from(id)).expect("registry covers n"),
                    forged_votes: HashSet::new(),
                }
            })
            .collect();
        let mut net = SimNetwork::new(config.delay);
        if let Some(faults) = &config.faults {
            net = net.with_faults(faults.clone());
        }
        Self {
            net,
            timelines: vec![Vec::new(); config.n],
            config,
            protocol,
            nodes,
        }
    }

    /// The protocol configuration derived from `n`.
    pub fn protocol(&self) -> ProtocolConfig {
        self.protocol
    }

    /// Immutable access to replica `id`, for tests and benches.
    pub fn replica(&self, id: u16) -> &FbftReplica {
        &self.nodes[id as usize].replica
    }

    /// Runs until every honest replica passes round `config.epochs` *and*
    /// no honest replica is still block-syncing (or no event can ever fire
    /// again, or the time horizon trips) and reports. The sync condition
    /// is what lets a partitioned replica finish catching up: the majority
    /// keeps pipelining rounds, so events keep flowing until the straggler
    /// has fetched the chain and joined them past the target.
    pub fn run(mut self) -> SimReport {
        let target = Round::new(self.config.epochs);
        // Purely a runaway guard (Byzantine scenarios under heavy loss
        // could otherwise sync forever against the endless pipelined
        // event stream): generous enough that no legitimate schedule —
        // back-off rounds included — comes near it.
        let horizon = SimTime::ZERO + self.config.base_timeout * (64 * (self.config.epochs + 8));
        self.step_instant(SimTime::ZERO, true);
        while self.honest_min_round() <= target || self.honest_sync_active() {
            let Some(next) = self.next_event_time() else {
                break;
            };
            if next > horizon {
                break;
            }
            self.step_instant(next, false);
        }
        self.report()
    }

    /// True while some honest replica still has missing blocks, in-flight
    /// fetches, or pooled orphans.
    fn honest_sync_active(&self) -> bool {
        self.nodes
            .iter()
            .filter(|n| matches!(n.behavior, Behavior::Honest | Behavior::StallLeader))
            .any(|n| n.replica.is_syncing())
    }

    /// The smallest current round among honest replicas (the run's
    /// progress measure). Falls back to the global maximum if the
    /// configuration has no fully honest replica.
    fn honest_min_round(&self) -> Round {
        self.nodes
            .iter()
            .filter(|n| matches!(n.behavior, Behavior::Honest | Behavior::StallLeader))
            .map(|n| n.replica.current_round())
            .min()
            .unwrap_or_else(|| {
                self.nodes
                    .iter()
                    .map(|n| n.replica.current_round())
                    .max()
                    .expect("at least one replica")
            })
    }

    /// The earliest pending event: a network delivery or a live pacemaker
    /// deadline. `None` when nothing can ever happen again.
    fn next_event_time(&self) -> Option<SimTime> {
        let delivery = self.net.next_deliver_at();
        let deadline = self
            .nodes
            .iter()
            .filter(|n| n.behavior != Behavior::Silent)
            .map(|n| n.replica.next_deadline())
            .min();
        match (delivery, deadline) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Processes everything that happens at instant `now`: due deliveries,
    /// due timeouts, and every proposal the replicas chain off them —
    /// iterating until the instant produces nothing further
    /// (self-deliveries cascade within it). `bootstrap` additionally lets
    /// the round-1 leader open the very first round (the only proposal no
    /// event precedes).
    fn step_instant(&mut self, now: SimTime, bootstrap: bool) {
        let mut inbox: Inbox = self
            .net
            .deliver_due(now)
            .into_iter()
            .map(|e| {
                let msg = FbftMessage::from_bytes(&e.payload).expect("well-formed wire message");
                (e.to, msg)
            })
            .collect();
        if bootstrap {
            for i in 0..self.config.n {
                if let Some(proposal) = self.nodes[i].replica.try_propose_chained() {
                    self.dispatch_proposal(i, proposal, &mut inbox);
                }
            }
        }
        loop {
            while let Some((to, msg)) = inbox.pop_front() {
                self.handle(to, msg, now, &mut inbox);
            }
            if !self.fire_due_timeouts(now, &mut inbox) && inbox.is_empty() {
                break;
            }
        }
    }

    /// Broadcasts `msg` from `from` over the network — encoding it exactly
    /// once; recipients share the buffer — and loops it back to the sender
    /// immediately.
    fn broadcast(&mut self, from: ReplicaId, msg: FbftMessage, inbox: &mut Inbox) {
        self.net.broadcast(from, self.config.n, msg.to_bytes());
        inbox.push_back((from, msg));
    }

    /// Fires the round timer of every live node whose deadline has passed.
    fn fire_due_timeouts(&mut self, now: SimTime, inbox: &mut Inbox) -> bool {
        let mut fired = false;
        for i in 0..self.config.n {
            if self.nodes[i].behavior == Behavior::Silent {
                continue;
            }
            if let Some(msg) = self.nodes[i].replica.on_tick(now) {
                fired = true;
                let from = self.nodes[i].replica.id();
                self.broadcast(from, FbftMessage::Timeout(msg), inbox);
            }
        }
        fired
    }

    /// Sends a proposal chained by node `i` according to its behavior:
    /// honest-ish nodes broadcast it, an equivocator twins it. (Silent
    /// nodes never chain — they process no events — and stalling leaders
    /// have no payload source, so they never produce one.)
    fn dispatch_proposal(&mut self, i: usize, proposal: FbftProposal, inbox: &mut Inbox) {
        match self.nodes[i].behavior {
            Behavior::Silent | Behavior::StallLeader => {}
            Behavior::Honest | Behavior::WithholdVote => {
                let from = proposal.block().proposer();
                self.broadcast(from, FbftMessage::Proposal(proposal), inbox);
            }
            Behavior::Equivocate => self.send_equivocating_pair(i, proposal, inbox),
        }
    }

    /// Split-brain delivery of an equivocating leader's twin proposals:
    /// low ids see A, high ids see B, and the equivocator itself sees both
    /// (so it casts the conflicting votes honest trackers will flag). Each
    /// twin is encoded once; its recipients share the buffer.
    fn send_equivocating_pair(&mut self, i: usize, honest: FbftProposal, inbox: &mut Inbox) {
        let n = self.config.n;
        let node = &self.nodes[i];
        let parent = node
            .replica
            .store()
            .get(honest.block().parent_id())
            .expect("parent of own proposal")
            .clone();
        let round = honest.block().round();
        let conflicting_payload = Payload::synthetic(1, 1, u64::MAX - round.as_u64());
        let twin_block = Block::new(&parent, round, node.replica.id(), conflicting_payload);
        let twin = FbftProposal::new(
            twin_block,
            honest.qc().clone(),
            honest.tc().cloned(),
            &node.key_pair,
        );
        let from = node.replica.id();
        let halves = [FbftMessage::Proposal(honest), FbftMessage::Proposal(twin)];
        let bytes: [Arc<[u8]>; 2] = [halves[0].to_bytes().into(), halves[1].to_bytes().into()];
        for to in 0..n as u16 {
            let target = ReplicaId::new(to);
            let half = usize::from(to as usize >= n / 2);
            if target == from {
                inbox.push_back((target, halves[half].clone()));
            } else {
                self.net.send(from, target, Arc::clone(&bytes[half]));
            }
        }
        // The equivocator also sees the twin its own half did NOT receive.
        let other = usize::from(from.as_usize() < n / 2);
        inbox.push_back((from, halves[other].clone()));
    }

    /// Records `out`'s commit-log entries on node `i`'s timeline,
    /// dispatches any proposal it chained, and sends its block-sync
    /// requests point-to-point over the network.
    fn absorb_outcome(&mut self, i: usize, out: StepOutcome, now: SimTime, inbox: &mut Inbox) {
        self.timelines[i].extend(out.updates.into_iter().map(|u| (now, u)));
        let from = self.nodes[i].replica.id();
        for (peer, request) in out.sync_requests {
            self.net
                .send(from, peer, FbftMessage::SyncRequest(request).to_bytes());
        }
        if let Some(proposal) = out.next_proposal {
            self.dispatch_proposal(i, proposal, inbox);
        }
    }

    /// Processes one delivered message for node `to` according to its
    /// behavior.
    fn handle(&mut self, to: ReplicaId, msg: FbftMessage, now: SimTime, inbox: &mut Inbox) {
        let i = to.as_usize();
        if self.nodes[i].behavior == Behavior::Silent {
            return;
        }
        match msg {
            FbftMessage::Proposal(proposal) => {
                let mut out = self.nodes[i].replica.on_proposal(&proposal, now);
                let vote = out.vote.take();
                match self.nodes[i].behavior {
                    Behavior::Silent => unreachable!("filtered above"),
                    Behavior::Honest | Behavior::StallLeader => {
                        if let Some(vote) = vote {
                            self.broadcast(to, FbftMessage::Vote(vote), inbox);
                        }
                    }
                    // Never votes; the proposal (and its certificates) was
                    // still absorbed above.
                    Behavior::WithholdVote => {}
                    Behavior::Equivocate => {
                        // Vote for everything, once per block, with a forged
                        // clean-history marker; the honest vote is discarded.
                        let block_id = proposal.block().id();
                        if self.nodes[i].forged_votes.insert(block_id) {
                            let forged = StrongVote::new(
                                proposal.block().vote_data(),
                                EndorseInfo::Marker(Round::ZERO),
                                &self.nodes[i].key_pair,
                            );
                            self.broadcast(to, FbftMessage::Vote(forged), inbox);
                        }
                    }
                }
                self.absorb_outcome(i, out, now, inbox);
            }
            FbftMessage::Vote(vote) => {
                let out = self.nodes[i].replica.on_vote(&vote, now);
                self.absorb_outcome(i, out, now, inbox);
            }
            FbftMessage::Timeout(timeout) => {
                let out = self.nodes[i].replica.on_timeout_msg(&timeout, now);
                self.absorb_outcome(i, out, now, inbox);
            }
            FbftMessage::SyncRequest(request) => {
                // Serving is read-only and deviation-free for every live
                // behavior; a forged response could not be admitted anyway
                // (the requester verifies against the certificate chain).
                if let Some(response) = self.nodes[i].replica.on_sync_request(&request) {
                    self.net.send(
                        to,
                        request.requester(),
                        FbftMessage::SyncResponse(response).to_bytes(),
                    );
                }
            }
            FbftMessage::SyncResponse(response) => {
                let out = self.nodes[i].replica.on_sync_response(&response, now);
                self.absorb_outcome(i, out, now, inbox);
            }
        }
    }

    /// Snapshot of the current run state as a report.
    pub fn report(&self) -> SimReport {
        let chains: Vec<Vec<HashValue>> = self
            .nodes
            .iter()
            .map(|node| node.replica.committed_chain().to_vec())
            .collect();
        let commit_logs = self
            .nodes
            .iter()
            .map(|node| node.replica.commit_log().to_vec())
            .collect();
        let safety_violations = self
            .nodes
            .iter()
            .filter(|node| node.replica.safety_violated())
            .count();
        let equivocators_detected = self
            .nodes
            .iter()
            .map(|node| node.replica.observed_equivocators().len())
            .max()
            .unwrap_or(0);
        let txns_committed = crate::max_committed_txns(
            self.nodes
                .iter()
                .map(|node| (node.replica.committed_chain(), node.replica.store())),
        );
        let (sync_requests, sync_blocks_fetched, recovered_replicas) = crate::sync_report_fields(
            self.nodes
                .iter()
                .map(|node| (node.replica.sync_stats(), node.replica.committed_chain())),
        );
        SimReport {
            chains,
            commit_logs,
            timelines: self.timelines.clone(),
            net: self.net.stats(),
            txns_committed,
            elapsed: self.net.now(),
            safety_violations,
            equivocators_detected,
            sync_requests,
            sync_blocks_fetched,
            recovered_replicas,
        }
    }
}
