//! The SFT-DiemBFT replica as a transport-driven [`ReplicaEngine`].
//!
//! SFT-DiemBFT is self-pacing — rounds close on QCs, TCs, or pacemaker
//! timeouts — so the engine is nearly a direct restatement of
//! [`FbftReplica`]'s event API in envelope form. The one addition is the
//! bootstrap deadline: the round-1 proposal is the only event nothing
//! precedes, so the engine reports an initial deadline at `SimTime::ZERO`
//! and fires [`FbftReplica::try_propose_chained`] on its first tick
//! (exactly what the old event-loop driver did by hand).

use sft_core::{
    AckTracker, Admission, BlockStore, EngineObs, EngineStep, MsgKind, OutboundMsg, ReplicaEngine,
    SyncStats, WalRecord,
};
use sft_crypto::{HashValue, SigStats};
use sft_obs::{names, PhaseTimer, SharedRecorder};
use sft_types::{
    ClientAck, ClientRequest, Decode, Encode, ReplicaId, Round, SimTime, StrongCommitUpdate,
};

use crate::message::FbftMessage;
use crate::replica::{FbftReplica, StepOutcome};

/// An [`FbftReplica`] plus the bootstrap latch, implementing
/// [`ReplicaEngine`].
///
/// # Examples
///
/// ```
/// use sft_core::{ProtocolConfig, ReplicaEngine};
/// use sft_crypto::KeyRegistry;
/// use sft_fbft::{FbftEngine, FbftReplica};
/// use sft_types::{EndorseMode, SimDuration, SimTime};
///
/// let config = ProtocolConfig::for_replicas(4);
/// let registry = KeyRegistry::deterministic(4);
/// let replica = FbftReplica::new(
///     1,
///     config,
///     registry,
///     EndorseMode::Marker,
///     SimDuration::from_millis(400),
///     SimTime::ZERO,
/// );
/// let engine = FbftEngine::new(replica);
/// // The bootstrap tick is due immediately.
/// assert_eq!(engine.next_deadline(), Some(SimTime::ZERO));
/// ```
pub struct FbftEngine {
    replica: FbftReplica,
    booted: bool,
    obs: EngineObs,
    /// Client submissions awaiting their strength-graded commit acks.
    acks: AckTracker,
}

impl FbftEngine {
    /// Wraps `replica` for transport-driven operation.
    pub fn new(replica: FbftReplica) -> Self {
        Self {
            replica,
            booted: false,
            obs: EngineObs::new(),
            acks: AckTracker::new(),
        }
    }

    /// The wrapped replica.
    pub fn replica(&self) -> &FbftReplica {
        &self.replica
    }

    /// Mutable access to the wrapped replica (tests and harness setup).
    pub fn replica_mut(&mut self) -> &mut FbftReplica {
        &mut self.replica
    }

    /// Converts a [`StepOutcome`] into an [`EngineStep`], preserving the
    /// old driver's send order: the vote first, then block-sync requests,
    /// then the chained next-round proposal.
    fn absorb(&mut self, out: StepOutcome, now: SimTime) -> EngineStep {
        let mut step = EngineStep::empty();
        if let Some(vote) = out.vote {
            self.obs.voted(vote.round(), now);
            step.outbound.push(OutboundMsg::broadcast(
                MsgKind::Vote,
                FbftMessage::Vote(vote).to_bytes(),
            ));
        }
        for (peer, request) in out.sync_requests {
            step.outbound.push(OutboundMsg::to(
                peer,
                MsgKind::SyncRequest,
                FbftMessage::SyncRequest(request).to_bytes(),
            ));
        }
        if let Some(proposal) = out.next_proposal {
            step.outbound.push(OutboundMsg::broadcast(
                MsgKind::Proposal,
                FbftMessage::Proposal(proposal).to_bytes(),
            ));
        }
        step.updates = out.updates;
        step.persist = self.replica.drain_wal();
        self.obs.wal_records(&step.persist, now);
        self.obs.updates(&step.updates, now);
        for update in &step.updates {
            self.acks.observe(update, self.replica.store(), now);
        }
        step
    }
}

impl ReplicaEngine for FbftEngine {
    fn id(&self) -> ReplicaId {
        self.replica.id()
    }

    fn on_envelope(&mut self, _from: ReplicaId, payload: &[u8], now: SimTime) -> EngineStep {
        let decode = PhaseTimer::start(&**self.obs.recorder());
        let decoded = FbftMessage::from_bytes(payload);
        decode.finish(&**self.obs.recorder(), names::PHASE_DECODE_NS);
        let Ok(msg) = decoded else {
            return EngineStep::empty(); // transports can carry garbage
        };
        match msg {
            FbftMessage::Proposal(proposal) => {
                self.obs.proposal_seen(proposal.block().round(), now);
                let out = self.replica.on_proposal(&proposal, now);
                self.absorb(out, now)
            }
            FbftMessage::Vote(vote) => {
                // Time vote-ingest steps that ran a deferred batch check:
                // the batch dominates such a step, so its duration is the
                // batch-verify phase.
                let batches = self.replica.sig_stats().batch_calls;
                let verify = PhaseTimer::start(&**self.obs.recorder());
                let out = self.replica.on_vote(&vote, now);
                if self.replica.sig_stats().batch_calls > batches {
                    verify.finish(&**self.obs.recorder(), names::PHASE_BATCH_VERIFY_NS);
                }
                self.absorb(out, now)
            }
            FbftMessage::Timeout(timeout) => {
                let out = self.replica.on_timeout_msg(&timeout, now);
                self.absorb(out, now)
            }
            FbftMessage::SyncRequest(request) => {
                // Serving is read-only; the requester verifies everything
                // against the certificate chain.
                let mut step = EngineStep::empty();
                if let Some(response) = self.replica.on_sync_request(&request) {
                    step.outbound.push(OutboundMsg::to(
                        request.requester(),
                        MsgKind::SyncResponse,
                        FbftMessage::SyncResponse(response).to_bytes(),
                    ));
                }
                step
            }
            FbftMessage::SyncResponse(response) => {
                let out = self.replica.on_sync_response(&response, now);
                self.absorb(out, now)
            }
        }
    }

    fn next_deadline(&self) -> Option<SimTime> {
        if !self.booted {
            Some(SimTime::ZERO)
        } else {
            Some(self.replica.next_deadline())
        }
    }

    fn on_tick(&mut self, now: SimTime) -> EngineStep {
        let mut step = EngineStep::empty();
        if !self.booted {
            self.booted = true;
            if let Some(proposal) = self.replica.try_propose_chained() {
                step.outbound.push(OutboundMsg::broadcast(
                    MsgKind::Proposal,
                    FbftMessage::Proposal(proposal).to_bytes(),
                ));
            }
        }
        if let Some(timeout) = self.replica.on_tick(now) {
            step.outbound.push(OutboundMsg::broadcast(
                MsgKind::Timeout,
                FbftMessage::Timeout(timeout).to_bytes(),
            ));
        }
        step.persist = self.replica.drain_wal();
        self.obs.wal_records(&step.persist, now);
        step
    }

    fn restore(&mut self, record: &WalRecord, now: SimTime) {
        self.replica.replay(record, now);
    }

    fn submit(&mut self, req: &ClientRequest, now: SimTime) -> Option<ClientAck> {
        let txn_id = req.txn_id();
        let verdict = self.replica.submit(req.txn.clone());
        self.acks.record_admission(verdict == Admission::Admitted);
        match verdict {
            Admission::Admitted => {
                self.acks.register(txn_id, req.ack_at, now);
                None
            }
            Admission::Duplicate => Some(ClientAck::Duplicate { txn_id }),
            Admission::Busy => Some(ClientAck::Busy { txn_id }),
        }
    }

    fn drain_acks(&mut self) -> Vec<ClientAck> {
        self.acks.drain()
    }

    fn set_recorder(&mut self, recorder: SharedRecorder) {
        self.replica.set_recorder(recorder.clone());
        self.acks.set_recorder(recorder.clone());
        self.obs.set_recorder(recorder);
    }

    fn endorsement_walk_steps(&self) -> u64 {
        self.replica.walk_steps()
    }

    fn sig_stats(&self) -> SigStats {
        self.replica.sig_stats()
    }

    fn round(&self) -> Round {
        self.replica.current_round()
    }

    fn is_syncing(&self) -> bool {
        self.replica.is_syncing()
    }

    fn committed_chain(&self) -> &[HashValue] {
        self.replica.committed_chain()
    }

    fn commit_log(&self) -> &[StrongCommitUpdate] {
        self.replica.commit_log()
    }

    fn safety_violated(&self) -> bool {
        self.replica.safety_violated()
    }

    fn equivocators_observed(&self) -> usize {
        self.replica.observed_equivocators().len()
    }

    fn sync_stats(&self) -> SyncStats {
        self.replica.sync_stats()
    }

    fn store(&self) -> &BlockStore {
        self.replica.store()
    }
}
