//! The DiemBFT 2-chain commit and locking rule (paper Fig 2/3).

use std::fmt;

use sft_crypto::HashValue;
use sft_types::{Round, VoteData};

/// Per-replica state for the round-based 2-chain rule: the highest QC round
/// seen, the locked round, and the latest commit it justified.
///
/// The state is deliberately chain-agnostic — it consumes the
/// [`VoteData`] carried by quorum certificates and leaves block storage to
/// [`sft_core::BlockStore`]. That keeps the safety-critical rule small
/// enough to test exhaustively.
///
/// # Examples
///
/// ```
/// use sft_fbft::TwoChainState;
/// use sft_crypto::HashValue;
/// use sft_types::{Round, VoteData};
///
/// let mut state = TwoChainState::new();
/// // QC for B2 (round 2) whose parent B1 is at round 1: consecutive
/// // rounds, so B1 commits.
/// let qc = VoteData::new(HashValue::of(b"B2"), Round::new(2), HashValue::of(b"B1"), Round::new(1));
/// assert_eq!(state.on_qc(&qc), Some((HashValue::of(b"B1"), Round::new(1))));
/// assert_eq!(state.locked_round(), Round::new(1));
/// ```
#[derive(Clone, PartialEq, Eq, Default)]
pub struct TwoChainState {
    highest_qc_round: Round,
    locked_round: Round,
    last_committed_round: Round,
}

impl TwoChainState {
    /// Fresh state: nothing locked, nothing committed (genesis, round 0, is
    /// committed by construction).
    pub fn new() -> Self {
        Self::default()
    }

    /// The highest round for which this replica has seen a QC.
    pub fn highest_qc_round(&self) -> Round {
        self.highest_qc_round
    }

    /// The locked round: the highest QC *parent* round seen. Voting below
    /// the lock is what the safety proof forbids.
    pub fn locked_round(&self) -> Round {
        self.locked_round
    }

    /// Round of the most recently committed block (0 if only genesis).
    pub fn last_committed_round(&self) -> Round {
        self.last_committed_round
    }

    /// Processes a quorum certificate over `qc` and applies both rules:
    ///
    /// - **locking** — the locked round rises to the QC's parent round;
    /// - **2-chain commit** — if the QC's block round directly follows its
    ///   parent round, the parent block commits.
    ///
    /// Returns the newly committed block (id, round), if any. Commits are
    /// monotone: a stale QC can never re-commit an older round.
    pub fn on_qc(&mut self, qc: &VoteData) -> Option<(HashValue, Round)> {
        self.highest_qc_round = self.highest_qc_round.max(qc.block_round());
        self.locked_round = self.locked_round.max(qc.parent_round());
        if qc.parent_round().precedes(qc.block_round())
            && qc.parent_round() > self.last_committed_round
        {
            self.last_committed_round = qc.parent_round();
            return Some((qc.parent_id(), qc.parent_round()));
        }
        None
    }

    /// The DiemBFT voting rule: a proposal is safe to vote for iff it
    /// extends a certified parent no older than the lock and moves to a
    /// round beyond everything certified so far.
    pub fn safe_to_vote(&self, proposal: &VoteData) -> bool {
        proposal.parent_round() >= self.locked_round
            && proposal.block_round() > self.highest_qc_round
    }
}

impl fmt::Debug for TwoChainState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "TwoChainState(qc_r={}, locked_r={}, committed_r={})",
            self.highest_qc_round, self.locked_round, self.last_committed_round
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn qc(block: &[u8], round: u64, parent: &[u8], parent_round: u64) -> VoteData {
        VoteData::new(
            HashValue::of(block),
            Round::new(round),
            HashValue::of(parent),
            Round::new(parent_round),
        )
    }

    #[test]
    fn consecutive_rounds_commit_parent() {
        let mut s = TwoChainState::new();
        assert_eq!(
            s.on_qc(&qc(b"B1", 1, b"G", 0)),
            None,
            "genesis needs no commit"
        );
        let committed = s.on_qc(&qc(b"B2", 2, b"B1", 1));
        assert_eq!(committed, Some((HashValue::of(b"B1"), Round::new(1))));
        assert_eq!(s.last_committed_round(), Round::new(1));
    }

    #[test]
    fn round_gap_does_not_commit() {
        let mut s = TwoChainState::new();
        // B5's parent is at round 2: a timeout gap, so no commit — but the
        // lock still rises.
        assert_eq!(s.on_qc(&qc(b"B5", 5, b"B2", 2)), None);
        assert_eq!(s.locked_round(), Round::new(2));
        assert_eq!(s.highest_qc_round(), Round::new(5));
    }

    #[test]
    fn stale_qc_never_recommits() {
        let mut s = TwoChainState::new();
        s.on_qc(&qc(b"B2", 2, b"B1", 1));
        s.on_qc(&qc(b"B3", 3, b"B2", 2));
        assert_eq!(s.last_committed_round(), Round::new(2));
        // Replayed older QC: no new commit, no state regression.
        assert_eq!(s.on_qc(&qc(b"B2", 2, b"B1", 1)), None);
        assert_eq!(s.last_committed_round(), Round::new(2));
        assert_eq!(s.locked_round(), Round::new(2));
    }

    #[test]
    fn lock_is_monotone() {
        let mut s = TwoChainState::new();
        s.on_qc(&qc(b"B5", 5, b"B4", 4));
        s.on_qc(&qc(b"B3", 3, b"B2", 2)); // late-arriving older QC
        assert_eq!(s.locked_round(), Round::new(4));
        assert_eq!(s.highest_qc_round(), Round::new(5));
    }

    #[test]
    fn voting_rule_respects_lock_and_round() {
        let mut s = TwoChainState::new();
        s.on_qc(&qc(b"B4", 4, b"B3", 3));
        // Extends the certified tip into a fresh round: safe.
        assert!(s.safe_to_vote(&qc(b"B5", 5, b"B4", 4)));
        // Parent below the lock: forbidden.
        assert!(!s.safe_to_vote(&qc(b"X5", 5, b"B2", 2)));
        // Round not beyond the highest QC: forbidden (stale proposal).
        assert!(!s.safe_to_vote(&qc(b"X4", 4, b"B3", 3)));
    }

    #[test]
    fn fresh_state_votes_for_round_one() {
        let s = TwoChainState::new();
        assert!(s.safe_to_vote(&qc(b"B1", 1, b"G", 0)));
    }

    #[test]
    fn debug_format() {
        let mut s = TwoChainState::new();
        s.on_qc(&qc(b"B2", 2, b"B1", 1));
        assert_eq!(
            format!("{s:?}"),
            "TwoChainState(qc_r=2, locked_r=1, committed_r=1)"
        );
    }
}
