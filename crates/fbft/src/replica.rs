//! The SFT-DiemBFT replica state machine.

use std::collections::HashSet;
use std::fmt;

use sft_core::{
    honest_endorse_info, Admission, Block, BlockStore, CommitLedger, EndorsementTracker, Mempool,
    PayloadSource, ProtocolConfig, QuorumCertificate, SyncManager, SyncStats, VoteOutcome,
    VoteTracker, WalRecord,
};
use sft_crypto::{HashValue, KeyPair, KeyRegistry, SigStats};
use sft_types::{
    BlockRequest, EndorseMode, Payload, ReplicaId, Round, SimDuration, SimTime, StrongCommitUpdate,
    StrongVote, TimeoutAggregator, TimeoutCertificate, TimeoutMsg, TimeoutOutcome, Transaction,
    VerifyPolicy,
};

pub use sft_core::BlockResponse;

use crate::message::FbftProposal;
use crate::pacemaker::Pacemaker;
use crate::two_chain::TwoChainState;

/// What processing one event (proposal, vote, or timeout message) produced:
/// this replica's vote to broadcast, any commit-log entries, and — when the
/// event advanced the replica into a round it leads and a
/// [`PayloadSource`] is configured — the chained next proposal, carrying
/// the certificate that just formed. Chaining the proposal off the event
/// that creates the certificate is what pipelines rounds: the QC never
/// waits for an external poll before riding the next proposal.
#[derive(Clone, Debug, Default)]
pub struct StepOutcome {
    /// The strong-vote to broadcast, if the voting rule fired.
    pub vote: Option<StrongVote>,
    /// Commit-log entries produced while processing the event.
    pub updates: Vec<StrongCommitUpdate>,
    /// The pipelined proposal for the round this event moved the replica
    /// into, if it leads that round. Must be broadcast like any proposal.
    pub next_proposal: Option<FbftProposal>,
    /// Block-sync fetches now due (new targets and expired retries), to be
    /// sent point-to-point to the named peer.
    pub sync_requests: Vec<(ReplicaId, BlockRequest)>,
}

/// A single SFT-DiemBFT replica: pacemaker-driven rounds, QC/TC
/// aggregation, the 2-chain commit rule, and strength-graded commits.
///
/// The protocol per round `r` (paper §2, Figs 2/3, strengthened per §3):
///
/// 1. the leader of `r` (round-robin) proposes a block extending the
///    highest QC it knows, shipping that QC — and, after a timeout round,
///    the TC justifying the skip ([`FbftReplica::try_propose`]);
/// 2. every replica votes for the first justified proposal of its current
///    round that satisfies the locking rule ([`TwoChainState::safe_to_vote`]),
///    attaching §3.2/§3.4 endorsement info, and broadcasts the strong-vote
///    ([`FbftReplica::on_proposal`]);
/// 3. `2f + 1` votes certify the block; every replica aggregates votes
///    itself (votes are broadcast precisely so endorsements are countable),
///    advances its round on the new QC, and applies the 2-chain commit rule
///    ([`FbftReplica::on_vote`]);
/// 4. if a round's deadline passes uncertified, replicas broadcast timeout
///    messages ([`FbftReplica::on_tick`]); `2f + 1` of them form a TC that
///    advances the round without a QC ([`FbftReplica::on_timeout_msg`]);
/// 5. endorsements carried by strong-votes grade every commit with the
///    strength `x = q − f − 1` of Definition 1, reported as
///    [`StrongCommitUpdate`]s in the replica's commit log.
///
/// # Examples
///
/// Driving one happy-path round of a 4-replica system by hand:
///
/// ```
/// use sft_core::ProtocolConfig;
/// use sft_crypto::KeyRegistry;
/// use sft_fbft::FbftReplica;
/// use sft_types::{EndorseMode, Payload, Round, SimDuration, SimTime};
///
/// let config = ProtocolConfig::for_replicas(4);
/// let registry = KeyRegistry::deterministic(4);
/// let now = SimTime::ZERO;
/// let mut replicas: Vec<FbftReplica> = (0..4)
///     .map(|i| {
///         FbftReplica::new(
///             i,
///             config,
///             registry.clone(),
///             EndorseMode::Marker,
///             SimDuration::from_millis(400),
///             now,
///         )
///     })
///     .collect();
///
/// // Round 1: replica 1 leads and proposes on the genesis QC.
/// let proposal = replicas[1].try_propose(Payload::empty()).expect("leader proposes");
/// let votes: Vec<_> = replicas
///     .iter_mut()
///     .filter_map(|r| r.on_proposal(&proposal, now).vote)
///     .collect();
/// assert_eq!(votes.len(), 4, "every honest replica votes");
/// for vote in &votes {
///     for replica in replicas.iter_mut() {
///         replica.on_vote(vote, now);
///     }
/// }
/// // The QC formed everywhere: all replicas advanced to round 2.
/// assert!(replicas.iter().all(|r| r.current_round() == Round::new(2)));
/// // One round certifies but cannot commit: the 2-chain is still open.
/// assert!(replicas[0].committed_chain().is_empty());
/// ```
pub struct FbftReplica {
    id: ReplicaId,
    config: ProtocolConfig,
    key_pair: KeyPair,
    endorse_mode: EndorseMode,
    store: BlockStore,
    votes: VoteTracker,
    endorsements: EndorsementTracker,
    timeouts: TimeoutAggregator,
    two_chain: TwoChainState,
    pacemaker: Pacemaker,
    /// The highest quorum certificate this replica knows — what it
    /// proposes on when leading.
    high_qc: QuorumCertificate,
    /// The TC that justified entering the current round, if it was entered
    /// on the timeout path (shipped with this replica's next proposal).
    last_tc: Option<TimeoutCertificate>,
    /// Rounds this replica already voted in (vote-once rule).
    voted_rounds: HashSet<Round>,
    /// Every block this replica ever voted for, for marker/interval
    /// computation (§3.2 / §3.4).
    voted_blocks: Vec<(Round, HashValue)>,
    /// Rounds this replica already proposed in (propose-once rule).
    proposed_rounds: HashSet<Round>,
    ledger: CommitLedger,
    commit_log: Vec<StrongCommitUpdate>,
    /// Where chained proposals get their payloads; `None` disables
    /// self-chaining (callers drive [`try_propose`](Self::try_propose)
    /// explicitly, as the unit tests do).
    payload_source: Option<PayloadSource>,
    /// Client transactions awaiting inclusion (drained by the mempool
    /// payload source; pruned when other leaders' blocks carry them).
    mempool: Mempool,
    /// Digests of certificates already absorbed — re-deliveries (a QC rides
    /// every proposal that extends it) skip the pacemaker/commit walk.
    processed_qcs: HashSet<HashValue>,
    /// Block-sync state: certified-but-unknown targets, in-flight fetches,
    /// and the orphan pool (§ "Block sync" in the README).
    sync: SyncManager,
    /// Blocks the 2-chain rule declared committed while their chain was
    /// still incomplete locally; retried after every sync admission.
    deferred_commits: Vec<HashValue>,
    /// Durable events produced since the last [`drain_wal`](Self::drain_wal):
    /// the write-ahead-log records a crash-safe harness persists before
    /// sending this replica's messages.
    wal: Vec<WalRecord>,
    /// Digests of certificates already written to the WAL buffer. Separate
    /// from `processed_qcs`, which deliberately re-processes a QC while its
    /// block is absent — the log wants each certificate exactly once.
    logged_qcs: HashSet<HashValue>,
    /// Rounds whose TC was already written to the WAL buffer (one TC per
    /// round suffices for recovery: replay only needs the round jump).
    logged_tcs: HashSet<Round>,
}

impl FbftReplica {
    /// Creates replica `id` of an `n`-replica system, entering round 1 at
    /// `now` with the given base round timeout.
    ///
    /// # Panics
    ///
    /// Panics if the registry holds no key for `id` or fewer than
    /// `config.n()` keys, or if the timeout is zero.
    pub fn new(
        id: u16,
        config: ProtocolConfig,
        registry: KeyRegistry,
        mode: EndorseMode,
        base_timeout: SimDuration,
        now: SimTime,
    ) -> Self {
        assert!(
            registry.len() >= config.n(),
            "registry smaller than the replica set"
        );
        let key_pair = registry
            .key_pair(u64::from(id))
            .expect("key for this replica");
        Self {
            id: ReplicaId::new(id),
            config,
            key_pair,
            endorse_mode: mode,
            store: BlockStore::new(),
            votes: VoteTracker::new(config, registry.clone()),
            endorsements: EndorsementTracker::new(config),
            timeouts: TimeoutAggregator::new(config.n(), config.quorum(), registry),
            two_chain: TwoChainState::new(),
            pacemaker: Pacemaker::new(config.n(), base_timeout, now),
            high_qc: QuorumCertificate::genesis(config.n()),
            last_tc: None,
            voted_rounds: HashSet::new(),
            voted_blocks: Vec::new(),
            proposed_rounds: HashSet::new(),
            ledger: CommitLedger::new(),
            commit_log: Vec::new(),
            payload_source: None,
            mempool: Mempool::new(),
            processed_qcs: HashSet::new(),
            sync: {
                let mut sync = SyncManager::new(config, ReplicaId::new(id));
                // Re-ask a different peer after two exchanges' worth of
                // silence at this replica's own timeout scale.
                sync.set_retry_after(base_timeout);
                sync
            },
            deferred_commits: Vec::new(),
            wal: Vec::new(),
            logged_qcs: HashSet::new(),
            logged_tcs: HashSet::new(),
        }
    }

    /// Configures where chained proposals get their payloads and enables
    /// pipelined self-proposing: every event that moves this replica into a
    /// round it leads returns the next proposal in its [`StepOutcome`].
    pub fn with_payload_source(mut self, source: PayloadSource) -> Self {
        self.payload_source = Some(source);
        self
    }

    /// Switches vote and timeout aggregation to `policy` — verify every
    /// signature on arrival (the default) or defer to one batched check at
    /// quorum. Call right after construction, before any message is
    /// ingested.
    pub fn with_verify_policy(mut self, policy: VerifyPolicy) -> Self {
        self.votes = self.votes.with_policy(policy);
        self.timeouts = self.timeouts.with_policy(policy);
        self
    }

    /// Submits a client transaction to this replica's mempool, reporting
    /// the explicit [`Admission`] verdict (`Duplicate` for ids already
    /// pending or on-chain, `Busy` past the admission caps).
    pub fn submit(&mut self, txn: Transaction) -> Admission {
        self.mempool.try_submit(txn)
    }

    /// Replaces the mempool's admission caps (count and encoded bytes);
    /// submissions beyond either answer [`Admission::Busy`] until drains
    /// make room.
    pub fn set_mempool_caps(&mut self, max_pending: usize, max_pending_bytes: u64) {
        self.mempool.set_caps(max_pending, max_pending_bytes);
    }

    /// The replica's transaction pool.
    pub fn mempool(&self) -> &Mempool {
        &self.mempool
    }

    /// This replica's id.
    pub fn id(&self) -> ReplicaId {
        self.id
    }

    /// The protocol configuration.
    pub fn config(&self) -> ProtocolConfig {
        self.config
    }

    /// The round this replica is currently in.
    pub fn current_round(&self) -> Round {
        self.pacemaker.current_round()
    }

    /// The deterministic round-robin leader of `round` (delegates to the
    /// pacemaker's schedule so the formula lives in exactly one place).
    pub fn leader(config: ProtocolConfig, round: Round) -> ReplicaId {
        Pacemaker::leader_for(config.n(), round)
    }

    /// The replica's pacemaker (round, deadline, back-off state).
    pub fn pacemaker(&self) -> &Pacemaker {
        &self.pacemaker
    }

    /// The highest quorum certificate this replica knows.
    pub fn high_qc(&self) -> &QuorumCertificate {
        &self.high_qc
    }

    /// The replica's block store (all delivered blocks).
    pub fn store(&self) -> &BlockStore {
        &self.store
    }

    /// The next instant this replica's round timer fires (the round
    /// deadline, or the next timeout retransmission once it has fired —
    /// the timer is always armed).
    pub fn next_deadline(&self) -> SimTime {
        self.pacemaker.deadline()
    }

    /// The committed chain, oldest block first (genesis excluded).
    pub fn committed_chain(&self) -> &[HashValue] {
        self.ledger.chain()
    }

    /// The strong-commit log: one [`StrongCommitUpdate`] per commit and per
    /// subsequent strength increase, in the order they happened (§5).
    pub fn commit_log(&self) -> &[StrongCommitUpdate] {
        &self.commit_log
    }

    /// The highest strength level recorded for a committed block, or `None`
    /// if the block is not committed.
    pub fn commit_level(&self, block_id: HashValue) -> Option<u64> {
        if !self.ledger.contains(block_id) {
            return None;
        }
        self.endorsements.strength(block_id)
    }

    /// True if this replica ever observed two conflicting committed chains.
    pub fn safety_violated(&self) -> bool {
        self.ledger.safety_violated()
    }

    /// Replicas caught equivocating by this replica's vote tracker.
    pub fn observed_equivocators(&self) -> &[ReplicaId] {
        self.votes.equivocators()
    }

    /// If this replica leads its current round and has not proposed yet,
    /// returns a signed proposal extending the highest-QC block with
    /// `payload`, carrying that QC and — after a timeout round — the
    /// justifying TC. The proposal must be broadcast (the caller owns
    /// transport) and fed back via [`on_proposal`](Self::on_proposal) like
    /// any other replica's.
    pub fn try_propose(&mut self, payload: Payload) -> Option<FbftProposal> {
        if !self.may_propose() {
            return None;
        }
        let round = self.pacemaker.current_round();
        let parent = self.store.get(self.high_qc.block_id())?.clone();
        let block = Block::new(&parent, round, self.id, payload);
        self.store
            .insert(block.clone())
            .expect("parent is in the store");
        self.proposed_rounds.insert(round);
        Some(FbftProposal::new(
            block,
            self.high_qc.clone(),
            self.last_tc.clone(),
            &self.key_pair,
        ))
    }

    /// True if this replica leads its current round and has not proposed in
    /// it yet.
    pub fn may_propose(&self) -> bool {
        let round = self.pacemaker.current_round();
        Self::leader(self.config, round) == self.id && !self.proposed_rounds.contains(&round)
    }

    /// The pipelined propose path: if a [`PayloadSource`] is configured and
    /// this replica leads its current round, drains the next payload and
    /// proposes on the high-QC. Called internally after every
    /// round-advancing event; drivers call it once at startup to bootstrap
    /// round 1.
    pub fn try_propose_chained(&mut self) -> Option<FbftProposal> {
        let source = self.payload_source?;
        // Every failure mode of `try_propose` must be ruled out *before*
        // draining the mempool — a drained batch is marked seen, so handing
        // it to a propose call that then fails would lose the transactions
        // for good. The high-QC block can genuinely be missing: votes are
        // broadcast, so a replica can certify (and adopt as high-QC) a
        // block it never received, e.g. the other half of an equivocation
        // split.
        if !self.may_propose() || !self.store.contains(self.high_qc.block_id()) {
            return None;
        }
        let payload = source.next_payload(&mut self.mempool, self.pacemaker.current_round());
        self.try_propose(payload)
    }

    /// Handles a round proposal. Verifies the leader signature and the
    /// structural justification, absorbs the embedded certificates (which
    /// may advance the round and commit — stragglers catch up here), and
    /// applies the voting rule: first proposal of the current round whose
    /// parent satisfies the 2-chain lock. The returned vote, if any, must
    /// be broadcast to all replicas; a returned chained proposal likewise.
    pub fn on_proposal(&mut self, proposal: &FbftProposal, now: SimTime) -> StepOutcome {
        let mut out = self.absorb_proposal(proposal, now);
        out.next_proposal = self.try_propose_chained();
        out.sync_requests = self.sync.take_requests(now);
        out
    }

    fn absorb_proposal(&mut self, proposal: &FbftProposal, now: SimTime) -> StepOutcome {
        let mut out = StepOutcome::default();
        if !proposal.verify(self.votes.registry()) || !proposal.is_justified(&self.config) {
            return out;
        }
        let block = proposal.block();
        if block.proposer() != Self::leader(self.config, block.round()) {
            return out;
        }
        // Absorb the embedded certificates before judging the round: a
        // replica that missed the QC or TC formation learns it from the
        // proposal itself.
        out.updates = self.process_qc(proposal.qc(), now);
        self.commit_log.extend(out.updates.iter().copied());
        if let Some(tc) = proposal.tc() {
            if self.pacemaker.on_tc_round(tc.round(), now).is_some() {
                self.adopt_tc(tc.clone());
            }
        }
        // Record the block regardless of the voting decision — descendants
        // and certificates may arrive later. Orphans (parent not yet
        // delivered — e.g. this replica is catching up after a partition)
        // are pooled with the sync manager, which is already fetching the
        // parent: the proposal's own QC certifies it and was absorbed just
        // above.
        match self.store.insert(block.clone()) {
            Ok(_) => self.sync.note_stored(block.id()),
            Err(sft_core::BlockStoreError::UnknownParent) => {
                self.sync.note_orphan_block(block.clone(), &self.store);
                return out;
            }
            Err(_) => return out,
        }
        // The chain now carries these transactions: stop offering them.
        if let Payload::Transactions(txns) = block.payload() {
            self.mempool.mark_included(txns.iter());
        }
        let round = block.round();
        if round != self.pacemaker.current_round() || self.voted_rounds.contains(&round) {
            return out;
        }
        let data = block.vote_data();
        if !self.two_chain.safe_to_vote(&data) {
            return out;
        }
        let endorse =
            honest_endorse_info(self.endorse_mode, &self.store, &self.voted_blocks, block);
        self.voted_rounds.insert(round);
        self.voted_blocks.push((round, block.id()));
        let vote = StrongVote::new(data, endorse, &self.key_pair);
        // Write-ahead: the harness persists this record before the vote is
        // routed, so a restart can never contradict it.
        self.wal.push(WalRecord::VoteSent(vote.clone()));
        out.vote = Some(vote);
        out
    }

    /// Handles a broadcast strong-vote (including this replica's own).
    /// Counts it toward certification, records its endorsements, and — when
    /// it completes a QC — advances the round, applies the 2-chain commit
    /// rule, and (if this replica leads the new round) chains the next
    /// proposal with the fresh QC riding it.
    pub fn on_vote(&mut self, vote: &StrongVote, now: SimTime) -> StepOutcome {
        let mut out = self.absorb_vote(vote, now);
        out.next_proposal = self.try_propose_chained();
        out.sync_requests = self.sync.take_requests(now);
        out
    }

    fn absorb_vote(&mut self, vote: &StrongVote, now: SimTime) -> StepOutcome {
        let mut out = StepOutcome::default();
        let outcome = self.votes.add_vote(vote);
        // Endorsements are credited only from verified votes: the drain
        // returns the vote just accepted under verify-on-arrival, and the
        // whole batch the quorum check validated under verify-on-quorum
        // (nothing before that — optimistically counted votes carry no
        // endorsement weight until their signatures clear).
        let mut grown = Vec::new();
        for verified in self.votes.take_newly_verified() {
            grown.extend(self.endorsements.record_vote(&verified, &self.store));
        }

        if let VoteOutcome::Certified(qc) = outcome {
            out.updates.extend(self.process_qc(&qc, now));
        }
        // Endorsements may have raised the strength of blocks committed
        // earlier: report each increase once.
        for block_id in grown {
            if self.ledger.contains(block_id) {
                if let Some(update) = self.endorsements.take_level_update(block_id, &self.store) {
                    out.updates.push(update);
                }
            }
        }
        self.commit_log.extend(out.updates.iter().copied());
        out
    }

    /// Handles a broadcast timeout message (including this replica's own).
    /// Aggregates it; at `2f + 1` the round's TC forms, the pacemaker
    /// advances, and — if this replica leads the new round — the chained
    /// proposal ships the TC.
    pub fn on_timeout_msg(&mut self, msg: &TimeoutMsg, now: SimTime) -> StepOutcome {
        let mut out = StepOutcome::default();
        // Piggybacked catch-up (DiemBFT's SyncInfo in minimal form). A TC
        // is self-certifying, so a replica stranded in an earlier round
        // because the certificate that closed it was lost jumps forward on
        // the copy riding this retransmission.
        if let Some(tc) = msg.justification() {
            if tc.signers().len() >= self.config.quorum()
                && self.pacemaker.on_tc_round(tc.round(), now).is_some()
            {
                self.adopt_tc(tc.clone());
                self.timeouts.prune_below(self.pacemaker.current_round());
            }
        }
        // A sender whose high-QC round is ahead of ours holds a
        // certificate we never formed (its votes were lost): fetch the
        // certified block — votes are broadcast, so the leading candidate
        // in our own tracker names it — and the certificate comes with it.
        if msg.high_qc_round() > self.high_qc.round() {
            if let Some(id) = self.votes.leading_block_at(msg.high_qc_round()) {
                self.sync.note_want(id);
            }
        }
        // Stale timeouts (for rounds this replica already left) still die
        // here; everything above was catch-up, not aggregation.
        if msg.round() >= self.pacemaker.current_round() {
            if let TimeoutOutcome::Certified(tc) = self.timeouts.add(msg) {
                if self.pacemaker.on_tc_round(tc.round(), now).is_some() {
                    self.adopt_tc(tc);
                    self.timeouts.prune_below(self.pacemaker.current_round());
                }
            }
        }
        // One chain attempt for whatever round the message landed us in
        // (catch-up jump or freshly formed TC alike).
        out.next_proposal = self.try_propose_chained();
        out.sync_requests = self.sync.take_requests(now);
        out
    }

    /// Serves a peer's block-sync request from the local store, if this
    /// replica holds both the block and a certificate for it. The response
    /// goes back point-to-point to the requester.
    pub fn on_sync_request(&mut self, request: &BlockRequest) -> Option<BlockResponse> {
        self.sync.serve(request, &self.store)
    }

    /// Handles a block-sync response: verifies it against the certificate
    /// chain, admits what attaches, re-runs certificate processing for the
    /// recovered blocks (the commits they enable land now), and — if the
    /// recovery made this replica the ready leader — chains a proposal.
    pub fn on_sync_response(&mut self, response: &BlockResponse, now: SimTime) -> StepOutcome {
        let mut out = StepOutcome::default();
        let admitted = self.sync.on_response_timed(response, &mut self.store, now);
        // A certificate-only response (the block was already held, only its
        // QC was missing — the certificate-want path) admits nothing, but
        // the certificate itself must still run its course below.
        let mut touched = admitted;
        let target = response.target();
        if !touched.contains(&target) && self.store.contains(target) {
            touched.push(target);
        }
        for id in &touched {
            if let Some(Payload::Transactions(txns)) =
                self.store.get(*id).map(Block::payload).cloned()
            {
                self.mempool.mark_included(txns.iter());
            }
            // The certificate that flagged the block missing can now run
            // its full course: round advancement and the 2-chain walk.
            // (`process_qc` deliberately did not cache the digest while the
            // block was absent.)
            if let Some(qc) = self.sync.certificate_for(*id).cloned() {
                out.updates.extend(self.process_qc(&qc, now));
            }
        }
        for id in self
            .ledger
            .finalize_deferred(&self.store, &mut self.deferred_commits)
        {
            if let Some(block) = self.store.get(id).cloned() {
                self.wal.push(WalRecord::BlockCommitted(block));
            }
            if let Some(update) = self.endorsements.take_level_update(id, &self.store) {
                out.updates.push(update);
            }
        }
        self.commit_log.extend(out.updates.iter().copied());
        out.next_proposal = self.try_propose_chained();
        out.sync_requests = self.sync.take_requests(now);
        out
    }

    /// Block-sync counters (requests sent, blocks recovered, …).
    pub fn sync_stats(&self) -> SyncStats {
        self.sync.stats()
    }

    /// Total endorsement-frontier walk steps taken — the amortization
    /// counter the bench gate watches.
    pub fn walk_steps(&self) -> u64 {
        self.endorsements.walk_steps()
    }

    /// Signature-verification counters across vote and timeout
    /// aggregation — the evidence behind the verify-on-quorum scaling
    /// claim.
    pub fn sig_stats(&self) -> SigStats {
        let mut stats = self.votes.sig_stats();
        stats.merge(self.timeouts.sig_stats());
        stats
    }

    /// Installs the recorder block-sync timing flows into.
    pub fn set_recorder(&mut self, recorder: sft_obs::SharedRecorder) {
        self.sync.set_recorder(recorder);
    }

    /// True while this replica is still chasing missing blocks.
    pub fn is_syncing(&self) -> bool {
        self.sync.is_syncing()
    }

    /// Advances the replica's clock. If the current round's (re-armed)
    /// timer has passed, returns the timeout message to broadcast — and
    /// again one timeout span later if the round is still open, so lost
    /// timeout messages are retransmitted until the TC can form. The
    /// caller must also feed the message back via
    /// [`on_timeout_msg`](Self::on_timeout_msg) (a replica counts its own
    /// timeout; duplicates are idempotent).
    pub fn on_tick(&mut self, now: SimTime) -> Option<TimeoutMsg> {
        let round = self.pacemaker.on_tick(now)?;
        Some(
            TimeoutMsg::new(round, self.high_qc.round(), &self.key_pair)
                .with_justification(self.last_tc.clone()),
        )
    }

    /// Absorbs a quorum certificate: raises the high-QC, advances the
    /// round, applies the 2-chain commit + locking rules, and grades any
    /// newly committed blocks. Returns the resulting commit-log entries;
    /// the caller appends them to the log (exactly once).
    fn process_qc(&mut self, qc: &QuorumCertificate, now: SimTime) -> Vec<StrongCommitUpdate> {
        // A QC rides every proposal extending it, so each is re-delivered
        // round after round; all of processing below is idempotent per
        // certificate, so a digest already absorbed is skipped outright.
        if self.processed_qcs.contains(&qc.digest()) {
            return Vec::new();
        }
        if !qc.is_well_formed(&self.config) {
            return Vec::new();
        }
        // Log each certificate exactly once (the genesis QC replays as a
        // no-op, so logging it is harmless). This must *not* share
        // `processed_qcs`: that set deliberately skips caching while the
        // certified block is absent, and re-deliveries would re-log.
        if qc.round() > Round::ZERO && self.logged_qcs.insert(qc.digest()) {
            self.wal.push(WalRecord::QcFormed(qc.clone()));
        }
        // Sync bookkeeping: record the certificate (it may be served to
        // lagging peers later) and, if the certified block is unknown,
        // flag it as a fetch target.
        self.sync.note_certificate(qc, &self.store);
        // Only cache the skip once the certified block is locally known:
        // with the block absent the commit walk below finds nothing, and a
        // replica that learns the block later (catch-up via a descendant
        // proposal or a block-sync response) must re-run it on the next
        // delivery or it would never finalize the chain.
        if self.store.contains(qc.data().block_id()) {
            self.processed_qcs.insert(qc.digest());
        }
        if qc.round() > self.high_qc.round() {
            self.high_qc = qc.clone();
        }
        if self.pacemaker.on_qc_round(qc.round(), now).is_some() {
            // Entering on the happy path: no TC to ship with our proposal.
            self.last_tc = None;
            self.timeouts.prune_below(self.pacemaker.current_round());
        }
        let mut updates = Vec::new();
        if let Some((committed_id, _)) = self.two_chain.on_qc(qc.data()) {
            let committed = self.ledger.finalize_through(&self.store, committed_id);
            if committed.is_empty() && !self.ledger.contains(committed_id) {
                // The 2-chain rule fired but the local chain has holes (the
                // committed block or an ancestor is still being fetched):
                // the 2-chain state is already past this round and will
                // never re-commit it, so remember the target and finalize
                // once sync fills the gap.
                if !self.deferred_commits.contains(&committed_id) {
                    self.deferred_commits.push(committed_id);
                }
            }
            for id in committed {
                if let Some(block) = self.store.get(id).cloned() {
                    self.wal.push(WalRecord::BlockCommitted(block));
                }
                if let Some(update) = self.endorsements.take_level_update(id, &self.store) {
                    updates.push(update);
                }
            }
        }
        updates
    }

    /// Adopts `tc` as the justification of the round it closed, logging it
    /// for crash recovery (once per round — replay only needs the jump).
    fn adopt_tc(&mut self, tc: TimeoutCertificate) {
        if self.logged_tcs.insert(tc.round()) {
            self.wal.push(WalRecord::TcFormed(tc.clone()));
        }
        self.last_tc = Some(tc);
    }

    /// Takes every durable event produced since the last drain, in
    /// occurrence order. A crash-safe harness appends these to the WAL
    /// *before* routing the step's messages.
    pub fn drain_wal(&mut self) -> Vec<WalRecord> {
        std::mem::take(&mut self.wal)
    }

    /// Re-applies one recovered WAL record at restart instant `now`.
    ///
    /// Replaying a log front to back restores exactly the promises the log
    /// recorded: `VoteSent` re-arms the vote-once rule and the marker
    /// history (the replica can never equivocate against its pre-crash
    /// self), `QcFormed` re-runs certificate processing (high-QC, round,
    /// 2-chain lock, commits — certified-but-unknown blocks become sync
    /// targets again), `TcFormed` re-applies the round jump, and
    /// `BlockCommitted` restores the block and the committed prefix.
    ///
    /// Records the replay itself re-derives are discarded, not re-buffered:
    /// they are already in the log being replayed.
    pub fn replay(&mut self, record: &WalRecord, now: SimTime) {
        match record {
            WalRecord::VoteSent(vote) => {
                self.voted_rounds.insert(vote.round());
                self.voted_blocks
                    .push((vote.round(), vote.data().block_id()));
            }
            WalRecord::QcFormed(qc) => {
                let updates = self.process_qc(qc, now);
                self.commit_log.extend(updates.iter().copied());
            }
            WalRecord::TcFormed(tc) => {
                if self.pacemaker.on_tc_round(tc.round(), now).is_some() {
                    self.last_tc = Some(tc.clone());
                    self.timeouts.prune_below(self.pacemaker.current_round());
                }
            }
            WalRecord::BlockCommitted(block) => {
                match self.store.insert(block.clone()) {
                    Ok(_) => self.sync.note_stored(block.id()),
                    Err(sft_core::BlockStoreError::UnknownParent) => {
                        self.sync.note_orphan_block(block.clone(), &self.store);
                    }
                    Err(_) => {}
                }
                // Replayed commits re-seed the dedup horizon, so a client
                // re-submitting across the crash still gets `Duplicate`.
                if let Payload::Transactions(txns) = block.payload() {
                    self.mempool.mark_included(txns.iter());
                }
                let committed = self.ledger.finalize_through(&self.store, block.id());
                for id in committed {
                    if let Some(update) = self.endorsements.take_level_update(id, &self.store) {
                        self.commit_log.push(update);
                    }
                }
            }
        }
        self.wal.clear();
    }
}

impl fmt::Debug for FbftReplica {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "FbftReplica({} r={} qc_high={} committed={})",
            self.id,
            self.pacemaker.current_round(),
            self.high_qc.round(),
            self.ledger.chain().len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sft_types::EndorseInfo;

    fn system(n: usize) -> Vec<FbftReplica> {
        let config = ProtocolConfig::for_replicas(n);
        let registry = KeyRegistry::deterministic(n);
        (0..n as u16)
            .map(|i| {
                FbftReplica::new(
                    i,
                    config,
                    registry.clone(),
                    EndorseMode::Marker,
                    SimDuration::from_millis(400),
                    SimTime::ZERO,
                )
            })
            .collect()
    }

    /// Runs one happy-path round by hand: leader proposes, everyone votes,
    /// all votes delivered everywhere. Returns the proposal.
    fn run_round(replicas: &mut [FbftReplica], now: SimTime) -> FbftProposal {
        let round = replicas[0].current_round();
        let leader = FbftReplica::leader(replicas[0].config(), round).as_usize();
        let proposal = replicas[leader]
            .try_propose(Payload::synthetic(1, 1, round.as_u64()))
            .expect("leader proposes");
        let votes: Vec<_> = replicas
            .iter_mut()
            .filter_map(|r| r.on_proposal(&proposal, now).vote)
            .collect();
        for vote in &votes {
            for replica in replicas.iter_mut() {
                replica.on_vote(vote, now);
            }
        }
        proposal
    }

    #[test]
    fn two_chain_commits_after_two_rounds() {
        let mut replicas = system(4);
        let now = SimTime::ZERO;
        let p1 = run_round(&mut replicas, now);
        assert!(replicas.iter().all(|r| r.committed_chain().is_empty()));
        let _p2 = run_round(&mut replicas, now);
        for r in &replicas {
            assert_eq!(r.committed_chain(), &[p1.block().id()]);
            assert!(!r.safety_violated());
        }
    }

    #[test]
    fn all_honest_commits_reach_the_ceiling() {
        let mut replicas = system(4);
        let now = SimTime::ZERO;
        let p1 = run_round(&mut replicas, now);
        run_round(&mut replicas, now);
        let cfg = replicas[0].config();
        for r in &replicas {
            assert_eq!(
                r.commit_level(p1.block().id()),
                Some(cfg.max_strength()),
                "all n votes endorse the whole chain"
            );
        }
    }

    #[test]
    fn non_leader_cannot_propose_and_leader_proposes_once() {
        let mut replicas = system(4);
        assert!(replicas[0].try_propose(Payload::empty()).is_none());
        assert!(replicas[1].try_propose(Payload::empty()).is_some());
        assert!(
            replicas[1].try_propose(Payload::empty()).is_none(),
            "propose-once per round"
        );
    }

    #[test]
    fn replica_votes_once_per_round() {
        let mut replicas = system(4);
        let now = SimTime::ZERO;
        let proposal = replicas[1].try_propose(Payload::empty()).unwrap();
        assert!(replicas[0].on_proposal(&proposal, now).vote.is_some());
        assert!(replicas[0].on_proposal(&proposal, now).vote.is_none());
    }

    #[test]
    fn stale_round_proposal_is_not_voted() {
        let mut replicas = system(4);
        let now = SimTime::ZERO;
        let proposal = replicas[1].try_propose(Payload::empty()).unwrap();
        let votes: Vec<_> = replicas
            .iter_mut()
            .filter_map(|r| r.on_proposal(&proposal, now).vote)
            .collect();
        for vote in &votes {
            for r in replicas.iter_mut() {
                r.on_vote(vote, now);
            }
        }
        assert!(replicas.iter().all(|r| r.current_round() == Round::new(2)));
        // Replaying the round-1 proposal cannot attract votes in round 2.
        assert!(replicas[2].on_proposal(&proposal, now).vote.is_none());
    }

    #[test]
    fn timeout_path_forms_tc_and_advances() {
        let mut replicas = system(4);
        // Nobody proposes in round 1; deadlines fire at 400 ms.
        let t = SimTime::from_millis(400);
        let msgs: Vec<_> = replicas.iter_mut().filter_map(|r| r.on_tick(t)).collect();
        assert_eq!(msgs.len(), 4);
        for r in replicas.iter_mut() {
            assert!(r.on_tick(t).is_none(), "timeout fires once");
        }
        for msg in &msgs {
            for r in replicas.iter_mut() {
                r.on_timeout_msg(msg, t);
            }
        }
        assert!(replicas.iter().all(|r| r.current_round() == Round::new(2)));
        // The round-2 leader now proposes on the genesis QC, shipping the TC.
        let proposal = replicas[2].try_propose(Payload::empty()).expect("leader");
        assert!(proposal.tc().is_some(), "timeout entry ships the TC");
        assert!(proposal.is_justified(&replicas[0].config()));
        let now = t;
        let votes: Vec<_> = replicas
            .iter_mut()
            .filter_map(|r| r.on_proposal(&proposal, now).vote)
            .collect();
        assert_eq!(votes.len(), 4, "round-2 proposal attracts every vote");
    }

    #[test]
    fn tc_justified_proposal_after_skipped_round_commits_later() {
        let mut replicas = system(4);
        let now = SimTime::ZERO;
        let p1 = run_round(&mut replicas, now); // round 1 certifies
                                                // Round 2 leader stalls: time out.
        let t = replicas[0].next_deadline();
        let msgs: Vec<_> = replicas.iter_mut().filter_map(|r| r.on_tick(t)).collect();
        for msg in &msgs {
            for r in replicas.iter_mut() {
                r.on_timeout_msg(msg, t);
            }
        }
        assert!(replicas.iter().all(|r| r.current_round() == Round::new(3)));
        // Round 3 certifies B3 on top of B1 — but (r1, r3) is not a
        // 2-chain (non-consecutive rounds), so nothing commits yet.
        let p3 = run_round(&mut replicas, t);
        assert_eq!(p3.block().parent_id(), p1.block().id());
        for r in &replicas {
            assert!(
                r.committed_chain().is_empty(),
                "a round gap breaks the 2-chain"
            );
        }
        // Round 4 closes the (r3, r4) 2-chain: the whole suffix commits.
        run_round(&mut replicas, t);
        for r in &replicas {
            assert_eq!(r.committed_chain(), &[p1.block().id(), p3.block().id()]);
            assert!(!r.safety_violated());
        }
    }

    #[test]
    fn equivocating_votes_are_detected() {
        let mut replicas = system(4);
        let now = SimTime::ZERO;
        let registry = KeyRegistry::deterministic(4);
        let proposal = replicas[1].try_propose(Payload::empty()).unwrap();
        let out = replicas[0].on_proposal(&proposal, now);
        let honest_vote = out.vote.unwrap();
        replicas[0].on_vote(&honest_vote, now);
        // Replica 3 votes for two different blocks in round 1.
        let other = Block::new(
            &Block::genesis(),
            Round::new(1),
            ReplicaId::new(1),
            Payload::synthetic(9, 9, 9),
        );
        let v1 = StrongVote::new(
            proposal.block().vote_data(),
            EndorseInfo::Marker(Round::ZERO),
            &registry.key_pair(3).unwrap(),
        );
        let v2 = StrongVote::new(
            other.vote_data(),
            EndorseInfo::Marker(Round::ZERO),
            &registry.key_pair(3).unwrap(),
        );
        replicas[0].on_vote(&v1, now);
        replicas[0].on_vote(&v2, now);
        assert_eq!(replicas[0].observed_equivocators(), &[ReplicaId::new(3)]);
    }

    /// Regression: commits reached via a vote-completed QC must appear in
    /// the commit log exactly once per (block, level) — `process_qc`'s
    /// entries were briefly double-appended by `on_vote`.
    #[test]
    fn commit_log_has_one_entry_per_block_and_level() {
        let mut replicas = system(4);
        let now = SimTime::ZERO;
        for _ in 0..4 {
            run_round(&mut replicas, now);
        }
        for r in &replicas {
            assert_eq!(r.committed_chain().len(), 3, "4 rounds commit 3 blocks");
            let mut seen = HashSet::new();
            for update in r.commit_log() {
                assert!(
                    seen.insert((update.block_id(), update.level())),
                    "duplicate commit-log entry {update:?}"
                );
            }
        }
    }

    #[test]
    fn commit_levels_are_monotone_per_block() {
        let mut replicas = system(7);
        let now = SimTime::ZERO;
        for _ in 0..5 {
            run_round(&mut replicas, now);
        }
        for r in &replicas {
            let mut best: std::collections::HashMap<HashValue, u64> = Default::default();
            for update in r.commit_log() {
                let prev = best.entry(update.block_id()).or_insert(0);
                assert!(update.level() >= *prev, "levels only climb");
                *prev = update.level();
            }
        }
    }

    #[test]
    fn chained_propose_on_unknown_high_qc_keeps_the_mempool_intact() {
        use sft_core::PayloadSource;
        use sft_types::BatchConfig;
        // Replica 2 will lead round 2 but never receives the round-1
        // proposal (e.g. it sits in the losing half of an equivocation
        // split). Votes are broadcast, so it still certifies the unknown
        // block and adopts it as high-QC — and must then decline to chain
        // a proposal *without* draining (and losing) a mempool batch.
        let mut replicas = system(4);
        let now = SimTime::ZERO;
        let r2 = replicas
            .remove(2)
            .with_payload_source(PayloadSource::Mempool(BatchConfig::with_max_txns(8)));
        replicas.insert(2, r2);
        for seq in 0..8 {
            assert_eq!(
                replicas[2].submit(Transaction::new(5, seq, vec![0; 8])),
                Admission::Admitted
            );
        }
        let proposal = replicas[1].try_propose(Payload::empty()).expect("leader");
        let votes: Vec<_> = [0usize, 1, 3]
            .into_iter()
            .filter_map(|i| replicas[i].on_proposal(&proposal, now).vote)
            .collect();
        assert_eq!(votes.len(), 3, "a full quorum votes");
        let before = replicas[2].mempool().len();
        for vote in &votes {
            let out = replicas[2].on_vote(vote, now);
            assert!(
                out.next_proposal.is_none(),
                "cannot propose on an unknown high-QC parent"
            );
        }
        assert_eq!(
            replicas[2].current_round(),
            Round::new(2),
            "the QC still advanced the round"
        );
        assert_eq!(
            replicas[2].mempool().len(),
            before,
            "no batch was drained into the failed propose"
        );
    }
}
