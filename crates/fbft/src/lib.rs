//! # sft-fbft
//!
//! Round-based commit rules in the DiemBFT style — the protocol family the
//! paper's *main body* strengthens (§2–§3), as opposed to the height-based
//! Streamlet variant of Appendix D implemented in
//! [`sft-streamlet`](../sft_streamlet/index.html).
//!
//! This crate currently provides the pure decision core — the
//! [`TwoChainState`] commit/locking rule (Fig 2/3) — as chain-agnostic
//! functions over [`VoteData`](sft_types::VoteData). The full replica loop (pacemaker, round
//! timeouts, leader schedule, FeBFT-style async networking) lands in later
//! PRs and will reuse the certification and endorsement machinery of
//! [`sft-core`](../sft_core/index.html) exactly as the Streamlet replica
//! does.
//!
//! ## The 2-chain rule in brief
//!
//! DiemBFT commits block `B` once a quorum certificate forms for a block
//! `B'` with `B'.parent = B` and `B'.round = B.round + 1` — two certified
//! blocks in consecutive rounds. The locking rule makes that safe: a
//! replica that sees a QC locks the QC's *parent round* and later refuses
//! to vote for any proposal whose parent round is lower than its lock.

#![deny(missing_docs)]

pub mod two_chain;

pub use two_chain::TwoChainState;
