//! # sft-fbft
//!
//! SFT-DiemBFT: the paper's strengthened fault tolerance applied to the
//! round-based DiemBFT protocol family its *main body* targets (§2–§3,
//! Figs 2/3) — the counterpart to the height-based Streamlet variant of
//! Appendix D in [`sft-streamlet`](../sft_streamlet/index.html).
//!
//! The crate layers a full replica over the pure decision core:
//!
//! - [`TwoChainState`] — the chain-agnostic 2-chain commit and locking
//!   rule (Fig 2/3), small enough to test exhaustively;
//! - [`Pacemaker`] — deterministic round synchronization: advance on QC or
//!   TC, round-robin leaders, timeout back-off;
//! - [`FbftProposal`] / [`FbftMessage`] — self-justifying wire messages
//!   (each proposal ships the QC it extends, plus the TC after a timeout);
//! - [`FbftReplica`] — the state machine tying them together with the
//!   shared certification ([`sft_core::VoteTracker`]) and strengthening
//!   ([`sft_core::EndorsementTracker`]) machinery, exactly as the
//!   Streamlet replica does.
//!
//! ## Protocol map
//!
//! | Paper concept | Here |
//! |---|---|
//! | round leader, proposal on the highest QC (§2, Fig 2) | [`FbftReplica::try_propose`], [`FbftProposal`] |
//! | pipelined (chained) proposals: the fresh QC rides the next proposal | [`FbftReplica::try_propose_chained`], [`StepOutcome::next_proposal`] |
//! | batched payloads drained from a client pool (§4 workload) | [`sft_core::Mempool`], [`sft_core::PayloadSource`] |
//! | voting rule (locked round, one vote per round) | [`FbftReplica::on_proposal`], [`TwoChainState::safe_to_vote`] |
//! | certification at `2f + 1` votes | [`FbftReplica::on_vote`] via [`sft_core::VoteTracker`] |
//! | 2-chain commit (consecutive certified rounds) | [`TwoChainState::on_qc`] (standard commit, strength `f`) |
//! | round synchronization / timeouts | [`Pacemaker`], [`sft_types::TimeoutMsg`], [`sft_types::TimeoutCertificate`] |
//! | strong-votes with markers / intervals (§3.2, §3.4) | [`sft_types::EndorseMode`], shared [`sft_core::honest_endorse_info`] |
//! | graded commit strength `x ≤ 2f` (Def. 1) | [`FbftReplica::commit_level`], commit-log entries |
//!
//! ## The 2-chain rule in brief
//!
//! DiemBFT commits block `B` once a quorum certificate forms for a block
//! `B'` with `B'.parent = B` and `B'.round = B.round + 1` — two certified
//! blocks in consecutive rounds. The locking rule makes that safe: a
//! replica that sees a QC locks the QC's *parent round* and later refuses
//! to vote for any proposal whose parent round is lower than its lock.

#![deny(missing_docs)]

pub mod engine;
pub mod message;
pub mod pacemaker;
pub mod replica;
pub mod two_chain;

pub use engine::FbftEngine;
pub use message::{FbftMessage, FbftProposal};
pub use pacemaker::{Pacemaker, RoundEntry};
pub use replica::{FbftReplica, StepOutcome};
pub use two_chain::TwoChainState;
// The catch-up subprotocol is shared machinery; re-export the pieces a
// driver needs so it can speak the sync messages without importing core.
pub use sft_core::{BlockResponse, SyncManager, SyncStats};
pub use sft_types::BlockRequest;
