//! Wire messages exchanged by SFT-DiemBFT replicas.
//!
//! Unlike the Streamlet proposal (a bare block), the round-based proposal
//! is *self-justifying*: it carries the quorum certificate it extends and,
//! when the previous round closed without one, the timeout certificate
//! that permits skipping it. A receiver can therefore validate a proposal
//! with no protocol state beyond the PKI and the quorum size.

use std::fmt;

use sft_core::{Block, BlockResponse, ProtocolConfig, QuorumCertificate};
use sft_crypto::{HashValue, Hasher, KeyPair, KeyRegistry, Signature};
use sft_types::codec::{Decode, DecodeError, Encode};
use sft_types::{BlockRequest, StrongVote, TimeoutCertificate, TimeoutMsg};

/// A leader's signed proposal for a round: the new block, the QC for its
/// parent, and — on the timeout path — the TC justifying the round skip.
///
/// # Examples
///
/// ```
/// use sft_core::{Block, ProtocolConfig, QuorumCertificate};
/// use sft_crypto::KeyRegistry;
/// use sft_fbft::FbftProposal;
/// use sft_types::{Payload, ReplicaId, Round};
///
/// let registry = KeyRegistry::deterministic(4);
/// let block = Block::new(&Block::genesis(), Round::new(1), ReplicaId::new(1), Payload::empty());
/// let proposal = FbftProposal::new(block, QuorumCertificate::genesis(4), None, &registry.key_pair(1).unwrap());
/// assert!(proposal.verify(&registry));
/// assert!(proposal.is_justified(&ProtocolConfig::for_replicas(4)));
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct FbftProposal {
    block: Block,
    qc: QuorumCertificate,
    tc: Option<TimeoutCertificate>,
    signature: Signature,
}

fn proposal_digest(
    block: &Block,
    qc: &QuorumCertificate,
    tc: Option<&TimeoutCertificate>,
) -> HashValue {
    let tc_digest = tc.map_or(HashValue::zero(), TimeoutCertificate::digest);
    Hasher::new("fbft-proposal")
        .field(block.id().as_ref())
        .field(&block.round().as_u64().to_be_bytes())
        .field(qc.digest().as_ref())
        .field(tc_digest.as_ref())
        .finish()
}

impl FbftProposal {
    /// Creates and signs a proposal. The key pair must belong to the
    /// block's proposer for the proposal to verify.
    pub fn new(
        block: Block,
        qc: QuorumCertificate,
        tc: Option<TimeoutCertificate>,
        key_pair: &KeyPair,
    ) -> Self {
        let signature = key_pair.sign(proposal_digest(&block, &qc, tc.as_ref()).as_ref());
        Self {
            block,
            qc,
            tc,
            signature,
        }
    }

    /// The proposed block.
    pub fn block(&self) -> &Block {
        &self.block
    }

    /// The quorum certificate for the block's parent.
    pub fn qc(&self) -> &QuorumCertificate {
        &self.qc
    }

    /// The timeout certificate justifying a round skip, if any.
    pub fn tc(&self) -> Option<&TimeoutCertificate> {
        self.tc.as_ref()
    }

    /// The proposer's signature over (block, QC, TC).
    pub fn signature(&self) -> &Signature {
        &self.signature
    }

    /// Verifies that the block's claimed proposer signed this proposal
    /// (covering the certificates, so they cannot be swapped in transit).
    pub fn verify(&self, registry: &KeyRegistry) -> bool {
        registry.verify(
            self.block.proposer().as_u64(),
            proposal_digest(&self.block, &self.qc, self.tc.as_ref()).as_ref(),
            &self.signature,
        )
    }

    /// Structural justification of the proposal (DiemBFT's proposal rule):
    ///
    /// - the QC is well-formed and certifies exactly the block's parent;
    /// - the block either directly follows its parent's round (happy path)
    ///   or ships a well-formed TC for the immediately preceding round
    ///   (timeout path) whose `max_high_qc_round` the QC matches — the
    ///   freshness bar that stops a leader from proposing on a stale QC
    ///   and forgetting a certified block the TC's signers vouched for.
    pub fn is_justified(&self, config: &ProtocolConfig) -> bool {
        if !self.qc.is_well_formed(config)
            || self.qc.block_id() != self.block.parent_id()
            || self.qc.round() != self.block.parent_round()
        {
            return false;
        }
        if self.block.parent_round().precedes(self.block.round()) {
            return true;
        }
        self.tc.as_ref().is_some_and(|tc| {
            tc.round().precedes(self.block.round())
                && tc.signers().len() >= config.quorum()
                && self.qc.round() >= tc.max_high_qc_round()
        })
    }
}

impl fmt::Debug for FbftProposal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "FbftProposal({:?} on {:?}{})",
            self.block,
            self.qc,
            if self.tc.is_some() { " +TC" } else { "" }
        )
    }
}

impl Encode for FbftProposal {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.block.encode(buf);
        self.qc.encode(buf);
        match &self.tc {
            None => buf.push(0),
            Some(tc) => {
                buf.push(1);
                tc.encode(buf);
            }
        }
        self.signature.encode(buf);
    }
}

impl Decode for FbftProposal {
    fn decode(buf: &mut &[u8]) -> Result<Self, DecodeError> {
        let block = Block::decode(buf)?;
        let qc = QuorumCertificate::decode(buf)?;
        let tc = match u8::decode(buf)? {
            0 => None,
            1 => Some(TimeoutCertificate::decode(buf)?),
            t => return Err(DecodeError::InvalidTag(t)),
        };
        Ok(Self {
            block,
            qc,
            tc,
            signature: Signature::decode(buf)?,
        })
    }
}

/// Everything an SFT-DiemBFT replica sends: proposals from round leaders,
/// strong-votes broadcast by every voter, timeout messages on the recovery
/// path, and the point-to-point block-sync exchange.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FbftMessage {
    /// A leader's round proposal.
    Proposal(FbftProposal),
    /// A replica's strong-vote.
    Vote(StrongVote),
    /// A replica's round-timeout declaration.
    Timeout(TimeoutMsg),
    /// A catch-up fetch for a certified-but-unknown block.
    SyncRequest(BlockRequest),
    /// The certified chain segment answering a [`FbftMessage::SyncRequest`].
    SyncResponse(BlockResponse),
}

impl Encode for FbftMessage {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            FbftMessage::Proposal(p) => {
                buf.push(0);
                p.encode(buf);
            }
            FbftMessage::Vote(v) => {
                buf.push(1);
                v.encode(buf);
            }
            FbftMessage::Timeout(t) => {
                buf.push(2);
                t.encode(buf);
            }
            FbftMessage::SyncRequest(r) => {
                buf.push(3);
                r.encode(buf);
            }
            FbftMessage::SyncResponse(r) => {
                buf.push(4);
                r.encode(buf);
            }
        }
    }
}

impl Decode for FbftMessage {
    fn decode(buf: &mut &[u8]) -> Result<Self, DecodeError> {
        match u8::decode(buf)? {
            0 => Ok(FbftMessage::Proposal(FbftProposal::decode(buf)?)),
            1 => Ok(FbftMessage::Vote(StrongVote::decode(buf)?)),
            2 => Ok(FbftMessage::Timeout(TimeoutMsg::decode(buf)?)),
            3 => Ok(FbftMessage::SyncRequest(BlockRequest::decode(buf)?)),
            4 => Ok(FbftMessage::SyncResponse(BlockResponse::decode(buf)?)),
            t => Err(DecodeError::InvalidTag(t)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sft_types::{EndorseInfo, Payload, ReplicaId, Round, SignerSet};

    fn registry() -> KeyRegistry {
        KeyRegistry::deterministic(4)
    }

    fn round_one_block() -> Block {
        Block::new(
            &Block::genesis(),
            Round::new(1),
            ReplicaId::new(1),
            Payload::empty(),
        )
    }

    fn quorum_qc(block: &Block) -> QuorumCertificate {
        QuorumCertificate::new(
            block.vote_data(),
            SignerSet::from_iter_with_capacity(4, (0..3).map(ReplicaId::new)),
        )
    }

    #[test]
    fn sign_verify_and_justify_happy_path() {
        let registry = registry();
        let p = FbftProposal::new(
            round_one_block(),
            QuorumCertificate::genesis(4),
            None,
            &registry.key_pair(1).unwrap(),
        );
        assert!(p.verify(&registry));
        assert!(p.is_justified(&ProtocolConfig::for_replicas(4)));
    }

    #[test]
    fn wrong_signer_fails_verification() {
        let registry = registry();
        let p = FbftProposal::new(
            round_one_block(),
            QuorumCertificate::genesis(4),
            None,
            &registry.key_pair(2).unwrap(), // not the proposer
        );
        assert!(!p.verify(&registry));
    }

    #[test]
    fn swapped_certificate_fails_verification() {
        let registry = registry();
        let kp = registry.key_pair(1).unwrap();
        let b1 = round_one_block();
        let p = FbftProposal::new(b1.clone(), QuorumCertificate::genesis(4), None, &kp);
        // Replace the QC the signature covered.
        let forged = FbftProposal {
            qc: quorum_qc(&b1),
            ..p
        };
        assert!(!forged.verify(&registry));
    }

    #[test]
    fn round_skip_requires_a_tc() {
        let registry = registry();
        let cfg = ProtocolConfig::for_replicas(4);
        let kp = registry.key_pair(3).unwrap();
        let b1 = round_one_block();
        // Round 3 extending the round-1 parent: rounds 2 was skipped.
        let b3 = Block::new(&b1, Round::new(3), ReplicaId::new(3), Payload::empty());
        let no_tc = FbftProposal::new(b3.clone(), quorum_qc(&b1), None, &kp);
        assert!(!no_tc.is_justified(&cfg), "gap without TC is unjustified");

        let tc = TimeoutCertificate::new(
            Round::new(2),
            Round::new(1),
            SignerSet::from_iter_with_capacity(4, (0..3).map(ReplicaId::new)),
        );
        let with_tc = FbftProposal::new(b3.clone(), quorum_qc(&b1), Some(tc), &kp);
        assert!(with_tc.is_justified(&cfg));

        // A TC for the wrong round does not justify the skip.
        let stale_tc = TimeoutCertificate::new(
            Round::new(1),
            Round::new(1),
            SignerSet::from_iter_with_capacity(4, (0..3).map(ReplicaId::new)),
        );
        let wrong = FbftProposal::new(b3.clone(), quorum_qc(&b1), Some(stale_tc), &kp);
        assert!(!wrong.is_justified(&cfg));

        // A QC staler than what the TC's signers vouched for is rejected:
        // the TC promises a round-2 QC exists, but the leader proposes on
        // the round-1 QC.
        let fresher_tc = TimeoutCertificate::new(
            Round::new(2),
            Round::new(2),
            SignerSet::from_iter_with_capacity(4, (0..3).map(ReplicaId::new)),
        );
        let forgetful = FbftProposal::new(b3, quorum_qc(&b1), Some(fresher_tc), &kp);
        assert!(!forgetful.is_justified(&cfg), "stale QC forgets a cert");
    }

    #[test]
    fn qc_must_name_the_parent() {
        let registry = registry();
        let cfg = ProtocolConfig::for_replicas(4);
        let kp = registry.key_pair(2).unwrap();
        let b1 = round_one_block();
        let b2 = Block::new(&b1, Round::new(2), ReplicaId::new(2), Payload::empty());
        // QC certifies genesis, not b2's parent b1.
        let p = FbftProposal::new(b2, QuorumCertificate::genesis(4), None, &kp);
        assert!(!p.is_justified(&cfg));
    }

    #[test]
    fn sub_quorum_qc_is_rejected() {
        let registry = registry();
        let cfg = ProtocolConfig::for_replicas(4);
        let kp = registry.key_pair(2).unwrap();
        let b1 = round_one_block();
        let weak = QuorumCertificate::new(
            b1.vote_data(),
            SignerSet::from_iter_with_capacity(4, [ReplicaId::new(0)]),
        );
        let b2 = Block::new(&b1, Round::new(2), ReplicaId::new(2), Payload::empty());
        let p = FbftProposal::new(b2, weak, None, &kp);
        assert!(!p.is_justified(&cfg));
    }

    #[test]
    fn message_codec_roundtrips() {
        let registry = registry();
        let b1 = round_one_block();
        let proposal = FbftProposal::new(
            b1.clone(),
            QuorumCertificate::genesis(4),
            Some(TimeoutCertificate::new(
                Round::new(7),
                Round::new(5),
                SignerSet::from_iter_with_capacity(4, (0..3).map(ReplicaId::new)),
            )),
            &registry.key_pair(1).unwrap(),
        );
        let vote = StrongVote::new(
            b1.vote_data(),
            EndorseInfo::Marker(Round::ZERO),
            &registry.key_pair(0).unwrap(),
        );
        let timeout = TimeoutMsg::new(Round::new(2), Round::new(1), &registry.key_pair(3).unwrap());
        let request = BlockRequest::new(ReplicaId::new(2), b1.id(), 16);
        let response = BlockResponse::new(quorum_qc(&b1), vec![b1.clone()]);
        for msg in [
            FbftMessage::Proposal(proposal),
            FbftMessage::Vote(vote),
            FbftMessage::Timeout(timeout),
            FbftMessage::SyncRequest(request),
            FbftMessage::SyncResponse(response),
        ] {
            let back = FbftMessage::from_bytes(&msg.to_bytes()).unwrap();
            assert_eq!(back, msg);
        }
    }

    #[test]
    fn message_bad_tag_rejected() {
        assert_eq!(
            FbftMessage::from_bytes(&[9]),
            Err(DecodeError::InvalidTag(9))
        );
    }
}
