//! The pacemaker: deterministic round synchronization for SFT-DiemBFT.
//!
//! A replica is always in exactly one *round*. It leaves round `r` for
//! round `r + 1` when it obtains either a quorum certificate for a block of
//! round `r` (the happy path) or a timeout certificate closing round `r`
//! (the recovery path). If neither arrives before the round's deadline the
//! replica broadcasts a timeout message and re-arms the timer: under a
//! lossy network a one-shot broadcast can strand the whole system one
//! timeout message short of a TC forever, so the message is re-broadcast
//! every timeout span until a certificate moves the round forward (the
//! retransmission discipline DiemBFT itself prescribes; duplicates are
//! idempotent at the aggregator). This is the
//! synchronizer pattern of the DiemBFT lineage (cf. Abraham et al.,
//! *Efficient Synchronous Byzantine Consensus*): round advancement is
//! driven purely by certificates, so all honest replicas move through the
//! same round sequence.
//!
//! Everything here is deterministic: deadlines are computed from the entry
//! instant and a base timeout with exponential back-off on consecutive
//! timeout-entered rounds, so a simulation replays byte-identically.

use std::fmt;

use sft_types::{ReplicaId, Round, SimDuration, SimTime};

/// Why the pacemaker entered its current round.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RoundEntry {
    /// Initial round (nothing certified yet).
    Genesis,
    /// Entered because the previous round produced a quorum certificate.
    Qc,
    /// Entered because the previous round closed with a timeout
    /// certificate.
    Tc,
}

/// Per-replica round state: current round, deadline, and back-off.
///
/// # Examples
///
/// ```
/// use sft_fbft::Pacemaker;
/// use sft_types::{ReplicaId, Round, SimDuration, SimTime};
///
/// let mut pm = Pacemaker::new(4, SimDuration::from_millis(400), SimTime::ZERO);
/// assert_eq!(pm.current_round(), Round::new(1));
/// assert_eq!(pm.leader_of(Round::new(1)), ReplicaId::new(1)); // round-robin
/// // A QC for round 1 advances to round 2.
/// let t = SimTime::from_millis(200);
/// assert_eq!(pm.on_qc_round(Round::new(1), t), Some(Round::new(2)));
/// // Stale certificates never move the round backwards.
/// assert_eq!(pm.on_qc_round(Round::new(1), t), None);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Pacemaker {
    n: usize,
    base_timeout: SimDuration,
    round: Round,
    entered_at: SimTime,
    entry: RoundEntry,
    /// Rounds entered via TC since the last QC-entered round; drives the
    /// exponential back-off so repeated timeouts leave more and more slack
    /// for a slow network to catch up.
    consecutive_timeouts: u32,
    /// The instant the round timer next fires. Re-armed one timeout span
    /// ahead after every firing, so a round that stays open keeps
    /// re-broadcasting its timeout message.
    next_fire: SimTime,
}

/// Cap on the back-off exponent: timeouts grow at most `2^6 = 64×` the
/// base, keeping deadlines bounded and arithmetic overflow-free.
const MAX_BACKOFF_EXP: u32 = 6;

impl Pacemaker {
    /// Creates a pacemaker for an `n`-replica system, entering round 1 at
    /// `now` with the given base round timeout.
    ///
    /// The base timeout must exceed one proposal-plus-vote exchange
    /// (`> 2δ`) for the happy path to ever complete; 4δ is a comfortable
    /// default.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or the timeout is zero.
    pub fn new(n: usize, base_timeout: SimDuration, now: SimTime) -> Self {
        assert!(n > 0, "need at least one replica");
        assert!(!base_timeout.is_zero(), "zero timeout would always fire");
        Self {
            n,
            base_timeout,
            round: Round::new(1),
            entered_at: now,
            entry: RoundEntry::Genesis,
            consecutive_timeouts: 0,
            next_fire: now + base_timeout,
        }
    }

    /// The round this replica is currently in.
    pub fn current_round(&self) -> Round {
        self.round
    }

    /// How the current round was entered.
    pub fn entry(&self) -> RoundEntry {
        self.entry
    }

    /// The deterministic round-robin leader of `round` in an `n`-replica
    /// system — the single source of the leader schedule (the replica
    /// delegates here, so a future rotation change lands in one place).
    pub fn leader_for(n: usize, round: Round) -> ReplicaId {
        ReplicaId::new((round.as_u64() % n as u64) as u16)
    }

    /// The deterministic round-robin leader of `round`.
    pub fn leader_of(&self, round: Round) -> ReplicaId {
        Self::leader_for(self.n, round)
    }

    /// The instant the round timer next fires: the round's deadline, or —
    /// after it fired — the next retransmission of the timeout message.
    /// The timer is always armed (re-armed on every firing and on every
    /// round entry), so there is no "no deadline" state.
    pub fn deadline(&self) -> SimTime {
        self.next_fire
    }

    /// The current round's timeout span: `base × 2^consecutive_timeouts`,
    /// capped at `2^6`.
    pub fn current_timeout(&self) -> SimDuration {
        self.base_timeout * (1u64 << self.consecutive_timeouts.min(MAX_BACKOFF_EXP))
    }

    /// Observes a quorum certificate for a block of `round`. Advances to
    /// `round + 1` (resetting the back-off) and returns the new round if
    /// that moves this replica forward; stale certificates return `None`.
    pub fn on_qc_round(&mut self, round: Round, now: SimTime) -> Option<Round> {
        if round.next() <= self.round {
            return None;
        }
        self.consecutive_timeouts = 0;
        self.enter(round.next(), RoundEntry::Qc, now);
        Some(self.round)
    }

    /// Observes a timeout certificate closing `round`. Advances to
    /// `round + 1` (growing the back-off) and returns the new round if that
    /// moves this replica forward; stale certificates return `None`.
    pub fn on_tc_round(&mut self, round: Round, now: SimTime) -> Option<Round> {
        if round.next() <= self.round {
            return None;
        }
        self.consecutive_timeouts = (self.consecutive_timeouts + 1).min(MAX_BACKOFF_EXP);
        self.enter(round.next(), RoundEntry::Tc, now);
        Some(self.round)
    }

    /// Advances the clock. Returns `Some(round)` each time `now` reaches
    /// the (re-armed) timer — the signal to broadcast a
    /// [`TimeoutMsg`](sft_types::TimeoutMsg) for the round. The timer
    /// re-arms one timeout span ahead, so a round no certificate closes
    /// keeps re-broadcasting: under message loss the retransmission is
    /// what eventually lands `2f + 1` timeouts on every replica.
    pub fn on_tick(&mut self, now: SimTime) -> Option<Round> {
        if now < self.next_fire {
            return None;
        }
        self.next_fire = now + self.current_timeout();
        Some(self.round)
    }

    fn enter(&mut self, round: Round, entry: RoundEntry, now: SimTime) {
        self.round = round;
        self.entry = entry;
        self.entered_at = now;
        self.next_fire = now + self.current_timeout();
    }
}

impl fmt::Debug for Pacemaker {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Pacemaker(r={} {:?} entered={} timeout={} fires@{})",
            self.round,
            self.entry,
            self.entered_at,
            self.current_timeout(),
            self.next_fire
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pm() -> Pacemaker {
        Pacemaker::new(4, SimDuration::from_millis(400), SimTime::ZERO)
    }

    #[test]
    fn starts_in_round_one() {
        let pm = pm();
        assert_eq!(pm.current_round(), Round::new(1));
        assert_eq!(pm.entry(), RoundEntry::Genesis);
        assert_eq!(pm.deadline(), SimTime::from_millis(400));
    }

    #[test]
    fn round_robin_leaders_wrap() {
        let pm = pm();
        assert_eq!(pm.leader_of(Round::new(1)), ReplicaId::new(1));
        assert_eq!(pm.leader_of(Round::new(3)), ReplicaId::new(3));
        assert_eq!(pm.leader_of(Round::new(4)), ReplicaId::new(0));
        assert_eq!(pm.leader_of(Round::new(9)), ReplicaId::new(1));
    }

    #[test]
    fn qc_advances_and_resets_deadline() {
        let mut pm = pm();
        let t = SimTime::from_millis(200);
        assert_eq!(pm.on_qc_round(Round::new(1), t), Some(Round::new(2)));
        assert_eq!(pm.entry(), RoundEntry::Qc);
        assert_eq!(pm.deadline(), SimTime::from_millis(600));
    }

    #[test]
    fn stale_certificates_are_ignored() {
        let mut pm = pm();
        let t = SimTime::from_millis(100);
        pm.on_qc_round(Round::new(5), t);
        assert_eq!(pm.current_round(), Round::new(6));
        assert_eq!(pm.on_qc_round(Round::new(4), t), None);
        assert_eq!(pm.on_tc_round(Round::new(5), t), None);
        assert_eq!(pm.current_round(), Round::new(6));
    }

    #[test]
    fn timeout_fires_then_rearms_for_retransmission() {
        let mut pm = pm();
        assert_eq!(pm.on_tick(SimTime::from_millis(399)), None);
        assert_eq!(pm.on_tick(SimTime::from_millis(400)), Some(Round::new(1)));
        // Re-armed one timeout span ahead, not dead: the timeout message
        // is retransmitted until a certificate closes the round.
        assert_eq!(pm.deadline(), SimTime::from_millis(800));
        assert_eq!(pm.on_tick(SimTime::from_millis(500)), None, "not yet");
        assert_eq!(pm.on_tick(SimTime::from_millis(800)), Some(Round::new(1)));
        // Advancing resets the timer for the new round.
        pm.on_tc_round(Round::new(1), SimTime::from_millis(900));
        assert_eq!(pm.current_round(), Round::new(2));
        assert_eq!(
            pm.deadline(),
            SimTime::from_millis(900) + SimDuration::from_millis(800),
            "TC entry doubles the back-off"
        );
    }

    #[test]
    fn backoff_doubles_on_tc_and_resets_on_qc() {
        let mut pm = pm();
        let t = SimTime::ZERO;
        assert_eq!(pm.current_timeout(), SimDuration::from_millis(400));
        pm.on_tc_round(Round::new(1), t);
        assert_eq!(pm.current_timeout(), SimDuration::from_millis(800));
        pm.on_tc_round(Round::new(2), t);
        assert_eq!(pm.current_timeout(), SimDuration::from_millis(1600));
        pm.on_qc_round(Round::new(3), t);
        assert_eq!(
            pm.current_timeout(),
            SimDuration::from_millis(400),
            "QC resets the back-off"
        );
    }

    #[test]
    fn backoff_is_capped() {
        let mut pm = pm();
        for round in 1..=20u64 {
            pm.on_tc_round(Round::new(round), SimTime::ZERO);
        }
        assert_eq!(
            pm.current_timeout(),
            SimDuration::from_millis(400) * 64,
            "2^6 cap"
        );
    }

    #[test]
    fn qc_and_tc_for_same_round_converge() {
        let t = SimTime::ZERO;
        let mut a = pm();
        let mut b = pm();
        a.on_qc_round(Round::new(3), t);
        a.on_tc_round(Round::new(3), t);
        b.on_tc_round(Round::new(3), t);
        b.on_qc_round(Round::new(3), t);
        assert_eq!(a.current_round(), b.current_round());
        assert_eq!(a.current_round(), Round::new(4));
    }

    #[test]
    #[should_panic(expected = "zero timeout")]
    fn zero_timeout_panics() {
        Pacemaker::new(4, SimDuration::ZERO, SimTime::ZERO);
    }

    #[test]
    fn debug_format_mentions_round() {
        let pm = pm();
        assert!(format!("{pm:?}").contains("r=1"));
    }
}
