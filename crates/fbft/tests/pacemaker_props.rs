//! Exhaustive small-n property tests for [`Pacemaker`] round advancement.
//!
//! The pacemaker is the liveness-critical heart of SFT-DiemBFT: it decides
//! when a replica moves rounds, and QC- and TC-driven advancement race
//! freely in a real execution (a late QC can arrive after the round's TC
//! and vice versa). Rather than sampling, these tests enumerate *every*
//! event sequence up to a fixed depth over a small alphabet — QCs and TCs
//! for rounds 1..=3 plus deadline ticks — and check each prefix against an
//! independent model. At depth 5 that is 7⁵ = 16 807 sequences, far beyond
//! what hand-picked cases cover.

use sft_fbft::Pacemaker;
use sft_types::{Round, SimDuration, SimTime};

const BASE: SimDuration = SimDuration::from_millis(400);
const MAX_ROUND: u64 = 3;
const DEPTH: usize = 5;

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Event {
    /// A quorum certificate for a block of this round.
    Qc(u64),
    /// A timeout certificate closing this round.
    Tc(u64),
    /// Time reaches the current round's deadline (if still armed).
    Tick,
}

fn alphabet() -> Vec<Event> {
    let mut events = vec![Event::Tick];
    for r in 1..=MAX_ROUND {
        events.push(Event::Qc(r));
        events.push(Event::Tc(r));
    }
    events
}

/// Reference model: the round is one past the highest certificate applied
/// while it was still fresh — equivalently, `1 + max(certified rounds)`
/// clamped to be monotone; the timer fires whenever time reaches it and
/// re-arms one timeout span ahead (the retransmission discipline).
struct Model {
    round: u64,
}

impl Model {
    fn new() -> Self {
        Self { round: 1 }
    }

    /// Applies a certificate for `r`; returns true if the round advanced.
    fn certificate(&mut self, r: u64) -> bool {
        if r + 1 > self.round {
            self.round = r + 1;
            true
        } else {
            false
        }
    }
}

/// Walks one event sequence, checking the pacemaker against the model
/// after every event.
fn check_sequence(seq: &[Event]) {
    let mut pm = Pacemaker::new(4, BASE, SimTime::ZERO);
    let mut model = Model::new();
    let mut now = SimTime::ZERO;

    for (step, &event) in seq.iter().enumerate() {
        // Time moves forward a little between events; ticks jump to the
        // deadline so the timer actually fires.
        now += SimDuration::from_millis(1);
        let ctx = || format!("step {step} of {seq:?}");

        match event {
            Event::Qc(r) => {
                let advanced = pm.on_qc_round(Round::new(r), now);
                let expected = model.certificate(r);
                assert_eq!(advanced.is_some(), expected, "{}", ctx());
                if let Some(new_round) = advanced {
                    assert_eq!(new_round.as_u64(), r + 1, "{}", ctx());
                    assert!(
                        pm.deadline() > now,
                        "advancing re-arms the timer ahead of now: {}",
                        ctx()
                    );
                    assert_eq!(
                        pm.current_timeout(),
                        BASE,
                        "QC entry resets the back-off: {}",
                        ctx()
                    );
                }
            }
            Event::Tc(r) => {
                let advanced = pm.on_tc_round(Round::new(r), now);
                let expected = model.certificate(r);
                assert_eq!(advanced.is_some(), expected, "{}", ctx());
                if advanced.is_some() {
                    assert!(pm.deadline() > now, "{}", ctx());
                    assert!(
                        pm.current_timeout() >= BASE * 2,
                        "TC entry grows the back-off: {}",
                        ctx()
                    );
                }
            }
            Event::Tick => {
                let deadline = pm.deadline();
                now = now.max(deadline);
                let fired = pm.on_tick(now);
                assert_eq!(
                    fired.map(|r| r.as_u64()),
                    Some(model.round),
                    "reaching the timer instant always fires for the current round: {}",
                    ctx()
                );
                // Re-armed one timeout span ahead (retransmission), so an
                // immediate re-tick does not fire again.
                assert_eq!(pm.deadline(), now + pm.current_timeout(), "{}", ctx());
                assert!(
                    pm.on_tick(now).is_none(),
                    "re-arm is in the future: {}",
                    ctx()
                );
            }
        }

        assert_eq!(
            pm.current_round().as_u64(),
            model.round,
            "round tracks the model: {}",
            ctx()
        );
        assert!(
            pm.current_timeout() <= BASE * 64,
            "back-off is capped: {}",
            ctx()
        );
    }
}

/// Exhaustively enumerates every event sequence up to [`DEPTH`].
#[test]
fn exhaustive_event_sequences_match_the_model() {
    let alphabet = alphabet();
    let mut sequence = Vec::with_capacity(DEPTH);
    let mut checked = 0u64;

    fn recurse(alphabet: &[Event], sequence: &mut Vec<Event>, depth: usize, checked: &mut u64) {
        check_sequence(sequence);
        *checked += 1;
        if depth == 0 {
            return;
        }
        for &event in alphabet {
            sequence.push(event);
            recurse(alphabet, sequence, depth - 1, checked);
            sequence.pop();
        }
    }

    recurse(&alphabet, &mut sequence, DEPTH, &mut checked);
    // 1 + 7 + 7² + ... + 7⁵ prefixes, each fully checked.
    assert_eq!(
        checked,
        (0..=DEPTH as u32).map(|d| 7u64.pow(d)).sum::<u64>()
    );
}

/// QC-vs-TC races converge: from any reachable state, applying a QC and a
/// TC for the same round in either order lands every replica in the same
/// round (the back-off may differ — only the round is consensus-critical).
#[test]
fn qc_tc_races_converge_from_every_reachable_state() {
    let alphabet = alphabet();
    // Every state reachable in up to 3 events, then the 2-event race.
    let mut prefixes: Vec<Vec<Event>> = vec![Vec::new()];
    for _ in 0..3 {
        let mut next = Vec::new();
        for prefix in &prefixes {
            for &event in &alphabet {
                let mut longer = prefix.clone();
                longer.push(event);
                next.push(longer);
            }
        }
        prefixes.extend(next);
    }

    let replay = |events: &[Event]| {
        let mut pm = Pacemaker::new(4, BASE, SimTime::ZERO);
        let mut now = SimTime::ZERO;
        for &event in events {
            now += SimDuration::from_millis(1);
            match event {
                Event::Qc(r) => {
                    pm.on_qc_round(Round::new(r), now);
                }
                Event::Tc(r) => {
                    pm.on_tc_round(Round::new(r), now);
                }
                Event::Tick => {
                    now = now.max(pm.deadline());
                    pm.on_tick(now);
                }
            }
        }
        pm
    };

    for prefix in &prefixes {
        for r in 1..=MAX_ROUND {
            let mut qc_first = prefix.clone();
            qc_first.extend([Event::Qc(r), Event::Tc(r)]);
            let mut tc_first = prefix.clone();
            tc_first.extend([Event::Tc(r), Event::Qc(r)]);
            let a = replay(&qc_first);
            let b = replay(&tc_first);
            assert_eq!(
                a.current_round(),
                b.current_round(),
                "race on round {r} after {prefix:?}"
            );
        }
    }
}
