//! [`ProtocolConfig`]: replica counts, fault thresholds, and the quorum
//! arithmetic of the two-level commit rule.
//!
//! With `n = 3f + 1` replicas, the classic rule certifies a block at a
//! `2f + 1` quorum and the resulting commit is safe provided at most `f`
//! replicas are Byzantine. The paper's strengthened rule (§3) grades commits
//! by *strength*: a block endorsed by `q` distinct replicas is
//! `x`-strong-committed for `x = q − f − 1` (Definition 1 / Theorem 1),
//! up to the ceiling `x = 2f` reached when all `n` replicas endorse.
//!
//! The inverse form is the strengthened quorum: level `x` requires
//! `f + x + 1` endorsers. Setting `x = f` recovers the classic `2f + 1`
//! quorum, which is why the standard commit is exactly the weakest rung of
//! the strengthened ladder.

use std::fmt;

/// Static protocol parameters: the replica count `n` and the design fault
/// threshold `f`.
///
/// # Examples
///
/// ```
/// use sft_core::ProtocolConfig;
///
/// let cfg = ProtocolConfig::for_replicas(4);
/// assert_eq!(cfg.f(), 1);
/// assert_eq!(cfg.quorum(), 3);          // 2f + 1
/// assert_eq!(cfg.strong_quorum(2), 4);  // f + x + 1: stronger commits need more endorsers
/// assert_eq!(cfg.max_strength(), 2);    // ceiling 2f
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct ProtocolConfig {
    n: usize,
    f: usize,
}

impl ProtocolConfig {
    /// Configuration for `n` replicas with the largest supported fault
    /// threshold `f = ⌊(n − 1) / 3⌋`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 4` (the smallest system with `f ≥ 1`).
    pub fn for_replicas(n: usize) -> Self {
        assert!(n >= 4, "need at least 4 replicas, got {n}");
        Self { n, f: (n - 1) / 3 }
    }

    /// Configuration with an explicit fault threshold.
    ///
    /// # Panics
    ///
    /// Panics unless `f ≥ 1` and `n ≥ 3f + 1`.
    pub fn with_faults(n: usize, f: usize) -> Self {
        assert!(f >= 1, "fault threshold must be at least 1");
        assert!(n > 3 * f, "n = {n} violates n >= 3f + 1 for f = {f}");
        Self { n, f }
    }

    /// Total number of replicas.
    pub const fn n(&self) -> usize {
        self.n
    }

    /// The design fault threshold `f` (classic safety and liveness hold for
    /// up to `f` Byzantine replicas).
    pub const fn f(&self) -> usize {
        self.f
    }

    /// The classic certification quorum `2f + 1`.
    pub const fn quorum(&self) -> usize {
        2 * self.f + 1
    }

    /// Endorsers required for an `x`-strong commit: `f + x + 1` (§3.2).
    ///
    /// `strong_quorum(f)` equals [`quorum`](Self::quorum): the standard
    /// commit is the `x = f` rung of the strengthened ladder.
    pub const fn strong_quorum(&self, level: u64) -> usize {
        self.f + level as usize + 1
    }

    /// The strongest achievable commit level, `2f` — reached only when all
    /// `n = 3f + 1` replicas endorse (Theorem 1's ceiling).
    pub const fn max_strength(&self) -> u64 {
        2 * self.f as u64
    }

    /// The commit strength conferred by `endorsers` distinct endorsing
    /// replicas: `min(endorsers − f − 1, 2f)`, or `None` below the classic
    /// quorum (an uncertified block has no commit strength at all).
    ///
    /// # Examples
    ///
    /// ```
    /// use sft_core::ProtocolConfig;
    ///
    /// let cfg = ProtocolConfig::for_replicas(7); // f = 2
    /// assert_eq!(cfg.strength_of(4), None);      // below 2f + 1 = 5
    /// assert_eq!(cfg.strength_of(5), Some(2));   // classic commit: x = f
    /// assert_eq!(cfg.strength_of(7), Some(4));   // all replicas: x = 2f
    /// ```
    pub fn strength_of(&self, endorsers: usize) -> Option<u64> {
        if endorsers < self.quorum() {
            return None;
        }
        Some(((endorsers - self.f - 1) as u64).min(self.max_strength()))
    }

    /// True if `endorsers` suffice for an `x = level` strong commit.
    ///
    /// This is the gate the strengthened rule adds on top of the classic
    /// one: under more than `f` actually-corrupt voters, a commit that the
    /// `2f + 1` rule accepts fails this check for any `level > f`.
    pub fn meets_strong_quorum(&self, endorsers: usize, level: u64) -> bool {
        level <= self.max_strength() && endorsers >= self.strong_quorum(level)
    }
}

impl fmt::Debug for ProtocolConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ProtocolConfig(n={}, f={})", self.n, self.f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_fault_threshold() {
        assert_eq!(ProtocolConfig::for_replicas(4).f(), 1);
        assert_eq!(ProtocolConfig::for_replicas(7).f(), 2);
        assert_eq!(ProtocolConfig::for_replicas(10).f(), 3);
        assert_eq!(ProtocolConfig::for_replicas(100).f(), 33);
    }

    #[test]
    fn quorum_sizes() {
        let cfg = ProtocolConfig::for_replicas(10);
        assert_eq!(cfg.quorum(), 7);
        assert_eq!(
            cfg.strong_quorum(3),
            7,
            "x = f rung equals the classic quorum"
        );
        assert_eq!(cfg.strong_quorum(6), 10, "ceiling needs every replica");
        assert_eq!(cfg.max_strength(), 6);
    }

    #[test]
    fn strength_ladder() {
        let cfg = ProtocolConfig::for_replicas(4); // f = 1
        assert_eq!(cfg.strength_of(0), None);
        assert_eq!(cfg.strength_of(2), None);
        assert_eq!(cfg.strength_of(3), Some(1)); // standard commit
        assert_eq!(cfg.strength_of(4), Some(2)); // ceiling 2f
    }

    #[test]
    fn strength_is_capped_at_ceiling() {
        let cfg = ProtocolConfig::with_faults(9, 2); // over-provisioned n > 3f + 1
        assert_eq!(
            cfg.strength_of(9),
            Some(4),
            "2f cap applies even with spare replicas"
        );
    }

    /// The acceptance-criteria scenario: under more than `f` corrupt voters
    /// the 2f+1 rule accepts a commit the strengthened rule must reject.
    ///
    /// n = 4, f = 1. A block gathers the classic quorum of 3 votes, 2 of
    /// which come from corrupt replicas. The classic rule commits — and with
    /// only 1 honest voter in the quorum its guarantee is already void,
    /// since safety of that commit assumed at most f = 1 faults. The
    /// strengthened rule prices this in: 3 endorsers only ever confer
    /// strength x = 1, so any claim of a level-2 commit (the level needed to
    /// survive 2 corrupt voters) is rejected until a 4th endorser appears.
    #[test]
    fn strengthened_quorum_rejects_what_classic_accepts() {
        let cfg = ProtocolConfig::for_replicas(4);
        let endorsers = 3; // classic 2f + 1 quorum, but 2 of the 3 are corrupt
        let corrupt_voters = 2;
        assert!(corrupt_voters > cfg.f(), "scenario has more than f faults");

        // Classic rule: 3 votes >= 2f + 1, commit accepted.
        assert!(endorsers >= cfg.quorum());
        // Strengthened rule: surviving `corrupt_voters` faults needs level 2,
        // and level 2 needs f + 2 + 1 = 4 endorsers — rejected at 3.
        assert!(!cfg.meets_strong_quorum(endorsers, corrupt_voters as u64));
        assert_eq!(
            cfg.strength_of(endorsers),
            Some(1),
            "3 endorsers only certify level f = 1"
        );
        // With every replica endorsing, level 2 becomes claimable.
        assert!(cfg.meets_strong_quorum(4, 2));
    }

    #[test]
    fn levels_beyond_ceiling_never_met() {
        let cfg = ProtocolConfig::for_replicas(4);
        assert!(
            !cfg.meets_strong_quorum(4, 3),
            "no quorum can promise more than 2f"
        );
    }

    #[test]
    #[should_panic(expected = "n >= 3f + 1")]
    fn invalid_threshold_panics() {
        ProtocolConfig::with_faults(6, 2);
    }

    #[test]
    #[should_panic(expected = "at least 4 replicas")]
    fn too_few_replicas_panics() {
        ProtocolConfig::for_replicas(3);
    }

    #[test]
    fn debug_format() {
        let cfg = ProtocolConfig::for_replicas(7);
        assert_eq!(format!("{cfg:?}"), "ProtocolConfig(n=7, f=2)");
    }
}
