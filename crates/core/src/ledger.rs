//! [`CommitLedger`]: the finalized chain prefix a replica has committed.
//!
//! Both protocol replicas (height-based Streamlet, round-based DiemBFT)
//! end their commit rules the same way: some block is declared final, and
//! the chain from the previous committed tip up to it must be appended —
//! or, if the new block does *not* extend the committed prefix, a safety
//! violation must be flagged (observable only when the actual fault count
//! exceeds the strength level of an earlier commit). This module owns that
//! shared suffix walk so the protocol crates only decide *what* commits,
//! never *how* the committed chain is maintained.

use std::collections::HashSet;

use sft_crypto::HashValue;

use crate::BlockStore;

/// The committed chain prefix of one replica, genesis excluded.
///
/// # Examples
///
/// ```
/// use sft_core::{Block, BlockStore, CommitLedger};
/// use sft_types::{Payload, ReplicaId, Round};
///
/// let mut store = BlockStore::new();
/// let b1 = Block::new(store.genesis(), Round::new(1), ReplicaId::new(0), Payload::empty());
/// let b2 = Block::new(&b1, Round::new(2), ReplicaId::new(1), Payload::empty());
/// store.insert(b1.clone()).unwrap();
/// store.insert(b2.clone()).unwrap();
///
/// let mut ledger = CommitLedger::new();
/// // Finalizing b2 commits the whole suffix b1, b2 — oldest first.
/// assert_eq!(ledger.finalize_through(&store, b2.id()), vec![b1.id(), b2.id()]);
/// assert_eq!(ledger.chain(), &[b1.id(), b2.id()]);
/// assert!(!ledger.safety_violated());
/// ```
#[derive(Clone, Debug, Default)]
pub struct CommitLedger {
    committed: Vec<HashValue>,
    committed_ids: HashSet<HashValue>,
    safety_violation: bool,
}

impl CommitLedger {
    /// An empty ledger (only genesis is implicitly committed).
    pub fn new() -> Self {
        Self::default()
    }

    /// The committed chain, oldest block first (genesis excluded).
    pub fn chain(&self) -> &[HashValue] {
        &self.committed
    }

    /// True if `id` is committed.
    pub fn contains(&self, id: HashValue) -> bool {
        self.committed_ids.contains(&id)
    }

    /// The most recently committed block, if any.
    pub fn tip(&self) -> Option<HashValue> {
        self.committed.last().copied()
    }

    /// True if this ledger ever observed two conflicting finalized chains —
    /// impossible while the fault assumption of the committed levels holds,
    /// and the signal the strengthened rule exists to price in.
    pub fn safety_violated(&self) -> bool {
        self.safety_violation
    }

    /// Finalizes the chain through `target` by walking back to the
    /// committed tip — O(new suffix), not O(whole chain). Returns the newly
    /// committed ids, oldest first (empty if `target` is already committed
    /// or unknown).
    ///
    /// The finalized chain must extend what was committed before; anything
    /// else sets the sticky [`safety_violated`](Self::safety_violated) flag
    /// and commits nothing.
    pub fn finalize_through(&mut self, store: &BlockStore, target: HashValue) -> Vec<HashValue> {
        if self.committed_ids.contains(&target) {
            return Vec::new();
        }
        let mut suffix = Vec::new();
        let mut cursor = target;
        let extends_committed_tip = loop {
            let Some(block) = store.get(cursor) else {
                return Vec::new();
            };
            if block.is_genesis() {
                // Rooted directly at genesis: consistent only if nothing
                // was committed before.
                break self.committed.is_empty();
            }
            suffix.push(cursor);
            let parent_id = block.parent_id();
            if self.committed_ids.contains(&parent_id) {
                // Extending anything but the committed tip forks out of
                // the middle of the finalized prefix.
                break self.committed.last() == Some(&parent_id);
            }
            cursor = parent_id;
        };
        if !extends_committed_tip {
            self.safety_violation = true;
            return Vec::new();
        }
        suffix.reverse();
        for id in &suffix {
            self.committed.push(*id);
            self.committed_ids.insert(*id);
        }
        suffix
    }

    /// Re-attempts deferred finalizations: targets a commit rule declared
    /// while the local chain still had holes (blocks being block-synced).
    /// Each target either finalizes now — its newly committed ids are
    /// returned, oldest first — or stays in `deferred` for the next
    /// attempt. Both protocol replicas call this after every sync
    /// admission.
    pub fn finalize_deferred(
        &mut self,
        store: &BlockStore,
        deferred: &mut Vec<HashValue>,
    ) -> Vec<HashValue> {
        let targets = std::mem::take(deferred);
        let mut committed = Vec::new();
        for target in targets {
            if self.contains(target) {
                continue;
            }
            let newly = self.finalize_through(store, target);
            if newly.is_empty() {
                deferred.push(target);
                continue;
            }
            committed.extend(newly);
        }
        committed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Block;
    use sft_types::{Payload, ReplicaId, Round};

    fn chain(store: &mut BlockStore, rounds: &[u64]) -> Vec<Block> {
        let mut parent = store.genesis().clone();
        rounds
            .iter()
            .map(|&round| {
                let block = Block::new(
                    &parent,
                    Round::new(round),
                    ReplicaId::new((round % 4) as u16),
                    Payload::synthetic(1, 1, round),
                );
                store.insert(block.clone()).unwrap();
                parent = block.clone();
                block
            })
            .collect()
    }

    #[test]
    fn finalize_appends_suffix_incrementally() {
        let mut store = BlockStore::new();
        let blocks = chain(&mut store, &[1, 2, 3, 4]);
        let mut ledger = CommitLedger::new();
        assert_eq!(
            ledger.finalize_through(&store, blocks[1].id()),
            vec![blocks[0].id(), blocks[1].id()]
        );
        // Finalizing deeper only appends the new part.
        assert_eq!(
            ledger.finalize_through(&store, blocks[3].id()),
            vec![blocks[2].id(), blocks[3].id()]
        );
        assert_eq!(ledger.chain().len(), 4);
        assert_eq!(ledger.tip(), Some(blocks[3].id()));
        assert!(ledger.contains(blocks[0].id()));
    }

    #[test]
    fn refinalizing_is_a_no_op() {
        let mut store = BlockStore::new();
        let blocks = chain(&mut store, &[1, 2]);
        let mut ledger = CommitLedger::new();
        ledger.finalize_through(&store, blocks[1].id());
        assert!(ledger.finalize_through(&store, blocks[1].id()).is_empty());
        assert!(ledger.finalize_through(&store, blocks[0].id()).is_empty());
        assert_eq!(ledger.chain().len(), 2);
    }

    #[test]
    fn unknown_target_commits_nothing() {
        let store = BlockStore::new();
        let mut ledger = CommitLedger::new();
        assert!(ledger
            .finalize_through(&store, sft_crypto::HashValue::of(b"nope"))
            .is_empty());
        assert!(!ledger.safety_violated());
    }

    #[test]
    fn conflicting_finalization_flags_safety_violation() {
        let mut store = BlockStore::new();
        let main = chain(&mut store, &[1, 2]);
        // A fork off genesis.
        let fork = Block::new(
            store.genesis(),
            Round::new(3),
            ReplicaId::new(0),
            Payload::synthetic(9, 9, 9),
        );
        store.insert(fork.clone()).unwrap();

        let mut ledger = CommitLedger::new();
        ledger.finalize_through(&store, main[1].id());
        assert!(ledger.finalize_through(&store, fork.id()).is_empty());
        assert!(ledger.safety_violated(), "fork off the committed prefix");
        assert_eq!(ledger.chain().len(), 2, "committed chain unchanged");
    }

    #[test]
    fn mid_prefix_fork_flags_safety_violation() {
        let mut store = BlockStore::new();
        let main = chain(&mut store, &[1, 2, 3]);
        // A fork off main[0], conflicting with committed main[1..].
        let fork = Block::new(
            &main[0],
            Round::new(7),
            ReplicaId::new(0),
            Payload::synthetic(9, 9, 9),
        );
        store.insert(fork.clone()).unwrap();
        let mut ledger = CommitLedger::new();
        ledger.finalize_through(&store, main[2].id());
        assert!(ledger.finalize_through(&store, fork.id()).is_empty());
        assert!(ledger.safety_violated());
    }
}
