//! Per-round consensus observability shared by both protocol engines.
//!
//! [`EngineObs`] tracks when each round's proposal was first seen and
//! turns the engine's subsequent milestones — own vote cast, QC formed,
//! standard commit, strength-level increase — into latency histogram
//! samples and trace events against the paper's §3 commit-grading
//! pipeline: *certify* at `2f + 1` votes, *commit*, then *strengthen*
//! to level `x` at `f + x + 1` endorsements. Latencies are measured on
//! the protocol clock (`SimTime` microseconds: virtual under the
//! simulator, wall under real sockets), so a sim run and a TCP run
//! report in the same unit.
//!
//! Everything is gated on [`sft_obs::Recorder::enabled`], so an engine holding
//! the default no-op recorder pays one branch per call site.

use std::collections::{BTreeMap, BTreeSet};

use sft_obs::{names, SharedRecorder, TraceEvent};
use sft_types::{Round, SimTime, StrongCommitUpdate};

/// How many proposal-seen timestamps to retain; old rounds are pruned
/// once commits pass them, so this only bounds pathological runs.
const SEEN_CAP: usize = 2048;

/// Per-engine consensus event recorder. Engines embed one and call into
/// it from their message handlers; everything is a no-op until
/// [`EngineObs::set_recorder`] installs a live recorder.
#[derive(Debug, Default)]
pub struct EngineObs {
    recorder: sft_obs::RecorderCell,
    /// First-seen protocol time per proposed round, the anchor every
    /// downstream latency is measured from.
    seen: BTreeMap<u64, u64>,
    /// Rounds whose standard commit was already counted (strength
    /// increases for them keep arriving afterwards).
    committed: BTreeSet<u64>,
}

impl EngineObs {
    /// A disabled recorder (every call a cheap branch).
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs the recorder all subsequent events flow into.
    pub fn set_recorder(&mut self, recorder: SharedRecorder) {
        self.recorder = sft_obs::RecorderCell::new(recorder);
    }

    /// The recorder handle (for passing onward to sub-components).
    pub fn recorder(&self) -> &SharedRecorder {
        self.recorder.get()
    }

    /// True when events are actually kept.
    pub fn enabled(&self) -> bool {
        self.recorder.enabled()
    }

    /// A proposal for `round` was accepted (first sighting only counts).
    pub fn proposal_seen(&mut self, round: Round, now: SimTime) {
        if !self.recorder.enabled() {
            return;
        }
        let round = round.as_u64();
        if self.seen.contains_key(&round) {
            return;
        }
        if self.seen.len() >= SEEN_CAP {
            self.seen.pop_first();
        }
        self.seen.insert(round, now.as_micros());
        self.recorder.add(names::CONSENSUS_PROPOSALS_SEEN, 1);
        self.recorder.trace(&TraceEvent::new(
            names::EV_PROPOSAL,
            now.as_micros(),
            &[("round", round)],
        ));
    }

    /// This replica cast its own vote for `round`.
    pub fn voted(&mut self, round: Round, now: SimTime) {
        if !self.recorder.enabled() {
            return;
        }
        let round = round.as_u64();
        self.recorder.add(names::CONSENSUS_VOTES_CAST, 1);
        if let Some(lat) = self.latency_from_seen(round, now) {
            self.recorder.observe(names::CONSENSUS_VOTE_US, lat);
        }
        self.recorder.trace(&TraceEvent::new(
            names::EV_VOTE,
            now.as_micros(),
            &[("round", round)],
        ));
    }

    /// A quorum certificate formed locally for `round`.
    pub fn qc_formed(&mut self, round: Round, now: SimTime) {
        if !self.recorder.enabled() {
            return;
        }
        let round = round.as_u64();
        self.recorder.add(names::CONSENSUS_QC_FORMED, 1);
        if let Some(lat) = self.latency_from_seen(round, now) {
            self.recorder.observe(names::CONSENSUS_QC_US, lat);
        }
        self.recorder.trace(&TraceEvent::new(
            names::EV_QC,
            now.as_micros(),
            &[("round", round)],
        ));
    }

    /// Scans one step's durable records for newly formed/adopted quorum
    /// certificates — both replicas write `QcFormed` exactly once per
    /// distinct QC, so this is the protocol-agnostic QC milestone.
    pub fn wal_records(&mut self, records: &[crate::WalRecord], now: SimTime) {
        if !self.recorder.enabled() || records.is_empty() {
            return;
        }
        for record in records {
            if let crate::WalRecord::QcFormed(qc) = record {
                self.qc_formed(qc.round(), now);
            }
        }
    }

    /// Absorbs one step's commit-log entries: the first entry per round
    /// is its standard commit; every entry records the latency to the
    /// strength level it reached.
    pub fn updates(&mut self, updates: &[StrongCommitUpdate], now: SimTime) {
        if !self.recorder.enabled() || updates.is_empty() {
            return;
        }
        for update in updates {
            let round = update.round().as_u64();
            if self.committed.insert(round) {
                if self.committed.len() > SEEN_CAP {
                    self.committed.pop_first();
                }
                self.recorder.add(names::CONSENSUS_COMMITS, 1);
                if let Some(lat) = self.latency_from_seen(round, now) {
                    self.recorder.observe(names::ROUND_COMMIT_US, lat);
                }
                self.recorder.trace(&TraceEvent::new(
                    names::EV_COMMIT,
                    now.as_micros(),
                    &[("round", round), ("height", update.height().as_u64())],
                ));
            }
            if let Some(lat) = self.latency_from_seen(round, now) {
                self.recorder
                    .observe(names::strength_level_name(update.level()), lat);
            }
            self.recorder.trace(&TraceEvent::new(
                names::EV_STRENGTH,
                now.as_micros(),
                &[("round", round), ("level", update.level())],
            ));
        }
    }

    /// Microseconds from the round's proposal sighting to `now`; `None`
    /// when the proposal was never seen (e.g. the block arrived via
    /// block-sync) — such latencies would be lies, so they are skipped.
    fn latency_from_seen(&self, round: u64, now: SimTime) -> Option<u64> {
        self.seen
            .get(&round)
            .map(|seen| now.as_micros().saturating_sub(*seen))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sft_crypto::HashValue;
    use sft_obs::Registry;
    use sft_types::Height;
    use std::sync::Arc;

    fn update(round: u64, level: u64) -> StrongCommitUpdate {
        StrongCommitUpdate::new(
            HashValue::of(&round.to_le_bytes()),
            Round::new(round),
            Height::new(round),
            level,
        )
    }

    #[test]
    fn disabled_obs_records_nothing() {
        let mut obs = EngineObs::new();
        obs.proposal_seen(Round::new(1), SimTime::from_micros(10));
        obs.voted(Round::new(1), SimTime::from_micros(20));
        obs.updates(&[update(1, 0)], SimTime::from_micros(30));
        assert!(obs.recorder().snapshot().is_empty());
    }

    #[test]
    fn full_round_produces_latencies() {
        let mut obs = EngineObs::new();
        let reg = Arc::new(Registry::new());
        obs.set_recorder(reg);
        obs.proposal_seen(Round::new(5), SimTime::from_micros(100));
        obs.proposal_seen(Round::new(5), SimTime::from_micros(150)); // dup ignored
        obs.voted(Round::new(5), SimTime::from_micros(130));
        obs.qc_formed(Round::new(5), SimTime::from_micros(300));
        obs.updates(&[update(5, 0), update(5, 2)], SimTime::from_micros(400));
        let snap = obs.recorder().snapshot();
        assert_eq!(snap.counter(names::CONSENSUS_PROPOSALS_SEEN), Some(1));
        assert_eq!(snap.counter(names::CONSENSUS_VOTES_CAST), Some(1));
        assert_eq!(snap.counter(names::CONSENSUS_QC_FORMED), Some(1));
        assert_eq!(snap.counter(names::CONSENSUS_COMMITS), Some(1));
        assert_eq!(snap.hist(names::CONSENSUS_VOTE_US).unwrap().max, 30);
        assert_eq!(snap.hist(names::CONSENSUS_QC_US).unwrap().max, 200);
        assert_eq!(snap.hist(names::ROUND_COMMIT_US).unwrap().max, 300);
        assert_eq!(snap.hist("strength_x2_us").unwrap().count, 1);
    }

    #[test]
    fn strength_only_updates_do_not_double_count_commits() {
        let mut obs = EngineObs::new();
        obs.set_recorder(Arc::new(Registry::new()));
        obs.proposal_seen(Round::new(7), SimTime::from_micros(0));
        obs.updates(&[update(7, 0)], SimTime::from_micros(10));
        obs.updates(&[update(7, 1)], SimTime::from_micros(20));
        let snap = obs.recorder().snapshot();
        assert_eq!(snap.counter(names::CONSENSUS_COMMITS), Some(1));
        assert_eq!(snap.hist(names::ROUND_COMMIT_US).unwrap().count, 1);
        assert_eq!(snap.hist("strength_x1_us").unwrap().count, 1);
    }
}
