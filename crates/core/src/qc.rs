//! Vote aggregation into quorum certificates.
//!
//! A [`VoteTracker`] collects verified [`StrongVote`]s per block, detects
//! same-round equivocation, and emits a [`QuorumCertificate`] exactly once
//! when a block reaches the classic `2f + 1` quorum. Certification
//! ("notarization" in Streamlet's vocabulary) is deliberately separate from
//! endorsement strength: a QC says *this block may extend the chain*, while
//! the endorsement tally of [`crate::EndorsementTracker`] says *how many
//! faults a commit of it survives*.

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::Arc;

use sft_crypto::{BatchItem, HashValue, Hasher, KeyRegistry, SigStats};
use sft_types::{
    vote_signing_digest_with, Decode, DecodeError, Encode, ReplicaId, Round, SignerSet, StrongVote,
    VerifyPolicy, VoteData,
};

use crate::{Block, ProtocolConfig};

/// Proof that `2f + 1` distinct replicas voted for the same [`VoteData`].
///
/// The per-vote signatures live in the tracker; the certificate carries the
/// voted data plus the signer set, which is all downstream logic consumes.
/// The round-based protocol ships QCs inside proposals, so the certificate
/// is wire-encodable; receivers validate it *structurally* (signer count
/// against the quorum) — within the simulator's threat model the vote
/// tracker that formed it has already checked every signature, and a
/// threshold-aggregated signature slots in here when real networking lands.
#[derive(Clone, PartialEq, Eq)]
pub struct QuorumCertificate {
    data: VoteData,
    /// Shared, not owned: the vote tracker that formed the certificate and
    /// every proposal re-shipping it point at the same signer set, so
    /// certification and the (frequent) QC clones on the propose path cost
    /// a reference count, not a bitset copy.
    signers: Arc<SignerSet>,
    /// Computed once at construction (like a block id); every later
    /// [`digest`](Self::digest) call — one per proposal signature check —
    /// is a copy instead of an encode-and-hash.
    digest: HashValue,
}

fn qc_digest(data: &VoteData, signers: &SignerSet) -> HashValue {
    let mut bytes = Vec::with_capacity(data.encoded_len() + 16);
    data.encode(&mut bytes);
    signers.encode(&mut bytes);
    Hasher::new("quorum-certificate").field(&bytes).finish()
}

impl QuorumCertificate {
    /// Assembles a certificate from parts. Callers are expected to have
    /// verified the underlying votes (the tracker has). Accepts an owned
    /// signer set or an already-shared `Arc` (the tracker passes the latter
    /// so no copy happens when a quorum forms).
    pub fn new(data: VoteData, signers: impl Into<Arc<SignerSet>>) -> Self {
        let signers = signers.into();
        let digest = qc_digest(&data, &signers);
        Self {
            data,
            signers,
            digest,
        }
    }

    /// The well-known certificate for the genesis block of an `n`-replica
    /// system: round 0, no signers. Genesis is trusted by construction, so
    /// its QC carries no votes — structural validation special-cases it.
    pub fn genesis(n: usize) -> Self {
        let genesis = Block::genesis();
        Self::new(genesis.vote_data(), SignerSet::new(n))
    }

    /// The certified vote data.
    pub fn data(&self) -> &VoteData {
        &self.data
    }

    /// The certified block's id.
    pub fn block_id(&self) -> HashValue {
        self.data.block_id()
    }

    /// The certified block's round.
    pub fn round(&self) -> Round {
        self.data.block_round()
    }

    /// The replicas whose votes formed the certificate.
    pub fn signers(&self) -> &SignerSet {
        &self.signers
    }

    /// Digest of the certificate (mixed into proposal signing preimages so
    /// a leader's signature covers the QC it proposes on). Precomputed at
    /// construction, so re-verifying a re-delivered QC never re-hashes it.
    pub fn digest(&self) -> HashValue {
        self.digest
    }

    /// Structural validity against a protocol configuration: the genesis
    /// certificate, or a signer set meeting the classic `2f + 1` quorum.
    pub fn is_well_formed(&self, config: &ProtocolConfig) -> bool {
        if self.round() == Round::ZERO {
            return self.block_id() == Block::genesis().id() && self.signers.is_empty();
        }
        self.signers.len() >= config.quorum()
    }
}

impl Encode for QuorumCertificate {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.data.encode(buf);
        self.signers.encode(buf);
    }
}

impl Decode for QuorumCertificate {
    fn decode(buf: &mut &[u8]) -> Result<Self, DecodeError> {
        let data = VoteData::decode(buf)?;
        let signers = SignerSet::decode(buf)?;
        Ok(Self::new(data, signers))
    }
}

impl fmt::Debug for QuorumCertificate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "QC({} r={} by {:?})",
            self.block_id().short(),
            self.round(),
            self.signers
        )
    }
}

/// Outcome of feeding one vote to a [`VoteTracker`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VoteOutcome {
    /// The vote was counted; the block now has this many votes.
    Counted(usize),
    /// The vote was counted and completed the classic quorum: the block is
    /// now certified. Emitted at most once per block.
    Certified(QuorumCertificate),
    /// This replica already voted for this block — ignored.
    Duplicate,
    /// The signature did not verify — ignored.
    BadSignature,
    /// The author already voted for a *different* block in the same round;
    /// the vote is ignored and the author recorded as an equivocator.
    Equivocation,
}

/// Aggregates strong-votes into quorum certificates.
///
/// # Examples
///
/// ```
/// use sft_core::{ProtocolConfig, VoteOutcome, VoteTracker};
/// use sft_crypto::{HashValue, KeyRegistry};
/// use sft_types::{EndorseInfo, Round, StrongVote, VoteData};
///
/// let cfg = ProtocolConfig::for_replicas(4);
/// let registry = KeyRegistry::deterministic(4);
/// let mut tracker = VoteTracker::new(cfg, registry.clone());
/// let data = VoteData::new(HashValue::of(b"B1"), Round::new(1), HashValue::of(b"G"), Round::ZERO);
/// for i in 0..2 {
///     let vote = StrongVote::new(data, EndorseInfo::None, &registry.key_pair(i).unwrap());
///     assert!(matches!(tracker.add_vote(&vote), VoteOutcome::Counted(_)));
/// }
/// let vote = StrongVote::new(data, EndorseInfo::None, &registry.key_pair(2).unwrap());
/// assert!(matches!(tracker.add_vote(&vote), VoteOutcome::Certified(_)));
/// ```
#[derive(Clone, Debug)]
pub struct VoteTracker {
    config: ProtocolConfig,
    registry: KeyRegistry,
    policy: VerifyPolicy,
    /// Votes aggregated per block id. The signer set is behind an `Arc` so
    /// certification hands the set to the [`QuorumCertificate`] by sharing;
    /// `Arc::make_mut` keeps later inserts copy-free until (at most once) a
    /// vote arrives after certification.
    by_block: HashMap<HashValue, (VoteData, Arc<SignerSet>)>,
    /// Blocks that already produced a certificate (emit-once).
    certified: HashSet<HashValue>,
    /// First block each replica voted for in each round, for equivocation
    /// detection.
    first_vote: HashMap<(Round, ReplicaId), HashValue>,
    /// Replicas caught voting for two blocks in one round.
    equivocators: Vec<ReplicaId>,
    /// Under [`VerifyPolicy::OnQuorum`]: every counted vote, keyed by
    /// (block, author), with its deferred-verification state. Unused (and
    /// empty) under [`VerifyPolicy::OnArrival`].
    stored: HashMap<(HashValue, ReplicaId), StoredVote>,
    /// Votes accepted *and verified* since the last
    /// [`take_newly_verified`](Self::take_newly_verified) call — the feed
    /// the endorsement tracker consumes, so endorsements are only ever
    /// credited to signatures that actually checked out.
    newly_verified: Vec<StrongVote>,
    stats: SigStats,
    /// Claimed authors of signatures a batch check rejected.
    forged: Vec<ReplicaId>,
}

/// A counted vote held until (and after) its signature is checked.
#[derive(Clone, Debug)]
struct StoredVote {
    vote: StrongVote,
    verified: bool,
}

impl VoteTracker {
    /// Creates a tracker for the given configuration and PKI, verifying
    /// signatures on arrival.
    pub fn new(config: ProtocolConfig, registry: KeyRegistry) -> Self {
        Self {
            config,
            registry,
            policy: VerifyPolicy::OnArrival,
            by_block: HashMap::new(),
            certified: HashSet::new(),
            first_vote: HashMap::new(),
            equivocators: Vec::new(),
            stored: HashMap::new(),
            newly_verified: Vec::new(),
            stats: SigStats::default(),
            forged: Vec::new(),
        }
    }

    /// Selects when this tracker checks signatures (see
    /// [`VerifyPolicy`]).
    pub fn with_policy(mut self, policy: VerifyPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// The verification policy in effect.
    pub fn policy(&self) -> VerifyPolicy {
        self.policy
    }

    /// Signature-verification work counters for this tracker.
    pub fn sig_stats(&self) -> SigStats {
        self.stats
    }

    /// Claimed authors of signatures a batch check rejected — the output
    /// of the bisection over a bad batch.
    pub fn forged_signers(&self) -> &[ReplicaId] {
        &self.forged
    }

    /// Drains the votes accepted *and signature-verified* since the last
    /// call, in acceptance order (batch survivors surface in signer-index
    /// order when their quorum's check runs). Endorsement recording feeds
    /// from this instead of from raw arrivals, so deferred verification
    /// can never credit an endorsement to an unchecked signature.
    pub fn take_newly_verified(&mut self) -> Vec<StrongVote> {
        std::mem::take(&mut self.newly_verified)
    }

    /// Counts one vote, verifying per [`VerifyPolicy`]. See
    /// [`VoteOutcome`] for the cases.
    pub fn add_vote(&mut self, vote: &StrongVote) -> VoteOutcome {
        match self.policy {
            VerifyPolicy::OnArrival => self.add_on_arrival(vote),
            VerifyPolicy::OnQuorum => self.add_on_quorum(vote),
        }
    }

    fn verify_one(&mut self, vote: &StrongVote) -> bool {
        self.stats.count_verify();
        vote.verify(&self.registry)
    }

    fn add_on_arrival(&mut self, vote: &StrongVote) -> VoteOutcome {
        if !self.verify_one(vote) {
            return VoteOutcome::BadSignature;
        }
        let block_id = vote.data().block_id();
        let author = vote.author();

        match self.first_vote.entry((vote.round(), author)) {
            std::collections::hash_map::Entry::Occupied(e) if *e.get() != block_id => {
                if !self.equivocators.contains(&author) {
                    self.equivocators.push(author);
                }
                return VoteOutcome::Equivocation;
            }
            std::collections::hash_map::Entry::Occupied(_) => {}
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(block_id);
            }
        }

        let n = self.config.n();
        let (_, signers) = self
            .by_block
            .entry(block_id)
            .or_insert_with(|| (*vote.data(), Arc::new(SignerSet::new(n))));
        if !Arc::make_mut(signers).insert(author) {
            return VoteOutcome::Duplicate;
        }
        let count = signers.len();
        self.newly_verified.push(vote.clone());
        if count >= self.config.quorum() && self.certified.insert(block_id) {
            let (data, signers) = &self.by_block[&block_id];
            return VoteOutcome::Certified(QuorumCertificate::new(*data, Arc::clone(signers)));
        }
        VoteOutcome::Counted(count)
    }

    fn add_on_quorum(&mut self, vote: &StrongVote) -> VoteOutcome {
        let block_id = vote.data().block_id();
        let author = vote.author();
        if let Some(&first_block) = self.first_vote.get(&(vote.round(), author)) {
            if first_block == block_id {
                return self.settle_same_block(vote);
            }
            // Conflicting blocks under one author in one round. Settle the
            // stored first vote's signature before judging: a forger must
            // not be able to frame an honest replica as an equivocator,
            // nor keep a forged first vote counted.
            let stored_state = self
                .stored
                .get(&(first_block, author))
                .map(|s| (s.vote.clone(), s.verified));
            if let Some((stored_vote, verified)) = stored_state {
                if verified || self.verify_one(&stored_vote) {
                    if !verified {
                        self.stored
                            .get_mut(&(first_block, author))
                            .expect("entry exists")
                            .verified = true;
                        self.newly_verified.push(stored_vote);
                    }
                    return self.settle_equivocation(vote);
                }
                // The stored first vote was forged: roll it back and treat
                // the arriving vote as the author's real first vote.
                self.rollback(first_block, author);
            } else {
                return self.settle_equivocation(vote);
            }
        }
        self.insert_fresh(vote)
    }

    /// The author re-voted for its first block: deduplicate, lazily
    /// settling signatures when the copies differ in content.
    fn settle_same_block(&mut self, vote: &StrongVote) -> VoteOutcome {
        let block_id = vote.data().block_id();
        let author = vote.author();
        let stored_state = self
            .stored
            .get(&(block_id, author))
            .map(|s| (s.vote.clone(), s.verified));
        let Some((stored_vote, verified)) = stored_state else {
            // No stored copy (defensive): treat as a plain duplicate.
            return if self.verify_one(vote) {
                VoteOutcome::Duplicate
            } else {
                VoteOutcome::BadSignature
            };
        };
        if stored_vote == *vote {
            // Byte-identical retransmission: deduplicated without ever
            // touching the signature — the common case deferral makes free.
            return VoteOutcome::Duplicate;
        }
        if verified || self.verify_one(&stored_vote) {
            if !verified {
                self.stored
                    .get_mut(&(block_id, author))
                    .expect("entry exists")
                    .verified = true;
                self.newly_verified.push(stored_vote);
            }
            return if self.verify_one(vote) {
                VoteOutcome::Duplicate
            } else {
                VoteOutcome::BadSignature
            };
        }
        // The stored copy was forged; the arriving vote takes the slot.
        self.rollback(block_id, author);
        self.insert_fresh(vote)
    }

    /// The arriving vote conflicts with a *valid* first vote: verify it,
    /// and record the author as an equivocator only on a valid signature
    /// (matching the on-arrival path — forged conflicts are not evidence).
    fn settle_equivocation(&mut self, vote: &StrongVote) -> VoteOutcome {
        if !self.verify_one(vote) {
            return VoteOutcome::BadSignature;
        }
        let author = vote.author();
        if !self.equivocators.contains(&author) {
            self.equivocators.push(author);
        }
        VoteOutcome::Equivocation
    }

    /// Counts a vote with no prior state for its (block, author) slot.
    fn insert_fresh(&mut self, vote: &StrongVote) -> VoteOutcome {
        let block_id = vote.data().block_id();
        let author = vote.author();
        let already_certified = self.certified.contains(&block_id);
        if already_certified && !self.verify_one(vote) {
            // Post-certification stragglers verify individually: they can
            // still upgrade endorsement strength, so their signatures
            // cannot wait for a batch that will never run.
            return VoteOutcome::BadSignature;
        }
        let n = self.config.n();
        let (_, signers) = self
            .by_block
            .entry(block_id)
            .or_insert_with(|| (*vote.data(), Arc::new(SignerSet::new(n))));
        if !Arc::make_mut(signers).insert(author) {
            return VoteOutcome::Duplicate;
        }
        let count = signers.len();
        self.first_vote.insert((vote.round(), author), block_id);
        self.stored.insert(
            (block_id, author),
            StoredVote {
                vote: vote.clone(),
                verified: already_certified,
            },
        );
        if already_certified {
            self.newly_verified.push(vote.clone());
            return VoteOutcome::Counted(count);
        }
        if count >= self.config.quorum() {
            if let Some(qc) = self.try_certify(block_id) {
                return VoteOutcome::Certified(qc);
            }
            if !self.stored.contains_key(&(block_id, author)) {
                // The arriving vote itself was exposed as forged by the
                // batch check it triggered.
                return VoteOutcome::BadSignature;
            }
            return VoteOutcome::Counted(self.votes_for(block_id));
        }
        VoteOutcome::Counted(count)
    }

    /// Certifies `block_id` if it (still) holds a verified quorum,
    /// batch-checking any deferred signatures first. Emits at most once.
    ///
    /// All votes of a forming QC certify the same [`VoteData`], so its
    /// digest is hashed once and shared across every signing preimage in
    /// the batch — the precompute half of the batched path.
    fn try_certify(&mut self, block_id: HashValue) -> Option<QuorumCertificate> {
        if self.certified.contains(&block_id) {
            return None;
        }
        let (data, signers) = self.by_block.get(&block_id)?;
        if signers.len() < self.config.quorum() {
            return None;
        }
        // Signer-set iteration is index-ordered, so the batch (and with
        // it every downstream count) is deterministic.
        let unverified: Vec<ReplicaId> = signers
            .iter()
            .filter(|author| !self.stored[&(block_id, *author)].verified)
            .collect();
        if !unverified.is_empty() {
            let data_digest = data.digest();
            let digests: Vec<HashValue> = unverified
                .iter()
                .map(|author| {
                    let stored = &self.stored[&(block_id, *author)];
                    vote_signing_digest_with(data_digest, stored.vote.endorse())
                })
                .collect();
            let items: Vec<BatchItem<'_>> = unverified
                .iter()
                .zip(&digests)
                .map(|(author, digest)| {
                    BatchItem::new(
                        author.as_u64(),
                        digest.as_ref(),
                        self.stored[&(block_id, *author)].vote.signature(),
                    )
                })
                .collect();
            // Pooled: shards the MAC work over the crypto worker pool
            // above a threshold, serial below it — result-identical.
            let result = self.registry.verify_batch_pooled(&items);
            drop(items);
            self.stats.count_batch(unverified.len(), result.is_err());
            let forged_indices = result.err().unwrap_or_default();
            let mut forged_iter = forged_indices.iter().peekable();
            for (index, author) in unverified.iter().enumerate() {
                if forged_iter.peek() == Some(&&index) {
                    forged_iter.next();
                    self.rollback(block_id, *author);
                } else {
                    let stored = self
                        .stored
                        .get_mut(&(block_id, *author))
                        .expect("entry exists");
                    stored.verified = true;
                    self.newly_verified.push(stored.vote.clone());
                }
            }
        }
        let (data, signers) = self.by_block.get(&block_id)?;
        if signers.len() < self.config.quorum() {
            return None;
        }
        self.certified.insert(block_id);
        Some(QuorumCertificate::new(*data, Arc::clone(signers)))
    }

    /// Removes a forged vote's traces: the signer-set count, the
    /// first-vote record, and the stored copy.
    fn rollback(&mut self, block_id: HashValue, author: ReplicaId) {
        if let Some((data, signers)) = self.by_block.get_mut(&block_id) {
            Arc::make_mut(signers).remove(author);
            let key = (data.block_round(), author);
            if self.first_vote.get(&key) == Some(&block_id) {
                self.first_vote.remove(&key);
            }
        }
        self.stored.remove(&(block_id, author));
        self.forged.push(author);
    }

    /// Number of verified votes currently counted for `block_id`.
    pub fn votes_for(&self, block_id: HashValue) -> usize {
        self.by_block.get(&block_id).map_or(0, |(_, s)| s.len())
    }

    /// The block of `round` with the most verified votes here (ties broken
    /// by id, so the answer is deterministic). Votes are broadcast, so even
    /// a replica that never saw round `round`'s proposal usually knows the
    /// id of the block its peers certified — the lookup the catch-up path
    /// uses when a timeout message reveals a QC round this replica missed.
    pub fn leading_block_at(&self, round: Round) -> Option<HashValue> {
        self.by_block
            .iter()
            .filter(|(_, (data, _))| data.block_round() == round)
            .max_by_key(|(id, (_, signers))| (signers.len(), **id))
            .map(|(id, _)| *id)
    }

    /// True if `block_id` has reached the classic quorum.
    pub fn is_certified(&self, block_id: HashValue) -> bool {
        self.certified.contains(&block_id)
    }

    /// Replicas caught equivocating (voting for two blocks in one round).
    pub fn equivocators(&self) -> &[ReplicaId] {
        &self.equivocators
    }

    /// The PKI this tracker verifies against.
    pub fn registry(&self) -> &KeyRegistry {
        &self.registry
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sft_types::EndorseInfo;

    fn setup() -> (ProtocolConfig, KeyRegistry, VoteTracker) {
        let cfg = ProtocolConfig::for_replicas(4);
        let registry = KeyRegistry::deterministic(4);
        let tracker = VoteTracker::new(cfg, registry.clone());
        (cfg, registry, tracker)
    }

    fn data(tag: &[u8], round: u64) -> VoteData {
        VoteData::new(
            HashValue::of(tag),
            Round::new(round),
            HashValue::zero(),
            Round::ZERO,
        )
    }

    fn vote(registry: &KeyRegistry, signer: u64, d: VoteData) -> StrongVote {
        StrongVote::new(
            d,
            EndorseInfo::Marker(Round::ZERO),
            &registry.key_pair(signer).unwrap(),
        )
    }

    #[test]
    fn quorum_certifies_exactly_once() {
        let (_, registry, mut tracker) = setup();
        let d = data(b"B", 1);
        assert_eq!(
            tracker.add_vote(&vote(&registry, 0, d)),
            VoteOutcome::Counted(1)
        );
        assert_eq!(
            tracker.add_vote(&vote(&registry, 1, d)),
            VoteOutcome::Counted(2)
        );
        let outcome = tracker.add_vote(&vote(&registry, 2, d));
        let VoteOutcome::Certified(qc) = outcome else {
            panic!("expected certification, got {outcome:?}");
        };
        assert_eq!(qc.block_id(), d.block_id());
        assert_eq!(qc.signers().len(), 3);
        assert!(tracker.is_certified(d.block_id()));
        // A fourth vote still counts but does not re-certify.
        assert_eq!(
            tracker.add_vote(&vote(&registry, 3, d)),
            VoteOutcome::Counted(4)
        );
        assert_eq!(tracker.votes_for(d.block_id()), 4);
    }

    #[test]
    fn duplicates_ignored() {
        let (_, registry, mut tracker) = setup();
        let d = data(b"B", 1);
        tracker.add_vote(&vote(&registry, 0, d));
        assert_eq!(
            tracker.add_vote(&vote(&registry, 0, d)),
            VoteOutcome::Duplicate
        );
        assert_eq!(tracker.votes_for(d.block_id()), 1);
    }

    #[test]
    fn bad_signature_rejected() {
        let (_, registry, mut tracker) = setup();
        let d = data(b"B", 1);
        let honest = vote(&registry, 0, d);
        let forged = StrongVote::from_parts(
            d,
            EndorseInfo::None, // signature covered Marker(0), not None
            honest.author(),
            *honest.signature(),
        );
        assert_eq!(tracker.add_vote(&forged), VoteOutcome::BadSignature);
        assert_eq!(tracker.votes_for(d.block_id()), 0);
    }

    #[test]
    fn equivocation_detected_and_ignored() {
        let (_, registry, mut tracker) = setup();
        let a = data(b"A", 1);
        let b = data(b"B", 1);
        tracker.add_vote(&vote(&registry, 0, a));
        assert_eq!(
            tracker.add_vote(&vote(&registry, 0, b)),
            VoteOutcome::Equivocation
        );
        assert_eq!(
            tracker.votes_for(b.block_id()),
            0,
            "conflicting vote not counted"
        );
        assert_eq!(tracker.equivocators(), &[ReplicaId::new(0)]);
        // Re-equivocating does not duplicate the evidence entry.
        tracker.add_vote(&vote(&registry, 0, b));
        assert_eq!(tracker.equivocators().len(), 1);
    }

    #[test]
    fn same_author_different_rounds_is_fine() {
        let (_, registry, mut tracker) = setup();
        tracker.add_vote(&vote(&registry, 0, data(b"A", 1)));
        assert_eq!(
            tracker.add_vote(&vote(&registry, 0, data(b"B", 2))),
            VoteOutcome::Counted(1),
            "voting in a later round is not equivocation"
        );
        assert!(tracker.equivocators().is_empty());
    }

    #[test]
    fn genesis_certificate_is_well_formed_and_empty() {
        let cfg = ProtocolConfig::for_replicas(4);
        let qc = QuorumCertificate::genesis(4);
        assert_eq!(qc.round(), Round::ZERO);
        assert!(qc.signers().is_empty());
        assert!(qc.is_well_formed(&cfg));
        // A forged "round 0" QC naming a non-genesis block is rejected.
        let forged = QuorumCertificate::new(
            VoteData::new(
                HashValue::of(b"evil"),
                Round::ZERO,
                HashValue::zero(),
                Round::ZERO,
            ),
            SignerSet::new(4),
        );
        assert!(!forged.is_well_formed(&cfg));
    }

    #[test]
    fn well_formedness_requires_quorum() {
        let (cfg, registry, mut tracker) = setup();
        let d = data(b"B", 1);
        for signer in 0..3 {
            tracker.add_vote(&vote(&registry, signer, d));
        }
        let sub_quorum = QuorumCertificate::new(
            d,
            SignerSet::from_iter_with_capacity(4, [ReplicaId::new(0), ReplicaId::new(1)]),
        );
        assert!(!sub_quorum.is_well_formed(&cfg));
        let full = QuorumCertificate::new(
            d,
            SignerSet::from_iter_with_capacity(4, (0..3).map(ReplicaId::new)),
        );
        assert!(full.is_well_formed(&cfg));
    }

    #[test]
    fn codec_roundtrips_and_digest_binds() {
        let d = data(b"B", 1);
        let qc = QuorumCertificate::new(
            d,
            SignerSet::from_iter_with_capacity(4, (0..3).map(ReplicaId::new)),
        );
        let back = QuorumCertificate::from_bytes(&qc.to_bytes()).unwrap();
        assert_eq!(back, qc);
        assert_eq!(back.digest(), qc.digest());
        let other = QuorumCertificate::new(d, SignerSet::new(4));
        assert_ne!(qc.digest(), other.digest(), "digest covers the signers");
    }

    fn setup_deferred() -> (ProtocolConfig, KeyRegistry, VoteTracker) {
        let cfg = ProtocolConfig::for_replicas(4);
        let registry = KeyRegistry::deterministic(4);
        let tracker = VoteTracker::new(cfg, registry.clone()).with_policy(VerifyPolicy::OnQuorum);
        (cfg, registry, tracker)
    }

    #[test]
    fn deferred_quorum_certifies_with_one_batch_pass() {
        let (_, registry, mut tracker) = setup_deferred();
        assert_eq!(tracker.policy(), VerifyPolicy::OnQuorum);
        let d = data(b"B", 1);
        assert_eq!(
            tracker.add_vote(&vote(&registry, 0, d)),
            VoteOutcome::Counted(1)
        );
        assert_eq!(
            tracker.add_vote(&vote(&registry, 1, d)),
            VoteOutcome::Counted(2)
        );
        assert!(
            tracker.take_newly_verified().is_empty(),
            "nothing verified before quorum"
        );
        let VoteOutcome::Certified(qc) = tracker.add_vote(&vote(&registry, 2, d)) else {
            panic!("third vote certifies");
        };
        assert_eq!(qc.signers().len(), 3);
        let stats = tracker.sig_stats();
        assert_eq!(stats.verifications, 0);
        assert_eq!(stats.batch_calls, 1);
        assert_eq!(stats.batch_verified, 3);
        let verified = tracker.take_newly_verified();
        assert_eq!(verified.len(), 3, "batch survivors surface together");
        assert!(verified.iter().all(|v| v.data().block_id() == d.block_id()));
    }

    #[test]
    fn deferred_retransmission_never_verifies() {
        let (_, registry, mut tracker) = setup_deferred();
        let d = data(b"B", 1);
        let v = vote(&registry, 0, d);
        tracker.add_vote(&v);
        assert_eq!(tracker.add_vote(&v), VoteOutcome::Duplicate);
        let stats = tracker.sig_stats();
        assert_eq!(stats.verifications + stats.batch_verified, 0);
    }

    #[test]
    fn deferred_bisection_rolls_back_forged_vote() {
        let (_, registry, mut tracker) = setup_deferred();
        let d = data(b"B", 1);
        // A forged vote claiming replica 3 is counted optimistically.
        let honest = vote(&registry, 0, d);
        let forged = StrongVote::from_parts(
            d,
            EndorseInfo::Marker(Round::ZERO),
            ReplicaId::new(3),
            *honest.signature(),
        );
        assert_eq!(tracker.add_vote(&forged), VoteOutcome::Counted(1));
        assert_eq!(
            tracker.add_vote(&vote(&registry, 1, d)),
            VoteOutcome::Counted(2)
        );
        // The batch check at quorum exposes it: count rolls back, no QC.
        assert_eq!(
            tracker.add_vote(&vote(&registry, 2, d)),
            VoteOutcome::Counted(2)
        );
        assert!(!tracker.is_certified(d.block_id()));
        assert_eq!(tracker.forged_signers(), &[ReplicaId::new(3)]);
        assert_eq!(tracker.sig_stats().batch_rejects, 1);
        // Only the two valid survivors were credited.
        assert_eq!(tracker.take_newly_verified().len(), 2);
        // The real replica 3 vote is not blocked by the forgery.
        let VoteOutcome::Certified(qc) = tracker.add_vote(&vote(&registry, 3, d)) else {
            panic!("honest quorum certifies");
        };
        assert_eq!(qc.signers().len(), 3);
    }

    #[test]
    fn deferred_equivocation_still_detected() {
        let (_, registry, mut tracker) = setup_deferred();
        let a = data(b"A", 1);
        let b = data(b"B", 1);
        tracker.add_vote(&vote(&registry, 0, a));
        assert_eq!(
            tracker.add_vote(&vote(&registry, 0, b)),
            VoteOutcome::Equivocation
        );
        assert_eq!(tracker.equivocators(), &[ReplicaId::new(0)]);
        // Settling the conflict verified the stored first vote: it now
        // counts as verified and feeds the endorsement tracker.
        let verified = tracker.take_newly_verified();
        assert_eq!(verified.len(), 1);
        assert_eq!(verified[0].data().block_id(), a.block_id());
    }

    #[test]
    fn deferred_forged_conflict_does_not_frame_the_author() {
        let (_, registry, mut tracker) = setup_deferred();
        let a = data(b"A", 1);
        let b = data(b"B", 1);
        // A forged vote squats on replica 0's round-1 slot for block A.
        let honest_b = vote(&registry, 0, b);
        let forged = StrongVote::from_parts(
            a,
            EndorseInfo::Marker(Round::ZERO),
            ReplicaId::new(0),
            *honest_b.signature(),
        );
        assert_eq!(tracker.add_vote(&forged), VoteOutcome::Counted(1));
        // The author's real vote evicts the forgery instead of branding
        // the author an equivocator.
        assert_eq!(tracker.add_vote(&honest_b), VoteOutcome::Counted(1));
        assert!(tracker.equivocators().is_empty());
        assert_eq!(tracker.votes_for(a.block_id()), 0);
        assert_eq!(tracker.votes_for(b.block_id()), 1);
        assert_eq!(tracker.forged_signers(), &[ReplicaId::new(0)]);
    }

    #[test]
    fn deferred_straggler_verifies_individually_after_qc() {
        let (_, registry, mut tracker) = setup_deferred();
        let d = data(b"B", 1);
        for signer in 0..3 {
            tracker.add_vote(&vote(&registry, signer, d));
        }
        assert!(tracker.is_certified(d.block_id()));
        tracker.take_newly_verified();
        assert_eq!(
            tracker.add_vote(&vote(&registry, 3, d)),
            VoteOutcome::Counted(4)
        );
        assert_eq!(tracker.sig_stats().verifications, 1);
        assert_eq!(tracker.take_newly_verified().len(), 1);
        // A forged straggler is rejected on the spot.
        let honest = vote(&registry, 2, d);
        let forged =
            StrongVote::from_parts(d, EndorseInfo::None, ReplicaId::new(2), *honest.signature());
        assert_eq!(tracker.add_vote(&forged), VoteOutcome::BadSignature);
    }

    #[test]
    fn competing_blocks_tracked_independently() {
        let (_, registry, mut tracker) = setup();
        let a = data(b"A", 1);
        let b = data(b"B", 1);
        tracker.add_vote(&vote(&registry, 0, a));
        tracker.add_vote(&vote(&registry, 1, b));
        assert_eq!(tracker.votes_for(a.block_id()), 1);
        assert_eq!(tracker.votes_for(b.block_id()), 1);
    }
}
