//! The protocol-agnostic replica engine interface.
//!
//! A [`ReplicaEngine`] is a consensus replica viewed from its transport: it
//! ingests opaque envelope payloads, asks for wake-ups via deadlines, and
//! answers everything a harness needs to report on a run. Both protocol
//! families implement it (`sft-streamlet`'s `StreamletEngine` and
//! `sft-fbft`'s `FbftEngine`), which is what lets one generic run loop
//! drive either protocol over any transport — the deterministic simulator
//! or real sockets — without knowing a single message type.
//!
//! The shape mirrors the transport-oblivious replica of FeBFT and the
//! RECIPE argument: replication logic should not know how bytes move.
//! Everything an engine does is expressed as:
//!
//! - **inputs**: [`ReplicaEngine::on_envelope`] (a delivered payload),
//!   [`ReplicaEngine::on_tick`] (a due deadline), and
//!   [`ReplicaEngine::poll_sync`] (a periodic block-sync drain);
//! - **outputs**: an [`EngineStep`] of [`OutboundMsg`]s to route plus the
//!   commit-log entries the step produced.
//!
//! Outbound messages carry a [`MsgKind`] tag so a harness can apply
//! *behavioral* policy (a vote-withholding fault drops `Vote`s, a stalled
//! leader drops `Proposal`s) without decoding protocol bytes.

use std::sync::Arc;

use sft_crypto::{HashValue, SigStats};
use sft_types::{
    ClientAck, ClientRequest, PersistSeq, ReplicaId, Round, SimTime, StrongCommitUpdate,
};

use crate::wal::WalRecord;
use crate::{BlockStore, SyncStats};

/// What kind of protocol message an outbound payload encodes. The tag is
/// harness-facing metadata only — it never goes on the wire (the payload
/// bytes carry their own discriminant) — and exists so transport-level
/// policy can act on message class without protocol knowledge.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MsgKind {
    /// A leader's block proposal.
    Proposal,
    /// A replica's (strong-)vote.
    Vote,
    /// A round-timeout declaration (SFT-DiemBFT only).
    Timeout,
    /// A point-to-point block-sync fetch.
    SyncRequest,
    /// The chain segment answering a sync request.
    SyncResponse,
}

/// Where an outbound message goes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Route {
    /// To every replica (the sender hears itself without transport delay).
    Broadcast,
    /// To exactly one peer.
    To(ReplicaId),
}

/// One message an engine wants sent: routing, kind tag, and the encoded
/// bytes (shared, so broadcasts encode once).
#[derive(Clone, Debug)]
pub struct OutboundMsg {
    /// Broadcast or point-to-point.
    pub route: Route,
    /// Message class, for harness-level behavioral policy.
    pub kind: MsgKind,
    /// The encoded wire payload.
    pub bytes: Arc<[u8]>,
}

impl OutboundMsg {
    /// A broadcast of `bytes` tagged `kind`.
    pub fn broadcast(kind: MsgKind, bytes: impl Into<Arc<[u8]>>) -> Self {
        Self {
            route: Route::Broadcast,
            kind,
            bytes: bytes.into(),
        }
    }

    /// A point-to-point send of `bytes` tagged `kind`.
    pub fn to(peer: ReplicaId, kind: MsgKind, bytes: impl Into<Arc<[u8]>>) -> Self {
        Self {
            route: Route::To(peer),
            kind,
            bytes: bytes.into(),
        }
    }
}

/// Everything one engine input produced: messages to route and commit-log
/// entries for the run's timeline. Ordering matters — the harness sends
/// `outbound` in order, which keeps runs deterministic.
#[derive(Clone, Debug, Default)]
pub struct EngineStep {
    /// Messages to send, in send order.
    pub outbound: Vec<OutboundMsg>,
    /// Commit-log entries this step produced (standard commits and
    /// strength increases), in occurrence order.
    pub updates: Vec<StrongCommitUpdate>,
    /// Durable consensus events this step produced, in occurrence order.
    /// A crash-safe harness appends these to the replica's write-ahead
    /// log *before* routing `outbound` — the write-ahead discipline that
    /// makes a restarted replica honor its pre-crash votes.
    pub persist: Vec<WalRecord>,
    /// Set by a pipelined harness after appending `persist` to a
    /// group-commit WAL: the persist sequence of the step's *last*
    /// record. `outbound` may hit the wire only once the durability
    /// watermark covers this sequence (persist-before-send, gated at the
    /// transport instead of fsynced inline). `None` means nothing to
    /// gate on — either the step persisted nothing or the harness runs
    /// write-through.
    pub persist_seq: Option<PersistSeq>,
}

impl EngineStep {
    /// A step that produced nothing.
    pub fn empty() -> Self {
        Self::default()
    }

    /// True if the step produced no messages, commit entries, or durable
    /// events.
    pub fn is_empty(&self) -> bool {
        self.outbound.is_empty() && self.updates.is_empty() && self.persist.is_empty()
    }
}

/// A consensus replica as its transport sees it: opaque payloads in,
/// [`EngineStep`]s out, plus the deadline and reporting surface a run
/// harness needs. See the [module docs](self) for the contract.
pub trait ReplicaEngine {
    /// This replica's id.
    fn id(&self) -> ReplicaId;

    /// Ingests one delivered payload at `now`. Undecodable bytes are
    /// ignored (a transport can carry garbage; the codec's rejection is
    /// property-tested separately) and return an empty step.
    fn on_envelope(&mut self, from: ReplicaId, payload: &[u8], now: SimTime) -> EngineStep;

    /// The next instant this engine needs a wake-up — a pacemaker
    /// deadline, an epoch-clock tick — or `None` if it never will.
    fn next_deadline(&self) -> Option<SimTime>;

    /// Fires every internal timer due at `now` (timeout broadcasts, epoch
    /// openings). Must advance [`next_deadline`](Self::next_deadline) past
    /// `now`, or the run loop could not make progress.
    fn on_tick(&mut self, now: SimTime) -> EngineStep;

    /// Drains block-sync fetches due at `now` (new targets and expired
    /// retries) as point-to-point requests. Engines that surface sync
    /// requests through their event steps instead return nothing here.
    fn poll_sync(&mut self, now: SimTime) -> EngineStep {
        let _ = now;
        EngineStep::empty()
    }

    /// Submits one client transaction at `now` — the public ingestion API
    /// every harness and transport feeds (the driver-side mempool pre-feed
    /// this replaces is gone).
    ///
    /// Returns `None` when the transaction was admitted (the strength-graded
    /// [`ClientAck::Committed`] arrives later via
    /// [`drain_acks`](Self::drain_acks)), or an immediate
    /// [`ClientAck::Busy`] / [`ClientAck::Duplicate`] rejection. The default
    /// is an engine without a mempool: every submission bounces `Busy`.
    fn submit(&mut self, req: &ClientRequest, now: SimTime) -> Option<ClientAck> {
        let _ = now;
        Some(ClientAck::Busy {
            txn_id: req.txn_id(),
        })
    }

    /// Takes the strength-graded commit acks emitted since the last drain:
    /// one [`ClientAck::Committed`] per admitted submission, fired the
    /// moment its block's strong-commit level reached the requested
    /// `ack_at`. Engines without client ingestion emit none.
    fn drain_acks(&mut self) -> Vec<ClientAck> {
        Vec::new()
    }

    /// Re-applies one recovered write-ahead-log record at restart instant
    /// `now`, before the engine's first tick. Replaying a log front to
    /// back restores vote dedup (no equivocation against the pre-crash
    /// self), the locked round and high-QC, and the committed prefix.
    /// Engines without durable state ignore the record.
    fn restore(&mut self, record: &WalRecord, now: SimTime) {
        let _ = (record, now);
    }

    /// Installs a metrics/trace recorder. Engines that record forward it
    /// to their [`EngineObs`](crate::EngineObs) and sync manager; the
    /// default keeps the free no-op recorder.
    fn set_recorder(&mut self, recorder: sft_obs::SharedRecorder) {
        let _ = recorder;
    }

    /// Total endorsement-frontier walk steps taken so far — the
    /// amortization counter behind the `walk_steps` bench field. Engines
    /// without an endorsement tracker report 0.
    fn endorsement_walk_steps(&self) -> u64 {
        0
    }

    /// Signature-verification counters accumulated by the replica's vote
    /// and timeout aggregation — the evidence behind the verify-on-quorum
    /// scaling claim (individual verifies drop from O(n²) to O(n) per
    /// certified round). Engines without signature checking report zeros.
    fn sig_stats(&self) -> SigStats {
        SigStats::default()
    }

    /// The replica's current round (Streamlet: epoch) — the progress
    /// measure self-pacing run plans stop on.
    fn round(&self) -> Round;

    /// True while the replica is still chasing missing blocks.
    fn is_syncing(&self) -> bool;

    /// The committed chain, oldest first (genesis excluded).
    fn committed_chain(&self) -> &[HashValue];

    /// The strong-commit log (§5), in occurrence order.
    fn commit_log(&self) -> &[StrongCommitUpdate];

    /// True if the replica ever observed conflicting committed chains.
    fn safety_violated(&self) -> bool;

    /// How many distinct equivocators this replica's vote tracker caught.
    fn equivocators_observed(&self) -> usize;

    /// Block-sync counters (requests sent, blocks admitted, …).
    fn sync_stats(&self) -> SyncStats;

    /// The replica's block store, for resolving committed chains into
    /// transaction counts.
    fn store(&self) -> &BlockStore;
}
