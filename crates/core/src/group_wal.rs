//! Group-commit WAL: a dedicated writer thread that batches fsyncs and
//! publishes a durability [`Watermark`].
//!
//! The write-through discipline (PR 6) makes every persisting engine
//! step pay an fsync *inline*: the consensus loop cannot touch the next
//! envelope until the disk confirms. This module splits that cost off
//! the sequencing path without weakening the persist-before-send
//! invariant:
//!
//! 1. the engine loop [`append`](DurableWal::append)s each
//!    [`WalRecord`] to an in-memory queue and gets back a monotone
//!    [`PersistSeq`] — microseconds, no disk;
//! 2. one **WAL-writer thread** drains the queue, writes every pending
//!    frame, issues a *single* fsync for the whole group, and advances
//!    the shared [`Watermark`] to the group's last sequence number;
//! 3. outbound messages justified by those records carry a
//!    [`SendGate`](sft_types::SendGate) and are held by the transport's
//!    writer until the watermark covers their sequence — the invariant
//!    becomes *watermark-before-flush*.
//!
//! Batching is adaptive with no tuning knob: the writer drains whatever
//! is queued, so an idle system fsyncs every record immediately (group
//! size 1, write-through latency) while a loaded system coalesces every
//! record that arrived during the previous fsync into one group — the
//! classic group-commit latency/throughput trade made automatically.
//!
//! ## Safety argument
//!
//! A record's sequence number is covered by the watermark only after the
//! fsync that made it durable returned, and a gated frame reaches the
//! wire only after its gate's sequence is covered. So for every message
//! an observer can ever see, the WAL records justifying it are already
//! durable — exactly the guarantee inline fsyncing gave, shifted from
//! "before `send` is called" to "before the frame leaves the process".
//! A crash between append and fsync loses only records whose messages
//! were still held back, which is indistinguishable from crashing
//! before the step ran.

use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use sft_obs::{names, SharedRecorder};
use sft_types::{PersistSeq, Watermark};

use crate::wal::{WalError, WalRecord, WalSink};

/// How a run harness talks to a durable log, write-through or
/// group-commit alike: appends hand back the record's [`PersistSeq`],
/// the [`Watermark`] says how much of the log is durable, and a
/// [`barrier`](DurableWal::barrier) waits for all of it.
pub trait DurableWal: Send {
    /// Appends one record and returns its persist sequence number
    /// (sequence numbers start at 1 and are assigned in append order).
    ///
    /// # Errors
    ///
    /// Returns [`WalError::Io`] when the sink (or the writer thread
    /// behind it) has failed.
    fn append(&mut self, record: &WalRecord) -> Result<PersistSeq, WalError>;

    /// A handle to this log's durability watermark.
    fn watermark(&self) -> Watermark;

    /// Blocks until every record appended so far is durable.
    ///
    /// # Errors
    ///
    /// Returns [`WalError::Io`] when durability can no longer be
    /// reached (the sink failed or the writer thread died).
    fn barrier(&mut self) -> Result<(), WalError>;

    /// `WalSink::sync` calls issued so far — the `wal_fsyncs` metric.
    fn fsyncs(&self) -> u64;
}

/// The baseline durability discipline: every append writes *and* fsyncs
/// inline, and the watermark advances before `append` returns — so
/// gates built from it are always already open. This is `sync_every = 1`
/// expressed through the [`DurableWal`] interface, which makes it the
/// control arm of every group-commit comparison.
pub struct WriteThroughWal<S: WalSink> {
    sink: S,
    watermark: Watermark,
    next_seq: PersistSeq,
    fsyncs: u64,
    recorder: SharedRecorder,
}

impl<S: WalSink> WriteThroughWal<S> {
    /// Wraps `sink` in write-through (fsync-per-append) mode.
    pub fn new(sink: S, recorder: SharedRecorder) -> Self {
        Self {
            sink,
            watermark: Watermark::new(),
            next_seq: 1,
            fsyncs: 0,
            recorder,
        }
    }

    /// The underlying sink (tests inspect accumulated bytes).
    pub fn sink(&self) -> &S {
        &self.sink
    }
}

impl<S: WalSink + Send> DurableWal for WriteThroughWal<S> {
    fn append(&mut self, record: &WalRecord) -> Result<PersistSeq, WalError> {
        let frame = record.to_frame();
        self.sink.append(&frame)?;
        self.sink.sync()?;
        self.fsyncs += 1;
        if self.recorder.enabled() {
            self.recorder.add(names::WAL_FSYNCS, 1);
            self.recorder.observe(names::WAL_GROUP_SIZE, 1);
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.watermark.advance(seq);
        Ok(seq)
    }

    fn watermark(&self) -> Watermark {
        self.watermark.clone()
    }

    fn barrier(&mut self) -> Result<(), WalError> {
        Ok(()) // every append already synced inline
    }

    fn fsyncs(&self) -> u64 {
        self.fsyncs
    }
}

/// One queued append: the encoded frame and its assigned sequence.
struct QueuedFrame {
    frame: Vec<u8>,
    seq: PersistSeq,
}

/// State shared between the handle and the writer thread.
struct GroupShared {
    fsyncs: AtomicU64,
    /// Set (once) when the sink fails; the writer exits after setting it
    /// and the watermark never advances past the failure.
    failed: Mutex<Option<String>>,
}

impl GroupShared {
    fn failure(&self) -> Option<WalError> {
        self.failed
            .lock()
            .expect("group wal failure slot")
            .as_ref()
            .map(|msg| WalError::Io(io::Error::other(msg.clone())))
    }
}

/// How long a barrier waits between watermark checks while also
/// watching for a writer failure.
const BARRIER_POLL: Duration = Duration::from_millis(2);

/// The group-commit WAL handle: appends enqueue, the writer thread
/// batches and fsyncs, the [`Watermark`] reports progress. See the
/// [module docs](self).
pub struct GroupCommitWal {
    /// `None` once the handle is shutting down (channel closed).
    tx: Option<Sender<QueuedFrame>>,
    watermark: Watermark,
    next_seq: PersistSeq,
    shared: Arc<GroupShared>,
    writer: Option<JoinHandle<()>>,
}

impl GroupCommitWal {
    /// Spawns the writer thread over `sink`. `wake` (if given) runs
    /// after every watermark advance — transports hook their writer
    /// notifier here so a completed fsync releases gated frames
    /// immediately instead of on the next retry tick.
    ///
    /// # Errors
    ///
    /// Returns the spawn failure, if any.
    pub fn spawn<S: WalSink + Send + 'static>(
        sink: S,
        recorder: SharedRecorder,
        wake: Option<Box<dyn Fn() + Send + Sync>>,
    ) -> io::Result<Self> {
        let (tx, rx) = mpsc::channel::<QueuedFrame>();
        let watermark = Watermark::new();
        let shared = Arc::new(GroupShared {
            fsyncs: AtomicU64::new(0),
            failed: Mutex::new(None),
        });
        let writer = std::thread::Builder::new()
            .name("sft-wal-writer".into())
            .spawn({
                let watermark = watermark.clone();
                let shared = Arc::clone(&shared);
                move || writer_loop(sink, &rx, &watermark, &shared, &recorder, wake.as_deref())
            })?;
        Ok(Self {
            tx: Some(tx),
            watermark,
            next_seq: 1,
            shared,
            writer: Some(writer),
        })
    }

    /// The highest sequence number assigned so far (0 before the first
    /// append) — what a full [`barrier`](DurableWal::barrier) waits for.
    pub fn last_seq(&self) -> PersistSeq {
        self.next_seq - 1
    }

    /// Waits for durability of everything appended, then stops and
    /// joins the writer thread. Preferred over plain drop when the
    /// caller wants the failure, if any.
    ///
    /// # Errors
    ///
    /// Returns the writer's failure if the log never became durable.
    pub fn finish(mut self) -> Result<(), WalError> {
        let result = self.barrier();
        self.tx = None; // close the channel; the writer drains and exits
        if let Some(writer) = self.writer.take() {
            let _ = writer.join();
        }
        result.and(self.shared.failure().map_or(Ok(()), Err))
    }
}

impl DurableWal for GroupCommitWal {
    fn append(&mut self, record: &WalRecord) -> Result<PersistSeq, WalError> {
        if let Some(err) = self.shared.failure() {
            return Err(err);
        }
        let seq = self.next_seq;
        let queued = QueuedFrame {
            frame: record.to_frame(),
            seq,
        };
        let tx = self.tx.as_ref().expect("append after finish");
        if tx.send(queued).is_err() {
            // The writer died between the failure check and the send.
            return Err(self
                .shared
                .failure()
                .unwrap_or_else(|| WalError::Io(io::Error::other("WAL writer exited"))));
        }
        self.next_seq += 1;
        Ok(seq)
    }

    fn watermark(&self) -> Watermark {
        self.watermark.clone()
    }

    fn barrier(&mut self) -> Result<(), WalError> {
        let target = self.last_seq();
        while !self.watermark.wait_covers_timeout(target, BARRIER_POLL) {
            if let Some(err) = self.shared.failure() {
                return Err(err);
            }
            if self.writer.as_ref().is_none_or(JoinHandle::is_finished)
                && !self.watermark.covers(target)
            {
                return Err(WalError::Io(io::Error::other(
                    "WAL writer exited before reaching the barrier",
                )));
            }
        }
        Ok(())
    }

    fn fsyncs(&self) -> u64 {
        self.shared.fsyncs.load(Ordering::Relaxed)
    }
}

impl Drop for GroupCommitWal {
    fn drop(&mut self) {
        // Closing the channel ends the writer once it drains — every
        // queued record is still written and fsynced on the way out.
        self.tx = None;
        if let Some(writer) = self.writer.take() {
            let _ = writer.join();
        }
    }
}

/// The writer thread: drain everything queued, write it, one fsync,
/// publish the watermark, repeat. Exits when the channel closes (after
/// draining) or the sink fails (after recording the failure).
fn writer_loop<S: WalSink>(
    mut sink: S,
    rx: &Receiver<QueuedFrame>,
    watermark: &Watermark,
    shared: &GroupShared,
    recorder: &SharedRecorder,
    wake: Option<&(dyn Fn() + Send + Sync)>,
) {
    while let Ok(first) = rx.recv() {
        // Adaptive batching: everything that queued up while we were
        // blocked (or fsyncing the previous group) forms one group.
        let mut group = vec![first];
        while let Ok(more) = rx.try_recv() {
            group.push(more);
        }
        let mut failure = None;
        let mut last = 0;
        for queued in &group {
            if let Err(e) = sink.append(&queued.frame) {
                failure = Some(e);
                break;
            }
            last = queued.seq;
        }
        if failure.is_none() && last > 0 {
            failure = sink.sync().err();
        }
        if let Some(e) = failure {
            *shared.failed.lock().expect("group wal failure slot") = Some(e.to_string());
            if let Some(wake) = wake {
                wake(); // waiters must re-check and observe the failure
            }
            return;
        }
        shared.fsyncs.fetch_add(1, Ordering::Relaxed);
        if recorder.enabled() {
            recorder.add(names::WAL_FSYNCS, 1);
            recorder.observe(names::WAL_GROUP_SIZE, group.len() as u64);
        }
        watermark.advance(last);
        if let Some(wake) = wake {
            wake();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wal::{scan_wal, MemSink};
    use crate::Block;

    fn record() -> WalRecord {
        WalRecord::BlockCommitted(Block::genesis())
    }

    /// A sink that shares its image so tests can watch it from outside
    /// the writer thread.
    #[derive(Clone, Default)]
    struct SharedSink {
        bytes: Arc<Mutex<Vec<u8>>>,
        syncs: Arc<AtomicU64>,
        fail_syncs_from: Option<u64>,
    }

    impl WalSink for SharedSink {
        fn append(&mut self, frame: &[u8]) -> io::Result<()> {
            self.bytes.lock().unwrap().extend_from_slice(frame);
            Ok(())
        }

        fn sync(&mut self) -> io::Result<()> {
            let done = self.syncs.fetch_add(1, Ordering::SeqCst) + 1;
            if self.fail_syncs_from.is_some_and(|k| done >= k) {
                return Err(io::Error::other("injected sync failure"));
            }
            Ok(())
        }
    }

    #[test]
    fn write_through_advances_watermark_inline() {
        let mut wal = WriteThroughWal::new(MemSink::new(), sft_obs::noop());
        let wm = wal.watermark();
        assert_eq!(wal.append(&record()).unwrap(), 1);
        assert_eq!(wal.append(&record()).unwrap(), 2);
        assert!(wm.covers(2), "write-through is durable before returning");
        assert_eq!(wal.fsyncs(), 2);
        wal.barrier().unwrap();
        assert_eq!(scan_wal(wal.sink().bytes()).unwrap().records.len(), 2);
    }

    #[test]
    fn group_commit_reaches_durability_and_preserves_order() {
        let sink = SharedSink::default();
        let bytes = Arc::clone(&sink.bytes);
        let mut wal = GroupCommitWal::spawn(sink, sft_obs::noop(), None).unwrap();
        let wm = wal.watermark();
        for expect in 1..=100u64 {
            assert_eq!(wal.append(&record()).unwrap(), expect);
        }
        wal.barrier().unwrap();
        assert!(wm.covers(100));
        let image = bytes.lock().unwrap().clone();
        assert_eq!(scan_wal(&image).unwrap().records.len(), 100);
        // Batching actually batched *or* kept up record-by-record; either
        // way it never fsynced more than once per record.
        assert!(wal.fsyncs() >= 1 && wal.fsyncs() <= 100);
        wal.finish().unwrap();
    }

    #[test]
    fn group_commit_coalesces_a_burst_into_few_fsyncs() {
        // A sync that sleeps forces appends to pile up behind it, so the
        // second group must carry more than one record.
        #[derive(Default)]
        struct SlowSink {
            syncs: u64,
            records: u64,
        }
        impl WalSink for SlowSink {
            fn append(&mut self, _frame: &[u8]) -> io::Result<()> {
                self.records += 1;
                Ok(())
            }
            fn sync(&mut self) -> io::Result<()> {
                self.syncs += 1;
                std::thread::sleep(Duration::from_millis(5));
                Ok(())
            }
        }
        let mut wal = GroupCommitWal::spawn(SlowSink::default(), sft_obs::noop(), None).unwrap();
        for _ in 0..50 {
            wal.append(&record()).unwrap();
        }
        wal.barrier().unwrap();
        assert!(
            wal.fsyncs() < 50,
            "a burst against a slow disk must coalesce; got {} fsyncs for 50 records",
            wal.fsyncs()
        );
        wal.finish().unwrap();
    }

    #[test]
    fn watermark_never_covers_an_unsynced_record() {
        let sink = SharedSink {
            fail_syncs_from: Some(2),
            ..SharedSink::default()
        };
        let mut wal = GroupCommitWal::spawn(sink, sft_obs::noop(), None).unwrap();
        let wm = wal.watermark();
        wal.append(&record()).unwrap();
        wal.barrier().unwrap(); // first sync succeeds
        assert!(wm.covers(1));
        // Everything after the failing sync must surface as an error and
        // the watermark must freeze short of the doomed records.
        let mut failed = false;
        for _ in 0..10 {
            if wal.append(&record()).is_err() || wal.barrier().is_err() {
                failed = true;
                break;
            }
        }
        assert!(failed, "a failed fsync must surface");
        assert_eq!(wm.get(), 1, "watermark froze at the durable prefix");
        assert!(wal.finish().is_err());
    }

    #[test]
    fn wake_callback_fires_on_advance() {
        let fired = Arc::new(AtomicU64::new(0));
        let wake = {
            let fired = Arc::clone(&fired);
            Box::new(move || {
                fired.fetch_add(1, Ordering::SeqCst);
            }) as Box<dyn Fn() + Send + Sync>
        };
        let mut wal = GroupCommitWal::spawn(MemSink::new(), sft_obs::noop(), Some(wake)).unwrap();
        wal.append(&record()).unwrap();
        wal.barrier().unwrap();
        assert!(fired.load(Ordering::SeqCst) >= 1);
        wal.finish().unwrap();
    }

    #[test]
    fn drop_drains_the_queue() {
        let sink = SharedSink::default();
        let bytes = Arc::clone(&sink.bytes);
        {
            let mut wal = GroupCommitWal::spawn(sink, sft_obs::noop(), None).unwrap();
            for _ in 0..20 {
                wal.append(&record()).unwrap();
            }
            // No barrier: drop must still write and sync everything.
        }
        let image = bytes.lock().unwrap().clone();
        assert_eq!(scan_wal(&image).unwrap().records.len(), 20);
    }
}
