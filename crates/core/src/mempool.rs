//! The deterministic [`Mempool`] leaders drain into block payloads.
//!
//! The paper's workload model (§4) assumes "sufficiently many transactions
//! are generated and submitted by the clients so that any leader always has
//! enough"; this module supplies the replica-side half of that: a FIFO pool
//! of client transactions with id-level deduplication, batch draining under
//! the [`BatchConfig`] caps, and lazy removal of transactions observed in
//! other leaders' blocks (so successive leaders do not re-propose what the
//! chain already carries). Everything is deterministic — iteration order is
//! submission order — so two replicas fed the same client stream drain
//! byte-identical batches.
//!
//! The [`PayloadSource`] enum is the small strategy knob the replicas
//! thread through their propose paths: drain real batches from the mempool,
//! or describe a synthetic batch (the latency experiments' mode, where only
//! the payload *size* matters).

use std::collections::{HashSet, VecDeque};

use sft_crypto::HashValue;
use sft_types::{BatchConfig, Payload, Round, Transaction};

/// Where a proposing replica gets its block payloads.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PayloadSource {
    /// Describe a `txn_count × txn_bytes` batch without materializing it
    /// (the latency experiments' workload; tagged by round so blocks stay
    /// distinct).
    Synthetic {
        /// Transactions per described batch.
        txn_count: u32,
        /// Bytes per described transaction.
        txn_bytes: u32,
    },
    /// Drain the replica's [`Mempool`] into real
    /// [`Payload::Transactions`] batches under these caps.
    Mempool(BatchConfig),
}

impl PayloadSource {
    /// The payload for a block proposed in `round`, draining `pool` in the
    /// mempool mode. An empty pool yields an empty payload — leaders keep
    /// proposing (empty blocks keep rounds and commit pipelines ticking).
    pub fn next_payload(&self, pool: &mut Mempool, round: Round) -> Payload {
        match self {
            PayloadSource::Synthetic {
                txn_count,
                txn_bytes,
            } => Payload::synthetic(*txn_count, *txn_bytes, round.as_u64()),
            PayloadSource::Mempool(batch) => pool.next_payload(*batch),
        }
    }
}

/// The verdict of one admission attempt (see [`Mempool::try_submit`]).
///
/// Every outcome is explicit so it can flow back to the submitting client
/// as a [`sft_types::ClientAck`]: `Busy` is the backpressure signal of a
/// pool at capacity, `Duplicate` the dedup signal of an id the replica
/// already holds (or already committed).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Admission {
    /// Admitted into the pool; the transaction will ride a future batch.
    Admitted,
    /// The id was already submitted, drained, or observed in a block.
    Duplicate,
    /// The pool is at its count or byte cap — retry after commits drain it.
    Busy,
}

/// A deterministic FIFO transaction pool with id-level deduplication and
/// explicit admission control.
///
/// # Examples
///
/// ```
/// use sft_core::{Admission, Mempool};
/// use sft_types::{BatchConfig, Transaction};
///
/// let mut pool = Mempool::new();
/// for seq in 0..10 {
///     assert!(pool.submit(Transaction::new(1, seq, vec![0; 16])));
/// }
/// assert_eq!(pool.len(), 10);
/// let payload = pool.next_payload(BatchConfig::with_max_txns(4));
/// assert_eq!(payload.txn_count(), 4);
/// assert_eq!(pool.len(), 6);
/// // Drained transactions are never re-admitted.
/// assert_eq!(
///     pool.try_submit(Transaction::new(1, 0, vec![0; 16])),
///     Admission::Duplicate
/// );
///
/// // A capped pool pushes back instead of growing without bound.
/// let mut small = Mempool::with_caps(1, u64::MAX);
/// assert!(small.submit(Transaction::new(2, 0, vec![])));
/// assert_eq!(
///     small.try_submit(Transaction::new(2, 1, vec![])),
///     Admission::Busy
/// );
/// ```
#[derive(Clone, Debug)]
pub struct Mempool {
    /// Submission-ordered queue. May contain transactions already removed
    /// via [`mark_included`](Self::mark_included); those are skipped lazily
    /// on drain, so removal is O(1) per transaction.
    queue: VecDeque<Transaction>,
    /// Ids currently queued and not yet drained or marked included.
    pending: HashSet<HashValue>,
    /// Ids ever drained or observed in a stored block — the dedup horizon.
    seen: HashSet<HashValue>,
    /// Encoded bytes of pending transactions (tracks `pending`, not the
    /// lazily trimmed `queue`).
    pending_bytes: u64,
    /// Admission cap on pending transaction count.
    max_pending: usize,
    /// Admission cap on pending encoded bytes.
    max_pending_bytes: u64,
}

impl Default for Mempool {
    fn default() -> Self {
        Self {
            queue: VecDeque::new(),
            pending: HashSet::new(),
            seen: HashSet::new(),
            pending_bytes: 0,
            max_pending: usize::MAX,
            max_pending_bytes: u64::MAX,
        }
    }
}

impl Mempool {
    /// Creates an empty, uncapped pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty pool that admits at most `max_pending` transactions
    /// / `max_pending_bytes` encoded bytes at a time, answering `Busy`
    /// beyond either cap until drains make room.
    pub fn with_caps(max_pending: usize, max_pending_bytes: u64) -> Self {
        Self {
            max_pending,
            max_pending_bytes,
            ..Self::default()
        }
    }

    /// Replaces the admission caps on a live pool (contents are kept; the
    /// new caps bite on the next submission).
    pub fn set_caps(&mut self, max_pending: usize, max_pending_bytes: u64) {
        self.max_pending = max_pending;
        self.max_pending_bytes = max_pending_bytes;
    }

    /// Number of transactions available for the next batches.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// True if no transactions are available.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Encoded bytes currently pending (the byte-cap accounting).
    pub fn pending_bytes(&self) -> u64 {
        self.pending_bytes
    }

    /// Attempts to admit `txn`, reporting the explicit [`Admission`]
    /// verdict: `Duplicate` for an id already pending, drained, or observed
    /// in a block; `Busy` when a cap is hit (the backpressure a client
    /// gateway surfaces to the socket); `Admitted` otherwise.
    pub fn try_submit(&mut self, txn: Transaction) -> Admission {
        let id = txn.id();
        if self.seen.contains(&id) || self.pending.contains(&id) {
            return Admission::Duplicate;
        }
        let txn_bytes = sft_types::Encode::encoded_len(&txn) as u64;
        if self.pending.len() >= self.max_pending
            || self.pending_bytes.saturating_add(txn_bytes) > self.max_pending_bytes
        {
            return Admission::Busy;
        }
        self.pending.insert(id);
        self.pending_bytes += txn_bytes;
        self.queue.push_back(txn);
        Admission::Admitted
    }

    /// Accepts `txn` unless rejected ([`try_submit`](Self::try_submit) for
    /// the reason). Returns whether the transaction was admitted.
    pub fn submit(&mut self, txn: Transaction) -> bool {
        self.try_submit(txn) == Admission::Admitted
    }

    /// Removes the ids of `txns` from the pool without draining them —
    /// called when a *stored* block carries them, so this replica's next
    /// leadership slot does not re-propose transactions the chain already
    /// holds. Ids never submitted are still recorded as seen (late client
    /// submissions of included transactions are rejected).
    pub fn mark_included<'a>(&mut self, txns: impl IntoIterator<Item = &'a Transaction>) {
        for txn in txns {
            let id = txn.id();
            if self.pending.remove(&id) {
                self.pending_bytes = self
                    .pending_bytes
                    .saturating_sub(sft_types::Encode::encoded_len(txn) as u64);
            }
            self.seen.insert(id);
        }
    }

    /// Drains the next batch under the [`BatchConfig`] caps: submission
    /// order, at most `max_txns` transactions, stopping before a
    /// transaction would push the encoded payload past `max_bytes` (the
    /// first transaction always fits, so progress is guaranteed).
    pub fn next_batch(&mut self, batch: BatchConfig) -> Vec<Transaction> {
        let mut drained = Vec::new();
        let mut bytes: u64 = 0;
        while drained.len() < batch.max_txns as usize {
            let Some(txn) = self.queue.front() else {
                break;
            };
            // Lazily drop entries removed by `mark_included`.
            if !self.pending.contains(&txn.id()) {
                self.queue.pop_front();
                continue;
            }
            let txn_bytes = sft_types::Encode::encoded_len(txn) as u64;
            if !drained.is_empty() && bytes + txn_bytes > batch.max_bytes {
                break;
            }
            bytes += txn_bytes;
            let txn = self.queue.pop_front().expect("front checked");
            let id = txn.id();
            self.pending.remove(&id);
            self.pending_bytes = self.pending_bytes.saturating_sub(txn_bytes);
            self.seen.insert(id);
            drained.push(txn);
        }
        drained
    }

    /// Drains the next batch into a [`Payload::Transactions`].
    pub fn next_payload(&mut self, batch: BatchConfig) -> Payload {
        Payload::Transactions(self.next_batch(batch))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn txn(seq: u64, bytes: usize) -> Transaction {
        Transaction::new(7, seq, vec![0xab; bytes])
    }

    #[test]
    fn fifo_order_and_dedup() {
        let mut pool = Mempool::new();
        for seq in 0..5 {
            assert!(pool.submit(txn(seq, 8)));
            assert!(!pool.submit(txn(seq, 8)), "duplicate rejected");
        }
        let batch = pool.next_batch(BatchConfig::with_max_txns(3));
        let seqs: Vec<u64> = batch.iter().map(Transaction::seq).collect();
        assert_eq!(seqs, vec![0, 1, 2], "submission order preserved");
        assert_eq!(pool.len(), 2);
        assert!(!pool.submit(txn(1, 8)), "drained ids never re-admitted");
    }

    #[test]
    fn byte_cap_limits_batches_but_first_txn_always_fits() {
        let mut pool = Mempool::new();
        for seq in 0..4 {
            pool.submit(txn(seq, 100));
        }
        let cap = BatchConfig {
            max_txns: 10,
            max_bytes: 150,
        };
        // Each txn encodes to 124 B: one fits, two exceed the cap.
        let batch = pool.next_batch(cap);
        assert_eq!(batch.len(), 1, "byte cap bites after the first");
        let batch = pool.next_batch(cap);
        assert_eq!(batch.len(), 1, "oversized head still drains alone");
        assert_eq!(pool.len(), 2);
    }

    #[test]
    fn mark_included_removes_lazily_and_blocks_resubmission() {
        let mut pool = Mempool::new();
        for seq in 0..4 {
            pool.submit(txn(seq, 8));
        }
        let in_block = [txn(0, 8), txn(2, 8)];
        pool.mark_included(in_block.iter());
        assert_eq!(pool.len(), 2);
        let batch = pool.next_batch(BatchConfig::with_max_txns(10));
        let seqs: Vec<u64> = batch.iter().map(Transaction::seq).collect();
        assert_eq!(seqs, vec![1, 3], "included txns skipped");
        assert!(!pool.submit(txn(0, 8)), "included ids stay rejected");
        // Marking an id never submitted still blocks later submission.
        pool.mark_included([txn(9, 8)].iter());
        assert!(!pool.submit(txn(9, 8)));
    }

    #[test]
    fn count_cap_answers_busy_until_a_drain_makes_room() {
        let mut pool = Mempool::with_caps(2, u64::MAX);
        assert_eq!(pool.try_submit(txn(0, 8)), Admission::Admitted);
        assert_eq!(pool.try_submit(txn(1, 8)), Admission::Admitted);
        assert_eq!(pool.try_submit(txn(2, 8)), Admission::Busy);
        // A duplicate of a pending txn reports Duplicate, not Busy.
        assert_eq!(pool.try_submit(txn(0, 8)), Admission::Duplicate);
        // Draining recovers admission capacity.
        pool.next_batch(BatchConfig::with_max_txns(1));
        assert_eq!(pool.try_submit(txn(2, 8)), Admission::Admitted);
    }

    #[test]
    fn byte_cap_answers_busy_and_accounting_tracks_drains() {
        // Each 100-byte-payload txn encodes to 124 B.
        let mut pool = Mempool::with_caps(usize::MAX, 250);
        assert_eq!(pool.try_submit(txn(0, 100)), Admission::Admitted);
        assert_eq!(pool.try_submit(txn(1, 100)), Admission::Admitted);
        assert_eq!(pool.pending_bytes(), 248);
        assert_eq!(pool.try_submit(txn(2, 100)), Admission::Busy);
        pool.next_batch(BatchConfig::with_max_txns(1));
        assert_eq!(pool.pending_bytes(), 124);
        assert_eq!(pool.try_submit(txn(2, 100)), Admission::Admitted);
    }

    #[test]
    fn mark_included_releases_byte_accounting() {
        let mut pool = Mempool::with_caps(usize::MAX, 130);
        assert_eq!(pool.try_submit(txn(0, 100)), Admission::Admitted);
        assert_eq!(pool.try_submit(txn(1, 100)), Admission::Busy);
        pool.mark_included([txn(0, 100)].iter());
        assert_eq!(pool.pending_bytes(), 0);
        assert_eq!(pool.try_submit(txn(1, 100)), Admission::Admitted);
        // Marking an id that was never pending does not underflow.
        pool.mark_included([txn(9, 100)].iter());
        assert_eq!(pool.pending_bytes(), 124);
    }

    #[test]
    fn empty_pool_yields_empty_payload() {
        let mut pool = Mempool::new();
        let payload = pool.next_payload(BatchConfig::default());
        assert!(payload.is_empty());
    }

    #[test]
    fn payload_sources_produce_the_expected_shapes() {
        let mut pool = Mempool::new();
        pool.submit(txn(0, 8));
        let synth = PayloadSource::Synthetic {
            txn_count: 100,
            txn_bytes: 64,
        };
        let p = synth.next_payload(&mut pool, Round::new(3));
        assert_eq!(p, Payload::synthetic(100, 64, 3));
        assert_eq!(pool.len(), 1, "synthetic mode leaves the pool alone");

        let drained =
            PayloadSource::Mempool(BatchConfig::default()).next_payload(&mut pool, Round::new(3));
        assert_eq!(drained.txn_count(), 1);
        assert!(pool.is_empty());
    }
}
