//! The deterministic [`Mempool`] leaders drain into block payloads.
//!
//! The paper's workload model (§4) assumes "sufficiently many transactions
//! are generated and submitted by the clients so that any leader always has
//! enough"; this module supplies the replica-side half of that: a FIFO pool
//! of client transactions with id-level deduplication, batch draining under
//! the [`BatchConfig`] caps, and lazy removal of transactions observed in
//! other leaders' blocks (so successive leaders do not re-propose what the
//! chain already carries). Everything is deterministic — iteration order is
//! submission order — so two replicas fed the same client stream drain
//! byte-identical batches.
//!
//! The [`PayloadSource`] enum is the small strategy knob the replicas
//! thread through their propose paths: drain real batches from the mempool,
//! or describe a synthetic batch (the latency experiments' mode, where only
//! the payload *size* matters).

use std::collections::{HashSet, VecDeque};

use sft_crypto::HashValue;
use sft_types::{BatchConfig, Payload, Round, Transaction};

/// Where a proposing replica gets its block payloads.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PayloadSource {
    /// Describe a `txn_count × txn_bytes` batch without materializing it
    /// (the latency experiments' workload; tagged by round so blocks stay
    /// distinct).
    Synthetic {
        /// Transactions per described batch.
        txn_count: u32,
        /// Bytes per described transaction.
        txn_bytes: u32,
    },
    /// Drain the replica's [`Mempool`] into real
    /// [`Payload::Transactions`] batches under these caps.
    Mempool(BatchConfig),
}

impl PayloadSource {
    /// The payload for a block proposed in `round`, draining `pool` in the
    /// mempool mode. An empty pool yields an empty payload — leaders keep
    /// proposing (empty blocks keep rounds and commit pipelines ticking).
    pub fn next_payload(&self, pool: &mut Mempool, round: Round) -> Payload {
        match self {
            PayloadSource::Synthetic {
                txn_count,
                txn_bytes,
            } => Payload::synthetic(*txn_count, *txn_bytes, round.as_u64()),
            PayloadSource::Mempool(batch) => pool.next_payload(*batch),
        }
    }
}

/// A deterministic FIFO transaction pool with id-level deduplication.
///
/// # Examples
///
/// ```
/// use sft_core::Mempool;
/// use sft_types::{BatchConfig, Transaction};
///
/// let mut pool = Mempool::new();
/// for seq in 0..10 {
///     assert!(pool.submit(Transaction::new(1, seq, vec![0; 16])));
/// }
/// assert_eq!(pool.len(), 10);
/// let payload = pool.next_payload(BatchConfig::with_max_txns(4));
/// assert_eq!(payload.txn_count(), 4);
/// assert_eq!(pool.len(), 6);
/// // Drained transactions are never re-admitted.
/// assert!(!pool.submit(Transaction::new(1, 0, vec![0; 16])));
/// ```
#[derive(Clone, Debug, Default)]
pub struct Mempool {
    /// Submission-ordered queue. May contain transactions already removed
    /// via [`mark_included`](Self::mark_included); those are skipped lazily
    /// on drain, so removal is O(1) per transaction.
    queue: VecDeque<Transaction>,
    /// Ids currently queued and not yet drained or marked included.
    pending: HashSet<HashValue>,
    /// Ids ever drained or observed in a stored block — the dedup horizon.
    seen: HashSet<HashValue>,
}

impl Mempool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of transactions available for the next batches.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// True if no transactions are available.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Accepts `txn` unless its id was already submitted, drained, or
    /// observed in a block. Returns whether the transaction was admitted.
    pub fn submit(&mut self, txn: Transaction) -> bool {
        let id = txn.id();
        if self.seen.contains(&id) || !self.pending.insert(id) {
            return false;
        }
        self.queue.push_back(txn);
        true
    }

    /// Removes the ids of `txns` from the pool without draining them —
    /// called when a *stored* block carries them, so this replica's next
    /// leadership slot does not re-propose transactions the chain already
    /// holds. Ids never submitted are still recorded as seen (late client
    /// submissions of included transactions are rejected).
    pub fn mark_included<'a>(&mut self, txns: impl IntoIterator<Item = &'a Transaction>) {
        for txn in txns {
            let id = txn.id();
            self.pending.remove(&id);
            self.seen.insert(id);
        }
    }

    /// Drains the next batch under the [`BatchConfig`] caps: submission
    /// order, at most `max_txns` transactions, stopping before a
    /// transaction would push the encoded payload past `max_bytes` (the
    /// first transaction always fits, so progress is guaranteed).
    pub fn next_batch(&mut self, batch: BatchConfig) -> Vec<Transaction> {
        let mut drained = Vec::new();
        let mut bytes: u64 = 0;
        while drained.len() < batch.max_txns as usize {
            let Some(txn) = self.queue.front() else {
                break;
            };
            // Lazily drop entries removed by `mark_included`.
            if !self.pending.contains(&txn.id()) {
                self.queue.pop_front();
                continue;
            }
            let txn_bytes = sft_types::Encode::encoded_len(txn) as u64;
            if !drained.is_empty() && bytes + txn_bytes > batch.max_bytes {
                break;
            }
            bytes += txn_bytes;
            let txn = self.queue.pop_front().expect("front checked");
            let id = txn.id();
            self.pending.remove(&id);
            self.seen.insert(id);
            drained.push(txn);
        }
        drained
    }

    /// Drains the next batch into a [`Payload::Transactions`].
    pub fn next_payload(&mut self, batch: BatchConfig) -> Payload {
        Payload::Transactions(self.next_batch(batch))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn txn(seq: u64, bytes: usize) -> Transaction {
        Transaction::new(7, seq, vec![0xab; bytes])
    }

    #[test]
    fn fifo_order_and_dedup() {
        let mut pool = Mempool::new();
        for seq in 0..5 {
            assert!(pool.submit(txn(seq, 8)));
            assert!(!pool.submit(txn(seq, 8)), "duplicate rejected");
        }
        let batch = pool.next_batch(BatchConfig::with_max_txns(3));
        let seqs: Vec<u64> = batch.iter().map(Transaction::seq).collect();
        assert_eq!(seqs, vec![0, 1, 2], "submission order preserved");
        assert_eq!(pool.len(), 2);
        assert!(!pool.submit(txn(1, 8)), "drained ids never re-admitted");
    }

    #[test]
    fn byte_cap_limits_batches_but_first_txn_always_fits() {
        let mut pool = Mempool::new();
        for seq in 0..4 {
            pool.submit(txn(seq, 100));
        }
        let cap = BatchConfig {
            max_txns: 10,
            max_bytes: 150,
        };
        // Each txn encodes to 124 B: one fits, two exceed the cap.
        let batch = pool.next_batch(cap);
        assert_eq!(batch.len(), 1, "byte cap bites after the first");
        let batch = pool.next_batch(cap);
        assert_eq!(batch.len(), 1, "oversized head still drains alone");
        assert_eq!(pool.len(), 2);
    }

    #[test]
    fn mark_included_removes_lazily_and_blocks_resubmission() {
        let mut pool = Mempool::new();
        for seq in 0..4 {
            pool.submit(txn(seq, 8));
        }
        let in_block = [txn(0, 8), txn(2, 8)];
        pool.mark_included(in_block.iter());
        assert_eq!(pool.len(), 2);
        let batch = pool.next_batch(BatchConfig::with_max_txns(10));
        let seqs: Vec<u64> = batch.iter().map(Transaction::seq).collect();
        assert_eq!(seqs, vec![1, 3], "included txns skipped");
        assert!(!pool.submit(txn(0, 8)), "included ids stay rejected");
        // Marking an id never submitted still blocks later submission.
        pool.mark_included([txn(9, 8)].iter());
        assert!(!pool.submit(txn(9, 8)));
    }

    #[test]
    fn empty_pool_yields_empty_payload() {
        let mut pool = Mempool::new();
        let payload = pool.next_payload(BatchConfig::default());
        assert!(payload.is_empty());
    }

    #[test]
    fn payload_sources_produce_the_expected_shapes() {
        let mut pool = Mempool::new();
        pool.submit(txn(0, 8));
        let synth = PayloadSource::Synthetic {
            txn_count: 100,
            txn_bytes: 64,
        };
        let p = synth.next_payload(&mut pool, Round::new(3));
        assert_eq!(p, Payload::synthetic(100, 64, 3));
        assert_eq!(pool.len(), 1, "synthetic mode leaves the pool alone");

        let drained =
            PayloadSource::Mempool(BatchConfig::default()).next_payload(&mut pool, Round::new(3));
        assert_eq!(drained.txn_count(), 1);
        assert!(pool.is_empty());
    }
}
