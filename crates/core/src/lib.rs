//! # sft-core
//!
//! Protocol-agnostic consensus machinery shared by the round-based
//! ([`sft-fbft`](../sft_fbft/index.html)) and height-based
//! ([`sft-streamlet`](../sft_streamlet/index.html)) protocol crates:
//!
//! - [`ProtocolConfig`] — `n`/`f` parameters and the quorum arithmetic of
//!   the two-level commit rule: classic certification at `2f + 1` votes and
//!   the strengthened `x`-strong quorum `f + x + 1` of §3.2 (Theorem 1).
//! - [`Block`] / [`BlockStore`] — the block format of §2.1 and the chain
//!   index that ancestry and endorsement walks run over.
//! - [`VoteTracker`] / [`QuorumCertificate`] — strong-vote aggregation with
//!   signature verification and equivocation detection.
//! - [`EndorsementTracker`] — per-block endorser tallies that grade each
//!   commit with the strength `x` of Definition 1 and emit
//!   [`StrongCommitUpdate`](sft_types::StrongCommitUpdate) entries for the
//!   §5 commit log.
//! - [`SyncManager`] / [`BlockResponse`] — the block-sync / catch-up
//!   subprotocol: detect certified-but-unknown blocks, fetch them in
//!   bounded verified segments, and admit nothing the certificate chain
//!   does not vouch for.
//!
//! The split mirrors the paper's own layering: *certification* (may this
//! block extend the chain?) is classic BFT and lives in [`VoteTracker`];
//! *strengthening* (how many faults does this commit survive?) is the
//! paper's contribution and lives entirely in [`EndorsementTracker`] +
//! [`ProtocolConfig::strength_of`], so protocol crates opt into it without
//! changing their certification paths.
//!
//! ## Example: the two-level rule in one view
//!
//! ```
//! use sft_core::ProtocolConfig;
//!
//! let cfg = ProtocolConfig::for_replicas(4); // f = 1
//! // Level f is the classic commit; stronger levels need more endorsers.
//! assert_eq!(cfg.quorum(), cfg.strong_quorum(cfg.f() as u64));
//! assert_eq!(cfg.strength_of(3), Some(1));
//! assert_eq!(cfg.strength_of(4), Some(2)); // the 2f ceiling
//! ```

#![deny(missing_docs)]

pub mod acks;
pub mod block;
pub mod config;
pub mod endorse;
pub mod engine;
pub mod group_wal;
pub mod ledger;
pub mod mempool;
pub mod obs;
pub mod qc;
pub mod sync;
pub mod wal;

pub use acks::AckTracker;
pub use block::{Ancestors, Block, BlockStore, BlockStoreError};
pub use config::ProtocolConfig;
pub use endorse::{honest_endorse_info, EndorsementTracker};
pub use engine::{EngineStep, MsgKind, OutboundMsg, ReplicaEngine, Route};
pub use group_wal::{DurableWal, GroupCommitWal, WriteThroughWal};
pub use ledger::CommitLedger;
pub use mempool::{Admission, Mempool, PayloadSource};
pub use obs::EngineObs;
pub use qc::{QuorumCertificate, VoteOutcome, VoteTracker};
pub use sync::{BlockResponse, SyncConfig, SyncManager, SyncStats};
pub use wal::{
    scan_wal, FileSink, FrameError, MemSink, Wal, WalError, WalRecord, WalScan, WalSink, WalStore,
    WAL_FILE_NAME,
};
