//! The per-replica write-ahead log for crash recovery.
//!
//! A replica that crashes and restarts must rejoin with its pre-crash
//! promises intact: the rounds it voted in (so it never equivocates
//! against itself), the certificates it formed or adopted (so its lock and
//! high-QC are no staler than before), and its committed prefix (so the
//! chain it reports never shrinks). This module persists exactly those
//! events as [`WalRecord`]s in an append-only log and recovers them on
//! restart.
//!
//! ## Framing
//!
//! The log reuses the [`Envelope`](sft_types::Envelope) codec discipline —
//! length-prefixed frames over the deterministic [`Encode`]/[`Decode`]
//! codec — and adds a checksum, because a disk (unlike a TCP stream) can
//! hand back a torn or bit-flipped tail after a crash:
//!
//! ```text
//! | body len: u32 BE | checksum: u64 BE | body: WalRecord encoding |
//! ```
//!
//! The checksum is the first 8 bytes of a domain-tagged hash of the body.
//! Scanning a log image distinguishes the two failure shapes a crash can
//! leave behind:
//!
//! - a **torn tail** — the final append was cut short mid-frame. This is
//!   the expected shape of a crash and is *tolerated*: the scan stops at
//!   the last complete frame and reports where the valid prefix ends, so
//!   recovery truncates the tail and continues.
//! - **corruption** — a complete frame whose checksum or body is wrong.
//!   This means the storage lied and recovery must not guess; the scan
//!   fails loudly with the offset.
//!
//! ## Durability knob
//!
//! [`Wal`] batches fsyncs: `sync_every = 1` syncs after every append (a
//! record is durable before the message it shadows is sent), larger values
//! amortize the fsync over a batch at the cost of a wider window of
//! recent records a crash may lose. Losing *recent* records is safe —
//! a lost `VoteSent` means the replica forgets a vote it made, which can
//! only make it vote the same way again, never differently — the log's
//! safety property is that it never *invents* records.

use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use sft_crypto::Hasher;
use sft_types::{
    Decode, DecodeError, Encode, SimTime, StrongVote, TimeoutCertificate, MAX_FRAME_LEN,
};

use crate::engine::ReplicaEngine;
use crate::{Block, QuorumCertificate};

/// Bytes in front of every WAL frame body: a 4-byte big-endian body length
/// followed by an 8-byte big-endian checksum of the body.
pub const WAL_HEADER_LEN: usize = 4 + 8;

/// Upper bound on a WAL frame body — the same 16 MiB bound the wire
/// envelope enforces, for the same reason: a hostile or corrupt length
/// prefix is rejected before any allocation happens.
pub const MAX_WAL_BODY_LEN: usize = MAX_FRAME_LEN;

/// The checksum of a frame body: the first 8 bytes of a domain-tagged
/// hash. Not cryptographic armor (the log is local, the threat is a torn
/// or bit-flipped write, not an adversary) — a keyed MAC would slot in
/// here if logs ever crossed a trust boundary.
fn body_checksum(body: &[u8]) -> u64 {
    let digest = Hasher::new("wal-frame").field(body).finish();
    let mut prefix = [0u8; 8];
    prefix.copy_from_slice(&digest.as_bytes()[..8]);
    u64::from_be_bytes(prefix)
}

/// One durable consensus event. The variants are exactly the promises a
/// restarted replica must keep:
///
/// - [`VoteSent`](WalRecord::VoteSent) — restores vote dedup, so the
///   replica never signs a conflicting vote for a round it already voted
///   in (the non-equivocation guarantee against its pre-crash self).
/// - [`QcFormed`](WalRecord::QcFormed) — restores the high-QC and, via
///   2-chain replay, the locked round.
/// - [`TcFormed`](WalRecord::TcFormed) — restores the pacemaker's round
///   so the replica does not propose or vote as if time rolled back.
/// - [`BlockCommitted`](WalRecord::BlockCommitted) — restores the
///   committed prefix (with the block contents, so the chain is
///   re-servable to syncing peers without refetching).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WalRecord {
    /// A strong-vote this replica signed and sent.
    VoteSent(StrongVote),
    /// A quorum certificate this replica formed or adopted.
    QcFormed(QuorumCertificate),
    /// A timeout certificate this replica formed or adopted (SFT-DiemBFT).
    TcFormed(TimeoutCertificate),
    /// A block this replica committed, in commit order.
    BlockCommitted(Block),
}

impl WalRecord {
    /// Encodes the record behind its checksummed frame header — the exact
    /// bytes one append writes.
    ///
    /// # Panics
    ///
    /// Panics if the encoded body exceeds [`MAX_WAL_BODY_LEN`] (a record
    /// that large could never be recovered, so logging it is a bug).
    pub fn to_frame(&self) -> Vec<u8> {
        let mut body = Vec::with_capacity(self.encoded_len() + WAL_HEADER_LEN);
        self.encode(&mut body);
        assert!(
            body.len() <= MAX_WAL_BODY_LEN,
            "WAL record body {}B exceeds MAX_WAL_BODY_LEN",
            body.len()
        );
        let mut frame = Vec::with_capacity(WAL_HEADER_LEN + body.len());
        frame.extend_from_slice(&(body.len() as u32).to_be_bytes());
        frame.extend_from_slice(&body_checksum(&body).to_be_bytes());
        frame.extend_from_slice(&body);
        frame
    }

    /// Attempts to decode one frame from the front of `buf`.
    ///
    /// Returns `Ok(None)` while `buf` holds only part of a frame — a torn
    /// tail, the shape a crash mid-append leaves behind — or
    /// `Ok(Some((record, consumed)))` when a complete, checksum-valid
    /// frame was decoded.
    ///
    /// # Errors
    ///
    /// Returns a [`FrameError`] when a *complete* frame is wrong: a length
    /// prefix beyond [`MAX_WAL_BODY_LEN`], a checksum mismatch, or a body
    /// that fails to decode. Unlike a short tail, these mean the storage
    /// corrupted data it claimed to hold.
    pub fn decode_frame(buf: &[u8]) -> Result<Option<(WalRecord, usize)>, FrameError> {
        if buf.len() < WAL_HEADER_LEN {
            return Ok(None);
        }
        let mut len_bytes = [0u8; 4];
        len_bytes.copy_from_slice(&buf[..4]);
        let body_len = u32::from_be_bytes(len_bytes) as usize;
        if body_len > MAX_WAL_BODY_LEN {
            return Err(FrameError::LengthOverflow(body_len as u64));
        }
        let mut sum_bytes = [0u8; 8];
        sum_bytes.copy_from_slice(&buf[4..WAL_HEADER_LEN]);
        let stored = u64::from_be_bytes(sum_bytes);
        let total = WAL_HEADER_LEN + body_len;
        if buf.len() < total {
            return Ok(None);
        }
        let body = &buf[WAL_HEADER_LEN..total];
        let computed = body_checksum(body);
        if stored != computed {
            return Err(FrameError::ChecksumMismatch { stored, computed });
        }
        let record = WalRecord::from_bytes(body).map_err(FrameError::Malformed)?;
        Ok(Some((record, total)))
    }
}

impl Encode for WalRecord {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            WalRecord::VoteSent(vote) => {
                buf.push(0);
                vote.encode(buf);
            }
            WalRecord::QcFormed(qc) => {
                buf.push(1);
                qc.encode(buf);
            }
            WalRecord::TcFormed(tc) => {
                buf.push(2);
                tc.encode(buf);
            }
            WalRecord::BlockCommitted(block) => {
                buf.push(3);
                block.encode(buf);
            }
        }
    }
}

impl Decode for WalRecord {
    fn decode(buf: &mut &[u8]) -> Result<Self, DecodeError> {
        match u8::decode(buf)? {
            0 => Ok(WalRecord::VoteSent(StrongVote::decode(buf)?)),
            1 => Ok(WalRecord::QcFormed(QuorumCertificate::decode(buf)?)),
            2 => Ok(WalRecord::TcFormed(TimeoutCertificate::decode(buf)?)),
            3 => Ok(WalRecord::BlockCommitted(Block::decode(buf)?)),
            t => Err(DecodeError::InvalidTag(t)),
        }
    }
}

/// Why a *complete* WAL frame was rejected. A short tail is never a
/// `FrameError` — see [`WalRecord::decode_frame`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// The length prefix exceeded [`MAX_WAL_BODY_LEN`].
    LengthOverflow(u64),
    /// The stored checksum does not match the body — a bit-flip or an
    /// overwrite, not a torn append.
    ChecksumMismatch {
        /// The checksum the frame header carries.
        stored: u64,
        /// The checksum the body actually hashes to.
        computed: u64,
    },
    /// The body passed its checksum but failed to decode. With a sound
    /// checksum this means a writer bug, so it is surfaced, not skipped.
    Malformed(DecodeError),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::LengthOverflow(n) => write!(f, "frame length {n} exceeds bound"),
            FrameError::ChecksumMismatch { stored, computed } => {
                write!(
                    f,
                    "checksum mismatch: stored {stored:#x}, body hashes to {computed:#x}"
                )
            }
            FrameError::Malformed(e) => write!(f, "frame body malformed: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// A write-ahead-log failure, as the durable store surfaces it.
#[derive(Debug)]
pub enum WalError {
    /// The sink or file failed.
    Io(io::Error),
    /// A complete frame at byte `offset` of the log was rejected.
    Corrupt {
        /// Byte offset of the bad frame within the log.
        offset: u64,
        /// What was wrong with it.
        error: FrameError,
    },
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "WAL I/O error: {e}"),
            WalError::Corrupt { offset, error } => {
                write!(f, "WAL corrupt at byte {offset}: {error}")
            }
        }
    }
}

impl std::error::Error for WalError {}

impl From<io::Error> for WalError {
    fn from(e: io::Error) -> Self {
        WalError::Io(e)
    }
}

/// Outcome of scanning a log image: the recovered records plus where the
/// valid prefix ends (short of the image length exactly when the final
/// append was torn).
#[derive(Clone, Debug, PartialEq)]
pub struct WalScan {
    /// Every record in the valid prefix, in append order.
    pub records: Vec<WalRecord>,
    /// Length in bytes of the valid prefix. Recovery truncates the log to
    /// this length before appending again.
    pub valid_len: usize,
}

/// Scans a log image front to back.
///
/// # Errors
///
/// Returns [`WalError::Corrupt`] if a complete frame fails its checksum or
/// decode — a torn *tail* is not an error (the scan stops before it and
/// `valid_len` marks the cut).
pub fn scan_wal(bytes: &[u8]) -> Result<WalScan, WalError> {
    let mut records = Vec::new();
    let mut offset = 0usize;
    while offset < bytes.len() {
        match WalRecord::decode_frame(&bytes[offset..]) {
            Ok(Some((record, used))) => {
                records.push(record);
                offset += used;
            }
            Ok(None) => break, // torn tail: everything before it stands
            Err(error) => {
                return Err(WalError::Corrupt {
                    offset: offset as u64,
                    error,
                })
            }
        }
    }
    Ok(WalScan {
        records,
        valid_len: offset,
    })
}

/// Where appended frames go. The file sink is the real thing; tests
/// substitute in-memory and fault-injecting doubles (the crash-point
/// suite's sink fails or truncates at the k-th append).
pub trait WalSink {
    /// Appends one complete frame.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error; the frame may have been written
    /// partially (a torn tail the next recovery truncates).
    fn append(&mut self, frame: &[u8]) -> io::Result<()>;

    /// Makes every appended frame durable.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error.
    fn sync(&mut self) -> io::Result<()>;
}

/// An in-memory sink: the log image is a `Vec<u8>`. Used by the
/// in-process crash/restart tests, which "reboot" a replica by scanning
/// the bytes this sink accumulated.
#[derive(Clone, Debug, Default)]
pub struct MemSink {
    bytes: Vec<u8>,
    syncs: u64,
}

impl MemSink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// The accumulated log image.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Consumes the sink, returning the log image.
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }

    /// How many times [`WalSink::sync`] was called — what the fsync
    /// batching tests assert on.
    pub fn syncs(&self) -> u64 {
        self.syncs
    }
}

impl WalSink for MemSink {
    fn append(&mut self, frame: &[u8]) -> io::Result<()> {
        self.bytes.extend_from_slice(frame);
        Ok(())
    }

    fn sync(&mut self) -> io::Result<()> {
        self.syncs += 1;
        Ok(())
    }
}

/// The file-backed sink: appends via buffered writes, syncs via
/// `fdatasync`.
#[derive(Debug)]
pub struct FileSink {
    file: File,
}

impl FileSink {
    /// Wraps an already-positioned file handle (the store opens it at the
    /// end of the valid prefix).
    fn new(file: File) -> Self {
        Self { file }
    }
}

impl WalSink for FileSink {
    fn append(&mut self, frame: &[u8]) -> io::Result<()> {
        self.file.write_all(frame)
    }

    fn sync(&mut self) -> io::Result<()> {
        self.file.sync_data()
    }
}

/// The append path: frames records into a [`WalSink`] with batched
/// fsyncs. `sync_every = 1` is write-through (every record durable before
/// the caller proceeds); `k > 1` amortizes one sync over `k` appends.
#[derive(Debug)]
pub struct Wal<S: WalSink> {
    sink: S,
    sync_every: u64,
    unsynced: u64,
    appended: u64,
}

impl<S: WalSink> Wal<S> {
    /// Wraps `sink`, syncing after every `sync_every` appends (clamped to
    /// at least 1).
    pub fn new(sink: S, sync_every: u64) -> Self {
        Self {
            sink,
            sync_every: sync_every.max(1),
            unsynced: 0,
            appended: 0,
        }
    }

    /// Appends one record, syncing if the batch is full.
    ///
    /// # Errors
    ///
    /// Propagates sink failures as [`WalError::Io`].
    pub fn append(&mut self, record: &WalRecord) -> Result<(), WalError> {
        let frame = record.to_frame();
        self.sink.append(&frame)?;
        self.appended += 1;
        self.unsynced += 1;
        if self.unsynced >= self.sync_every {
            self.sink.sync()?;
            self.unsynced = 0;
        }
        Ok(())
    }

    /// Forces a sync of any unsynced appends.
    ///
    /// # Errors
    ///
    /// Propagates sink failures as [`WalError::Io`].
    pub fn flush(&mut self) -> Result<(), WalError> {
        if self.unsynced > 0 {
            self.sink.sync()?;
            self.unsynced = 0;
        }
        Ok(())
    }

    /// Total records appended since construction.
    pub fn appended(&self) -> u64 {
        self.appended
    }

    /// The underlying sink.
    pub fn sink(&self) -> &S {
        &self.sink
    }

    /// Consumes the log, returning the sink.
    pub fn into_sink(self) -> S {
        self.sink
    }
}

/// File name of the log inside a node's data directory.
pub const WAL_FILE_NAME: &str = "wal.log";

/// A node's durable WAL: opens (or creates) `wal.log` inside a data
/// directory, recovers the valid prefix, truncates any torn tail, and
/// exposes the append path for the rest of the run.
///
/// The recovery contract: [`WalStore::replay_into`] feeds every recovered
/// record to the engine *before its first tick*, so the rebuilt replica
/// re-enters the protocol with its pre-crash vote dedup, lock, high-QC,
/// and committed prefix already in place.
#[derive(Debug)]
pub struct WalStore {
    path: PathBuf,
    wal: Wal<FileSink>,
    recovered: Vec<WalRecord>,
    tail_truncated: bool,
}

impl WalStore {
    /// Opens the log inside `data_dir` (creating both as needed), scans
    /// and recovers its records, and truncates a torn tail.
    ///
    /// # Errors
    ///
    /// Returns [`WalError::Io`] on filesystem failures and
    /// [`WalError::Corrupt`] if the valid prefix contains a complete frame
    /// with a bad checksum or body — corruption is never silently skipped.
    pub fn open(data_dir: &Path, sync_every: u64) -> Result<Self, WalError> {
        std::fs::create_dir_all(data_dir)?;
        let path = data_dir.join(WAL_FILE_NAME);
        let mut file = OpenOptions::new()
            .create(true)
            .truncate(false)
            .read(true)
            .write(true)
            .open(&path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        let scanned = scan_wal(&bytes)?;
        let tail_truncated = scanned.valid_len < bytes.len();
        if tail_truncated {
            file.set_len(scanned.valid_len as u64)?;
            file.sync_data()?;
        }
        file.seek(SeekFrom::Start(scanned.valid_len as u64))?;
        Ok(Self {
            path,
            wal: Wal::new(FileSink::new(file), sync_every),
            recovered: scanned.records,
            tail_truncated,
        })
    }

    /// The records recovered at open, in append order.
    pub fn recovered(&self) -> &[WalRecord] {
        &self.recovered
    }

    /// True if the open found (and cut) a torn tail — evidence the
    /// previous process died mid-append.
    pub fn tail_truncated(&self) -> bool {
        self.tail_truncated
    }

    /// Path of the log file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Replays every recovered record into `engine` (at restart instant
    /// `now`) and returns how many were applied. Call before the engine's
    /// first tick.
    pub fn replay_into<E: ReplicaEngine>(&self, engine: &mut E, now: SimTime) -> usize {
        for record in &self.recovered {
            engine.restore(record, now);
        }
        self.recovered.len()
    }

    /// Appends one record (write-ahead: call before sending the message
    /// the record shadows).
    ///
    /// # Errors
    ///
    /// Propagates [`WalError::Io`] from the file.
    pub fn append(&mut self, record: &WalRecord) -> Result<(), WalError> {
        self.wal.append(record)
    }

    /// Forces any batched appends to disk.
    ///
    /// # Errors
    ///
    /// Propagates [`WalError::Io`] from the file.
    pub fn flush(&mut self) -> Result<(), WalError> {
        self.wal.flush()
    }

    /// Records appended since open (recovered records not included).
    pub fn appended(&self) -> u64 {
        self.wal.appended()
    }

    /// Upgrades this store into a group-commit log: flushes anything
    /// unsynced, then hands the file sink to a dedicated WAL-writer
    /// thread (see [`GroupCommitWal`](crate::group_wal::GroupCommitWal)).
    /// `wake` runs after every watermark advance — hook the transport's
    /// writer notifier here so a completed fsync releases gated frames.
    ///
    /// # Errors
    ///
    /// Propagates the flush failure or the thread-spawn failure.
    pub fn into_group_commit(
        mut self,
        recorder: sft_obs::SharedRecorder,
        wake: Option<Box<dyn Fn() + Send + Sync>>,
    ) -> Result<crate::group_wal::GroupCommitWal, WalError> {
        self.flush()?;
        crate::group_wal::GroupCommitWal::spawn(self.wal.into_sink(), recorder, wake)
            .map_err(WalError::Io)
    }

    /// Downgrades this store into the write-through baseline: flushes
    /// anything unsynced, then wraps the file sink in a
    /// [`WriteThroughWal`](crate::group_wal::WriteThroughWal) — one fsync
    /// per appended record, inline on the caller's thread. This is the
    /// durability-equivalent control the group-commit pipeline is
    /// benchmarked against.
    ///
    /// # Errors
    ///
    /// Propagates the flush failure.
    pub fn into_write_through(
        mut self,
        recorder: sft_obs::SharedRecorder,
    ) -> Result<crate::group_wal::WriteThroughWal<FileSink>, WalError> {
        self.flush()?;
        Ok(crate::group_wal::WriteThroughWal::new(
            self.wal.into_sink(),
            recorder,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sft_crypto::{HashValue, KeyRegistry};
    use sft_types::{EndorseInfo, ReplicaId, Round, SignerSet, VoteData};

    fn sample_records() -> Vec<WalRecord> {
        let registry = KeyRegistry::deterministic(4);
        let kp = registry.key_pair(1).unwrap();
        let data = VoteData::new(
            HashValue::of(b"B1"),
            Round::new(1),
            HashValue::zero(),
            Round::ZERO,
        );
        vec![
            WalRecord::VoteSent(StrongVote::new(data, EndorseInfo::Marker(Round::ZERO), &kp)),
            WalRecord::QcFormed(QuorumCertificate::new(
                data,
                SignerSet::from_iter_with_capacity(4, (0..3).map(ReplicaId::new)),
            )),
            WalRecord::TcFormed(TimeoutCertificate::new(
                Round::new(2),
                Round::new(1),
                SignerSet::from_iter_with_capacity(4, (0..3).map(ReplicaId::new)),
            )),
            WalRecord::BlockCommitted(Block::genesis()),
        ]
    }

    fn image(records: &[WalRecord]) -> Vec<u8> {
        let mut bytes = Vec::new();
        for r in records {
            bytes.extend_from_slice(&r.to_frame());
        }
        bytes
    }

    #[test]
    fn records_roundtrip_through_frames() {
        for record in sample_records() {
            let frame = record.to_frame();
            let (back, used) = WalRecord::decode_frame(&frame).unwrap().unwrap();
            assert_eq!(used, frame.len());
            assert_eq!(back, record);
        }
    }

    #[test]
    fn scan_recovers_append_order() {
        let records = sample_records();
        let bytes = image(&records);
        let scanned = scan_wal(&bytes).unwrap();
        assert_eq!(scanned.records, records);
        assert_eq!(scanned.valid_len, bytes.len());
    }

    #[test]
    fn torn_tail_is_tolerated_not_fatal() {
        let records = sample_records();
        let bytes = image(&records);
        let whole = image(&records[..3]).len();
        // Cut anywhere inside the final frame: prefix recovers, cut marked.
        for cut in whole..bytes.len() - 1 {
            let scanned = scan_wal(&bytes[..cut]).expect("torn tail is not corruption");
            assert_eq!(scanned.records, records[..3], "cut at {cut}");
            assert_eq!(scanned.valid_len, whole, "cut at {cut}");
        }
    }

    #[test]
    fn bit_flip_in_body_is_corruption() {
        let records = sample_records();
        let mut bytes = image(&records);
        let flip_at = WAL_HEADER_LEN + 3; // inside the first body
        bytes[flip_at] ^= 0x40;
        let err = scan_wal(&bytes).unwrap_err();
        let WalError::Corrupt { offset, error } = err else {
            panic!("expected corruption");
        };
        assert_eq!(offset, 0);
        assert!(matches!(error, FrameError::ChecksumMismatch { .. }));
    }

    #[test]
    fn hostile_length_prefix_rejected_before_allocation() {
        let mut bytes = u32::MAX.to_be_bytes().to_vec();
        bytes.extend_from_slice(&[0u8; 8]);
        let err = scan_wal(&bytes).unwrap_err();
        assert!(matches!(
            err,
            WalError::Corrupt {
                error: FrameError::LengthOverflow(_),
                ..
            }
        ));
    }

    #[test]
    fn sync_batching_counts_syncs() {
        let mut wal = Wal::new(MemSink::new(), 3);
        let records = sample_records();
        for r in &records {
            wal.append(r).unwrap();
        }
        assert_eq!(wal.appended(), 4);
        assert_eq!(wal.sink().syncs(), 1, "one full batch of 3");
        wal.flush().unwrap();
        assert_eq!(wal.sink().syncs(), 2, "flush covers the partial batch");
        wal.flush().unwrap();
        assert_eq!(wal.sink().syncs(), 2, "flush with nothing unsynced is free");
    }

    #[test]
    fn write_through_syncs_every_append() {
        let mut wal = Wal::new(MemSink::new(), 1);
        for r in &sample_records() {
            wal.append(r).unwrap();
        }
        assert_eq!(wal.sink().syncs(), 4);
    }

    #[test]
    fn store_recovers_and_truncates_torn_tail() {
        let dir = std::env::temp_dir().join(format!("sft-wal-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let records = sample_records();
        {
            let mut store = WalStore::open(&dir, 1).unwrap();
            assert!(store.recovered().is_empty());
            for r in &records {
                store.append(r).unwrap();
            }
        }
        // Simulate a crash mid-append: chop bytes off the file tail.
        let path = dir.join(WAL_FILE_NAME);
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 5]).unwrap();
        {
            let store = WalStore::open(&dir, 1).unwrap();
            assert_eq!(store.recovered(), &records[..3]);
            assert!(store.tail_truncated());
        }
        // The truncation is durable: a third open sees a clean log.
        let store = WalStore::open(&dir, 1).unwrap();
        assert_eq!(store.recovered(), &records[..3]);
        assert!(!store.tail_truncated());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bad_record_tag_is_malformed() {
        let body = [9u8; 4];
        let mut frame = (body.len() as u32).to_be_bytes().to_vec();
        frame.extend_from_slice(&body_checksum(&body).to_be_bytes());
        frame.extend_from_slice(&body);
        let err = WalRecord::decode_frame(&frame).unwrap_err();
        assert!(matches!(
            err,
            FrameError::Malformed(DecodeError::InvalidTag(9))
        ));
    }
}
