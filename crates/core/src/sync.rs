//! Block sync / catch-up: the subprotocol that recovers
//! certified-but-unknown blocks.
//!
//! Under partial synchrony a replica can learn that a block *exists* — a
//! quorum certificate arrives inside a proposal, or its own vote tracker
//! certifies a block it never received (votes are broadcast, proposals can
//! be lost) — without ever holding the block. Without a fetch path such a
//! replica falls behind forever: it cannot extend, vote on, or finalize a
//! chain it cannot resolve. DiemBFT and production BFT systems (FeBFT's
//! `SyncManager` among them) treat state transfer as a first-class
//! subprotocol; this module is that subprotocol for both SFT replicas.
//!
//! ## Protocol
//!
//! 1. **Detect** — [`SyncManager::note_certificate`] records every
//!    well-formed QC; a certified block absent from the local store becomes
//!    a *missing target*. [`SyncManager::note_orphan_block`] pools verified
//!    blocks whose parents are unknown (an orphaned proposal, or a fetched
//!    segment that did not reach locally-known ground) and registers the
//!    missing parent as a chained target.
//! 2. **Request** — [`SyncManager::take_requests`] issues bounded
//!    [`BlockRequest`]s, deduplicating in-flight targets, rotating
//!    deterministically over the certificate's signers (they voted, so they
//!    held the block), and retrying on a timeout so lost requests or
//!    responses heal themselves.
//! 3. **Serve** — [`SyncManager::serve`] answers from the local store with
//!    a [`BlockResponse`]: the chain segment ending at the target plus the
//!    target's quorum certificate.
//! 4. **Verify & admit** — [`SyncManager::on_response`] admits nothing
//!    that does not verify against the certificate chain: the segment must
//!    end at a target this replica asked for, carry a well-formed QC naming
//!    exactly that block, and hash-link internally. Block ids are
//!    recomputed on decode, so a Byzantine responder cannot substitute any
//!    segment other than the real ancestor chain of the certified block.
//!
//! ## Trust model
//!
//! Certificates are validated *structurally* (signer count against the
//! quorum), matching how this workspace treats the QC shipped inside
//! every [`FbftProposal`](../sft_fbft/struct.FbftProposal.html): within
//! the simulator's threat model the aggregator that formed a certificate
//! verified every vote signature, and certificates are not independently
//! re-authenticated by receivers. Block *content* is still unforgeable
//! here (the hash chain pins it), but certification *status* carried by a
//! response is trusted the same way it is trusted from a rotating
//! proposal leader. A transferable authenticated certificate (threshold
//! or multi-signature over the vote data) closes that gap and slots into
//! [`QuorumCertificate`] when the real networking layer lands.

use std::collections::{BTreeMap, HashMap, VecDeque};

use sft_crypto::HashValue;
use sft_types::codec::{Decode, DecodeError, Encode};
use sft_types::{BlockRequest, ReplicaId, Round, SimDuration, SimTime};

use crate::{Block, BlockStore, ProtocolConfig, QuorumCertificate};

/// A responder's answer to a [`BlockRequest`]: a chain segment (oldest
/// first) ending at the requested block, plus the quorum certificate for
/// that block — the anchor the whole segment is verified against.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BlockResponse {
    qc: QuorumCertificate,
    blocks: Vec<Block>,
}

impl BlockResponse {
    /// Assembles a response. The last block must be the one `qc`
    /// certifies for the response to ever be admitted.
    pub fn new(qc: QuorumCertificate, blocks: Vec<Block>) -> Self {
        Self { qc, blocks }
    }

    /// The certificate for the segment's last block.
    pub fn qc(&self) -> &QuorumCertificate {
        &self.qc
    }

    /// The chain segment, oldest block first.
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// The certified block this response resolves.
    pub fn target(&self) -> HashValue {
        self.qc.block_id()
    }
}

impl Encode for BlockResponse {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.qc.encode(buf);
        self.blocks.encode(buf);
    }
}

impl Decode for BlockResponse {
    fn decode(buf: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(Self {
            qc: QuorumCertificate::decode(buf)?,
            blocks: Vec::<Block>::decode(buf)?,
        })
    }
}

/// Tuning knobs for a [`SyncManager`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SyncConfig {
    /// Most blocks one request may ask for (and one response may carry).
    pub max_blocks_per_request: u32,
    /// Most distinct targets requested concurrently.
    pub max_inflight: usize,
    /// How long to wait for a response before re-requesting from the next
    /// peer — the knob that makes sync self-healing under message loss.
    pub retry_after: SimDuration,
}

impl Default for SyncConfig {
    fn default() -> Self {
        Self {
            max_blocks_per_request: 64,
            max_inflight: 4,
            retry_after: SimDuration::from_millis(800),
        }
    }
}

/// Counters a [`SyncManager`] keeps, reported per run by the simulator
/// and tolerance-banded by the perf gate.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SyncStats {
    /// Requests issued (retries included).
    pub requests_sent: u64,
    /// Responses served to peers.
    pub responses_served: u64,
    /// Blocks admitted into the store via sync.
    pub blocks_admitted: u64,
    /// Responses rejected by verification.
    pub responses_rejected: u64,
}

#[derive(Clone, Copy, Debug)]
struct InFlight {
    sent_at: SimTime,
}

/// What a fetch target is missing: the block itself, or only its
/// certificate (the block is already held — a *certificate want*). A
/// certificate-want request is bounded to one block, so re-converging a
/// diverged notarized set never re-ships chain segments the requester
/// already has.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum FetchKind {
    Blocks,
    Certificate,
}

/// Upper bound on pooled orphan blocks; a Byzantine flood cannot grow the
/// pool past it because responses that would are rejected whole.
const MAX_ORPHANS: usize = 4096;

/// Requests per target before the target is abandoned. Certified targets
/// genuinely exist somewhere, so the cap is generous — it only exists so a
/// want for a certificate no peer holds cannot retry forever.
const MAX_FETCH_ATTEMPTS: u32 = 32;

/// Detects certified-but-unknown blocks, issues bounded fetches, verifies
/// responses against the certificate chain, and admits recovered blocks
/// parent-first. One per replica; protocol-agnostic (both the round-based
/// and the height-based replica embed one).
///
/// # Examples
///
/// ```
/// use sft_core::{Block, BlockStore, ProtocolConfig, QuorumCertificate, SyncManager};
/// use sft_types::{Payload, ReplicaId, Round, SignerSet, SimTime};
///
/// let cfg = ProtocolConfig::for_replicas(4);
/// // A full store (the responder) and an empty one (the catcher-upper).
/// let mut full = BlockStore::new();
/// let b1 = Block::new(full.genesis(), Round::new(1), ReplicaId::new(1), Payload::empty());
/// full.insert(b1.clone()).unwrap();
/// let qc = QuorumCertificate::new(
///     b1.vote_data(),
///     SignerSet::from_iter_with_capacity(4, (0..3).map(ReplicaId::new)),
/// );
///
/// let mut behind = BlockStore::new();
/// let mut sync = SyncManager::new(cfg, ReplicaId::new(0));
/// sync.note_certificate(&qc, &behind);
/// let requests = sync.take_requests(SimTime::ZERO);
/// assert_eq!(requests.len(), 1);
///
/// let mut server = SyncManager::new(cfg, ReplicaId::new(1));
/// server.note_certificate(&qc, &full);
/// let response = server.serve(&requests[0].1, &full).unwrap();
/// let admitted = sync.on_response(&response, &mut behind);
/// assert_eq!(admitted, vec![b1.id()]);
/// assert!(behind.contains(b1.id()));
/// ```
#[derive(Clone, Debug)]
pub struct SyncManager {
    config: ProtocolConfig,
    me: ReplicaId,
    sync_config: SyncConfig,
    /// Every well-formed certificate seen, by certified block id — the
    /// lookup that serves requests and re-runs commit processing after a
    /// block is admitted.
    certs: HashMap<HashValue, QuorumCertificate>,
    /// Fetch targets: blocks known to exist but absent from the store
    /// (certified, or hash-chained below a certified block), plus blocks
    /// held locally whose *certificate* is wanted
    /// ([`note_want`](Self::note_want)). Ordered so request issue order is
    /// deterministic.
    missing: BTreeMap<HashValue, FetchKind>,
    inflight: HashMap<HashValue, InFlight>,
    /// Requests issued per target; targets past the attempt cap are
    /// abandoned (a want for a certificate that never existed must not
    /// retry forever).
    attempts: HashMap<HashValue, u32>,
    /// Verified blocks waiting for their parents, by block id.
    orphans: HashMap<HashValue, Block>,
    /// Orphan ids waiting on each missing parent.
    waiting_on: HashMap<HashValue, Vec<HashValue>>,
    peer_cursor: u64,
    stats: SyncStats,
    /// Metrics sink for retry counts and response latencies; no-op by
    /// default ([`set_recorder`](Self::set_recorder) turns it live).
    recorder: sft_obs::RecorderCell,
}

impl SyncManager {
    /// Creates a manager for replica `me` of an `n`-replica system.
    pub fn new(config: ProtocolConfig, me: ReplicaId) -> Self {
        Self {
            config,
            me,
            sync_config: SyncConfig::default(),
            certs: HashMap::new(),
            missing: BTreeMap::new(),
            inflight: HashMap::new(),
            attempts: HashMap::new(),
            orphans: HashMap::new(),
            waiting_on: HashMap::new(),
            peer_cursor: 0,
            stats: SyncStats::default(),
            recorder: sft_obs::RecorderCell::default(),
        }
    }

    /// Installs the recorder that request/response/retry timing flows
    /// into.
    pub fn set_recorder(&mut self, recorder: sft_obs::SharedRecorder) {
        self.recorder = sft_obs::RecorderCell::new(recorder);
    }

    /// Overrides the tuning knobs (bounds and retry pacing).
    pub fn with_sync_config(mut self, sync_config: SyncConfig) -> Self {
        self.sync_config = sync_config;
        self
    }

    /// Sets only the retry timeout (drivers derive it from their δ).
    pub fn set_retry_after(&mut self, retry_after: SimDuration) {
        self.sync_config.retry_after = retry_after;
    }

    /// Counters so far.
    pub fn stats(&self) -> SyncStats {
        self.stats
    }

    /// The certificate recorded for `block_id`, if any.
    pub fn certificate_for(&self, block_id: HashValue) -> Option<&QuorumCertificate> {
        self.certs.get(&block_id)
    }

    /// True while any target is missing, requested, or pooled — the signal
    /// drivers use to keep a run alive until catch-up settles.
    pub fn is_syncing(&self) -> bool {
        !self.missing.is_empty() || !self.inflight.is_empty() || !self.orphans.is_empty()
    }

    /// Number of certified-but-unknown targets currently tracked.
    pub fn missing_count(&self) -> usize {
        self.missing.len()
    }

    /// Records a well-formed certificate. If the certified block is not in
    /// `store`, it becomes a missing target to fetch.
    pub fn note_certificate(&mut self, qc: &QuorumCertificate, store: &BlockStore) {
        if qc.round() == Round::ZERO || !qc.is_well_formed(&self.config) {
            return;
        }
        let id = qc.block_id();
        self.certs.entry(id).or_insert_with(|| qc.clone());
        if !store.contains(id) && !self.orphans.contains_key(&id) {
            self.missing.insert(id, FetchKind::Blocks);
        }
    }

    /// Registers a *certificate want*: this replica holds `id` but has
    /// never seen it certified, and a peer's proposal just treated it as
    /// certified (e.g. proposed on top of it). Under message loss a
    /// quorum's votes can land on some replicas and not others; fetching
    /// the certificate re-converges them. No-op if the certificate is
    /// already known.
    pub fn note_want(&mut self, id: HashValue) {
        if !self.certs.contains_key(&id) && !self.orphans.contains_key(&id) {
            // Never downgrade a full-block fetch already underway.
            self.missing.entry(id).or_insert(FetchKind::Certificate);
        }
    }

    /// Pools a verified block whose parent is unknown (an orphaned
    /// proposal, typically) and registers the parent as a missing target.
    /// The caller vouches for the block's provenance (signature already
    /// checked); admission still goes through [`BlockStore::insert`]'s
    /// structural checks once the parent arrives.
    pub fn note_orphan_block(&mut self, block: Block, store: &BlockStore) {
        if self.orphans.len() >= MAX_ORPHANS || store.contains(block.id()) {
            return;
        }
        let id = block.id();
        let parent = block.parent_id();
        if self.orphans.insert(id, block).is_none() {
            self.waiting_on.entry(parent).or_default().push(id);
        }
        self.missing.remove(&id);
        if !store.contains(parent) {
            self.missing.insert(parent, FetchKind::Blocks);
        }
    }

    /// Tells the manager a block arrived through the normal protocol path
    /// (a proposal), clearing any bookkeeping that would otherwise keep
    /// re-fetching it.
    pub fn note_stored(&mut self, id: HashValue) {
        self.missing.remove(&id);
        self.inflight.remove(&id);
        if let Some(block) = self.orphans.remove(&id) {
            self.unindex_waiting(block.parent_id(), id);
        }
    }

    fn unindex_waiting(&mut self, parent: HashValue, id: HashValue) {
        if let Some(ids) = self.waiting_on.get_mut(&parent) {
            ids.retain(|x| *x != id);
            if ids.is_empty() {
                self.waiting_on.remove(&parent);
            }
        }
    }

    /// Issues the requests now due: new targets up to the in-flight cap,
    /// plus expired in-flight targets re-asked from the next peer. Returns
    /// `(peer, request)` pairs the caller must transport point-to-point.
    pub fn take_requests(&mut self, now: SimTime) -> Vec<(ReplicaId, BlockRequest)> {
        let retry = self.sync_config.retry_after;
        let live = |f: &InFlight| now < f.sent_at + retry;
        let mut budget = self
            .sync_config
            .max_inflight
            .saturating_sub(self.inflight.values().filter(|f| live(f)).count());
        let mut out = Vec::new();
        let targets: Vec<(HashValue, FetchKind)> =
            self.missing.iter().map(|(id, kind)| (*id, *kind)).collect();
        for (target, kind) in targets {
            if budget == 0 {
                break;
            }
            if self.inflight.get(&target).is_some_and(&live) {
                continue;
            }
            let attempts = self.attempts.entry(target).or_insert(0);
            if *attempts >= MAX_FETCH_ATTEMPTS {
                self.missing.remove(&target);
                self.inflight.remove(&target);
                continue;
            }
            *attempts += 1;
            if *attempts >= 2 {
                self.recorder.add(sft_obs::names::SYNC_RETRIES, 1);
            }
            let peer = self.pick_peer(target);
            self.inflight.insert(target, InFlight { sent_at: now });
            self.stats.requests_sent += 1;
            // A certificate-want already holds the block: one block (the
            // QC anchor rides it) is all the response needs to carry.
            let max_blocks = match kind {
                FetchKind::Blocks => self.sync_config.max_blocks_per_request,
                FetchKind::Certificate => 1,
            };
            out.push((peer, BlockRequest::new(self.me, target, max_blocks)));
            budget -= 1;
        }
        out
    }

    /// Deterministic peer rotation: signers of the target's certificate if
    /// known (they voted for the block, so they held it), otherwise
    /// everyone — the requester excluded either way.
    fn pick_peer(&mut self, target: HashValue) -> ReplicaId {
        let candidates: Vec<ReplicaId> = match self.certs.get(&target) {
            Some(qc) if !qc.signers().is_empty() => {
                qc.signers().iter().filter(|r| *r != self.me).collect()
            }
            _ => Vec::new(),
        };
        let candidates = if candidates.is_empty() {
            (0..self.config.n() as u16)
                .map(ReplicaId::new)
                .filter(|r| *r != self.me)
                .collect()
        } else {
            candidates
        };
        let peer = candidates[(self.peer_cursor % candidates.len() as u64) as usize];
        self.peer_cursor += 1;
        peer
    }

    /// Serves a peer's request from the local store: the segment of up to
    /// `max_blocks` ancestors ending at the target, oldest first, plus the
    /// target's certificate. `None` if this replica lacks the block or a
    /// certificate for it (the requester will retry elsewhere).
    pub fn serve(&mut self, request: &BlockRequest, store: &BlockStore) -> Option<BlockResponse> {
        let target = request.target();
        let qc = self.certs.get(&target)?.clone();
        let tip = store.get(target)?.clone();
        let cap = request
            .max_blocks()
            .min(self.sync_config.max_blocks_per_request)
            .max(1) as usize;
        let mut segment = vec![tip];
        for ancestor in store.ancestors(target) {
            if segment.len() >= cap || ancestor.is_genesis() {
                break;
            }
            segment.push(ancestor.clone());
        }
        segment.reverse();
        self.stats.responses_served += 1;
        Some(BlockResponse::new(qc, segment))
    }

    /// [`on_response`](Self::on_response) plus latency accounting: when
    /// the response answers a request still in flight, records
    /// request-sent → admitted time into the `sync_response_us`
    /// histogram. Callers with a protocol clock in hand should prefer
    /// this over the raw variant.
    pub fn on_response_timed(
        &mut self,
        response: &BlockResponse,
        store: &mut BlockStore,
        now: SimTime,
    ) -> Vec<HashValue> {
        let sent_at = self
            .inflight
            .get(&response.target())
            .map(|inflight| inflight.sent_at);
        let admitted = self.on_response(response, store);
        if let (Some(sent_at), false) = (sent_at, admitted.is_empty()) {
            self.recorder.observe(
                sft_obs::names::SYNC_RESPONSE_US,
                now.saturating_since(sent_at).as_micros(),
            );
        }
        admitted
    }

    /// Verifies a response against the certificate chain and admits what it
    /// can. Returns the ids of blocks newly inserted into `store`, oldest
    /// first (cascaded orphans included). Rejected or duplicate responses
    /// admit nothing and leave the store untouched.
    pub fn on_response(
        &mut self,
        response: &BlockResponse,
        store: &mut BlockStore,
    ) -> Vec<HashValue> {
        if !self.verify_response(response) {
            self.stats.responses_rejected += 1;
            return Vec::new();
        }
        let target = response.target();
        // A response only counts once; afterwards the target is either in
        // the store or pooled with its parent chain being chased.
        self.inflight.remove(&target);
        // The verified certificate is knowledge in its own right: a
        // certificate-want is satisfied by it, and it can be served onward.
        self.certs
            .entry(target)
            .or_insert_with(|| response.qc().clone());

        let blocks = response.blocks();
        let mut admitted = Vec::new();
        if store.contains(blocks[0].parent_id()) {
            for block in blocks {
                match store.insert(block.clone()) {
                    Ok(true) => {
                        self.note_admitted(block.id());
                        admitted.push(block.id());
                    }
                    Ok(false) => {}
                    // A first block with forged parent metadata slipped past
                    // the link checks (only possible for the segment base):
                    // drop the rest, the chain cannot attach.
                    Err(_) => {
                        self.stats.responses_rejected += 1;
                        return admitted;
                    }
                }
            }
        } else {
            // The segment is verified but does not reach locally-known
            // ground: pool it whole and chase the missing parent.
            if self.orphans.len() + blocks.len() > MAX_ORPHANS {
                self.stats.responses_rejected += 1;
                return Vec::new();
            }
            for block in blocks {
                self.note_orphan_block(block.clone(), store);
            }
        }
        // Anything pooled beneath the admitted blocks can now attach.
        admitted.extend(self.flush_orphans(store, admitted.clone()));
        self.stats.blocks_admitted += admitted.len() as u64;
        // A certificate-only want (the block was already held) is now
        // satisfied; without this the target would be re-requested forever.
        if store.contains(target) {
            self.note_admitted(target);
        }
        admitted
    }

    fn note_admitted(&mut self, id: HashValue) {
        self.missing.remove(&id);
        self.inflight.remove(&id);
    }

    /// Inserts every pooled orphan whose ancestry just became available,
    /// cascading. Returns the admitted ids in insertion order.
    fn flush_orphans(&mut self, store: &mut BlockStore, roots: Vec<HashValue>) -> Vec<HashValue> {
        let mut admitted = Vec::new();
        let mut queue: VecDeque<HashValue> = roots.into();
        while let Some(parent) = queue.pop_front() {
            let Some(mut ids) = self.waiting_on.remove(&parent) else {
                continue;
            };
            ids.sort(); // deterministic order among sibling orphans
            for id in ids {
                let Some(block) = self.orphans.remove(&id) else {
                    continue;
                };
                if store.insert(block).is_ok_and(|fresh| fresh) {
                    self.note_admitted(id);
                    admitted.push(id);
                    queue.push_back(id);
                }
            }
        }
        admitted
    }

    /// The admission bar: the segment must be non-empty and bounded, end at
    /// a block this replica actually asked for, carry a well-formed QC
    /// naming exactly that block and round, and hash-link internally
    /// (parent ids, rounds, and heights all consistent). Block ids are
    /// recomputed on decode, so passing these checks means the segment *is*
    /// the unique ancestor chain of the certified target.
    fn verify_response(&self, response: &BlockResponse) -> bool {
        let blocks = response.blocks();
        let (Some(first), Some(last)) = (blocks.first(), blocks.last()) else {
            return false;
        };
        if blocks.len() > self.sync_config.max_blocks_per_request as usize {
            return false;
        }
        let target = response.target();
        let solicited = self.missing.contains_key(&target) || self.inflight.contains_key(&target);
        if !solicited {
            return false;
        }
        let qc = response.qc();
        if !qc.is_well_formed(&self.config)
            || qc.block_id() != last.id()
            || qc.round() != last.round()
        {
            return false;
        }
        if first.is_genesis() {
            return false;
        }
        blocks.windows(2).all(|pair| {
            pair[1].parent_id() == pair[0].id()
                && pair[1].parent_round() == pair[0].round()
                && pair[1].height() == pair[0].height().next()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sft_types::{Payload, SignerSet};

    fn cfg() -> ProtocolConfig {
        ProtocolConfig::for_replicas(4)
    }

    fn quorum_qc(block: &Block) -> QuorumCertificate {
        QuorumCertificate::new(
            block.vote_data(),
            SignerSet::from_iter_with_capacity(4, (0..3).map(ReplicaId::new)),
        )
    }

    /// A store holding a chain of `len` blocks; returns (store, blocks).
    fn chain(len: u64) -> (BlockStore, Vec<Block>) {
        let mut store = BlockStore::new();
        let mut parent = store.genesis().clone();
        let blocks: Vec<Block> = (1..=len)
            .map(|round| {
                let block = Block::new(
                    &parent,
                    Round::new(round),
                    ReplicaId::new((round % 4) as u16),
                    Payload::synthetic(2, 8, round),
                );
                store.insert(block.clone()).unwrap();
                parent = block.clone();
                block
            })
            .collect();
        (store, blocks)
    }

    fn server_for(store: &BlockStore, blocks: &[Block]) -> SyncManager {
        let mut server = SyncManager::new(cfg(), ReplicaId::new(1));
        for block in blocks {
            server.note_certificate(&quorum_qc(block), store);
        }
        server
    }

    #[test]
    fn request_serve_admit_roundtrip() {
        let (store, blocks) = chain(5);
        let mut server = server_for(&store, &blocks);
        let mut behind = BlockStore::new();
        let mut sync = SyncManager::new(cfg(), ReplicaId::new(0));
        sync.note_certificate(&quorum_qc(&blocks[4]), &behind);
        assert!(sync.is_syncing());
        let requests = sync.take_requests(SimTime::ZERO);
        assert_eq!(requests.len(), 1);
        let response = server.serve(&requests[0].1, &store).unwrap();
        let admitted = sync.on_response(&response, &mut behind);
        assert_eq!(
            admitted,
            blocks.iter().map(Block::id).collect::<Vec<_>>(),
            "the whole segment lands, oldest first"
        );
        assert!(!sync.is_syncing());
        assert_eq!(sync.stats().blocks_admitted, 5);
    }

    #[test]
    fn duplicate_and_unsolicited_responses_are_rejected() {
        let (store, blocks) = chain(2);
        let mut server = server_for(&store, &blocks);
        let mut behind = BlockStore::new();
        let mut sync = SyncManager::new(cfg(), ReplicaId::new(0));

        // Unsolicited: never asked for anything.
        let req = BlockRequest::new(ReplicaId::new(0), blocks[1].id(), 8);
        let response = server.serve(&req, &store).unwrap();
        assert!(sync.on_response(&response, &mut behind).is_empty());
        assert_eq!(sync.stats().responses_rejected, 1);

        // Solicited: admitted once, duplicate rejected.
        sync.note_certificate(&quorum_qc(&blocks[1]), &behind);
        sync.take_requests(SimTime::ZERO);
        assert_eq!(sync.on_response(&response, &mut behind).len(), 2);
        assert!(sync.on_response(&response, &mut behind).is_empty());
    }

    #[test]
    fn forged_segments_never_admit() {
        let (store, blocks) = chain(4);
        let mut server = server_for(&store, &blocks);
        let mut behind = BlockStore::new();
        let mut sync = SyncManager::new(cfg(), ReplicaId::new(0));
        sync.note_certificate(&quorum_qc(&blocks[3]), &behind);
        let requests = sync.take_requests(SimTime::ZERO);
        let honest = server.serve(&requests[0].1, &store).unwrap();

        // Truncating the tail (the certified target) breaks the anchor.
        let mut cut = honest.blocks().to_vec();
        cut.pop();
        let forged = BlockResponse::new(honest.qc().clone(), cut);
        assert!(sync.on_response(&forged, &mut behind).is_empty());

        // Reordering breaks the hash chain.
        let mut shuffled = honest.blocks().to_vec();
        shuffled.swap(0, 1);
        let forged = BlockResponse::new(honest.qc().clone(), shuffled);
        assert!(sync.on_response(&forged, &mut behind).is_empty());

        // A QC naming a different round than the block is a mismatch.
        let wrong_qc = QuorumCertificate::new(
            sft_types::VoteData::new(
                blocks[3].id(),
                Round::new(99),
                blocks[2].id(),
                Round::new(3),
            ),
            SignerSet::from_iter_with_capacity(4, (0..3).map(ReplicaId::new)),
        );
        let forged = BlockResponse::new(wrong_qc, honest.blocks().to_vec());
        assert!(sync.on_response(&forged, &mut behind).is_empty());

        assert_eq!(sync.stats().responses_rejected, 3);
        assert_eq!(behind.len(), 1, "only genesis; nothing admitted");

        // The honest response still lands afterwards.
        assert_eq!(sync.on_response(&honest, &mut behind).len(), 4);
    }

    #[test]
    fn partial_segment_pools_and_chases_the_missing_parent() {
        let (store, blocks) = chain(6);
        let mut server = server_for(&store, &blocks);
        let mut behind = BlockStore::new();
        let mut sync = SyncManager::new(cfg(), ReplicaId::new(0)).with_sync_config(SyncConfig {
            max_blocks_per_request: 2,
            ..SyncConfig::default()
        });
        sync.note_certificate(&quorum_qc(&blocks[5]), &behind);

        // First fetch returns blocks 5..6 — parent (block 4) unknown.
        let requests = sync.take_requests(SimTime::ZERO);
        let response = server.serve(&requests[0].1, &store).unwrap();
        assert_eq!(response.blocks().len(), 2);
        assert!(sync.on_response(&response, &mut behind).is_empty());
        assert!(sync.is_syncing(), "segment pooled, parent chased");

        // The chase walks down in bounded hops until ground is reached,
        // then the pooled segments cascade in.
        let mut admitted_total = 0;
        for _ in 0..4 {
            let now = SimTime::ZERO;
            for (_, request) in sync.take_requests(now) {
                if let Some(response) = server.serve(&request, &store) {
                    admitted_total += sync.on_response(&response, &mut behind).len();
                }
            }
        }
        assert_eq!(admitted_total, 6);
        assert!(behind.contains(blocks[5].id()));
        assert!(!sync.is_syncing());
    }

    #[test]
    fn retries_rotate_peers_after_the_timeout() {
        let (_, blocks) = chain(1);
        let behind = BlockStore::new();
        let mut sync = SyncManager::new(cfg(), ReplicaId::new(0));
        sync.note_certificate(&quorum_qc(&blocks[0]), &behind);
        let first = sync.take_requests(SimTime::ZERO);
        assert_eq!(first.len(), 1);
        // Too early: nothing due.
        assert!(sync.take_requests(SimTime::from_millis(100)).is_empty());
        // After the retry timeout the same target goes to another peer.
        let retry = sync.take_requests(SimTime::from_millis(900));
        assert_eq!(retry.len(), 1);
        assert_eq!(retry[0].1.target(), first[0].1.target());
        assert_ne!(retry[0].0, first[0].0, "peer rotated");
        assert_eq!(sync.stats().requests_sent, 2);
    }

    #[test]
    fn note_stored_clears_bookkeeping() {
        let (_, blocks) = chain(2);
        let behind = BlockStore::new();
        let mut sync = SyncManager::new(cfg(), ReplicaId::new(0));
        sync.note_certificate(&quorum_qc(&blocks[1]), &behind);
        sync.take_requests(SimTime::ZERO);
        sync.note_stored(blocks[1].id());
        assert!(!sync.is_syncing());
        assert!(sync.take_requests(SimTime::from_millis(5000)).is_empty());
    }

    #[test]
    fn serve_declines_without_block_or_certificate() {
        let (store, blocks) = chain(2);
        let mut sync = SyncManager::new(cfg(), ReplicaId::new(1));
        let req = BlockRequest::new(ReplicaId::new(0), blocks[1].id(), 8);
        assert!(sync.serve(&req, &store).is_none(), "no certificate");
        sync.note_certificate(&quorum_qc(&blocks[1]), &store);
        assert!(sync.serve(&req, &store).is_some());
        let empty = BlockStore::new();
        assert!(sync.serve(&req, &empty).is_none(), "no block");
    }

    #[test]
    fn response_codec_roundtrips() {
        let (store, blocks) = chain(3);
        let mut server = server_for(&store, &blocks);
        let req = BlockRequest::new(ReplicaId::new(0), blocks[2].id(), 8);
        let response = server.serve(&req, &store).unwrap();
        let back = BlockResponse::from_bytes(&response.to_bytes()).unwrap();
        assert_eq!(back, response);
        assert_eq!(back.target(), blocks[2].id());
    }
}
