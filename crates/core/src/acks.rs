//! The [`AckTracker`]: strength-graded client acknowledgements.
//!
//! The paper grades every commit with a strength level `x` (Definition 1)
//! that keeps rising as endorsements accumulate; this module turns that
//! grade into the client-facing durability SLA of the submission API. A
//! tracker remembers which transaction ids owe an ack and at what strength
//! (`ack_at`), watches the engine's [`StrongCommitUpdate`] stream, and
//! emits [`ClientAck::Committed`] entries the moment the containing
//! block's level reaches the requested threshold — `ack_at: 0` fires at
//! the standard commit (already level `f`), `ack_at: x` waits for the
//! `x`-strong upgrade of §3.
//!
//! The tracker is engine-embedded and pays nothing when no client is
//! connected: `observe` returns immediately while no acks are pending,
//! so driver runs without client traffic keep their exact hot path.

use std::collections::{HashMap, HashSet};

use sft_crypto::HashValue;
use sft_obs::{names, RecorderCell, SharedRecorder};
use sft_types::{ClientAck, Payload, SimTime, StrongCommitUpdate};

use crate::BlockStore;

/// One registered submission awaiting its commit.
#[derive(Clone, Copy, Debug)]
struct PendingAck {
    ack_at: u64,
    submitted_at: SimTime,
}

/// Watches the commit-update stream and emits strength-graded client acks.
///
/// # Examples
///
/// ```
/// use sft_core::AckTracker;
/// use sft_crypto::HashValue;
/// use sft_types::SimTime;
///
/// let mut acks = AckTracker::new();
/// acks.register(HashValue::of(b"txn"), 2, SimTime::ZERO);
/// assert_eq!(acks.pending(), 1);
/// assert!(acks.drain().is_empty(), "nothing committed yet");
/// ```
#[derive(Debug, Default)]
pub struct AckTracker {
    /// Admitted submissions not yet located in a committed block.
    pending: HashMap<HashValue, PendingAck>,
    /// Submissions located in a committed block, awaiting its strength
    /// upgrade to their `ack_at` threshold. Keyed by block id.
    watch: HashMap<HashValue, Vec<(HashValue, PendingAck)>>,
    /// Blocks whose payload was already scanned against `pending`.
    scanned: HashSet<HashValue>,
    /// Emitted acks awaiting [`drain`](Self::drain).
    ready: Vec<ClientAck>,
    recorder: RecorderCell,
}

impl AckTracker {
    /// An empty tracker with the free no-op recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs the recorder the client-plane counters flow into.
    pub fn set_recorder(&mut self, recorder: SharedRecorder) {
        self.recorder = RecorderCell::new(recorder);
    }

    /// Counts one admission verdict (`client_requests` / `client_rejected`).
    pub fn record_admission(&self, admitted: bool) {
        self.recorder.add(names::CLIENT_REQUESTS, 1);
        if !admitted {
            self.recorder.add(names::CLIENT_REJECTED, 1);
        }
    }

    /// Registers an admitted submission: `txn_id` owes a
    /// [`ClientAck::Committed`] once its block is `≥ ack_at`-strong.
    pub fn register(&mut self, txn_id: HashValue, ack_at: u64, now: SimTime) {
        self.pending.insert(
            txn_id,
            PendingAck {
                ack_at,
                submitted_at: now,
            },
        );
    }

    /// Submissions still awaiting their ack.
    pub fn pending(&self) -> usize {
        self.pending.len() + self.watch.values().map(Vec::len).sum::<usize>()
    }

    /// Absorbs one commit-log entry: locates pending submissions in the
    /// committed block (first sighting scans its payload), then emits acks
    /// for every watcher whose `ack_at` the new level satisfies. A no-op
    /// while nothing is pending.
    pub fn observe(&mut self, update: &StrongCommitUpdate, store: &BlockStore, now: SimTime) {
        if self.pending.is_empty() && self.watch.is_empty() {
            return;
        }
        let block_id = update.block_id();
        if !self.pending.is_empty() && self.scanned.insert(block_id) {
            if let Some(block) = store.get(block_id) {
                if let Payload::Transactions(txns) = block.payload() {
                    for txn in txns {
                        let id = txn.id();
                        if let Some(entry) = self.pending.remove(&id) {
                            self.watch.entry(block_id).or_default().push((id, entry));
                        }
                    }
                }
            }
        }
        let Some(mut watchers) = self.watch.remove(&block_id) else {
            return;
        };
        let level = update.level();
        watchers.retain(|(txn_id, entry)| {
            if entry.ack_at > level {
                return true;
            }
            self.ready.push(ClientAck::Committed {
                txn_id: *txn_id,
                round: update.round(),
                strength: level,
            });
            if self.recorder.enabled() {
                self.recorder.add(names::ACKS_SENT, 1);
                let lat = now
                    .as_micros()
                    .saturating_sub(entry.submitted_at.as_micros());
                self.recorder
                    .observe(names::ack_level_name(entry.ack_at), lat);
            }
            false
        });
        if !watchers.is_empty() {
            self.watch.insert(block_id, watchers);
        }
    }

    /// Takes every ack emitted since the last drain, in emission order.
    pub fn drain(&mut self) -> Vec<ClientAck> {
        std::mem::take(&mut self.ready)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::{Block, BlockStore};
    use sft_obs::{Recorder, Registry};
    use sft_types::{Height, ReplicaId, Round, Transaction};
    use std::sync::Arc;

    fn store_with_block(txns: Vec<Transaction>) -> (BlockStore, HashValue) {
        let mut store = BlockStore::new();
        let block = Block::new(
            store.genesis(),
            Round::new(1),
            ReplicaId::new(0),
            Payload::Transactions(txns),
        );
        let id = block.id();
        store.insert(block).expect("block admits");
        (store, id)
    }

    fn update(block_id: HashValue, level: u64) -> StrongCommitUpdate {
        StrongCommitUpdate::new(block_id, Round::new(1), Height::new(1), level)
    }

    #[test]
    fn ack_waits_for_the_requested_strength() {
        let txn = Transaction::new(1, 0, vec![7; 8]);
        let txn_id = txn.id();
        let (store, block_id) = store_with_block(vec![txn]);

        let mut acks = AckTracker::new();
        acks.register(txn_id, 2, SimTime::ZERO);

        // Standard commit (level 1 = f) does not satisfy ack_at = 2.
        acks.observe(&update(block_id, 1), &store, SimTime::from_millis(4));
        assert!(acks.drain().is_empty());
        assert_eq!(acks.pending(), 1);

        // The 2-strong upgrade does.
        acks.observe(&update(block_id, 2), &store, SimTime::from_millis(6));
        let drained = acks.drain();
        assert_eq!(
            drained,
            vec![ClientAck::Committed {
                txn_id,
                round: Round::new(1),
                strength: 2,
            }]
        );
        assert_eq!(acks.pending(), 0);
    }

    #[test]
    fn ack_at_zero_fires_at_standard_commit() {
        let txn = Transaction::new(1, 0, vec![7; 8]);
        let txn_id = txn.id();
        let (store, block_id) = store_with_block(vec![txn]);

        let mut acks = AckTracker::new();
        acks.register(txn_id, 0, SimTime::ZERO);
        acks.observe(&update(block_id, 1), &store, SimTime::from_millis(4));
        let drained = acks.drain();
        assert_eq!(drained.len(), 1);
        assert!(matches!(
            drained[0],
            ClientAck::Committed { strength: 1, .. }
        ));
    }

    #[test]
    fn unrelated_blocks_and_absent_txns_emit_nothing() {
        let txn = Transaction::new(1, 0, vec![7; 8]);
        let (store, block_id) = store_with_block(vec![txn]);

        let mut acks = AckTracker::new();
        acks.register(HashValue::of(b"other"), 0, SimTime::ZERO);
        acks.observe(&update(block_id, 2), &store, SimTime::from_millis(4));
        assert!(acks.drain().is_empty());
        assert_eq!(acks.pending(), 1, "unmatched submission keeps waiting");
    }

    #[test]
    fn observe_records_latency_and_counters() {
        let txn = Transaction::new(1, 0, vec![7; 8]);
        let txn_id = txn.id();
        let (store, block_id) = store_with_block(vec![txn]);

        let mut acks = AckTracker::new();
        let reg = Arc::new(Registry::new());
        acks.set_recorder(reg.clone());
        acks.record_admission(true);
        acks.record_admission(false);
        acks.register(txn_id, 1, SimTime::from_millis(1));
        acks.observe(&update(block_id, 1), &store, SimTime::from_millis(5));

        let snap = reg.snapshot();
        assert_eq!(snap.counter(names::CLIENT_REQUESTS), Some(2));
        assert_eq!(snap.counter(names::CLIENT_REJECTED), Some(1));
        assert_eq!(snap.counter(names::ACKS_SENT), Some(1));
        let hist = snap.hist("ack_x1_us").expect("latency recorded");
        assert_eq!(hist.count, 1);
        assert_eq!(hist.max, 4_000);
    }
}
