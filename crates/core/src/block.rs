//! Blocks and the [`BlockStore`] chain index.
//!
//! A [`Block`] matches the paper's block format (§2.1): a parent link
//! `H(B_{k-1})`, the proposing round, the chain height, the proposer, and a
//! transaction payload. The [`BlockStore`] keeps every delivered block,
//! answers ancestry queries (`extends`, ancestor walks), and is the
//! structure the endorsement tracker traverses when a strong-vote endorses
//! a chain suffix.

use std::collections::HashMap;
use std::fmt;

use sft_crypto::{HashValue, Hasher};
use sft_types::codec::{Decode, DecodeError, Encode};
use sft_types::{Height, Payload, ReplicaId, Round, VoteData};

/// A proposed block: parent link, position, proposer, and payload.
///
/// The block id is a domain-separated hash over all fields, computed once at
/// construction; two blocks with any differing field get distinct ids.
///
/// # Examples
///
/// ```
/// use sft_core::Block;
/// use sft_types::{Payload, ReplicaId, Round};
///
/// let genesis = Block::genesis();
/// let b1 = Block::new(&genesis, Round::new(1), ReplicaId::new(0), Payload::empty());
/// assert_eq!(b1.parent_id(), genesis.id());
/// assert_eq!(b1.height().as_u64(), 1);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Block {
    parent_id: HashValue,
    parent_round: Round,
    round: Round,
    height: Height,
    proposer: ReplicaId,
    payload: Payload,
    /// Derived from the other fields; never encoded, recomputed on decode.
    id: HashValue,
}

fn block_id(
    parent_id: &HashValue,
    parent_round: Round,
    round: Round,
    height: Height,
    proposer: ReplicaId,
    payload: &Payload,
) -> HashValue {
    Hasher::new("block")
        .field(parent_id.as_ref())
        .field(&parent_round.as_u64().to_be_bytes())
        .field(&round.as_u64().to_be_bytes())
        .field(&height.as_u64().to_be_bytes())
        .field(&proposer.as_u64().to_be_bytes())
        .field(payload.digest().as_ref())
        .finish()
}

impl Block {
    /// The genesis block: round 0, height 0, zero parent, trusted by
    /// construction (every replica starts with it notarized and committed).
    pub fn genesis() -> Self {
        Self::from_parts(
            HashValue::zero(),
            Round::ZERO,
            Round::ZERO,
            Height::ZERO,
            ReplicaId::new(0),
            Payload::empty(),
        )
    }

    /// Creates a block extending `parent` in `round` with the given payload.
    ///
    /// # Panics
    ///
    /// Panics if `round` does not exceed the parent's round — chains carry
    /// strictly increasing rounds by construction.
    pub fn new(parent: &Block, round: Round, proposer: ReplicaId, payload: Payload) -> Self {
        assert!(
            round > parent.round,
            "round {round} must exceed parent round {}",
            parent.round
        );
        Self::from_parts(
            parent.id,
            parent.round,
            round,
            parent.height.next(),
            proposer,
            payload,
        )
    }

    /// Reassembles a block from raw fields (decoder and Byzantine test
    /// harnesses). The id is recomputed, so a forged id cannot survive.
    pub fn from_parts(
        parent_id: HashValue,
        parent_round: Round,
        round: Round,
        height: Height,
        proposer: ReplicaId,
        payload: Payload,
    ) -> Self {
        let id = block_id(&parent_id, parent_round, round, height, proposer, &payload);
        Self {
            parent_id,
            parent_round,
            round,
            height,
            proposer,
            payload,
            id,
        }
    }

    /// The block id (`H(B)`).
    pub fn id(&self) -> HashValue {
        self.id
    }

    /// Id of the parent block.
    pub fn parent_id(&self) -> HashValue {
        self.parent_id
    }

    /// Round of the parent block.
    pub fn parent_round(&self) -> Round {
        self.parent_round
    }

    /// The round (epoch) this block was proposed in.
    pub fn round(&self) -> Round {
        self.round
    }

    /// The chain height of this block.
    pub fn height(&self) -> Height {
        self.height
    }

    /// The proposing replica.
    pub fn proposer(&self) -> ReplicaId {
        self.proposer
    }

    /// The transaction payload.
    pub fn payload(&self) -> &Payload {
        &self.payload
    }

    /// True for the genesis block.
    pub fn is_genesis(&self) -> bool {
        self.round == Round::ZERO && self.parent_id.is_zero()
    }

    /// The [`VoteData`] a vote for this block certifies.
    pub fn vote_data(&self) -> VoteData {
        VoteData::new(self.id, self.round, self.parent_id, self.parent_round)
    }
}

impl fmt::Debug for Block {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Block({} r={} h={} by {} <- {})",
            self.id.short(),
            self.round,
            self.height,
            self.proposer,
            self.parent_id.short()
        )
    }
}

impl Encode for Block {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.parent_id.encode(buf);
        self.parent_round.encode(buf);
        self.round.encode(buf);
        self.height.encode(buf);
        self.proposer.encode(buf);
        self.payload.encode(buf);
    }
}

impl Decode for Block {
    fn decode(buf: &mut &[u8]) -> Result<Self, DecodeError> {
        let parent_id = HashValue::decode(buf)?;
        let parent_round = Round::decode(buf)?;
        let round = Round::decode(buf)?;
        let height = Height::decode(buf)?;
        let proposer = ReplicaId::decode(buf)?;
        let payload = Payload::decode(buf)?;
        Ok(Self::from_parts(
            parent_id,
            parent_round,
            round,
            height,
            proposer,
            payload,
        ))
    }
}

/// Error returned by [`BlockStore::insert`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BlockStoreError {
    /// The block's parent has not been delivered — callers must insert
    /// blocks parent-first (the simulator's synchronous delivery guarantees
    /// this; a real network layer would buffer orphans).
    UnknownParent,
    /// The block's height is not `parent.height + 1`.
    WrongHeight,
    /// The block's recorded parent round disagrees with the stored parent.
    WrongParentRound,
}

impl fmt::Display for BlockStoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BlockStoreError::UnknownParent => write!(f, "parent block not in store"),
            BlockStoreError::WrongHeight => write!(f, "height is not parent height + 1"),
            BlockStoreError::WrongParentRound => write!(f, "parent round mismatch"),
        }
    }
}

impl std::error::Error for BlockStoreError {}

/// An append-only index of all delivered blocks, rooted at genesis.
///
/// # Examples
///
/// ```
/// use sft_core::{Block, BlockStore};
/// use sft_types::{Payload, ReplicaId, Round};
///
/// let mut store = BlockStore::new();
/// let genesis = store.genesis().clone();
/// let b1 = Block::new(&genesis, Round::new(1), ReplicaId::new(0), Payload::empty());
/// store.insert(b1.clone()).unwrap();
/// assert!(store.extends(b1.id(), genesis.id()));
/// ```
#[derive(Clone, Debug)]
pub struct BlockStore {
    blocks: HashMap<HashValue, Block>,
    genesis_id: HashValue,
}

impl Default for BlockStore {
    fn default() -> Self {
        Self::new()
    }
}

impl BlockStore {
    /// Creates a store containing only the genesis block.
    pub fn new() -> Self {
        let genesis = Block::genesis();
        let genesis_id = genesis.id();
        let mut blocks = HashMap::new();
        blocks.insert(genesis_id, genesis);
        Self { blocks, genesis_id }
    }

    /// Id of the genesis block.
    pub fn genesis_id(&self) -> HashValue {
        self.genesis_id
    }

    /// The genesis block.
    pub fn genesis(&self) -> &Block {
        &self.blocks[&self.genesis_id]
    }

    /// Number of blocks in the store, genesis included.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Always false: genesis is present from construction.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Adds a block whose parent is already present. Re-inserting a known
    /// block is a no-op returning `Ok(false)`.
    ///
    /// # Errors
    ///
    /// Rejects blocks with unknown parents or inconsistent parent metadata,
    /// so every stored block sits on a verified path to genesis.
    pub fn insert(&mut self, block: Block) -> Result<bool, BlockStoreError> {
        if self.blocks.contains_key(&block.id()) {
            return Ok(false);
        }
        let parent = self
            .blocks
            .get(&block.parent_id())
            .ok_or(BlockStoreError::UnknownParent)?;
        if block.height() != parent.height().next() {
            return Err(BlockStoreError::WrongHeight);
        }
        if block.parent_round() != parent.round() {
            return Err(BlockStoreError::WrongParentRound);
        }
        self.blocks.insert(block.id(), block);
        Ok(true)
    }

    /// Looks up a block by id.
    pub fn get(&self, id: HashValue) -> Option<&Block> {
        self.blocks.get(&id)
    }

    /// True if `id` is in the store.
    pub fn contains(&self, id: HashValue) -> bool {
        self.blocks.contains_key(&id)
    }

    /// Iterates over `id`'s strict ancestors, nearest first, ending at
    /// genesis. Empty if `id` is unknown or genesis.
    pub fn ancestors(&self, id: HashValue) -> Ancestors<'_> {
        let current = self
            .blocks
            .get(&id)
            .filter(|b| !b.is_genesis())
            .map(|b| b.parent_id());
        Ancestors {
            store: self,
            current,
        }
    }

    /// True if `descendant` transitively extends `ancestor` (a block does
    /// not extend itself).
    pub fn extends(&self, descendant: HashValue, ancestor: HashValue) -> bool {
        self.ancestors(descendant).any(|b| b.id() == ancestor)
    }

    /// The deepest block on both `a`'s and `b`'s paths to genesis (either
    /// endpoint counts as its own ancestor here — the common ancestor of a
    /// block and its parent is the parent). `None` if either id is unknown.
    ///
    /// This is the fork point `r_l` of the §3.4 window computation: a voter
    /// that once voted on fork `F` withholds endorsement exactly for rounds
    /// in `(common_ancestor(F, B).round, F.round]`.
    pub fn common_ancestor(&self, a: HashValue, b: HashValue) -> Option<&Block> {
        if !self.blocks.contains_key(&a) {
            return None;
        }
        let on_a_path: std::collections::HashSet<HashValue> = std::iter::once(a)
            .chain(self.ancestors(a).map(|blk| blk.id()))
            .collect();
        if b == a || on_a_path.contains(&b) {
            return self.blocks.get(&b);
        }
        std::iter::once(self.blocks.get(&b)?)
            .chain(self.ancestors(b))
            .find(|blk| on_a_path.contains(&blk.id()))
    }

    /// The chain from genesis (exclusive) to `id` (inclusive), oldest first.
    /// Empty if `id` is unknown.
    pub fn chain_to(&self, id: HashValue) -> Vec<&Block> {
        let mut chain: Vec<&Block> = self.ancestors(id).filter(|b| !b.is_genesis()).collect();
        chain.reverse();
        if let Some(block) = self.blocks.get(&id) {
            if !block.is_genesis() {
                chain.push(block);
            }
        }
        chain
    }
}

/// Iterator over a block's strict ancestors, nearest first.
#[derive(Clone, Debug)]
pub struct Ancestors<'a> {
    store: &'a BlockStore,
    current: Option<HashValue>,
}

impl<'a> Iterator for Ancestors<'a> {
    type Item = &'a Block;

    fn next(&mut self) -> Option<&'a Block> {
        let id = self.current.take()?;
        let block = self.store.blocks.get(&id)?;
        if !block.is_genesis() {
            self.current = Some(block.parent_id());
        }
        Some(block)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn extend(store: &mut BlockStore, parent: HashValue, round: u64) -> Block {
        let parent = store.get(parent).unwrap().clone();
        let block = Block::new(
            &parent,
            Round::new(round),
            ReplicaId::new((round % 4) as u16),
            Payload::synthetic(10, 10, round),
        );
        store.insert(block.clone()).unwrap();
        block
    }

    #[test]
    fn genesis_properties() {
        let g = Block::genesis();
        assert!(g.is_genesis());
        assert_eq!(g.height(), Height::ZERO);
        assert_eq!(g.round(), Round::ZERO);
        assert!(g.parent_id().is_zero());
        // Deterministic: every replica derives the same genesis id.
        assert_eq!(g.id(), Block::genesis().id());
    }

    #[test]
    fn id_binds_all_fields() {
        let g = Block::genesis();
        let a = Block::new(&g, Round::new(1), ReplicaId::new(0), Payload::empty());
        let b = Block::new(&g, Round::new(2), ReplicaId::new(0), Payload::empty());
        let c = Block::new(&g, Round::new(1), ReplicaId::new(1), Payload::empty());
        let d = Block::new(
            &g,
            Round::new(1),
            ReplicaId::new(0),
            Payload::synthetic(1, 1, 0),
        );
        assert_ne!(a.id(), b.id());
        assert_ne!(a.id(), c.id());
        assert_ne!(a.id(), d.id());
    }

    #[test]
    fn vote_data_mirrors_block() {
        let g = Block::genesis();
        let b = Block::new(&g, Round::new(3), ReplicaId::new(2), Payload::empty());
        let vd = b.vote_data();
        assert_eq!(vd.block_id(), b.id());
        assert_eq!(vd.block_round(), Round::new(3));
        assert_eq!(vd.parent_id(), g.id());
        assert_eq!(vd.parent_round(), Round::ZERO);
    }

    #[test]
    #[should_panic(expected = "must exceed parent round")]
    fn non_increasing_round_panics() {
        let g = Block::genesis();
        let b1 = Block::new(&g, Round::new(5), ReplicaId::new(0), Payload::empty());
        let _ = Block::new(&b1, Round::new(5), ReplicaId::new(1), Payload::empty());
    }

    #[test]
    fn codec_roundtrip_recomputes_id() {
        let g = Block::genesis();
        let b = Block::new(
            &g,
            Round::new(2),
            ReplicaId::new(1),
            Payload::synthetic(5, 5, 1),
        );
        let back = Block::from_bytes(&b.to_bytes()).unwrap();
        assert_eq!(back, b);
        assert_eq!(back.id(), b.id());
    }

    #[test]
    fn store_insert_and_lookup() {
        let mut store = BlockStore::new();
        let genesis_id = store.genesis_id();
        let b1 = extend(&mut store, genesis_id, 1);
        let b2 = extend(&mut store, b1.id(), 2);
        assert_eq!(store.len(), 3);
        assert!(store.contains(b2.id()));
        assert_eq!(store.get(b1.id()).unwrap().round(), Round::new(1));
        // Duplicate insert is an accepted no-op.
        assert_eq!(store.insert(b1.clone()), Ok(false));
    }

    #[test]
    fn store_rejects_orphans_and_bad_links() {
        let mut store = BlockStore::new();
        let other_parent = Block::new(
            &Block::genesis(),
            Round::new(1),
            ReplicaId::new(0),
            Payload::empty(),
        );
        let orphan = Block::new(
            &other_parent,
            Round::new(2),
            ReplicaId::new(0),
            Payload::empty(),
        );
        assert_eq!(store.insert(orphan), Err(BlockStoreError::UnknownParent));

        // Forged height: parent is genesis (height 0) but block claims 5.
        let bad_height = Block::from_parts(
            store.genesis_id(),
            Round::ZERO,
            Round::new(1),
            Height::new(5),
            ReplicaId::new(0),
            Payload::empty(),
        );
        assert_eq!(store.insert(bad_height), Err(BlockStoreError::WrongHeight));

        // Forged parent round.
        let bad_round = Block::from_parts(
            store.genesis_id(),
            Round::new(9),
            Round::new(10),
            Height::new(1),
            ReplicaId::new(0),
            Payload::empty(),
        );
        assert_eq!(
            store.insert(bad_round),
            Err(BlockStoreError::WrongParentRound)
        );
    }

    #[test]
    fn ancestry_queries() {
        let mut store = BlockStore::new();
        let genesis_id = store.genesis_id();
        let b1 = extend(&mut store, genesis_id, 1);
        let b2 = extend(&mut store, b1.id(), 2);
        let b3 = extend(&mut store, b2.id(), 3);
        // A fork off b1.
        let c2 = extend(&mut store, b1.id(), 4);

        assert!(store.extends(b3.id(), b1.id()));
        assert!(store.extends(b3.id(), genesis_id));
        assert!(!store.extends(b3.id(), c2.id()));
        assert!(
            !store.extends(b1.id(), b1.id()),
            "a block does not extend itself"
        );

        let rounds: Vec<u64> = store
            .ancestors(b3.id())
            .map(|b| b.round().as_u64())
            .collect();
        assert_eq!(
            rounds,
            vec![2, 1, 0],
            "nearest ancestor first, genesis last"
        );

        let chain: Vec<u64> = store
            .chain_to(b3.id())
            .iter()
            .map(|b| b.round().as_u64())
            .collect();
        assert_eq!(chain, vec![1, 2, 3], "oldest first, genesis excluded");
        assert!(store.chain_to(HashValue::of(b"nope")).is_empty());
    }

    #[test]
    fn common_ancestor_finds_fork_point() {
        let mut store = BlockStore::new();
        let genesis_id = store.genesis_id();
        let b1 = extend(&mut store, genesis_id, 1);
        let b2 = extend(&mut store, b1.id(), 2);
        let b3 = extend(&mut store, b2.id(), 3);
        let c2 = extend(&mut store, b1.id(), 4); // fork off b1

        let fork_point = store.common_ancestor(b3.id(), c2.id()).unwrap();
        assert_eq!(fork_point.id(), b1.id());
        // Symmetric.
        let fork_point = store.common_ancestor(c2.id(), b3.id()).unwrap();
        assert_eq!(fork_point.id(), b1.id());
        // An endpoint on the other's path is the answer itself.
        assert_eq!(
            store.common_ancestor(b3.id(), b1.id()).unwrap().id(),
            b1.id()
        );
        assert_eq!(
            store.common_ancestor(b1.id(), b3.id()).unwrap().id(),
            b1.id()
        );
        assert_eq!(
            store.common_ancestor(b2.id(), b2.id()).unwrap().id(),
            b2.id()
        );
        // Fully disjoint non-genesis paths meet at genesis.
        let d1 = extend(&mut store, genesis_id, 9);
        assert_eq!(
            store.common_ancestor(b3.id(), d1.id()).unwrap().id(),
            genesis_id
        );
        // Unknown ids have no common ancestor.
        assert!(store
            .common_ancestor(b3.id(), HashValue::of(b"nope"))
            .is_none());
        assert!(store
            .common_ancestor(HashValue::of(b"nope"), b3.id())
            .is_none());
    }

    #[test]
    fn genesis_has_no_ancestors() {
        let store = BlockStore::new();
        assert_eq!(store.ancestors(store.genesis_id()).count(), 0);
        assert!(!store.is_empty());
    }
}
