//! Endorsement tracking: turning strong-votes into graded commit strength.
//!
//! Per §3.2, a strong-vote for block `B'` *endorses* `B'` itself and every
//! ancestor `B` of `B'` whose round the vote's
//! [`EndorseInfo`] admits
//! (`B.round > marker`, or `B.round ∈ I` in the §3.4 generalization). The
//! [`EndorsementTracker`] maintains, per block, the set of distinct
//! endorsing replicas; [`ProtocolConfig::strength_of`] converts that tally
//! into the commit strength `x` of Definition 1, and every increase for a
//! committed block is reported as a [`StrongCommitUpdate`] — the entry type
//! of the §5 commit log.

use std::collections::HashMap;

use sft_crypto::HashValue;
use sft_types::{
    EndorseInfo, EndorseMode, ReplicaId, Round, RoundIntervalSet, SignerSet, StrongCommitUpdate,
    StrongVote,
};

use crate::{Block, BlockStore, ProtocolConfig};

/// Computes the [`EndorseInfo`] an honest voter attaches when voting for
/// `block`, from the `(round, id)` history of every block it ever voted
/// for. Shared by the height-based and round-based replicas — the marker
/// maintenance of §3.2 and the interval computation of §3.4 are protocol
/// independent.
///
/// - [`EndorseMode::Vanilla`] — no info.
/// - [`EndorseMode::Marker`] — the highest round of any previously voted
///   block that conflicts with (is not an ancestor of) `block`.
/// - [`EndorseMode::Interval`] — `I = [1, block.round]` minus, per
///   conflicting voted block `F`, the window `D_F = (fork_round, F.round]`
///   where `fork_round` is the round of `F`'s common ancestor with `block`.
///   Rounds *below* the fork point stay endorsed — the refinement the
///   single marker gives up.
///
/// # Examples
///
/// ```
/// use sft_core::{honest_endorse_info, Block, BlockStore};
/// use sft_types::{EndorseInfo, EndorseMode, Payload, ReplicaId, Round};
///
/// let mut store = BlockStore::new();
/// let b1 = Block::new(store.genesis(), Round::new(1), ReplicaId::new(1), Payload::empty());
/// let b2 = Block::new(&b1, Round::new(2), ReplicaId::new(2), Payload::empty());
/// store.insert(b1.clone()).unwrap();
/// store.insert(b2.clone()).unwrap();
/// // A clean history endorses everything: marker 0.
/// let voted = vec![(Round::new(1), b1.id())];
/// let info = honest_endorse_info(EndorseMode::Marker, &store, &voted, &b2);
/// assert_eq!(info, EndorseInfo::Marker(Round::ZERO));
/// ```
pub fn honest_endorse_info(
    mode: EndorseMode,
    store: &BlockStore,
    voted_blocks: &[(Round, HashValue)],
    block: &Block,
) -> EndorseInfo {
    let conflicting = |id: &HashValue| !store.extends(block.id(), *id);
    match mode {
        EndorseMode::Vanilla => EndorseInfo::None,
        EndorseMode::Marker => {
            let marker = voted_blocks
                .iter()
                .filter(|(_, id)| conflicting(id))
                .map(|(round, _)| *round)
                .max()
                .unwrap_or(Round::ZERO);
            EndorseInfo::Marker(marker)
        }
        EndorseMode::Interval => {
            let mut set = RoundIntervalSet::full_range(Round::new(1), block.round());
            for (round, id) in voted_blocks {
                if !conflicting(id) {
                    continue;
                }
                let fork_round = store
                    .common_ancestor(*id, block.id())
                    .map(Block::round)
                    .unwrap_or(Round::ZERO);
                if fork_round < *round {
                    set.subtract(fork_round.next(), *round);
                }
            }
            EndorseInfo::Intervals(set)
        }
    }
}

/// Per-block endorser accounting and strength grading.
///
/// # Examples
///
/// ```
/// use sft_core::{Block, BlockStore, EndorsementTracker, ProtocolConfig};
/// use sft_crypto::KeyRegistry;
/// use sft_types::{EndorseInfo, Payload, ReplicaId, Round, StrongVote};
///
/// let cfg = ProtocolConfig::for_replicas(4);
/// let registry = KeyRegistry::deterministic(4);
/// let mut store = BlockStore::new();
/// let b1 = Block::new(store.genesis(), Round::new(1), ReplicaId::new(0), Payload::empty());
/// let b2 = Block::new(&b1, Round::new(2), ReplicaId::new(1), Payload::empty());
/// store.insert(b1.clone()).unwrap();
/// store.insert(b2.clone()).unwrap();
///
/// let mut tracker = EndorsementTracker::new(cfg);
/// // A marker-0 vote for b2 endorses b2 *and* its ancestor b1.
/// let vote = StrongVote::new(
///     b2.vote_data(),
///     EndorseInfo::Marker(Round::ZERO),
///     &registry.key_pair(3).unwrap(),
/// );
/// tracker.record_vote(&vote, &store);
/// assert_eq!(tracker.endorsers(b1.id()), 1);
/// assert_eq!(tracker.endorsers(b2.id()), 1);
/// ```
#[derive(Clone, Debug)]
pub struct EndorsementTracker {
    config: ProtocolConfig,
    endorsers: HashMap<HashValue, SignerSet>,
    /// Highest strength level already reported per block, so level
    /// increases are emitted exactly once.
    reported_level: HashMap<HashValue, u64>,
    /// Per-voter endorsement frontier: the last block each voter's recorded
    /// vote named, plus the info it carried. When a later vote extends the
    /// frontier and its info admits no sub-frontier round the frontier vote
    /// excluded, the ancestor walk stops at the frontier instead of
    /// re-walking to genesis — the amortization that keeps per-vote work
    /// proportional to chain *growth*, not chain *length*.
    frontiers: HashMap<ReplicaId, VoterFrontier>,
    /// Total ancestors visited across all walks — the cost metric the
    /// frontier cutoff exists to shrink (observable via
    /// [`walk_steps`](Self::walk_steps); the equivalence property suite
    /// asserts it stays below the naive full walk's).
    walk_steps: u64,
}

/// The most recent vote recorded for one voter: walk-cutoff state.
#[derive(Clone, Debug)]
struct VoterFrontier {
    block_id: HashValue,
    round: Round,
    info: EndorseInfo,
}

/// True if every round `<= ceiling` admitted by `new` is also admitted by
/// `old` — the condition under which a walk may stop at the old vote's
/// block: anything the new vote could endorse below it, the old vote
/// already did.
///
/// Honest histories always satisfy this (markers only grow; §3.4 exclusion
/// windows below an extended block are stable), so the fallback full walk
/// only runs for chain switches and forged infos.
fn admits_subset_below(new: &EndorseInfo, old: &EndorseInfo, ceiling: Round) -> bool {
    if ceiling == Round::ZERO {
        return true; // no endorsable round exists at or below genesis
    }
    let restrict = |info: &EndorseInfo| -> RoundIntervalSet {
        match info {
            EndorseInfo::None => RoundIntervalSet::new(),
            EndorseInfo::Marker(m) => RoundIntervalSet::from_marker(*m, ceiling),
            EndorseInfo::Intervals(set) => {
                let mut s = set.clone();
                s.clamp(Round::new(1), ceiling);
                s
            }
        }
    };
    match (new, old) {
        // A vote that endorses no ancestors is vacuously covered.
        (EndorseInfo::None, _) => true,
        // Marker vs marker: admitted-below sets are suffixes (m, ceiling];
        // subset iff the new marker is at least the old one.
        (EndorseInfo::Marker(new_m), EndorseInfo::Marker(old_m)) => {
            *new_m >= *old_m || *new_m >= ceiling
        }
        _ => restrict(new).is_subset_of(&restrict(old)),
    }
}

impl EndorsementTracker {
    /// Creates an empty tracker.
    pub fn new(config: ProtocolConfig) -> Self {
        Self {
            config,
            endorsers: HashMap::new(),
            reported_level: HashMap::new(),
            frontiers: HashMap::new(),
            walk_steps: 0,
        }
    }

    /// Records the endorsements carried by one verified vote: the voted
    /// block directly, plus each strict ancestor admitted by the vote's
    /// [`EndorseInfo`]. Returns the ids of blocks
    /// whose endorser set grew.
    ///
    /// Incremental: the walk stops early at the voter's previous voted
    /// block (its *frontier*) whenever the new info cannot endorse any
    /// sub-frontier round the previous vote refused — everything below is
    /// then already credited, so a voter following one growing chain costs
    /// O(blocks since its last vote) instead of O(chain length). Votes that
    /// jump chains or carry widened (forged) infos fall back to the full
    /// walk and stay exactly equivalent to it.
    ///
    /// Callers must have verified the vote's signature (the
    /// [`VoteTracker`](crate::VoteTracker) has) — the endorsement walk
    /// itself trusts the vote. Unknown blocks are skipped: endorsements for
    /// a block the store has not seen cannot be attributed to a chain.
    pub fn record_vote(&mut self, vote: &StrongVote, store: &BlockStore) -> Vec<HashValue> {
        let mut grown = Vec::new();
        let voted_id = vote.data().block_id();
        if !store.contains(voted_id) {
            return grown;
        }
        let n = self.config.n();
        // The vote endorses the voted block unconditionally.
        if self
            .endorsers
            .entry(voted_id)
            .or_insert_with(|| SignerSet::new(n))
            .insert(vote.author())
        {
            grown.push(voted_id);
        }
        // The frontier cutoff: sound only if the new info admits no round
        // at or below the frontier that the frontier vote's info refused.
        let stop_at = self.frontiers.get(&vote.author()).and_then(|frontier| {
            admits_subset_below(vote.endorse(), &frontier.info, frontier.round)
                .then_some(frontier.block_id)
        });
        self.frontiers.insert(
            vote.author(),
            VoterFrontier {
                block_id: voted_id,
                round: vote.round(),
                info: vote.endorse().clone(),
            },
        );
        // Walk ancestors while their rounds can still be endorsed; rounds
        // strictly decrease toward genesis, so the info's minimum endorsed
        // round is a sound early cutoff.
        let Some(min_round) = vote.endorse().min_endorsed_round() else {
            return grown;
        };
        for ancestor in store.ancestors(voted_id) {
            if ancestor.round() < min_round || ancestor.is_genesis() {
                break;
            }
            self.walk_steps += 1;
            if vote.endorse().endorses_ancestor_round(ancestor.round())
                && self
                    .endorsers
                    .entry(ancestor.id())
                    .or_insert_with(|| SignerSet::new(n))
                    .insert(vote.author())
            {
                grown.push(ancestor.id());
            }
            if Some(ancestor.id()) == stop_at {
                break; // everything below was credited by the frontier vote
            }
        }
        grown
    }

    /// Number of distinct replicas endorsing `block_id`.
    pub fn endorsers(&self, block_id: HashValue) -> usize {
        self.endorsers.get(&block_id).map_or(0, SignerSet::len)
    }

    /// Total ancestors visited by [`record_vote`](Self::record_vote) walks
    /// since construction — the work the frontier cutoff amortizes. A
    /// voter repeatedly extending one chain contributes O(new blocks), not
    /// O(chain length), per vote.
    pub fn walk_steps(&self) -> u64 {
        self.walk_steps
    }

    /// The commit strength `x` currently conferred on `block_id` by its
    /// endorsers, or `None` below the classic quorum.
    pub fn strength(&self, block_id: HashValue) -> Option<u64> {
        self.config.strength_of(self.endorsers(block_id))
    }

    /// Reports `block_id`'s strength as a [`StrongCommitUpdate`] if it
    /// exceeds every level previously reported for the block. Call this for
    /// *committed* blocks only — strength grades a commit; it does not
    /// create one.
    pub fn take_level_update(
        &mut self,
        block_id: HashValue,
        store: &BlockStore,
    ) -> Option<StrongCommitUpdate> {
        let level = self.strength(block_id)?;
        let block = store.get(block_id)?;
        let reported = self.reported_level.get(&block_id).copied();
        if reported.is_some_and(|r| r >= level) {
            return None;
        }
        self.reported_level.insert(block_id, level);
        Some(StrongCommitUpdate::new(
            block_id,
            block.round(),
            block.height(),
            level,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Block;
    use sft_crypto::KeyRegistry;
    use sft_types::{EndorseInfo, Payload, ReplicaId, Round, RoundIntervalSet};

    struct Fixture {
        cfg: ProtocolConfig,
        registry: KeyRegistry,
        store: BlockStore,
        chain: Vec<Block>, // b1..b4, rounds 1..4
    }

    fn fixture() -> Fixture {
        let cfg = ProtocolConfig::for_replicas(4);
        let registry = KeyRegistry::deterministic(4);
        let mut store = BlockStore::new();
        let mut chain = Vec::new();
        let mut parent = store.genesis().clone();
        for round in 1..=4u64 {
            let block = Block::new(
                &parent,
                Round::new(round),
                ReplicaId::new((round % 4) as u16),
                Payload::synthetic(1, 1, round),
            );
            store.insert(block.clone()).unwrap();
            parent = block.clone();
            chain.push(block);
        }
        Fixture {
            cfg,
            registry,
            store,
            chain,
        }
    }

    fn vote_for(fx: &Fixture, signer: u64, block: &Block, endorse: EndorseInfo) -> StrongVote {
        StrongVote::new(
            block.vote_data(),
            endorse,
            &fx.registry.key_pair(signer).unwrap(),
        )
    }

    #[test]
    fn marker_zero_endorses_whole_chain() {
        let fx = fixture();
        let mut tracker = EndorsementTracker::new(fx.cfg);
        let vote = vote_for(&fx, 0, &fx.chain[3], EndorseInfo::Marker(Round::ZERO));
        let grown = tracker.record_vote(&vote, &fx.store);
        assert_eq!(grown.len(), 4, "b4 direct + ancestors b3, b2, b1");
        for block in &fx.chain {
            assert_eq!(tracker.endorsers(block.id()), 1);
        }
        assert_eq!(
            tracker.endorsers(fx.store.genesis_id()),
            0,
            "genesis needs no endorsement"
        );
    }

    #[test]
    fn marker_cuts_off_older_ancestors() {
        let fx = fixture();
        let mut tracker = EndorsementTracker::new(fx.cfg);
        // Marker 2: the voter once voted for a conflicting block at round 2,
        // so only ancestors with round > 2 are endorsed.
        let vote = vote_for(&fx, 1, &fx.chain[3], EndorseInfo::Marker(Round::new(2)));
        tracker.record_vote(&vote, &fx.store);
        assert_eq!(tracker.endorsers(fx.chain[3].id()), 1, "direct vote");
        assert_eq!(tracker.endorsers(fx.chain[2].id()), 1, "round 3 > marker");
        assert_eq!(tracker.endorsers(fx.chain[1].id()), 0, "round 2 excluded");
        assert_eq!(tracker.endorsers(fx.chain[0].id()), 0, "round 1 excluded");
    }

    #[test]
    fn interval_info_endorses_holes() {
        let fx = fixture();
        let mut tracker = EndorsementTracker::new(fx.cfg);
        // I = [1, 4] \ [2, 3]: endorses rounds 1 and 4 only (§3.4 shape).
        let mut set = RoundIntervalSet::full_range(Round::new(1), Round::new(4));
        set.subtract(Round::new(2), Round::new(3));
        let vote = vote_for(&fx, 2, &fx.chain[3], EndorseInfo::Intervals(set));
        tracker.record_vote(&vote, &fx.store);
        assert_eq!(tracker.endorsers(fx.chain[3].id()), 1);
        assert_eq!(tracker.endorsers(fx.chain[2].id()), 0);
        assert_eq!(tracker.endorsers(fx.chain[1].id()), 0);
        assert_eq!(
            tracker.endorsers(fx.chain[0].id()),
            1,
            "interval hole skipped, not cut off"
        );
    }

    #[test]
    fn none_info_endorses_only_voted_block() {
        let fx = fixture();
        let mut tracker = EndorsementTracker::new(fx.cfg);
        let vote = vote_for(&fx, 3, &fx.chain[3], EndorseInfo::None);
        tracker.record_vote(&vote, &fx.store);
        assert_eq!(tracker.endorsers(fx.chain[3].id()), 1);
        assert_eq!(tracker.endorsers(fx.chain[2].id()), 0);
    }

    #[test]
    fn endorsers_are_distinct_replicas() {
        let fx = fixture();
        let mut tracker = EndorsementTracker::new(fx.cfg);
        let b1 = &fx.chain[0];
        for _ in 0..3 {
            let vote = vote_for(&fx, 0, b1, EndorseInfo::Marker(Round::ZERO));
            tracker.record_vote(&vote, &fx.store);
        }
        assert_eq!(
            tracker.endorsers(b1.id()),
            1,
            "the same replica counts once"
        );
    }

    #[test]
    fn unknown_block_is_skipped() {
        let fx = fixture();
        let mut tracker = EndorsementTracker::new(fx.cfg);
        let foreign = Block::new(
            &Block::genesis(),
            Round::new(9),
            ReplicaId::new(0),
            Payload::synthetic(2, 2, 9),
        );
        let vote = vote_for(&fx, 0, &foreign, EndorseInfo::Marker(Round::ZERO));
        assert!(tracker.record_vote(&vote, &fx.store).is_empty());
    }

    #[test]
    fn strength_tracks_quorum_ladder() {
        let fx = fixture();
        let mut tracker = EndorsementTracker::new(fx.cfg);
        let b1 = &fx.chain[0];
        assert_eq!(tracker.strength(b1.id()), None);
        for signer in 0..3 {
            let vote = vote_for(&fx, signer, b1, EndorseInfo::Marker(Round::ZERO));
            tracker.record_vote(&vote, &fx.store);
        }
        assert_eq!(
            tracker.strength(b1.id()),
            Some(1),
            "2f + 1 endorsers: level f"
        );
        let vote = vote_for(&fx, 3, b1, EndorseInfo::Marker(Round::ZERO));
        tracker.record_vote(&vote, &fx.store);
        assert_eq!(
            tracker.strength(b1.id()),
            Some(2),
            "all n endorsers: level 2f"
        );
    }

    #[test]
    fn level_updates_emitted_once_per_level() {
        let fx = fixture();
        let mut tracker = EndorsementTracker::new(fx.cfg);
        let b1 = &fx.chain[0];
        assert!(
            tracker.take_level_update(b1.id(), &fx.store).is_none(),
            "no quorum yet"
        );
        for signer in 0..3 {
            let vote = vote_for(&fx, signer, b1, EndorseInfo::Marker(Round::ZERO));
            tracker.record_vote(&vote, &fx.store);
        }
        let up = tracker
            .take_level_update(b1.id(), &fx.store)
            .expect("level f update");
        assert_eq!(up.level(), 1);
        assert_eq!(up.block_id(), b1.id());
        assert_eq!(up.round(), Round::new(1));
        assert!(
            tracker.take_level_update(b1.id(), &fx.store).is_none(),
            "no repeat"
        );
        let vote = vote_for(&fx, 3, b1, EndorseInfo::Marker(Round::ZERO));
        tracker.record_vote(&vote, &fx.store);
        let up = tracker
            .take_level_update(b1.id(), &fx.store)
            .expect("level 2f update");
        assert_eq!(up.level(), 2);
    }

    /// §3.4 recovery scenario: the voter once voted on a fork branching off
    /// round 1, then voted the winning chain. The single marker (= the
    /// fork's round) cuts off every ancestor at or below it; the interval
    /// set re-admits rounds below the fork point.
    #[test]
    fn interval_mode_recovers_endorsements_below_the_fork_point() {
        let fx = fixture();
        let mut store = fx.store.clone();
        // Fork f5 off b1 (round 1): rounds 2..4 on the main chain conflict.
        let fork = Block::new(
            &fx.chain[0],
            Round::new(5),
            ReplicaId::new(2),
            Payload::synthetic(3, 3, 99),
        );
        store.insert(fork.clone()).unwrap();
        let next = Block::new(
            &fx.chain[3],
            Round::new(6),
            ReplicaId::new(2),
            Payload::empty(),
        );
        store.insert(next.clone()).unwrap();

        // History: voted b1..b4 honestly, then strayed onto the fork.
        let mut voted: Vec<(Round, HashValue)> =
            fx.chain.iter().map(|b| (b.round(), b.id())).collect();
        voted.push((fork.round(), fork.id()));

        // Now voting for `next`, which extends b4 — the fork conflicts.
        let marker = honest_endorse_info(EndorseMode::Marker, &store, &voted, &next);
        assert_eq!(marker, EndorseInfo::Marker(Round::new(5)));
        // The marker refuses every ancestor round <= 5: b2..b4 all lost.
        for round in 2..=4u64 {
            assert!(!marker.endorses_ancestor_round(Round::new(round)));
        }

        let interval = honest_endorse_info(EndorseMode::Interval, &store, &voted, &next);
        // Fork point is b1 (round 1): only D_F = [2, 5] is excluded...
        for round in 2..=5u64 {
            assert!(!interval.endorses_ancestor_round(Round::new(round)));
        }
        // ...but round 1 below the fork point stays endorsed.
        assert!(interval.endorses_ancestor_round(Round::new(1)));
        assert!(interval.endorses_ancestor_round(Round::new(6)));
        // §3.4 soundness: the marker approximation is a subset of I.
        let EndorseInfo::Intervals(ref set) = interval else {
            panic!("interval mode yields interval sets");
        };
        assert!(RoundIntervalSet::from_marker(Round::new(5), Round::new(6)).is_subset_of(set));
    }

    #[test]
    fn interval_mode_with_clean_history_endorses_everything() {
        let fx = fixture();
        let voted: Vec<(Round, HashValue)> =
            fx.chain[..3].iter().map(|b| (b.round(), b.id())).collect();
        let info = honest_endorse_info(EndorseMode::Interval, &fx.store, &voted, &fx.chain[3]);
        for round in 1..=4u64 {
            assert!(info.endorses_ancestor_round(Round::new(round)));
        }
        assert_eq!(
            honest_endorse_info(EndorseMode::Vanilla, &fx.store, &voted, &fx.chain[3]),
            EndorseInfo::None
        );
    }

    /// The tentpole safety scenario at the endorsement layer: a block whose
    /// classic quorum contains more than `f` corrupt voters is *certified*,
    /// but the strengthened rule never grades it above level `f` — so a
    /// deployment configured to require a level-2 commit (tolerating the 2
    /// actual faults) refuses to treat it as committed.
    #[test]
    fn strengthened_rule_rejects_corrupt_majority_quorum() {
        let fx = fixture();
        let mut tracker = EndorsementTracker::new(fx.cfg);
        let b1 = &fx.chain[0];
        // Replicas 0 and 1 are alive-but-corrupt; replica 2 is honest.
        // All three endorse b1 — a full 2f + 1 quorum.
        for signer in 0..3 {
            let vote = vote_for(&fx, signer, b1, EndorseInfo::Marker(Round::ZERO));
            tracker.record_vote(&vote, &fx.store);
        }
        let corrupt = 2usize;
        assert!(corrupt > fx.cfg.f());
        // Classic rule accepts: quorum reached.
        assert!(tracker.endorsers(b1.id()) >= fx.cfg.quorum());
        // Strengthened rule rejects a commit at the level that would be
        // needed to survive the 2 corrupt voters.
        assert!(!fx
            .cfg
            .meets_strong_quorum(tracker.endorsers(b1.id()), corrupt as u64));
        assert_eq!(tracker.strength(b1.id()), Some(1), "graded only f-strong");
    }
}
