//! Equivalence property suite for the incremental endorsement walk.
//!
//! [`EndorsementTracker::record_vote`] amortizes the §3.2/§3.4 ancestor
//! walk with a per-voter frontier cutoff. The cutoff is an optimization,
//! not a semantics change, so this suite pits the tracker against a naive
//! reference that re-walks the *entire* ancestor chain on every vote and
//! asserts — over seeded-PRNG randomized vote/fork sequences, for
//! f ∈ {1, 2}, in every endorse mode including §3.4 intervals, with honest
//! histories, chain jumps, duplicates, and forged infos — that the two
//! report identical grown-block sequences, identical endorser counts for
//! every block, and identical level updates. A final check confirms the
//! cutoff actually fires: on honest single-chain histories the tracker
//! visits strictly fewer ancestors than the reference.

use std::collections::{BTreeSet, HashMap};

use sft_core::{honest_endorse_info, Block, BlockStore, EndorsementTracker, ProtocolConfig};
use sft_crypto::{HashValue, KeyRegistry, SplitMix64};
use sft_types::{
    EndorseInfo, EndorseMode, Payload, ReplicaId, Round, RoundIntervalSet, StrongCommitUpdate,
    StrongVote,
};

/// The specification-level tracker: no frontier, no early cutoff — every
/// vote walks the full ancestor chain and applies
/// [`EndorseInfo::endorses_ancestor_round`] per ancestor. Deliberately
/// simple enough to be obviously correct.
struct NaiveTracker {
    config: ProtocolConfig,
    endorsers: HashMap<HashValue, BTreeSet<ReplicaId>>,
    reported_level: HashMap<HashValue, u64>,
    walk_steps: u64,
}

impl NaiveTracker {
    fn new(config: ProtocolConfig) -> Self {
        Self {
            config,
            endorsers: HashMap::new(),
            reported_level: HashMap::new(),
            walk_steps: 0,
        }
    }

    fn record_vote(&mut self, vote: &StrongVote, store: &BlockStore) -> Vec<HashValue> {
        let mut grown = Vec::new();
        let voted_id = vote.data().block_id();
        if !store.contains(voted_id) {
            return grown;
        }
        if self
            .endorsers
            .entry(voted_id)
            .or_default()
            .insert(vote.author())
        {
            grown.push(voted_id);
        }
        for ancestor in store.ancestors(voted_id) {
            if ancestor.is_genesis() {
                break;
            }
            self.walk_steps += 1;
            if vote.endorse().endorses_ancestor_round(ancestor.round())
                && self
                    .endorsers
                    .entry(ancestor.id())
                    .or_default()
                    .insert(vote.author())
            {
                grown.push(ancestor.id());
            }
        }
        grown
    }

    fn endorsers(&self, block_id: HashValue) -> usize {
        self.endorsers.get(&block_id).map_or(0, BTreeSet::len)
    }

    fn take_level_update(
        &mut self,
        block_id: HashValue,
        store: &BlockStore,
    ) -> Option<StrongCommitUpdate> {
        let level = self.config.strength_of(self.endorsers(block_id))?;
        let block = store.get(block_id)?;
        if self
            .reported_level
            .get(&block_id)
            .is_some_and(|r| *r >= level)
        {
            return None;
        }
        self.reported_level.insert(block_id, level);
        Some(StrongCommitUpdate::new(
            block_id,
            block.round(),
            block.height(),
            level,
        ))
    }
}

/// One randomized scenario: a growing block tree (forks included) and a
/// stream of votes — honest infos computed from each voter's real history,
/// plus occasional forged markers/intervals and duplicate re-deliveries.
struct Scenario {
    rng: SplitMix64,
    store: BlockStore,
    /// Every non-genesis block, in creation order (vote/fork targets).
    blocks: Vec<Block>,
    /// Per-replica honest voting history, as the replicas would keep it.
    voted: Vec<Vec<(Round, HashValue)>>,
    next_round: u64,
    registry: KeyRegistry,
    mode: EndorseMode,
    forge_percent: u64,
}

impl Scenario {
    fn new(seed: u64, n: usize, mode: EndorseMode, forge_percent: u64) -> Self {
        let mut scenario = Self {
            rng: SplitMix64::new(seed),
            store: BlockStore::new(),
            blocks: Vec::new(),
            voted: vec![Vec::new(); n],
            next_round: 1,
            registry: KeyRegistry::deterministic(n),
            mode,
            forge_percent,
        };
        scenario.grow_block(); // at least one block to vote on
        scenario
    }

    /// Extends a random existing block (biased toward recent tips, so
    /// chains grow long but forks still appear) with a fresh block.
    fn grow_block(&mut self) {
        let parent = if self.blocks.is_empty() || self.rng.next_below(100) < 70 {
            self.blocks.last().cloned()
        } else {
            let idx = self.rng.next_below(self.blocks.len() as u64) as usize;
            Some(self.blocks[idx].clone())
        }
        .unwrap_or_else(|| self.store.genesis().clone());
        let round = Round::new(self.next_round);
        self.next_round += 1;
        let proposer = ReplicaId::new(self.rng.next_below(self.voted.len() as u64) as u16);
        let block = Block::new(&parent, round, proposer, Payload::empty());
        self.store.insert(block.clone()).expect("parent stored");
        self.blocks.push(block);
    }

    /// A random replica votes for a random block: honestly (info computed
    /// from its real history, which it then extends) or, with
    /// `forge_percent` probability, with a forged info that may widen or
    /// narrow what its history admits.
    fn next_vote(&mut self) -> StrongVote {
        let voter = self.rng.next_below(self.voted.len() as u64) as usize;
        // Bias toward recent blocks so voters mostly track the tip (the
        // fast path) while still sometimes jumping deep into history.
        let len = self.blocks.len() as u64;
        let idx = if self.rng.next_below(100) < 60 {
            len - 1 - self.rng.next_below(len.min(3))
        } else {
            self.rng.next_below(len)
        } as usize;
        let block = self.blocks[idx].clone();
        let info = if self.rng.next_below(100) < self.forge_percent {
            self.forged_info(block.round())
        } else {
            let info = honest_endorse_info(self.mode, &self.store, &self.voted[voter], &block);
            self.voted[voter].push((block.round(), block.id()));
            info
        };
        StrongVote::new(
            block.vote_data(),
            info,
            &self.registry.key_pair(voter as u64).expect("key exists"),
        )
    }

    /// A Byzantine info: a random marker (often 0 — the "clean history"
    /// lie), a random interval soup, or nothing.
    fn forged_info(&mut self, vote_round: Round) -> EndorseInfo {
        match self.rng.next_below(3) {
            0 => EndorseInfo::Marker(Round::new(self.rng.next_below(vote_round.as_u64() + 1))),
            1 => {
                let mut set = RoundIntervalSet::new();
                for _ in 0..=self.rng.next_below(3) {
                    let lo = 1 + self.rng.next_below(vote_round.as_u64().max(1));
                    let hi = lo + self.rng.next_below(4);
                    set.insert(Round::new(lo), Round::new(hi.min(vote_round.as_u64())));
                }
                EndorseInfo::Intervals(set)
            }
            _ => EndorseInfo::None,
        }
    }
}

/// Runs one scenario for `steps` events, checking after every vote that
/// the incremental tracker and the naive reference agree on grown blocks,
/// endorser counts, and level updates. Returns (incremental, naive) walk
/// step totals.
fn check_equivalence(mut scenario: Scenario, steps: usize) -> (u64, u64) {
    let config = ProtocolConfig::for_replicas(scenario.voted.len());
    let mut fast = EndorsementTracker::new(config);
    let mut naive = NaiveTracker::new(config);
    let mut last_vote: Option<StrongVote> = None;
    for step in 0..steps {
        // ~1 in 4 events grows the tree; ~1 in 12 re-delivers a duplicate.
        if scenario.rng.next_below(4) == 0 {
            scenario.grow_block();
            continue;
        }
        let vote = match (&last_vote, scenario.rng.next_below(12)) {
            (Some(prev), 0) => prev.clone(),
            _ => scenario.next_vote(),
        };
        last_vote = Some(vote.clone());

        let grown_fast = fast.record_vote(&vote, &scenario.store);
        let grown_naive = naive.record_vote(&vote, &scenario.store);
        assert_eq!(
            grown_fast,
            grown_naive,
            "step {step}: grown blocks diverge for vote by {:?} on round {}",
            vote.author(),
            vote.round()
        );
        for block in &scenario.blocks {
            assert_eq!(
                fast.endorsers(block.id()),
                naive.endorsers(block.id()),
                "step {step}: endorser count diverges on block r={}",
                block.round()
            );
            assert_eq!(
                fast.take_level_update(block.id(), &scenario.store),
                naive.take_level_update(block.id(), &scenario.store),
                "step {step}: level update diverges on block r={}",
                block.round()
            );
        }
    }
    (fast.walk_steps(), naive.walk_steps)
}

/// The full randomized matrix: f ∈ {1, 2} (n = 4, 7) × every endorse mode
/// × honest-only and 30%-forged vote streams × many seeds.
#[test]
fn incremental_walk_matches_naive_reference() {
    let modes = [
        EndorseMode::Vanilla,
        EndorseMode::Marker,
        EndorseMode::Interval,
    ];
    for n in [4usize, 7] {
        for mode in modes {
            for forge_percent in [0u64, 30] {
                for seed in 0..12u64 {
                    let scenario = Scenario::new(
                        seed * 1009 + n as u64 * 31 + forge_percent,
                        n,
                        mode,
                        forge_percent,
                    );
                    check_equivalence(scenario, 160);
                }
            }
        }
    }
}

/// A deep single-chain history with interval endorsements — the exact
/// workload the frontier cutoff targets: every replica votes for every
/// block of one growing chain. Equivalence must hold *and* the incremental
/// tracker must visit O(chain) total ancestors where the naive reference
/// visits O(chain²).
#[test]
fn frontier_cutoff_fires_on_honest_chains() {
    const CHAIN: u64 = 120;
    for n in [4usize, 7] {
        let config = ProtocolConfig::for_replicas(n);
        let registry = KeyRegistry::deterministic(n);
        let mut store = BlockStore::new();
        let mut fast = EndorsementTracker::new(config);
        let mut naive = NaiveTracker::new(config);
        let mut voted: Vec<Vec<(Round, HashValue)>> = vec![Vec::new(); n];
        let mut tip = store.genesis().clone();
        for round in 1..=CHAIN {
            let block = Block::new(&tip, Round::new(round), ReplicaId::new(0), Payload::empty());
            store.insert(block.clone()).expect("tip stored");
            for (voter, history) in voted.iter_mut().enumerate() {
                let info = honest_endorse_info(EndorseMode::Interval, &store, history, &block);
                history.push((block.round(), block.id()));
                let vote = StrongVote::new(
                    block.vote_data(),
                    info,
                    &registry.key_pair(voter as u64).expect("key exists"),
                );
                assert_eq!(
                    fast.record_vote(&vote, &store),
                    naive.record_vote(&vote, &store),
                    "round {round}: grown blocks diverge"
                );
            }
            tip = block;
        }
        let (fast_steps, naive_steps) = (fast.walk_steps(), naive.walk_steps);
        assert!(
            naive_steps > CHAIN * CHAIN / 4,
            "n={n}: naive reference should be quadratic, walked {naive_steps}"
        );
        assert!(
            fast_steps <= n as u64 * 2 * CHAIN,
            "n={n}: frontier cutoff too weak: {fast_steps} incremental vs {naive_steps} naive walk steps"
        );
    }
}

/// Forged infos force the full-walk fallback; the trackers must still
/// agree vote for vote (the cutoff may only fire when provably sound).
#[test]
fn forged_infos_fall_back_without_divergence() {
    for seed in 0..8u64 {
        let scenario = Scenario::new(7000 + seed, 4, EndorseMode::Interval, 100);
        check_equivalence(scenario, 120);
    }
}
