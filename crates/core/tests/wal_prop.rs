//! Seeded-PRNG property tests for the write-ahead-log record codec and
//! crash-point fault injection for the append path — the companion of
//! `types/tests/envelope_prop.rs` for the durability layer.
//!
//! Codec properties: every random record round-trips through its frame;
//! every truncation point reads as a torn tail (`Ok(None)` / recovered
//! prefix), never a wrong answer; every bit flip inside a complete frame's
//! checksum-covered region is detected; a hostile length prefix is
//! rejected before allocation.
//!
//! Crash points: a [`WalSink`] test double fails or truncates the k-th
//! append, for every k over seeded schedules, and recovery from the
//! resulting log image must yield exactly the records that were durably
//! appended before the fault — then keep working when appends resume.

use std::io;

use sft_core::{
    scan_wal, Block, FrameError, MemSink, QuorumCertificate, Wal, WalError, WalRecord, WalSink,
};
use sft_crypto::rng::{RngCore, SplitMix64};
use sft_crypto::{HashValue, KeyRegistry};
use sft_types::{
    EndorseInfo, Height, Payload, ReplicaId, Round, RoundIntervalSet, SignerSet, StrongVote,
    TimeoutCertificate, VoteData,
};

const N: usize = 7;

fn random_hash(rng: &mut SplitMix64) -> HashValue {
    HashValue::of(&rng.next_u64().to_be_bytes())
}

fn random_vote_data(rng: &mut SplitMix64) -> VoteData {
    let parent_round = Round::new(rng.next_below(1 << 20));
    let round = Round::new(parent_round.as_u64() + 1 + rng.next_below(8));
    VoteData::new(random_hash(rng), round, random_hash(rng), parent_round)
}

fn random_signers(rng: &mut SplitMix64) -> SignerSet {
    let count = 1 + rng.next_below(N as u64) as usize;
    SignerSet::from_iter_with_capacity(
        N,
        (0..N as u16)
            .filter(|_| rng.next_below(2) == 0)
            .take(count)
            .map(ReplicaId::new),
    )
}

fn random_record(rng: &mut SplitMix64, registry: &KeyRegistry) -> WalRecord {
    match rng.next_below(4) {
        0 => {
            let endorse = match rng.next_below(3) {
                0 => EndorseInfo::None,
                1 => EndorseInfo::Marker(Round::new(rng.next_below(1 << 10))),
                _ => {
                    let lo = Round::new(1 + rng.next_below(100));
                    let hi = Round::new(lo.as_u64() + rng.next_below(100));
                    EndorseInfo::Intervals(RoundIntervalSet::full_range(lo, hi))
                }
            };
            let key_pair = registry.key_pair(rng.next_below(N as u64)).unwrap();
            WalRecord::VoteSent(StrongVote::new(random_vote_data(rng), endorse, &key_pair))
        }
        1 => WalRecord::QcFormed(QuorumCertificate::new(
            random_vote_data(rng),
            random_signers(rng),
        )),
        2 => {
            let hqc = Round::new(rng.next_below(1 << 20));
            WalRecord::TcFormed(TimeoutCertificate::new(
                Round::new(hqc.as_u64() + 1 + rng.next_below(8)),
                hqc,
                random_signers(rng),
            ))
        }
        _ => {
            let parent_round = Round::new(rng.next_below(1 << 20));
            WalRecord::BlockCommitted(Block::from_parts(
                random_hash(rng),
                parent_round,
                Round::new(parent_round.as_u64() + 1 + rng.next_below(8)),
                Height::new(rng.next_below(1 << 20)),
                ReplicaId::new(rng.next_below(N as u64) as u16),
                Payload::synthetic(
                    rng.next_below(64) as u32,
                    rng.next_below(256) as u32,
                    rng.next_u64(),
                ),
            ))
        }
    }
}

fn random_records(rng: &mut SplitMix64, count: usize) -> Vec<WalRecord> {
    let registry = KeyRegistry::deterministic(N);
    (0..count).map(|_| random_record(rng, &registry)).collect()
}

fn image(records: &[WalRecord]) -> Vec<u8> {
    let mut bytes = Vec::new();
    for record in records {
        bytes.extend_from_slice(&record.to_frame());
    }
    bytes
}

#[test]
fn random_records_roundtrip_through_frames() {
    let mut rng = SplitMix64::new(0x3a1_c0de);
    for _ in 0..200 {
        let record = random_records(&mut rng, 1).remove(0);
        let frame = record.to_frame();
        let (back, used) = WalRecord::decode_frame(&frame)
            .expect("well-formed frame")
            .expect("complete frame");
        assert_eq!(used, frame.len());
        assert_eq!(back, record);
    }
}

#[test]
fn scan_recovers_random_logs_losslessly() {
    let mut rng = SplitMix64::new(0x10_5510);
    for _ in 0..30 {
        let count = 1 + rng.next_below(12) as usize;
        let records = random_records(&mut rng, count);
        let bytes = image(&records);
        let scanned = scan_wal(&bytes).expect("honest log");
        assert_eq!(scanned.records, records);
        assert_eq!(scanned.valid_len, bytes.len());
    }
}

#[test]
fn every_truncation_point_recovers_the_durable_prefix() {
    let mut rng = SplitMix64::new(0x7ea_7a11);
    for _ in 0..10 {
        let records = random_records(&mut rng, 4);
        let bytes = image(&records);
        // Frame boundaries: records fully contained in each prefix length.
        let mut boundaries = vec![0usize];
        for record in &records {
            boundaries.push(boundaries.last().unwrap() + record.to_frame().len());
        }
        let step = (bytes.len() / 97).max(1);
        for cut in (0..=bytes.len()).step_by(step) {
            let scanned = scan_wal(&bytes[..cut]).expect("a torn tail is never corruption");
            let complete = boundaries.iter().filter(|b| **b <= cut).count() - 1;
            assert_eq!(scanned.records, records[..complete], "cut at {cut}");
            assert_eq!(scanned.valid_len, boundaries[complete], "cut at {cut}");
        }
    }
}

#[test]
fn every_bit_flip_in_a_frame_is_detected() {
    let mut rng = SplitMix64::new(0xb17_f11b);
    for _ in 0..60 {
        let records = random_records(&mut rng, 3);
        let bytes = image(&records);
        // Flip one random bit in the checksum-or-body region of a random
        // frame (a flip in a length prefix can legitimately read as a torn
        // tail instead, so it is exercised separately below).
        let mut boundaries = vec![0usize];
        for record in &records {
            boundaries.push(boundaries.last().unwrap() + record.to_frame().len());
        }
        let frame_idx = rng.next_below(records.len() as u64) as usize;
        let (start, end) = (boundaries[frame_idx], boundaries[frame_idx + 1]);
        let at = start + 4 + rng.next_below((end - start - 4) as u64) as usize;
        let mut poisoned = bytes.clone();
        poisoned[at] ^= 1 << rng.next_below(8);
        let err = scan_wal(&poisoned).expect_err("flip must not go unnoticed");
        let WalError::Corrupt { offset, error } = err else {
            panic!("expected corruption, got {err:?}");
        };
        assert_eq!(offset as usize, start, "detected at the poisoned frame");
        assert!(
            matches!(
                error,
                FrameError::ChecksumMismatch { .. } | FrameError::Malformed(_)
            ),
            "unexpected error shape: {error:?}"
        );
    }
}

#[test]
fn length_prefix_flips_are_torn_tail_or_corruption_never_wrong_records() {
    let mut rng = SplitMix64::new(0x1e_4711);
    for _ in 0..80 {
        let records = random_records(&mut rng, 2);
        let bytes = image(&records);
        let first_len = records[0].to_frame().len();
        let mut poisoned = bytes.clone();
        let at = rng.next_below(4) as usize;
        poisoned[at] ^= 1 << rng.next_below(8);
        match scan_wal(&poisoned) {
            // A larger claimed length usually swallows the next frame and
            // fails its checksum; a huge one overflows the bound.
            Err(WalError::Corrupt { offset, .. }) => assert_eq!(offset, 0),
            Err(WalError::Io(e)) => panic!("no I/O happens over a byte slice: {e}"),
            // A length pointing past the image reads as a torn tail: zero
            // records recovered, nothing invented.
            Ok(scan) => {
                assert_eq!(scan.records, [], "no record may survive a length flip");
                assert_eq!(scan.valid_len, 0);
            }
        }
        // Either way the undamaged remainder is still recoverable from the
        // original image.
        assert_eq!(scan_wal(&bytes).unwrap().records.len(), 2);
        let _ = first_len;
    }
}

// ---------------------------------------------------------------------------
// Crash-point fault injection: WalSink doubles that die on the k-th append.
// ---------------------------------------------------------------------------

/// Fails the k-th append after writing only a prefix of the frame — the
/// torn-write shape of a crash mid-`write(2)`. Appends after the fault
/// also fail (the process is "dead").
struct TornSink {
    bytes: Vec<u8>,
    fail_at: u64,
    keep_bytes: usize,
    appends: u64,
}

impl TornSink {
    fn new(fail_at: u64, keep_bytes: usize) -> Self {
        Self {
            bytes: Vec::new(),
            fail_at,
            keep_bytes,
            appends: 0,
        }
    }
}

impl WalSink for TornSink {
    fn append(&mut self, frame: &[u8]) -> io::Result<()> {
        self.appends += 1;
        if self.appends >= self.fail_at {
            let keep = self.keep_bytes.min(frame.len());
            self.bytes.extend_from_slice(&frame[..keep]);
            return Err(io::Error::other("injected crash"));
        }
        self.bytes.extend_from_slice(frame);
        Ok(())
    }

    fn sync(&mut self) -> io::Result<()> {
        if self.appends >= self.fail_at {
            return Err(io::Error::other("injected crash"));
        }
        Ok(())
    }
}

#[test]
fn recovery_from_every_crash_point_yields_the_durable_prefix() {
    let mut rng = SplitMix64::new(0xc4a5_40b1);
    for schedule in 0..8u64 {
        let records = random_records(&mut rng, 6);
        for fail_at in 1..=records.len() as u64 {
            // Tear the failing frame at a schedule-dependent point,
            // including zero bytes (nothing of the frame landed).
            let frame_len = records[(fail_at - 1) as usize].to_frame().len();
            let keep = (rng.next_u64() as usize) % (frame_len + 1);
            let mut wal = Wal::new(TornSink::new(fail_at, keep), 1);
            let mut wrote = 0usize;
            let mut died = false;
            for record in &records {
                match wal.append(record) {
                    Ok(()) => wrote += 1,
                    Err(WalError::Io(_)) => {
                        died = true;
                        break;
                    }
                    Err(other) => panic!("unexpected failure: {other}"),
                }
            }
            assert!(died, "schedule {schedule}: the sink must fail at {fail_at}");
            assert_eq!(wrote, (fail_at - 1) as usize);

            // "Reboot": recovery over the bytes the sink actually holds.
            let scanned = scan_wal(&wal.sink().bytes)
                .expect("a torn append is a tolerated tail, not corruption");
            assert_eq!(
                scanned.records,
                records[..wrote],
                "schedule {schedule}, crash at append {fail_at}, {keep}B torn"
            );

            // Recovery truncates to the valid prefix and appends continue:
            // the rebooted log carries old and new records in order.
            let mut rebooted = Vec::from(&wal.sink().bytes[..scanned.valid_len]);
            let resumed = random_records(&mut rng, 2);
            for record in &resumed {
                rebooted.extend_from_slice(&record.to_frame());
            }
            let rescanned = scan_wal(&rebooted).expect("resumed log is honest");
            assert_eq!(rescanned.records.len(), wrote + resumed.len());
            assert_eq!(rescanned.records[..wrote], records[..wrote]);
            assert_eq!(rescanned.records[wrote..], resumed[..]);
        }
    }
}

// ---------------------------------------------------------------------------
// Fsync crash points: the group-commit watermark never outruns the disk.
// ---------------------------------------------------------------------------

/// The fsync-failing sibling of [`TornSink`]: appends always land in the
/// byte image, but the k-th sync (and every one after — the process is
/// "dead") fails, and only bytes present at the last *successful* sync
/// count as durable. This models a crash between `write(2)` and
/// `fsync(2)`: the page cache held the tail, the platter never saw it.
#[derive(Clone)]
struct FsyncCrashSink {
    state: std::sync::Arc<std::sync::Mutex<FsyncCrashState>>,
}

struct FsyncCrashState {
    bytes: Vec<u8>,
    /// Byte length covered by the last successful sync — the crash image.
    durable_len: usize,
    syncs: u64,
    fail_at: u64,
}

impl FsyncCrashSink {
    fn new(fail_at: u64) -> Self {
        Self {
            state: std::sync::Arc::new(std::sync::Mutex::new(FsyncCrashState {
                bytes: Vec::new(),
                durable_len: 0,
                syncs: 0,
                fail_at,
            })),
        }
    }

    /// The bytes a reboot would find: everything through the last
    /// successful fsync, nothing after.
    fn crash_image(&self) -> Vec<u8> {
        let state = self.state.lock().unwrap();
        state.bytes[..state.durable_len].to_vec()
    }
}

impl WalSink for FsyncCrashSink {
    fn append(&mut self, frame: &[u8]) -> io::Result<()> {
        self.state.lock().unwrap().bytes.extend_from_slice(frame);
        Ok(())
    }

    fn sync(&mut self) -> io::Result<()> {
        let mut state = self.state.lock().unwrap();
        state.syncs += 1;
        if state.syncs >= state.fail_at {
            return Err(io::Error::other("injected fsync crash"));
        }
        state.durable_len = state.bytes.len();
        Ok(())
    }
}

/// The pipelined-sends safety property, at the layer that enforces it:
/// a [`SendGate`](sft_types::SendGate) minted for each appended record
/// opens only once the group-commit watermark covers it, and across
/// every k-th-fsync crash schedule the records whose gates ever open
/// are exactly the records a reboot recovers from the crash image — no
/// outbound frame is ever releasable on the strength of a record the
/// disk never saw.
#[test]
fn gates_released_under_fsync_crashes_are_always_backed_by_the_disk() {
    use sft_core::{DurableWal, GroupCommitWal};
    use sft_types::SendGate;

    let mut rng = SplitMix64::new(0xf5_c4a5);
    for fail_at in 1..=6u64 {
        let records = random_records(&mut rng, 8);
        let sink = FsyncCrashSink::new(fail_at);
        let mut wal =
            GroupCommitWal::spawn(sink.clone(), sft_obs::noop(), None).expect("spawn wal writer");
        let mut gates: Vec<SendGate> = Vec::new();
        let mut crashed = false;
        for record in &records {
            let seq = wal.append(record).expect("append only enqueues");
            gates.push(SendGate::new(wal.watermark(), seq));
            // A barrier per record forces one fsync per record, so the
            // k-th-fsync crash schedule fails exactly at record k — and
            // the barrier must surface the failure rather than pretend
            // durability.
            if wal.barrier().is_err() {
                crashed = true;
                break;
            }
        }
        let covered = wal.watermark().get();
        drop(wal); // joins the (dead) writer thread
        assert!(
            crashed,
            "fail_at {fail_at}: the writer must die at fsync {fail_at}"
        );
        assert_eq!(
            covered,
            fail_at - 1,
            "exactly the records before the failing fsync are durable"
        );

        // Post-mortem: gates open exactly up to the watermark...
        for gate in &gates {
            assert_eq!(
                gate.is_open(),
                gate.seq() <= covered,
                "fail_at {fail_at}: gate state must mirror the watermark"
            );
        }
        // ...and the watermark never outruns what a reboot recovers: the
        // crash image holds exactly the covered prefix, in append order.
        let scanned = scan_wal(&sink.crash_image()).expect("durable prefix is clean");
        assert_eq!(
            scanned.records,
            records[..covered as usize],
            "fail_at {fail_at}: the covered prefix is the durable prefix"
        );
    }
}

#[test]
fn batched_sync_crash_loses_at_most_the_unsynced_window() {
    // With sync_every = k, a crash can lose up to k−1 recent records, and
    // the durable prefix is always an append-order prefix — never a gap.
    let mut rng = SplitMix64::new(0x5afe_ba7c);
    for sync_every in [1u64, 2, 4, 8] {
        let records = random_records(&mut rng, 9);
        let mut wal = Wal::new(MemSink::new(), sync_every);
        for record in &records {
            wal.append(record).unwrap();
        }
        // The sink holds everything appended; what a crash preserves is at
        // least the synced prefix. Model the worst case: drop everything
        // after the last full batch boundary.
        let synced = (records.len() as u64 / sync_every * sync_every) as usize;
        let mut boundaries = vec![0usize];
        for record in &records {
            boundaries.push(boundaries.last().unwrap() + record.to_frame().len());
        }
        let preserved = &wal.sink().bytes()[..boundaries[synced]];
        let scanned = scan_wal(preserved).expect("synced prefix is clean");
        assert_eq!(
            scanned.records,
            records[..synced],
            "sync_every {sync_every}"
        );
        assert!(
            records.len() - synced < sync_every as usize,
            "the window is bounded by the batch size"
        );
    }
}
