//! Seeded-PRNG property test for the block-sync admission bar: across
//! randomized chain shapes and adversarial responders, a [`SyncManager`]
//! never admits a block whose certificate chain does not verify — every
//! block that lands in the store is a block of the real (world) chain —
//! and honest service always completes the catch-up.
//!
//! The adversary gets full knowledge of the world and of the learner's
//! outstanding requests, and mutates honest responses structurally:
//! truncations, reorderings, fork swaps, wholesale block forgeries, QC
//! round lies, and unsolicited pushes. Block ids are recomputed on decode
//! in the real wire path; here the adversary forges `Block` values
//! directly via `from_parts`, which is strictly stronger (it can fabricate
//! any field combination a decoder could produce).

use std::collections::HashSet;

use sft_core::{
    Block, BlockResponse, BlockStore, ProtocolConfig, QuorumCertificate, SyncConfig, SyncManager,
};
use sft_crypto::rng::{RngCore, SplitMix64};
use sft_crypto::HashValue;
use sft_types::{Height, Payload, ReplicaId, Round, SignerSet, SimTime, VoteData};

const N: usize = 4;

fn quorum_qc(block: &Block) -> QuorumCertificate {
    QuorumCertificate::new(
        block.vote_data(),
        SignerSet::from_iter_with_capacity(N, (0..3).map(ReplicaId::new)),
    )
}

/// A randomized block tree: a trunk with occasional forks, all rooted at
/// genesis. Returns the store and the trunk (oldest first).
fn random_world(rng: &mut SplitMix64) -> (BlockStore, Vec<Block>) {
    let mut store = BlockStore::new();
    let mut trunk = vec![store.genesis().clone()];
    let len = 4 + rng.next_below(12);
    let mut round = 0u64;
    for _ in 0..len {
        round += 1 + rng.next_below(2); // occasional round gaps
        let parent = trunk.last().expect("trunk starts at genesis").clone();
        let block = Block::new(
            &parent,
            Round::new(round),
            ReplicaId::new(rng.next_below(N as u64) as u16),
            Payload::synthetic(1 + rng.next_below(4) as u32, 8, rng.next_u64()),
        );
        store.insert(block.clone()).unwrap();
        trunk.push(block);
        // Sometimes fork a dead-end sibling off the same parent.
        if rng.next_below(4) == 0 {
            let fork = Block::new(
                &parent,
                Round::new(round + 100),
                ReplicaId::new(rng.next_below(N as u64) as u16),
                Payload::synthetic(1, 8, rng.next_u64()),
            );
            store.insert(fork).unwrap();
        }
    }
    trunk.remove(0); // callers never need genesis
    (store, trunk)
}

/// One structural mutation of an honest response, chosen by the PRNG.
fn mutate(rng: &mut SplitMix64, honest: &BlockResponse, world: &[Block]) -> BlockResponse {
    let mut blocks = honest.blocks().to_vec();
    let qc = honest.qc().clone();
    match rng.next_below(6) {
        // Drop the certified tail: the anchor no longer matches.
        0 => {
            blocks.pop();
            BlockResponse::new(qc, blocks)
        }
        // Drop the head: the internal chain stays valid, so this is only
        // rejected when the base no longer attaches (it may legitimately
        // pool) — still never admits a wrong block.
        1 => {
            blocks.remove(0);
            BlockResponse::new(qc, blocks)
        }
        // Swap two adjacent blocks: breaks the hash chain.
        2 => {
            if blocks.len() >= 2 {
                let i = rng.next_below(blocks.len() as u64 - 1) as usize;
                blocks.swap(i, i + 1);
            } else {
                blocks.clear();
            }
            BlockResponse::new(qc, blocks)
        }
        // Forge one block wholesale (random linkage fields).
        3 => {
            let i = rng.next_below(blocks.len() as u64) as usize;
            let victim = &blocks[i];
            blocks[i] = Block::from_parts(
                HashValue::of(&rng.next_u64().to_be_bytes()),
                victim.parent_round(),
                victim.round(),
                Height::new(rng.next_below(64)),
                ReplicaId::new(rng.next_below(N as u64) as u16),
                Payload::synthetic(1, 8, rng.next_u64()),
            );
            BlockResponse::new(qc, blocks)
        }
        // Lie about the certified round in the QC.
        4 => {
            let last = blocks.last().expect("honest responses are non-empty");
            let lying = QuorumCertificate::new(
                VoteData::new(
                    last.id(),
                    Round::new(last.round().as_u64() + 1 + rng.next_below(5)),
                    last.parent_id(),
                    last.parent_round(),
                ),
                SignerSet::from_iter_with_capacity(N, (0..3).map(ReplicaId::new)),
            );
            BlockResponse::new(lying, blocks)
        }
        // Unsolicited push: a perfectly valid segment for a block the
        // learner never asked about.
        _ => {
            let i = rng.next_below(world.len() as u64) as usize;
            BlockResponse::new(quorum_qc(&world[i]), vec![world[i].clone()])
        }
    }
}

/// The property: an adversarial responder interleaved with an honest one
/// never gets a non-world block admitted, and the honest responder always
/// completes the sync in the end.
#[test]
fn adversarial_responses_never_corrupt_the_store() {
    let cfg = ProtocolConfig::for_replicas(N);
    for seed in 0..64u64 {
        let mut rng = SplitMix64::new(0x5f7c_0000 + seed);
        let (world, trunk) = random_world(&mut rng);
        let world_ids: HashSet<HashValue> = trunk.iter().map(Block::id).collect::<HashSet<_>>();

        // The responder knows the whole world and every trunk certificate.
        let mut server = SyncManager::new(cfg, ReplicaId::new(1));
        for block in &trunk {
            server.note_certificate(&quorum_qc(block), &world);
        }

        // The learner starts empty and learns the tip's certificate, with a
        // small fetch bound so multi-hop chasing is exercised.
        let mut behind = BlockStore::new();
        let mut sync = SyncManager::new(cfg, ReplicaId::new(0)).with_sync_config(SyncConfig {
            max_blocks_per_request: 1 + rng.next_below(4) as u32,
            ..SyncConfig::default()
        });
        let tip = trunk.last().expect("non-empty world");
        sync.note_certificate(&quorum_qc(tip), &behind);

        let mut clock = 0u64;
        for round_trip in 0..200 {
            clock += 1000; // past the retry timeout, so requests re-issue
            let now = SimTime::from_millis(clock);
            let requests = sync.take_requests(now);
            if requests.is_empty() && !sync.is_syncing() {
                break;
            }
            for (_, request) in requests {
                let Some(honest) = server.serve(&request, &world) else {
                    continue;
                };
                // Mostly hostile early, honest later (so the run converges).
                let hostile = round_trip < 100 && rng.next_below(4) != 0;
                let response = if hostile {
                    mutate(&mut rng, &honest, &trunk)
                } else {
                    honest
                };
                let admitted = sync.on_response(&response, &mut behind);
                for id in admitted {
                    assert!(
                        world_ids.contains(&id),
                        "seed {seed}: admitted a block outside the world trunk"
                    );
                }
            }
        }

        assert!(
            !sync.is_syncing(),
            "seed {seed}: honest service must complete the catch-up"
        );
        for block in &trunk {
            assert!(
                behind.contains(block.id()),
                "seed {seed}: trunk block missing after sync"
            );
        }
        assert_eq!(
            behind.len(),
            trunk.len() + 1,
            "seed {seed}: store holds exactly genesis + the trunk"
        );
    }
}

/// Solo adversary: with no honest service at all, nothing is ever
/// admitted and the learner's store stays at genesis.
#[test]
fn pure_adversary_admits_nothing_but_real_segments() {
    let cfg = ProtocolConfig::for_replicas(N);
    for seed in 0..32u64 {
        let mut rng = SplitMix64::new(0xbad_0000 + seed);
        let (world, trunk) = random_world(&mut rng);
        let mut server = SyncManager::new(cfg, ReplicaId::new(1));
        for block in &trunk {
            server.note_certificate(&quorum_qc(block), &world);
        }
        let mut behind = BlockStore::new();
        let mut sync = SyncManager::new(cfg, ReplicaId::new(0));
        let tip = trunk.last().expect("non-empty world");
        sync.note_certificate(&quorum_qc(tip), &behind);

        let mut clock = 0u64;
        for _ in 0..32 {
            clock += 1000;
            for (_, request) in sync.take_requests(SimTime::from_millis(clock)) {
                let Some(honest) = server.serve(&request, &world) else {
                    continue;
                };
                let forged = mutate(&mut rng, &honest, &trunk);
                for id in sync.on_response(&forged, &mut behind) {
                    // Mutation case 5 pushes *real* segments for unsolicited
                    // blocks (rejected) and case 1 drops the head (a valid
                    // sub-segment that may legitimately admit or pool) — so
                    // anything admitted must still be a real trunk block.
                    assert!(
                        trunk.iter().any(|b| b.id() == id),
                        "seed {seed}: forged block admitted"
                    );
                }
            }
        }
        assert!(
            behind.len() <= trunk.len() + 1,
            "seed {seed}: store grew beyond the world"
        );
    }
}
