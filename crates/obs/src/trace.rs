//! NDJSON trace-event sink with crash-safe line framing.
//!
//! Every event is one flat JSON object on one line, written with a
//! *single* `write_all` that includes the trailing newline — so a
//! `kill -9` can tear at most the final line, never interleave two.
//! Reopening in append mode first checks whether the file ends with a
//! newline: if a previous incarnation died mid-line, one is appended so
//! the torn fragment becomes its own (unparseable, skipped) line and the
//! new stream starts clean. [`read_trace`] is the matching lenient
//! reader: it parses what it can and silently drops torn or foreign
//! lines, which is exactly what a post-mortem timeline wants.
//!
//! ```text
//! {"ev":"node_start","ts_us":0,"id":1}
//! {"ev":"wal_replay_done","ts_us":183,"records":24}
//! {"ev":"vote","ts_us":2107,"round":9}
//! ```

use std::fs::{File, OpenOptions};
use std::io::{self, Read as _, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Default rotation threshold: large enough that crash drills and CI
/// runs never rotate, small enough to bound a runaway long-lived node.
const DEFAULT_ROTATE_AT: u64 = 64 * 1024 * 1024;

/// One trace event: a static name, a microsecond timestamp, and flat
/// numeric fields. Borrowed so the no-op path never allocates.
#[derive(Clone, Copy, Debug)]
pub struct TraceEvent<'a> {
    /// Event name (the `"ev"` key).
    pub name: &'static str,
    /// Microseconds since the run's clock origin (the `"ts_us"` key).
    pub ts_us: u64,
    /// Additional `"key":value` pairs, in order.
    pub fields: &'a [(&'static str, u64)],
}

impl<'a> TraceEvent<'a> {
    /// Builds an event.
    pub fn new(name: &'static str, ts_us: u64, fields: &'a [(&'static str, u64)]) -> Self {
        Self {
            name,
            ts_us,
            fields,
        }
    }
}

/// An append-only NDJSON event log with size-based rotation.
#[derive(Debug)]
pub struct TraceSink {
    path: PathBuf,
    file: File,
    written: u64,
    rotate_at: u64,
    line: String,
}

impl TraceSink {
    /// Opens (or creates) the log at `path` in append mode, healing a
    /// torn tail left by a crashed predecessor.
    ///
    /// # Errors
    ///
    /// Propagates file-system errors from open/seek/write.
    pub fn open(path: impl Into<PathBuf>) -> io::Result<Self> {
        let path = path.into();
        let mut file = OpenOptions::new()
            .create(true)
            .read(true)
            .append(true)
            .open(&path)?;
        let mut written = file.metadata()?.len();
        if written > 0 {
            // Heal a torn tail: if the last byte is not '\n', terminate
            // the fragment so it parses (and is skipped) as its own line.
            let mut last = [0u8; 1];
            file.seek(SeekFrom::End(-1))?;
            file.read_exact(&mut last)?;
            if last[0] != b'\n' {
                file.write_all(b"\n")?;
                written += 1;
            }
        }
        Ok(Self {
            path,
            file,
            written,
            rotate_at: DEFAULT_ROTATE_AT,
            line: String::with_capacity(128),
        })
    }

    /// Overrides the rotation threshold (bytes).
    pub fn with_rotate_at(mut self, bytes: u64) -> Self {
        self.rotate_at = bytes.max(1);
        self
    }

    /// Appends one event as one line. The line (newline included) goes
    /// down in a single `write_all`, so a crash can only ever tear the
    /// final line of the file.
    ///
    /// # Errors
    ///
    /// Propagates write and rotation failures.
    pub fn emit(&mut self, event: &TraceEvent<'_>) -> io::Result<()> {
        use std::fmt::Write as _;
        self.line.clear();
        let _ = write!(
            self.line,
            "{{\"ev\":\"{}\",\"ts_us\":{}",
            event.name, event.ts_us
        );
        for (key, value) in event.fields {
            let _ = write!(self.line, ",\"{key}\":{value}");
        }
        self.line.push_str("}\n");
        self.file.write_all(self.line.as_bytes())?;
        self.written += self.line.len() as u64;
        if self.written >= self.rotate_at {
            self.rotate()?;
        }
        Ok(())
    }

    /// Flushes buffered OS state for the current segment.
    ///
    /// # Errors
    ///
    /// Propagates the flush failure.
    pub fn flush(&mut self) -> io::Result<()> {
        self.file.flush()
    }

    /// Renames the full segment to `<path>.1` (clobbering any previous
    /// rollover) and starts a fresh file at `path`.
    fn rotate(&mut self) -> io::Result<()> {
        let mut rolled = self.path.clone().into_os_string();
        rolled.push(".1");
        std::fs::rename(&self.path, &rolled)?;
        self.file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)?;
        self.written = 0;
        Ok(())
    }
}

/// One parsed trace line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OwnedTraceEvent {
    /// Event name (`"ev"`).
    pub name: String,
    /// Microsecond timestamp (`"ts_us"`).
    pub ts_us: u64,
    /// Remaining numeric fields, in file order.
    pub fields: Vec<(String, u64)>,
}

impl OwnedTraceEvent {
    /// Looks up a numeric field by name.
    pub fn get(&self, key: &str) -> Option<u64> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| *v)
    }
}

/// Reads a trace file, in file order, skipping torn or unparseable
/// lines (a crashed writer leaves at most one).
///
/// # Errors
///
/// Fails only if the file itself cannot be read.
pub fn read_trace(path: impl AsRef<Path>) -> io::Result<Vec<OwnedTraceEvent>> {
    let body = std::fs::read_to_string(path)?;
    Ok(body.lines().filter_map(parse_line).collect())
}

/// Parses one flat `{"k":v,...}` line; `None` on anything malformed.
fn parse_line(line: &str) -> Option<OwnedTraceEvent> {
    let inner = line.trim().strip_prefix('{')?.strip_suffix('}')?;
    let mut name = None;
    let mut ts_us = None;
    let mut fields = Vec::new();
    for part in split_top_level(inner) {
        let (raw_key, raw_value) = part.split_once(':')?;
        let key = raw_key.trim().strip_prefix('"')?.strip_suffix('"')?;
        let value = raw_value.trim();
        match key {
            "ev" => name = Some(value.strip_prefix('"')?.strip_suffix('"')?.to_string()),
            "ts_us" => ts_us = Some(value.parse().ok()?),
            _ => fields.push((key.to_string(), value.parse().ok()?)),
        }
    }
    Some(OwnedTraceEvent {
        name: name?,
        ts_us: ts_us?,
        fields,
    })
}

/// Splits on commas outside of string literals.
fn split_top_level(s: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut start = 0;
    let mut in_string = false;
    for (i, ch) in s.char_indices() {
        match ch {
            '"' => in_string = !in_string,
            ',' if !in_string => {
                parts.push(&s[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    parts.push(&s[start..]);
    parts
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sft-obs-trace-{}-{tag}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("trace.ndjson")
    }

    #[test]
    fn round_trips_events() {
        let path = temp_path("roundtrip");
        let _ = std::fs::remove_file(&path);
        let mut sink = TraceSink::open(&path).unwrap();
        sink.emit(&TraceEvent::new(
            "commit",
            120,
            &[("round", 4), ("level", 2)],
        ))
        .unwrap();
        sink.emit(&TraceEvent::new("vote", 130, &[])).unwrap();
        drop(sink);
        let events = read_trace(&path).unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].name, "commit");
        assert_eq!(events[0].ts_us, 120);
        assert_eq!(events[0].get("round"), Some(4));
        assert_eq!(events[0].get("level"), Some(2));
        assert_eq!(events[1].name, "vote");
    }

    #[test]
    fn torn_tail_is_healed_on_reopen_and_skipped_by_reader() {
        let path = temp_path("torn");
        let _ = std::fs::remove_file(&path);
        let mut sink = TraceSink::open(&path).unwrap();
        sink.emit(&TraceEvent::new("a", 1, &[])).unwrap();
        drop(sink);
        // Simulate a crash mid-write: a fragment with no newline.
        {
            let mut file = OpenOptions::new().append(true).open(&path).unwrap();
            file.write_all(b"{\"ev\":\"torn\",\"ts").unwrap();
        }
        let mut sink = TraceSink::open(&path).unwrap();
        sink.emit(&TraceEvent::new("b", 2, &[])).unwrap();
        drop(sink);
        let events = read_trace(&path).unwrap();
        let names: Vec<&str> = events.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, ["a", "b"], "torn fragment must be skipped");
    }

    #[test]
    fn rotation_rolls_to_dot_one() {
        let path = temp_path("rotate");
        let _ = std::fs::remove_file(&path);
        let rolled = {
            let mut p = path.clone().into_os_string();
            p.push(".1");
            PathBuf::from(p)
        };
        let _ = std::fs::remove_file(&rolled);
        let mut sink = TraceSink::open(&path).unwrap().with_rotate_at(64);
        for i in 0..10 {
            sink.emit(&TraceEvent::new("tick", i, &[])).unwrap();
        }
        drop(sink);
        assert!(rolled.exists(), "rotation must produce <path>.1");
        assert!(!read_trace(&rolled).unwrap().is_empty());
    }

    #[test]
    fn reader_skips_foreign_lines() {
        assert!(parse_line("not json").is_none());
        assert!(parse_line("{\"ev\":\"x\"}").is_none(), "ts_us required");
        assert!(parse_line("{\"ts_us\":4}").is_none(), "ev required");
        let ev = parse_line("{\"ev\":\"ok\",\"ts_us\":4,\"n\":7}").unwrap();
        assert_eq!(
            (ev.name.as_str(), ev.ts_us, ev.get("n")),
            ("ok", 4, Some(7))
        );
    }
}
