//! The [`Recorder`] trait: the one seam every subsystem is instrumented
//! against. Hot paths hold a `&dyn Recorder` (usually via
//! [`SharedRecorder`]) and call [`add`](Recorder::add) /
//! [`observe`](Recorder::observe) / [`trace`](Recorder::trace); the
//! default no-op implementation makes every call a virtual dispatch to
//! an empty body, so instrumentation costs nothing measurable when
//! recording is off — and call sites can skip building event payloads
//! entirely by checking [`enabled`](Recorder::enabled) first.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

use crate::registry::MetricsSnapshot;
use crate::trace::TraceEvent;

/// A sink for counters, histogram samples, and trace events.
///
/// All methods default to no-ops so `dyn Recorder` is free to call when
/// nothing is listening; [`Registry`](crate::Registry) overrides them
/// all.
pub trait Recorder: Send + Sync {
    /// True when samples are actually kept. Call sites use this to skip
    /// clock reads and payload construction on the no-op path.
    fn enabled(&self) -> bool {
        false
    }

    /// Adds `delta` to the named monotonic counter.
    fn add(&self, counter: &'static str, delta: u64) {
        let _ = (counter, delta);
    }

    /// Records one sample into the named histogram.
    fn observe(&self, hist: &'static str, value: u64) {
        let _ = (hist, value);
    }

    /// Emits one trace event to the attached sink, if any.
    fn trace(&self, event: &TraceEvent<'_>) {
        let _ = event;
    }

    /// A point-in-time copy of every counter and histogram digest.
    fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot::default()
    }
}

/// The recorder that records nothing (the default everywhere).
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {}

/// A shared, thread-safe recorder handle: clone-cheap, so every engine,
/// transport, and sync manager can hold one.
pub type SharedRecorder = Arc<dyn Recorder>;

/// A fresh no-op [`SharedRecorder`].
pub fn noop() -> SharedRecorder {
    Arc::new(NoopRecorder)
}

/// A [`SharedRecorder`] wrapper that is `Clone + Debug + Default`, so it
/// can live inside derive-heavy structs (e.g. `SyncManager`) without
/// breaking their derives.
#[derive(Clone)]
pub struct RecorderCell(SharedRecorder);

impl RecorderCell {
    /// Wraps a shared recorder.
    pub fn new(recorder: SharedRecorder) -> Self {
        Self(recorder)
    }

    /// The wrapped recorder.
    pub fn get(&self) -> &SharedRecorder {
        &self.0
    }
}

impl Default for RecorderCell {
    fn default() -> Self {
        Self(noop())
    }
}

impl Deref for RecorderCell {
    type Target = dyn Recorder;

    fn deref(&self) -> &Self::Target {
        &*self.0
    }
}

impl fmt::Debug for RecorderCell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("RecorderCell")
            .field(&self.0.enabled())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_swallows_everything() {
        let rec = noop();
        assert!(!rec.enabled());
        rec.add("counter", 3);
        rec.observe("hist", 42);
        rec.trace(&TraceEvent::new("ev", 0, &[]));
        assert!(rec.snapshot().is_empty());
    }

    #[test]
    fn cell_defaults_to_noop_and_derives_work() {
        #[derive(Clone, Debug, Default)]
        struct Holder {
            rec: RecorderCell,
        }
        let holder = Holder::default();
        let copy = holder.clone();
        assert!(!copy.rec.enabled());
        assert!(format!("{copy:?}").contains("RecorderCell"));
        copy.rec.get().add("x", 1);
    }
}
