//! Log-bucketed latency histogram with percentile extraction.
//!
//! The bucket layout is HdrHistogram-shaped but tiny: values below 16
//! get exact unit buckets; above that, each power-of-two octave is split
//! into 8 sub-buckets, so the relative bucket width is at most 12.5 %.
//! Recording is one shift, one mask, one increment — cheap enough for
//! per-message hot paths — and the whole histogram is 496 fixed buckets,
//! so merging across replicas is element-wise addition.

/// Sub-buckets per octave as a power of two (`8` sub-buckets).
const SUB_BITS: u32 = 3;
/// Values below this are their own exact bucket.
const LINEAR_MAX: u64 = 1 << (SUB_BITS + 1);
/// Total bucket count: 16 linear + 8 per octave for octaves 4..=63.
const BUCKETS: usize = LINEAR_MAX as usize + ((64 - (SUB_BITS + 1)) << SUB_BITS) as usize;

/// A log-bucketed histogram of `u64` samples (latencies, sizes, counts).
///
/// # Examples
///
/// ```
/// use sft_obs::Histogram;
///
/// let mut h = Histogram::new();
/// for v in 1..=1000u64 {
///     h.record(v);
/// }
/// let s = h.summary();
/// assert_eq!(s.count, 1000);
/// assert_eq!(s.max, 1000);
/// // Bucketed percentiles over-approximate by at most 12.5 %.
/// assert!(s.p50 >= 500 && s.p50 <= 563);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// The percentile digest extracted from one [`Histogram`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HistSummary {
    /// Samples recorded.
    pub count: u64,
    /// 50th percentile (bucket upper bound, clamped to the true max).
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Exact maximum sample.
    pub max: u64,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            counts: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// The bucket index a value lands in. Monotone in `value`.
    pub fn bucket_index(value: u64) -> usize {
        if value < LINEAR_MAX {
            return value as usize;
        }
        let exp = 63 - value.leading_zeros();
        let sub = (value >> (exp - SUB_BITS)) & ((1 << SUB_BITS) - 1);
        (LINEAR_MAX as u32 + ((exp - (SUB_BITS + 1)) << SUB_BITS) + sub as u32) as usize
    }

    /// The largest value that maps to bucket `index` (the reported bound
    /// for any percentile landing in that bucket).
    pub fn bucket_upper(index: usize) -> u64 {
        if index < LINEAR_MAX as usize {
            return index as u64;
        }
        let off = (index - LINEAR_MAX as usize) as u32;
        let exp = (off >> SUB_BITS) + SUB_BITS + 1;
        let sub = (off & ((1 << SUB_BITS) - 1)) as u64;
        let width = 1u64 << (exp - SUB_BITS);
        let lower = (1u64 << exp) + sub * width;
        lower.saturating_add(width - 1)
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.counts[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// Adds every sample of `other` into `self` (element-wise; the layout
    /// is fixed, so merge is exact and associative).
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Saturating sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Exact maximum sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The value at quantile `q` in `[0, 1]`: the upper bound of the
    /// bucket holding the sample of rank `ceil(q·count)`, clamped to the
    /// exact maximum. Returns 0 for an empty histogram.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// The p50/p90/p99/max digest.
    pub fn summary(&self) -> HistSummary {
        HistSummary {
            count: self.count,
            p50: self.percentile(0.50),
            p90: self.percentile(0.90),
            p99: self.percentile(0.99),
            max: self.max,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_range_is_exact() {
        let mut h = Histogram::new();
        for v in 0..LINEAR_MAX {
            h.record(v);
            assert_eq!(Histogram::bucket_index(v), v as usize);
            assert_eq!(Histogram::bucket_upper(v as usize), v);
        }
        assert_eq!(h.count(), LINEAR_MAX);
    }

    #[test]
    fn bucket_bounds_cover_all_u64() {
        for v in [16u64, 17, 127, 128, 1000, 1 << 20, u64::MAX / 2, u64::MAX] {
            let i = Histogram::bucket_index(v);
            assert!(i < BUCKETS, "index {i} out of range for {v}");
            assert!(Histogram::bucket_upper(i) >= v);
            if i > 0 {
                assert!(Histogram::bucket_upper(i - 1) < v);
            }
        }
    }

    #[test]
    fn relative_error_bounded() {
        for v in [20u64, 100, 999, 12345, 1 << 30] {
            let upper = Histogram::bucket_upper(Histogram::bucket_index(v));
            assert!(upper >= v);
            assert!(upper as f64 <= v as f64 * 1.125 + 1.0, "{v} -> {upper}");
        }
    }

    #[test]
    fn empty_histogram_is_zero() {
        let h = Histogram::new();
        assert_eq!(h.percentile(0.5), 0);
        assert_eq!(h.summary(), HistSummary::default());
    }

    #[test]
    fn percentiles_track_uniform_stream() {
        let mut h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        let s = h.summary();
        assert!(s.p50 >= 5_000 && s.p50 as f64 <= 5_000.0 * 1.125 + 1.0);
        assert!(s.p99 >= 9_900 && s.p99 as f64 <= 9_900.0 * 1.125 + 1.0);
        assert_eq!(s.max, 10_000);
        assert_eq!(h.percentile(1.0), 10_000);
    }

    #[test]
    fn merge_equals_combined_stream() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut both = Histogram::new();
        for v in 0..500u64 {
            a.record(v * 7);
            both.record(v * 7);
        }
        for v in 0..300u64 {
            b.record(v * 13 + 1);
            both.record(v * 13 + 1);
        }
        a.merge(&b);
        assert_eq!(a, both);
    }
}
