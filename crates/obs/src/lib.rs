//! # sft-obs
//!
//! Zero-dependency observability for the SFT stack: a [`Recorder`]
//! trait with a free no-op default, an in-process [`Registry`] of named
//! counters and log-bucketed [`Histogram`]s, nanosecond [`PhaseTimer`]s
//! and sim-vs-wall [`ObsClock`] spans, and a crash-safe NDJSON
//! [`TraceSink`] for per-event timelines.
//!
//! ## Design
//!
//! Instrumented code holds a [`SharedRecorder`] (an `Arc<dyn
//! Recorder>`) and calls `add` / `observe` / `trace` on the hot path.
//! The default [`NoopRecorder`] makes each of those a virtual call to an
//! empty body, and timers gate their clock reads on
//! [`Recorder::enabled`], so instrumentation costs nothing measurable
//! when recording is off — the CI perf gate holds the proof. When a
//! harness turns recording on (`SimConfig::with_recording`,
//! `sft-node --trace-out`), the same call sites feed a [`Registry`]
//! whose [`MetricsSnapshot`] lands in `BENCH_*.json` and whose trace
//! events reconstruct a crash-recovery timeline.
//!
//! ## Units
//!
//! Two time bases coexist, distinguished by metric-name suffix:
//!
//! - `*_ns` — wall-clock nanoseconds from [`PhaseTimer`]. Processing
//!   phases must use wall time: simulated time only advances *between*
//!   events, so every phase would measure as zero virtual time.
//! - `*_us` — protocol-clock microseconds (virtual under the simulator,
//!   wall under real sockets), for protocol-visible latencies like
//!   proposal-to-commit.
//!
//! The full metric catalog lives in [`names`].

#![deny(missing_docs)]

mod clock;
mod hist;
mod recorder;
mod registry;
mod trace;

pub use clock::{ObsClock, PhaseTimer, Span};
pub use hist::{HistSummary, Histogram};
pub use recorder::{noop, NoopRecorder, Recorder, RecorderCell, SharedRecorder};
pub use registry::{MetricsSnapshot, Registry};
pub use trace::{read_trace, OwnedTraceEvent, TraceEvent, TraceSink};

/// Every metric name the stack records, one documented constant each.
///
/// Histograms additionally surface as `<name>_{count,p50,p90,p99,max}`
/// scalars in `BENCH_*.json` (see [`MetricsSnapshot::flat_fields`]).
pub mod names {
    // ---- run_engine phase timings (histograms, wall nanoseconds) ----

    /// Decoding one inbound envelope into a protocol message.
    pub const PHASE_DECODE_NS: &str = "phase_decode_ns";
    /// One full `ReplicaEngine::on_envelope` step (decode included).
    pub const PHASE_ON_ENVELOPE_NS: &str = "phase_on_envelope_ns";
    /// Appending one step's `persist` records to durable storage
    /// (WAL append + any due fsync under `sft-node`).
    pub const PHASE_PERSIST_NS: &str = "phase_persist_ns";
    /// Routing one step's outbound messages (send/broadcast calls).
    pub const PHASE_ROUTE_NS: &str = "phase_route_ns";
    /// One `ReplicaEngine::on_tick` deadline firing.
    pub const PHASE_ON_TICK_NS: &str = "phase_on_tick_ns";
    /// A vote-ingest step that ran a deferred batch signature
    /// verification (the verify-on-quorum path; batch check included).
    pub const PHASE_BATCH_VERIFY_NS: &str = "phase_batch_verify_ns";
    /// One writer-loop pass flushing queued outbound frames to
    /// non-blocking sockets (`TcpCluster` / `NodeTransport`).
    pub const PHASE_NET_FLUSH_NS: &str = "phase_net_flush_ns";

    // ---- durable write-ahead log (group-commit pipeline) ----

    /// `WalSink::sync` calls issued (one per write-through append, one
    /// per coalesced group under the group-commit WAL writer).
    pub const WAL_FSYNCS: &str = "wal_fsyncs";
    /// Records coalesced per group-commit fsync (histogram; 1 when the
    /// writer is keeping up, larger under load).
    pub const WAL_GROUP_SIZE: &str = "wal_group_size";
    /// Engine-loop wall time spent blocked on durability per persisting
    /// step: the inline fsync under write-through, the append-queue
    /// handoff under group commit.
    pub const PHASE_PERSIST_WAIT_NS: &str = "phase_persist_wait_ns";

    // ---- per-round consensus events (protocol microseconds) ----

    /// Proposal-seen → standard commit latency, per committed round.
    pub const ROUND_COMMIT_US: &str = "round_commit_us";
    /// Proposal-seen → own-vote-cast latency, per voted round.
    pub const CONSENSUS_VOTE_US: &str = "consensus_vote_us";
    /// Proposal-seen → QC-formed latency, per certified round.
    pub const CONSENSUS_QC_US: &str = "consensus_qc_us";
    /// Proposal-seen → strength-level-`x` latency histograms, keyed by
    /// the strengthened level `x` reached (see `strength_level_name`).
    pub const STRENGTH_US: [&str; 9] = [
        "strength_x0_us",
        "strength_x1_us",
        "strength_x2_us",
        "strength_x3_us",
        "strength_x4_us",
        "strength_x5_us",
        "strength_x6_us",
        "strength_x7_us",
        "strength_x8_us",
    ];

    /// The `strength_x<level>_us` histogram for a strength level,
    /// clamping levels past 8 into the last bucket.
    #[must_use]
    pub fn strength_level_name(level: u64) -> &'static str {
        STRENGTH_US[(level as usize).min(STRENGTH_US.len() - 1)]
    }

    // ---- client plane (submission gateway + strength-graded acks) ----

    /// Client submissions received (every admission verdict counts one).
    pub const CLIENT_REQUESTS: &str = "client_requests";
    /// Client submissions answered `Busy` or `Duplicate` instead of
    /// admitted (admission-control backpressure).
    pub const CLIENT_REJECTED: &str = "client_rejected";
    /// Strength-graded commit acks emitted toward clients.
    pub const ACKS_SENT: &str = "acks_sent";
    /// Submission → ack latency histograms (protocol µs), keyed by the
    /// strength level the ack was requested at (see `ack_level_name`).
    pub const ACK_US: [&str; 9] = [
        "ack_x0_us",
        "ack_x1_us",
        "ack_x2_us",
        "ack_x3_us",
        "ack_x4_us",
        "ack_x5_us",
        "ack_x6_us",
        "ack_x7_us",
        "ack_x8_us",
    ];

    /// The `ack_x<level>_us` histogram for a requested strength level,
    /// clamping levels past 8 into the last bucket.
    #[must_use]
    pub fn ack_level_name(level: u64) -> &'static str {
        ACK_US[(level as usize).min(ACK_US.len() - 1)]
    }

    // ---- consensus counters ----

    /// Proposals accepted into the engine (first sight per round).
    pub const CONSENSUS_PROPOSALS_SEEN: &str = "consensus_proposals_seen";
    /// Own votes cast.
    pub const CONSENSUS_VOTES_CAST: &str = "consensus_votes_cast";
    /// Quorum certificates newly formed or adopted (one per distinct QC).
    pub const CONSENSUS_QC_FORMED: &str = "consensus_qc_formed";
    /// Standard commits observed (first commit-log entry per round).
    pub const CONSENSUS_COMMITS: &str = "consensus_commits";

    // ---- block-sync (SyncManager) ----

    /// Request-sent → response-admitted latency (protocol µs).
    pub const SYNC_RESPONSE_US: &str = "sync_response_us";
    /// Fetches re-sent after an earlier attempt went unanswered.
    pub const SYNC_RETRIES: &str = "sync_retries";

    // ---- transport counters, split per MsgKind ----

    /// Messages sent, split per `MsgKind`: `net_msgs_<kind>`.
    pub const NET_MSGS: [&str; 5] = [
        "net_msgs_proposal",
        "net_msgs_vote",
        "net_msgs_timeout",
        "net_msgs_sync_request",
        "net_msgs_sync_response",
    ];
    /// Payload bytes sent, per kind: `net_bytes_<kind>`.
    pub const NET_BYTES: [&str; 5] = [
        "net_bytes_proposal",
        "net_bytes_vote",
        "net_bytes_timeout",
        "net_bytes_sync_request",
        "net_bytes_sync_response",
    ];

    /// Wire frames enqueued toward peers (`TcpCluster` / `NodeTransport`,
    /// framing overhead included in `net_frame_bytes`).
    pub const NET_FRAMES_SENT: &str = "net_frames_sent";
    /// Total framed bytes enqueued toward peers.
    pub const NET_FRAME_BYTES: &str = "net_frame_bytes";

    // ---- real-socket transport health ----

    /// TCP connect attempts by reconnecting peer writers.
    pub const NET_RECONNECT_ATTEMPTS: &str = "net_reconnect_attempts";
    /// Exponential-backoff sleeps taken by peer writers.
    pub const NET_BACKOFF_SLEEPS: &str = "net_backoff_sleeps";
    /// Total milliseconds slept in backoff.
    pub const NET_BACKOFF_SLEEP_MS: &str = "net_backoff_sleep_ms";

    // ---- trace event names (NDJSON `"ev"` values) ----

    /// A node process came up (fields: `id`).
    pub const EV_NODE_START: &str = "node_start";
    /// WAL replay finished before the first tick (fields: `records`).
    pub const EV_WAL_REPLAY_DONE: &str = "wal_replay_done";
    /// A proposal was first seen for a round (fields: `round`).
    pub const EV_PROPOSAL: &str = "proposal";
    /// This replica cast a vote (fields: `round`).
    pub const EV_VOTE: &str = "vote";
    /// A QC formed locally (fields: `round`).
    pub const EV_QC: &str = "qc";
    /// A round reached standard commit (fields: `round`, `height`).
    pub const EV_COMMIT: &str = "commit";
    /// A committed round's strength level rose (fields: `round`,
    /// `level`).
    pub const EV_STRENGTH: &str = "strength";
    /// A node finished and flushed its state (fields: `round`).
    pub const EV_NODE_STOP: &str = "node_stop";
}

#[cfg(test)]
mod tests {
    use super::names;

    #[test]
    fn strength_names_clamp() {
        assert_eq!(names::strength_level_name(0), "strength_x0_us");
        assert_eq!(names::strength_level_name(8), "strength_x8_us");
        assert_eq!(names::strength_level_name(40), "strength_x8_us");
    }

    #[test]
    fn ack_names_clamp() {
        assert_eq!(names::ack_level_name(0), "ack_x0_us");
        assert_eq!(names::ack_level_name(2), "ack_x2_us");
        assert_eq!(names::ack_level_name(40), "ack_x8_us");
    }
}
