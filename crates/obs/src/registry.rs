//! The recording [`Registry`]: named counters and histograms behind one
//! mutex, plus an optional [`TraceSink`] for event streams.
//!
//! One registry serves a whole process (or a whole simulation): engines,
//! transports, and the runner all hold `Arc` clones. Counter and
//! histogram names are `&'static str` (see [`crate::names`]) so the hot
//! path never allocates; the maps are `BTreeMap`s so snapshots come out
//! in a deterministic order.

use std::collections::BTreeMap;
use std::sync::Mutex;

use crate::clock::ObsClock;
use crate::hist::{HistSummary, Histogram};
use crate::recorder::Recorder;
use crate::trace::{TraceEvent, TraceSink};

/// The recorder that actually records.
///
/// # Examples
///
/// ```
/// use sft_obs::{Recorder, Registry};
///
/// let reg = Registry::new();
/// reg.add("messages", 2);
/// reg.observe("latency_us", 120);
/// let snap = reg.snapshot();
/// assert_eq!(snap.counter("messages"), Some(2));
/// assert_eq!(snap.hist("latency_us").unwrap().count, 1);
/// ```
#[derive(Default)]
pub struct Registry {
    inner: Mutex<Inner>,
    sink: Mutex<Option<TraceSink>>,
    clock: Mutex<ObsClock>,
}

#[derive(Default)]
struct Inner {
    counters: BTreeMap<&'static str, u64>,
    hists: BTreeMap<&'static str, Histogram>,
}

impl Registry {
    /// An empty registry with no trace sink and a wall clock.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attaches an NDJSON trace sink; subsequent
    /// [`trace`](Recorder::trace) calls append to it.
    pub fn set_sink(&self, sink: TraceSink) {
        *self.sink.lock().expect("sink lock") = Some(sink);
    }

    /// Replaces the clock used to stamp trace events emitted through
    /// [`Registry::trace_now`].
    pub fn set_clock(&self, clock: ObsClock) {
        *self.clock.lock().expect("clock lock") = clock;
    }

    /// Emits a trace event stamped with this registry's own clock —
    /// for call sites that have no protocol `now` in hand.
    pub fn trace_now(&self, name: &'static str, fields: &[(&'static str, u64)]) {
        let ts_us = self.clock.lock().expect("clock lock").now_us();
        self.trace(&TraceEvent::new(name, ts_us, fields));
    }

    /// Flushes the attached trace sink, if any.
    pub fn flush_sink(&self) {
        if let Some(sink) = self.sink.lock().expect("sink lock").as_mut() {
            let _ = sink.flush();
        }
    }
}

impl Recorder for Registry {
    fn enabled(&self) -> bool {
        true
    }

    fn add(&self, counter: &'static str, delta: u64) {
        let mut inner = self.inner.lock().expect("registry lock");
        *inner.counters.entry(counter).or_insert(0) += delta;
    }

    fn observe(&self, hist: &'static str, value: u64) {
        let mut inner = self.inner.lock().expect("registry lock");
        inner.hists.entry(hist).or_default().record(value);
    }

    fn trace(&self, event: &TraceEvent<'_>) {
        if let Some(sink) = self.sink.lock().expect("sink lock").as_mut() {
            // A full disk or yanked path must not take consensus down;
            // the trace just goes quiet.
            let _ = sink.emit(event);
        }
    }

    fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock().expect("registry lock");
        MetricsSnapshot {
            counters: inner
                .counters
                .iter()
                .map(|(name, value)| (name.to_string(), *value))
                .collect(),
            hists: inner
                .hists
                .iter()
                .map(|(name, hist)| (name.to_string(), hist.summary()))
                .collect(),
        }
    }
}

/// A point-in-time copy of a [`Registry`]: counter values plus one
/// [`HistSummary`] per histogram, both sorted by name.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// `(name, value)` for every counter, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, digest)` for every histogram, sorted by name.
    pub hists: Vec<(String, HistSummary)>,
}

impl MetricsSnapshot {
    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.hists.is_empty()
    }

    /// A counter's value, if it was ever incremented.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// A histogram's digest, if it ever saw a sample.
    pub fn hist(&self, name: &str) -> Option<HistSummary> {
        self.hists.iter().find(|(n, _)| n == name).map(|(_, s)| *s)
    }

    /// Every metric flattened to `(name, value)` scalars: counters
    /// verbatim, histograms as `<name>_{count,p50,p90,p99,max}`. This is
    /// the shape embedded in `BENCH_*.json` and banded by the perf gate.
    pub fn flat_fields(&self) -> Vec<(String, u64)> {
        let mut out: Vec<(String, u64)> = self.counters.clone();
        for (name, s) in &self.hists {
            out.push((format!("{name}_count"), s.count));
            out.push((format!("{name}_p50"), s.p50));
            out.push((format!("{name}_p90"), s.p90));
            out.push((format!("{name}_p99"), s.p99));
            out.push((format!("{name}_max"), s.max));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot_sorted() {
        let reg = Registry::new();
        reg.add("b_counter", 1);
        reg.add("a_counter", 2);
        reg.add("b_counter", 3);
        let snap = reg.snapshot();
        assert_eq!(
            snap.counters,
            vec![("a_counter".to_string(), 2), ("b_counter".to_string(), 4)]
        );
    }

    #[test]
    fn histograms_digest() {
        let reg = Registry::new();
        for v in [10u64, 20, 30] {
            reg.observe("lat", v);
        }
        let s = reg.snapshot().hist("lat").unwrap();
        assert_eq!(s.count, 3);
        assert_eq!(s.max, 30);
        assert!(s.p50 >= 20);
    }

    #[test]
    fn flat_fields_expand_hists() {
        let reg = Registry::new();
        reg.add("msgs", 7);
        reg.observe("lat", 100);
        let flat = reg.snapshot().flat_fields();
        let names: Vec<&str> = flat.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(
            names,
            [
                "msgs",
                "lat_count",
                "lat_p50",
                "lat_p90",
                "lat_p99",
                "lat_max"
            ]
        );
    }

    #[test]
    fn registry_is_shareable() {
        use crate::recorder::SharedRecorder;
        use std::sync::Arc;
        let reg: SharedRecorder = Arc::new(Registry::new());
        let clone = Arc::clone(&reg);
        std::thread::spawn(move || clone.add("spawned", 1))
            .join()
            .unwrap();
        assert_eq!(reg.snapshot().counter("spawned"), Some(1));
    }
}
