//! Time sources for observability: [`ObsClock`] abstracts sim-virtual
//! vs wall time so the same instrumentation runs under `SimTransport`
//! and real sockets, and [`PhaseTimer`] wraps the
//! enabled-check-then-`Instant` pattern for nanosecond phase timing.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crate::recorder::Recorder;

/// A microsecond clock that is either real or simulated.
///
/// Wall mode reads a monotonic [`Instant`] origin; virtual mode reads an
/// atomic the simulation harness advances in lockstep with its event
/// loop. Trace timestamps and coarse protocol spans go through this, so
/// a sim run and a TCP run produce timelines in the same unit.
#[derive(Clone, Debug)]
pub enum ObsClock {
    /// Wall-clock microseconds since the given origin.
    Wall(Instant),
    /// Simulated microseconds, driven externally via the shared atomic.
    Virtual(Arc<AtomicU64>),
}

impl Default for ObsClock {
    fn default() -> Self {
        Self::wall()
    }
}

impl ObsClock {
    /// A wall clock anchored at "now".
    pub fn wall() -> Self {
        Self::Wall(Instant::now())
    }

    /// A virtual clock plus the handle that advances it.
    pub fn virtual_clock() -> (Self, Arc<AtomicU64>) {
        let cell = Arc::new(AtomicU64::new(0));
        (Self::Virtual(Arc::clone(&cell)), cell)
    }

    /// Microseconds since the clock's origin.
    pub fn now_us(&self) -> u64 {
        match self {
            Self::Wall(origin) => origin.elapsed().as_micros() as u64,
            Self::Virtual(cell) => cell.load(Ordering::Relaxed),
        }
    }

    /// Opens a span starting now; close it with [`Span::finish`].
    pub fn span(&self) -> Span {
        Span {
            start_us: self.now_us(),
        }
    }
}

/// An open interval on an [`ObsClock`].
#[derive(Clone, Copy, Debug)]
pub struct Span {
    start_us: u64,
}

impl Span {
    /// Microseconds elapsed on `clock` since the span opened.
    pub fn elapsed_us(&self, clock: &ObsClock) -> u64 {
        clock.now_us().saturating_sub(self.start_us)
    }

    /// Records the span's duration into the named histogram.
    pub fn finish(self, clock: &ObsClock, recorder: &dyn Recorder, hist: &'static str) {
        recorder.observe(hist, self.elapsed_us(clock));
    }
}

/// A nanosecond-resolution phase timer that is free when recording is
/// off: [`PhaseTimer::start`] reads the clock only if the recorder is
/// enabled, and [`PhaseTimer::finish`] records the elapsed nanoseconds
/// (floored to 1, so a recorded phase is never reported as zero even on
/// coarse clocks).
///
/// Phase timings always use wall nanoseconds — simulated time does not
/// advance *during* processing, only between events, so virtual time
/// would measure every phase as zero.
#[must_use = "a started phase timer must be finished to record anything"]
#[derive(Debug)]
pub struct PhaseTimer(Option<Instant>);

impl PhaseTimer {
    /// Starts timing if `recorder` is enabled; otherwise this is inert.
    pub fn start(recorder: &dyn Recorder) -> Self {
        Self(recorder.enabled().then(Instant::now))
    }

    /// Records the elapsed nanoseconds into the named histogram.
    pub fn finish(self, recorder: &dyn Recorder, hist: &'static str) {
        if let Some(start) = self.0 {
            recorder.observe(hist, (start.elapsed().as_nanos() as u64).max(1));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::NoopRecorder;
    use crate::registry::Registry;

    #[test]
    fn wall_clock_advances() {
        let clock = ObsClock::wall();
        let first = clock.now_us();
        std::thread::sleep(std::time::Duration::from_millis(2));
        assert!(clock.now_us() > first);
    }

    #[test]
    fn virtual_clock_is_externally_driven() {
        let (clock, cell) = ObsClock::virtual_clock();
        assert_eq!(clock.now_us(), 0);
        cell.store(1500, Ordering::Relaxed);
        assert_eq!(clock.now_us(), 1500);
        let span = clock.span();
        cell.store(2500, Ordering::Relaxed);
        assert_eq!(span.elapsed_us(&clock), 1000);
    }

    #[test]
    fn span_records_into_histogram() {
        let (clock, cell) = ObsClock::virtual_clock();
        let reg = Registry::new();
        let span = clock.span();
        cell.store(40, Ordering::Relaxed);
        span.finish(&clock, &reg, "span_us");
        let s = Recorder::snapshot(&reg).hist("span_us").unwrap();
        assert_eq!((s.count, s.max), (1, 40));
    }

    #[test]
    fn phase_timer_noop_never_reads_clock() {
        let timer = PhaseTimer::start(&NoopRecorder);
        assert!(timer.0.is_none());
        timer.finish(&NoopRecorder, "phase_ns");
    }

    #[test]
    fn phase_timer_records_nonzero() {
        let reg = Registry::new();
        let timer = PhaseTimer::start(&reg);
        timer.finish(&reg, "phase_ns");
        let s = Recorder::snapshot(&reg).hist("phase_ns").unwrap();
        assert_eq!(s.count, 1);
        assert!(s.max >= 1);
    }
}
