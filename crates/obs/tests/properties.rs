//! Property tests over the histogram and the NDJSON trace sink, driven
//! by a seeded SplitMix64 PRNG so every run replays the same cases.
//!
//! The histogram invariants under test are the ones the bench gate's
//! tolerance bands lean on: bucketing is monotone (so percentiles are
//! order-consistent), a bucketed percentile brackets the exact
//! rank-statistic within the documented 12.5 % relative error, and merge
//! is associative and equal to recording the combined stream. The sink
//! invariant is the crash-safety contract: truncating the file at an
//! arbitrary byte (a torn tail) costs at most the final line, and a
//! reopened sink appends cleanly after it.

use std::io::Write as _;
use std::path::PathBuf;

use sft_obs::{read_trace, Histogram, TraceEvent, TraceSink};

/// SplitMix64: tiny, seedable, good enough to scatter test inputs.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`; `bound` must be nonzero.
    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }

    /// A value whose magnitude spans the full u64 range: a random
    /// bit-width first, then random bits within it — plain `next()`
    /// almost never produces small values, and small values are where
    /// the linear/log bucket seam lives.
    fn spanning(&mut self) -> u64 {
        let bits = self.below(64) + 1;
        self.next() >> (64 - bits)
    }
}

#[test]
fn bucket_index_is_monotone_and_upper_bounds_its_values() {
    let mut rng = SplitMix64(0x5eed_0001);
    for _ in 0..20_000 {
        let a = rng.spanning();
        let b = rng.spanning();
        let (lo, hi) = (a.min(b), a.max(b));
        let (il, ih) = (Histogram::bucket_index(lo), Histogram::bucket_index(hi));
        assert!(
            il <= ih,
            "bucket_index not monotone: {lo} -> {il}, {hi} -> {ih}"
        );
        // Every value sits at or below its own bucket's upper bound, and
        // strictly above the previous bucket's.
        let upper = Histogram::bucket_upper(il);
        assert!(upper >= lo, "upper({il}) = {upper} < value {lo}");
        if il > 0 {
            assert!(Histogram::bucket_upper(il - 1) < lo);
        }
        // Bucket uppers themselves are strictly increasing.
        if ih > il {
            assert!(Histogram::bucket_upper(ih) > upper);
        }
    }
}

#[test]
fn percentiles_bracket_the_exact_rank_statistic() {
    let mut rng = SplitMix64(0x5eed_0002);
    for _case in 0..50 {
        let n = (rng.below(2_000) + 1) as usize;
        let mut samples: Vec<u64> = (0..n).map(|_| rng.spanning()).collect();
        let mut h = Histogram::new();
        for s in &samples {
            h.record(*s);
        }
        samples.sort_unstable();
        for q in [0.01, 0.25, 0.50, 0.90, 0.99, 1.0] {
            let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
            let exact = samples[rank - 1];
            let got = h.percentile(q);
            assert!(
                got >= exact,
                "p{q} = {got} underestimates exact rank value {exact} (n = {n})"
            );
            let bound = exact as f64 * 1.125 + 1.0;
            assert!(
                got as f64 <= bound.min(*samples.last().unwrap() as f64),
                "p{q} = {got} exceeds bucket bound {bound} for exact {exact} (n = {n})"
            );
        }
        assert_eq!(h.percentile(1.0), *samples.last().unwrap());
        assert_eq!(h.max(), *samples.last().unwrap());
    }
}

#[test]
fn merge_is_associative_and_equals_the_combined_stream() {
    let mut rng = SplitMix64(0x5eed_0003);
    for _case in 0..30 {
        let mut parts = [Histogram::new(), Histogram::new(), Histogram::new()];
        let mut combined = Histogram::new();
        for h in &mut parts {
            for _ in 0..rng.below(500) {
                let v = rng.spanning();
                h.record(v);
                combined.record(v);
            }
        }
        let [a, b, c] = parts;
        // (a ⊕ b) ⊕ c
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        // a ⊕ (b ⊕ c)
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left, right, "merge must be associative");
        assert_eq!(left, combined, "merge must equal the combined stream");
        assert_eq!(left.summary(), combined.summary());
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sft-obs-prop-{}-{tag}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Names the sink writes; `&'static str` per the TraceEvent contract.
const NAMES: &[&str] = &["propose", "vote", "qc", "commit", "tick"];

#[test]
fn torn_tail_costs_at_most_the_final_line() {
    let mut rng = SplitMix64(0x5eed_0004);
    let dir = temp_dir("torn");
    for case in 0..40u32 {
        let path = dir.join(format!("trace-{case}.ndjson"));
        let expected_path = dir.join(format!("expected-{case}.ndjson"));
        let _ = std::fs::remove_file(&path);

        // Write a random event stream.
        let mut sink = TraceSink::open(&path).unwrap();
        let events = rng.below(20) + 1;
        for _ in 0..events {
            let name = NAMES[rng.below(NAMES.len() as u64) as usize];
            let fields = [("round", rng.below(1 << 20)), ("n", rng.next() >> 32)];
            let take = rng.below(3) as usize;
            sink.emit(&TraceEvent::new(name, rng.below(1 << 40), &fields[..take]))
                .unwrap();
        }
        drop(sink);

        // Tear the file at a random byte offset (keep at least one byte).
        let body = std::fs::read(&path).unwrap();
        let cut = (rng.below(body.len() as u64) + 1) as usize;
        let file = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        file.set_len(cut as u64).unwrap();
        drop(file);

        // What a lenient reader sees in the torn prefix is exactly what
        // must survive: whole lines parse, the fragment is skipped.
        std::fs::write(&expected_path, &body[..cut]).unwrap();
        let mut expected = read_trace(&expected_path).unwrap();
        let whole_lines = body[..cut].iter().filter(|b| **b == b'\n').count();
        assert!(
            expected.len() >= whole_lines,
            "case {case}: reader lost a fully-written line ({} < {whole_lines})",
            expected.len()
        );

        // A new incarnation appends after the tear without corruption.
        let mut sink = TraceSink::open(&path).unwrap();
        sink.emit(&TraceEvent::new("restart", 1, &[("gen", 2)]))
            .unwrap();
        drop(sink);
        expected.push(read_trace_single(
            "{\"ev\":\"restart\",\"ts_us\":1,\"gen\":2}",
        ));
        let actual = read_trace(&path).unwrap();
        assert_eq!(
            actual,
            expected,
            "case {case}: torn tail must cost at most the final line (cut at {cut}/{})",
            body.len()
        );
    }
}

/// Parses one known-good line through the public reader.
fn read_trace_single(line: &str) -> sft_obs::OwnedTraceEvent {
    let path = temp_dir("single").join("one.ndjson");
    let mut f = std::fs::File::create(&path).unwrap();
    writeln!(f, "{line}").unwrap();
    drop(f);
    read_trace(&path).unwrap().remove(0)
}
