//! Seeded-PRNG property tests for the client-plane codec: every
//! [`ClientRequest`] / [`ClientAck`] / [`ClientFrame`] round-trips, every
//! truncation point is an error (never a wrong answer), hostile length
//! prefixes are rejected before allocation, and a reader expecting one
//! frame direction refuses the other by tag instead of misparsing it.

use sft_crypto::rng::{RngCore, SplitMix64};
use sft_crypto::HashValue;
use sft_types::{
    ClientAck, ClientFrame, ClientRequest, Decode, DecodeError, Encode, Envelope, ProtocolTag,
    ReplicaId, Round, Transaction,
};

const ROUNDS: u64 = 200;

fn random_txn(rng: &mut SplitMix64) -> Transaction {
    let len = rng.next_below(512) as usize;
    let payload: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
    Transaction::new(rng.next_below(64), rng.next_below(1 << 20), payload)
}

fn random_request(rng: &mut SplitMix64) -> ClientRequest {
    ClientRequest::new(random_txn(rng), rng.next_below(9))
}

fn random_ack(rng: &mut SplitMix64) -> ClientAck {
    let txn_id = HashValue::of(&rng.next_u64().to_be_bytes());
    match rng.next_below(3) {
        0 => ClientAck::Committed {
            txn_id,
            round: Round::new(rng.next_below(1 << 30)),
            strength: rng.next_below(9),
        },
        1 => ClientAck::Busy { txn_id },
        _ => ClientAck::Duplicate { txn_id },
    }
}

fn random_frame(rng: &mut SplitMix64) -> ClientFrame {
    if rng.next_below(2) == 0 {
        ClientFrame::Request(random_request(rng))
    } else {
        ClientFrame::Ack(random_ack(rng))
    }
}

#[test]
fn random_requests_and_acks_roundtrip() {
    let mut rng = SplitMix64::new(0x00c1_1e41);
    for _ in 0..ROUNDS {
        let req = random_request(&mut rng);
        let bytes = req.to_bytes();
        assert_eq!(bytes.len(), req.encoded_len());
        assert_eq!(ClientRequest::from_bytes(&bytes).unwrap(), req);

        let ack = random_ack(&mut rng);
        let bytes = ack.to_bytes();
        assert_eq!(bytes.len(), ack.encoded_len());
        assert_eq!(ClientAck::from_bytes(&bytes).unwrap(), ack);

        let frame = random_frame(&mut rng);
        let bytes = frame.to_bytes();
        assert_eq!(bytes.len(), frame.encoded_len());
        assert_eq!(ClientFrame::from_bytes(&bytes).unwrap(), frame);
    }
}

#[test]
fn every_truncation_point_is_an_error_never_a_wrong_value() {
    let mut rng = SplitMix64::new(0x7a_11c4);
    for _ in 0..40 {
        let frame = random_frame(&mut rng);
        let bytes = frame.to_bytes();
        for cut in 0..bytes.len() {
            match ClientFrame::from_bytes(&bytes[..cut]) {
                Err(_) => {}
                Ok(v) => panic!(
                    "a {cut}-byte prefix of a {}-byte frame decoded to {v:?}",
                    bytes.len()
                ),
            }
        }
    }
}

#[test]
fn hostile_payload_lengths_rejected_before_allocation() {
    let mut rng = SplitMix64::new(0x0010_57c1);
    for _ in 0..ROUNDS {
        // A request whose transaction claims an absurd payload length.
        let mut bytes = vec![0u8]; // ClientFrame::Request tag
        rng.next_below(64).encode(&mut bytes); // client
        rng.next_below(64).encode(&mut bytes); // seq
        let claimed = (1u64 << 24) + 1 + rng.next_below(1 << 32);
        claimed.encode(&mut bytes); // hostile payload length
        bytes.extend_from_slice(&[0u8; 32]);
        assert!(
            matches!(
                ClientFrame::from_bytes(&bytes),
                Err(DecodeError::LengthOverflow(_))
            ),
            "claimed payload length {claimed} must be rejected"
        );
    }
}

#[test]
fn readers_refuse_the_wrong_frame_direction_by_tag() {
    let mut rng = SplitMix64::new(0xd1_4ec7);
    for _ in 0..ROUNDS {
        // A replica-side reader wants requests; feed it an ack.
        let ack = ClientFrame::Ack(random_ack(&mut rng));
        let decoded = ClientFrame::from_bytes(&ack.to_bytes()).unwrap();
        assert!(
            decoded.as_request().is_none(),
            "ack must not read as request"
        );

        // A client-side reader wants acks; feed it a request.
        let req = ClientFrame::Request(random_request(&mut rng));
        let decoded = ClientFrame::from_bytes(&req.to_bytes()).unwrap();
        assert!(decoded.as_ack().is_none(), "request must not read as ack");
    }
}

#[test]
fn unknown_frame_and_ack_tags_are_invalid() {
    let mut rng = SplitMix64::new(0xbad_7a9);
    for _ in 0..ROUNDS {
        let tag = 2 + rng.next_below(254) as u8;
        assert_eq!(
            ClientFrame::from_bytes(&[tag]),
            Err(DecodeError::InvalidTag(tag)),
            "frame tag {tag} must be refused"
        );
        let ack_tag = 3 + rng.next_below(253) as u8;
        assert_eq!(
            ClientAck::from_bytes(&[ack_tag]),
            Err(DecodeError::InvalidTag(ack_tag)),
            "ack tag {ack_tag} must be refused"
        );
    }
}

#[test]
fn client_frames_ride_envelopes_under_the_client_tag() {
    let mut rng = SplitMix64::new(0x00e4_7e10);
    for _ in 0..ROUNDS {
        let frame = random_frame(&mut rng);
        let env = Envelope::to_peer(
            ReplicaId::new(0),
            ReplicaId::new(rng.next_below(16) as u16),
            ProtocolTag::Client,
            frame.to_bytes(),
        );
        let wire = env.to_frame();
        let (back, used) = Envelope::decode_frame(&wire).unwrap().unwrap();
        assert_eq!(used, wire.len());
        assert_eq!(back.protocol, ProtocolTag::Client);
        assert_eq!(ClientFrame::from_bytes(&back.payload).unwrap(), frame);
    }
}

#[test]
fn trailing_bytes_after_a_frame_are_refused() {
    let mut rng = SplitMix64::new(0x007e_577e);
    for _ in 0..40 {
        let mut bytes = random_frame(&mut rng).to_bytes();
        bytes.push(0);
        assert!(
            matches!(
                ClientFrame::from_bytes(&bytes),
                Err(DecodeError::TrailingBytes(_))
            ),
            "one trailing byte must be refused"
        );
    }
}
