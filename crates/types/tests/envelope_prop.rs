//! Seeded-PRNG property tests for the wire [`Envelope`] framing shared by
//! both transports: every envelope round-trips through its frame, frame
//! streams decode in sequence, truncation is always "need more bytes" and
//! never a wrong answer, and hostile bytes are rejected without panics or
//! unbounded allocation.

use sft_crypto::rng::{RngCore, SplitMix64};
use sft_types::{Decode, DecodeError, Dest, Envelope, ProtocolTag, ReplicaId, MAX_FRAME_LEN};

const ROUNDS: u64 = 200;

fn random_envelope(rng: &mut SplitMix64) -> Envelope {
    let src = ReplicaId::new(rng.next_below(64) as u16);
    let dest = if rng.next_below(2) == 0 {
        Dest::Broadcast
    } else {
        Dest::Peer(ReplicaId::new(rng.next_below(64) as u16))
    };
    let protocol = if rng.next_below(2) == 0 {
        ProtocolTag::Streamlet
    } else {
        ProtocolTag::Fbft
    };
    let len = rng.next_below(2048) as usize;
    let payload: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
    Envelope {
        src,
        dest,
        protocol,
        payload: payload.into(),
    }
}

#[test]
fn random_envelopes_roundtrip_through_frames() {
    let mut rng = SplitMix64::new(0x5f7_e41);
    for _ in 0..ROUNDS {
        let env = random_envelope(&mut rng);
        let frame = env.to_frame();
        let (back, used) = Envelope::decode_frame(&frame)
            .expect("well-formed frame")
            .expect("complete frame");
        assert_eq!(used, frame.len());
        assert_eq!(back, env);
    }
}

#[test]
fn frame_streams_decode_in_sequence() {
    let mut rng = SplitMix64::new(0xb0a7);
    for _ in 0..20 {
        let count = 1 + rng.next_below(8) as usize;
        let envs: Vec<Envelope> = (0..count).map(|_| random_envelope(&mut rng)).collect();
        let mut stream = Vec::new();
        for env in &envs {
            stream.extend_from_slice(&env.to_frame());
        }
        // Decode the stream back, frame by frame, from arbitrary chunk
        // boundaries: exactly what a socket reader does.
        let mut decoded = Vec::new();
        let mut cursor = 0usize;
        while cursor < stream.len() {
            match Envelope::decode_frame(&stream[cursor..]).expect("honest stream") {
                Some((env, used)) => {
                    decoded.push(env);
                    cursor += used;
                }
                None => panic!("honest stream stalled at offset {cursor}"),
            }
        }
        assert_eq!(decoded, envs);
    }
}

#[test]
fn every_truncation_is_incomplete_never_wrong() {
    let mut rng = SplitMix64::new(0x7_c4a3);
    for _ in 0..40 {
        let env = random_envelope(&mut rng);
        let frame = env.to_frame();
        // Check a spread of prefixes (every one for short frames).
        let step = (frame.len() / 64).max(1);
        for cut in (0..frame.len()).step_by(step) {
            assert_eq!(
                Envelope::decode_frame(&frame[..cut]).expect("truncation is not malformation"),
                None,
                "a {cut}-byte prefix of a {}-byte frame must ask for more",
                frame.len()
            );
        }
    }
}

#[test]
fn corrupt_tag_bytes_are_rejected() {
    let mut rng = SplitMix64::new(0xde7ec7);
    for _ in 0..ROUNDS {
        let env = random_envelope(&mut rng);
        let mut frame = env.to_frame();
        // Body layout: src(2) dest-tag(1) ... — poison the dest tag.
        frame[4 + 2] = 0x7f;
        match Envelope::decode_frame(&frame) {
            Err(DecodeError::InvalidTag(0x7f)) => {}
            other => panic!("poisoned dest tag accepted: {other:?}"),
        }
    }
}

#[test]
fn hostile_length_prefixes_never_allocate() {
    let mut rng = SplitMix64::new(0x1057);
    for _ in 0..ROUNDS {
        let claimed = MAX_FRAME_LEN as u32 + 1 + rng.next_below(1 << 20) as u32;
        let mut frame = claimed.to_be_bytes().to_vec();
        // A few junk bytes after the hostile prefix.
        frame.extend_from_slice(&[0u8; 16]);
        assert!(
            matches!(
                Envelope::decode_frame(&frame),
                Err(DecodeError::LengthOverflow(_))
            ),
            "length {claimed} must be rejected before allocation"
        );
    }
}

#[test]
fn random_garbage_never_panics_and_never_yields_trailing_bytes() {
    let mut rng = SplitMix64::new(0x6a2ba6e);
    for _ in 0..ROUNDS {
        let len = rng.next_below(256) as usize;
        let garbage: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
        // Any outcome is legal except a decode that leaves the frame
        // boundary inconsistent: a decoded frame must account for its
        // header plus body exactly.
        if let Ok(Some((env, used))) = Envelope::decode_frame(&garbage) {
            let mut expected = [0u8; 4];
            expected.copy_from_slice(&garbage[..4]);
            assert_eq!(used, 4 + u32::from_be_bytes(expected) as usize);
            // And the decoded envelope re-encodes to that exact body.
            let reframed = env.to_frame();
            assert_eq!(&reframed[..], &garbage[..used]);
        }
    }
}

#[test]
fn inner_payload_length_lies_are_eof_or_trailing() {
    // Claim more payload than the body carries → EOF; claim less →
    // trailing bytes. Either way the codec refuses.
    let env = Envelope::broadcast(ReplicaId::new(1), ProtocolTag::Fbft, vec![9u8; 8]);
    let mut body = sft_types::Encode::to_bytes(&env);
    // The payload length field sits 4 bytes (src+dest+tag) into the body;
    // overwrite the u64 with a lie.
    let len_at = 2 + 1 + 1;
    body[len_at..len_at + 8].copy_from_slice(&16u64.to_be_bytes());
    assert_eq!(
        Envelope::from_bytes(&body),
        Err(DecodeError::UnexpectedEof),
        "claiming more payload than present is EOF"
    );
    body[len_at..len_at + 8].copy_from_slice(&4u64.to_be_bytes());
    assert!(
        matches!(
            Envelope::from_bytes(&body),
            Err(DecodeError::TrailingBytes(_))
        ),
        "claiming less payload than present leaves trailing bytes"
    );
}
