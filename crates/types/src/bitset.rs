//! [`SignerSet`]: a fixed-capacity bitset over replica indices.
//!
//! Endorsement tracking (§3.2) maintains, per block, the set of replicas
//! whose strong-votes endorse the block. With `n ≤ 65 536` replicas a packed
//! bitset gives O(n/64) unions and O(1) inserts, which matters because every
//! new strong-QC updates the endorser sets of a whole chain suffix.

use std::fmt;

use crate::codec::{Decode, DecodeError, Encode};
use crate::ReplicaId;

/// A set of replica indices backed by packed 64-bit words.
///
/// # Examples
///
/// ```
/// use sft_types::{ReplicaId, SignerSet};
///
/// let mut set = SignerSet::new(100);
/// set.insert(ReplicaId::new(3));
/// set.insert(ReplicaId::new(99));
/// assert_eq!(set.len(), 2);
/// assert!(set.contains(ReplicaId::new(3)));
/// assert!(!set.contains(ReplicaId::new(4)));
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct SignerSet {
    words: Vec<u64>,
    capacity: usize,
}

impl SignerSet {
    /// Creates an empty set able to hold replica indices `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        Self {
            words: vec![0; capacity.div_ceil(64)],
            capacity,
        }
    }

    /// Creates a set containing the given replicas.
    ///
    /// # Panics
    ///
    /// Panics if any replica index is `>= capacity`.
    pub fn from_iter_with_capacity<I>(capacity: usize, iter: I) -> Self
    where
        I: IntoIterator<Item = ReplicaId>,
    {
        let mut set = Self::new(capacity);
        for id in iter {
            set.insert(id);
        }
        set
    }

    /// The maximum number of distinct replicas this set can hold.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Adds `id` to the set. Returns `true` if it was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for this set's capacity.
    pub fn insert(&mut self, id: ReplicaId) -> bool {
        let idx = id.as_usize();
        assert!(
            idx < self.capacity,
            "replica {idx} out of capacity {}",
            self.capacity
        );
        let word = &mut self.words[idx / 64];
        let mask = 1u64 << (idx % 64);
        let fresh = *word & mask == 0;
        *word |= mask;
        fresh
    }

    /// Removes `id` from the set. Returns `true` if it was present —
    /// the rollback path deferred verification takes when a batched
    /// quorum check exposes a forged signer that was counted
    /// optimistically.
    pub fn remove(&mut self, id: ReplicaId) -> bool {
        let idx = id.as_usize();
        if idx >= self.capacity {
            return false;
        }
        let word = &mut self.words[idx / 64];
        let mask = 1u64 << (idx % 64);
        let present = *word & mask != 0;
        *word &= !mask;
        present
    }

    /// True if `id` is in the set. Out-of-range ids are never present.
    pub fn contains(&self, id: ReplicaId) -> bool {
        let idx = id.as_usize();
        idx < self.capacity && self.words[idx / 64] & (1u64 << (idx % 64)) != 0
    }

    /// Number of replicas in the set.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Adds every member of `other` to `self`. Returns `true` if `self`
    /// changed.
    ///
    /// # Panics
    ///
    /// Panics if the capacities differ.
    pub fn union_with(&mut self, other: &SignerSet) -> bool {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch in union");
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let merged = *a | *b;
            changed |= merged != *a;
            *a = merged;
        }
        changed
    }

    /// Number of replicas present in both sets.
    ///
    /// # Panics
    ///
    /// Panics if the capacities differ.
    pub fn intersection_len(&self, other: &SignerSet) -> usize {
        assert_eq!(
            self.capacity, other.capacity,
            "capacity mismatch in intersection"
        );
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// Iterates over members in increasing index order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            set: self,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }
}

impl fmt::Debug for SignerSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SignerSet{{")?;
        for (i, id) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{id}")?;
        }
        write!(f, "}}")
    }
}

impl<'a> IntoIterator for &'a SignerSet {
    type Item = ReplicaId;
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

/// Iterator over the members of a [`SignerSet`].
#[derive(Clone, Debug)]
pub struct Iter<'a> {
    set: &'a SignerSet,
    word_idx: usize,
    current: u64,
}

impl Iterator for Iter<'_> {
    type Item = ReplicaId;

    fn next(&mut self) -> Option<ReplicaId> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(ReplicaId::new((self.word_idx * 64 + bit) as u16));
            }
            self.word_idx += 1;
            if self.word_idx >= self.set.words.len() {
                return None;
            }
            self.current = self.set.words[self.word_idx];
        }
    }
}

impl Encode for SignerSet {
    fn encode(&self, buf: &mut Vec<u8>) {
        (self.capacity as u64).encode(buf);
        self.words.encode(buf);
    }
}

impl Decode for SignerSet {
    fn decode(buf: &mut &[u8]) -> Result<Self, DecodeError> {
        let capacity = u64::decode(buf)?;
        if capacity > u16::MAX as u64 + 1 {
            return Err(DecodeError::LengthOverflow(capacity));
        }
        let capacity = capacity as usize;
        let words = Vec::<u64>::decode(buf)?;
        if words.len() != capacity.div_ceil(64) {
            return Err(DecodeError::LengthOverflow(words.len() as u64));
        }
        Ok(Self { words, capacity })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(indices: &[u16]) -> Vec<ReplicaId> {
        indices.iter().copied().map(ReplicaId::new).collect()
    }

    #[test]
    fn insert_and_contains() {
        let mut set = SignerSet::new(130);
        assert!(set.insert(ReplicaId::new(0)));
        assert!(set.insert(ReplicaId::new(64)));
        assert!(set.insert(ReplicaId::new(129)));
        assert!(
            !set.insert(ReplicaId::new(64)),
            "double insert reports false"
        );
        assert_eq!(set.len(), 3);
        assert!(set.contains(ReplicaId::new(129)));
        assert!(!set.contains(ReplicaId::new(128)));
        // Out-of-range queries are false, not panics.
        assert!(!set.contains(ReplicaId::new(500)));
    }

    #[test]
    #[should_panic(expected = "out of capacity")]
    fn insert_out_of_range_panics() {
        SignerSet::new(4).insert(ReplicaId::new(4));
    }

    #[test]
    fn remove_rolls_back_inserts() {
        let mut set = SignerSet::from_iter_with_capacity(130, ids(&[2, 64, 129]));
        assert!(set.remove(ReplicaId::new(64)));
        assert!(!set.remove(ReplicaId::new(64)), "second remove is a no-op");
        assert!(!set.remove(ReplicaId::new(500)), "out of range is absent");
        assert_eq!(set.len(), 2);
        assert!(!set.contains(ReplicaId::new(64)));
        assert!(set.contains(ReplicaId::new(129)));
    }

    #[test]
    fn union_and_intersection() {
        let a = SignerSet::from_iter_with_capacity(100, ids(&[1, 2, 3, 70]));
        let b = SignerSet::from_iter_with_capacity(100, ids(&[3, 70, 99]));
        let mut u = a.clone();
        assert!(u.union_with(&b));
        assert_eq!(u.len(), 5);
        assert!(!u.union_with(&b), "second union is a no-op");
        assert_eq!(a.intersection_len(&b), 2);
        assert_eq!(b.intersection_len(&a), 2);
    }

    #[test]
    fn iteration_in_order() {
        let set = SignerSet::from_iter_with_capacity(200, ids(&[190, 0, 64, 63, 65]));
        let got: Vec<u16> = set.iter().map(|r| r.as_u16()).collect();
        assert_eq!(got, vec![0, 63, 64, 65, 190]);
    }

    #[test]
    fn empty_set() {
        let set = SignerSet::new(10);
        assert!(set.is_empty());
        assert_eq!(set.len(), 0);
        assert_eq!(set.iter().count(), 0);
        assert_eq!(format!("{set:?}"), "SignerSet{}");
    }

    #[test]
    fn debug_lists_members() {
        let set = SignerSet::from_iter_with_capacity(8, ids(&[1, 5]));
        assert_eq!(format!("{set:?}"), "SignerSet{r1,r5}");
    }

    #[test]
    fn codec_roundtrip() {
        let set = SignerSet::from_iter_with_capacity(100, ids(&[0, 33, 66, 99]));
        let back = SignerSet::from_bytes(&set.to_bytes()).unwrap();
        assert_eq!(back, set);
    }

    #[test]
    fn codec_rejects_mismatched_words() {
        let set = SignerSet::from_iter_with_capacity(100, ids(&[1]));
        let mut bytes = set.to_bytes();
        // Corrupt the capacity field so the word count no longer matches.
        bytes[7] = 10;
        assert!(SignerSet::from_bytes(&bytes).is_err());
    }

    #[test]
    fn quorum_arithmetic_example() {
        // Lemma 1's quorum-intersection argument in miniature: two sets of
        // size 2f+1 out of n=3f+1 overlap in >= f+1 replicas.
        let f = 3;
        let n = 3 * f + 1;
        let a = SignerSet::from_iter_with_capacity(n, (0..(2 * f + 1) as u16).map(ReplicaId::new));
        let b = SignerSet::from_iter_with_capacity(n, ((f as u16)..(n as u16)).map(ReplicaId::new));
        assert_eq!(a.len(), 2 * f + 1);
        assert_eq!(b.len(), 2 * f + 1);
        assert!(a.intersection_len(&b) > f);
    }
}
