//! Transactions and block payloads.
//!
//! The paper's workload (§4): "each proposed block contains roughly 1000
//! transactions, and has a size of around 450KB. Sufficiently many
//! transactions are generated and submitted by the clients so that any
//! leader always has enough transactions". Two payload representations
//! support that:
//!
//! - [`Payload::Transactions`] carries real [`Transaction`]s on the wire —
//!   used by the examples and functional tests, where the committed log
//!   contents matter.
//! - [`Payload::Synthetic`] describes a batch (`txn_count × txn_bytes`)
//!   without materializing it — used by the latency experiments, where only
//!   the *size* of the batch matters (delays in the simulator are latency
//!   injections, §4/Fig 6, not bandwidth limits). Its [`Payload::wire_bytes`]
//!   reports the size the batch would occupy, so message-size accounting
//!   stays honest while a laptop can sweep hundreds of configurations.

use std::fmt;

use sft_crypto::{HashValue, Hasher};

use crate::codec::{Decode, DecodeError, Encode};

/// A client transaction: an opaque payload attributed to a submitting
/// client, sequence-numbered for duplicate detection.
///
/// # Examples
///
/// ```
/// use sft_types::Transaction;
///
/// let txn = Transaction::new(7, 0, b"transfer 10 -> alice".to_vec());
/// assert_eq!(txn.client(), 7);
/// assert_ne!(txn.id(), Transaction::new(7, 1, vec![]).id());
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Transaction {
    client: u64,
    seq: u64,
    payload: Vec<u8>,
}

impl Transaction {
    /// Creates a transaction from client id, per-client sequence number,
    /// and payload bytes.
    pub fn new(client: u64, seq: u64, payload: Vec<u8>) -> Self {
        Self {
            client,
            seq,
            payload,
        }
    }

    /// The submitting client's id.
    pub fn client(&self) -> u64 {
        self.client
    }

    /// The per-client sequence number.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// The opaque payload bytes.
    pub fn payload(&self) -> &[u8] {
        &self.payload
    }

    /// The transaction id: a domain-separated hash of all fields.
    pub fn id(&self) -> HashValue {
        Hasher::new("txn")
            .field(&self.client.to_be_bytes())
            .field(&self.seq.to_be_bytes())
            .field(&self.payload)
            .finish()
    }
}

impl fmt::Debug for Transaction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Txn(client={}, seq={}, {}B)",
            self.client,
            self.seq,
            self.payload.len()
        )
    }
}

impl Encode for Transaction {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.client.encode(buf);
        self.seq.encode(buf);
        (self.payload.len() as u64).encode(buf);
        buf.extend_from_slice(&self.payload);
    }
    fn encoded_len(&self) -> usize {
        8 + 8 + 8 + self.payload.len()
    }
}

impl Decode for Transaction {
    fn decode(buf: &mut &[u8]) -> Result<Self, DecodeError> {
        let client = u64::decode(buf)?;
        let seq = u64::decode(buf)?;
        let len = u64::decode(buf)?;
        if len > crate::codec::MAX_SEQ_LEN {
            return Err(DecodeError::LengthOverflow(len));
        }
        let len = len as usize;
        if buf.len() < len {
            return Err(DecodeError::UnexpectedEof);
        }
        let (head, tail) = buf.split_at(len);
        let payload = head.to_vec();
        *buf = tail;
        Ok(Self {
            client,
            seq,
            payload,
        })
    }
}

/// Limits on the transaction batch a leader drains from its mempool into
/// one proposal — the knobs FeBFT-style batching exposes: a count cap and a
/// byte cap, whichever bites first.
///
/// # Examples
///
/// ```
/// use sft_types::BatchConfig;
///
/// let batch = BatchConfig::with_max_txns(256);
/// assert_eq!(batch.max_txns, 256);
/// assert!(batch.max_bytes > 0);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BatchConfig {
    /// Maximum transactions per proposed block.
    pub max_txns: u32,
    /// Maximum encoded payload bytes per proposed block.
    pub max_bytes: u64,
}

impl Default for BatchConfig {
    /// The paper's workload shape: ~1000 transactions of ~450 B each per
    /// block, so the byte cap sits just above 450 KB.
    fn default() -> Self {
        Self {
            max_txns: 1000,
            max_bytes: 512 * 1024,
        }
    }
}

impl BatchConfig {
    /// A batch limited by transaction count only (byte cap stays at the
    /// default).
    pub fn with_max_txns(max_txns: u32) -> Self {
        Self {
            max_txns,
            ..Self::default()
        }
    }
}

/// The transaction batch carried by a block.
///
/// # Examples
///
/// ```
/// use sft_types::{Payload, Transaction};
///
/// let real = Payload::Transactions(vec![Transaction::new(1, 0, vec![0; 64])]);
/// // The paper's workload: ~1000 txns, ~450 bytes each, ~450 KB per block.
/// let synthetic = Payload::synthetic(1000, 450, 42);
/// assert_eq!(synthetic.wire_bytes(), 1000 * 450 + 24);
/// assert_eq!(synthetic.txn_count(), 1000);
/// assert!(real.wire_bytes() < synthetic.wire_bytes());
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum Payload {
    /// A materialized list of transactions.
    Transactions(Vec<Transaction>),
    /// A described-but-not-materialized batch: `txn_count` transactions of
    /// `txn_bytes` bytes each, distinguished by a workload `tag` so distinct
    /// blocks hash differently.
    Synthetic {
        /// Number of transactions in the batch.
        txn_count: u32,
        /// Bytes per transaction.
        txn_bytes: u32,
        /// Uniquifying tag (e.g. a workload sequence number).
        tag: u64,
    },
}

impl Payload {
    /// An empty real payload (used by genesis and no-op blocks).
    pub fn empty() -> Self {
        Payload::Transactions(Vec::new())
    }

    /// Creates a synthetic batch descriptor.
    pub fn synthetic(txn_count: u32, txn_bytes: u32, tag: u64) -> Self {
        Payload::Synthetic {
            txn_count,
            txn_bytes,
            tag,
        }
    }

    /// Number of transactions the payload represents.
    pub fn txn_count(&self) -> usize {
        match self {
            Payload::Transactions(txns) => txns.len(),
            Payload::Synthetic { txn_count, .. } => *txn_count as usize,
        }
    }

    /// True if the payload carries no transactions.
    pub fn is_empty(&self) -> bool {
        self.txn_count() == 0
    }

    /// The number of bytes this payload occupies (or would occupy) on the
    /// wire — the quantity the message-size experiments account for.
    pub fn wire_bytes(&self) -> usize {
        match self {
            Payload::Transactions(_) => self.encoded_len(),
            Payload::Synthetic {
                txn_count,
                txn_bytes,
                ..
            } => {
                // What an inline encoding of the described batch would cost
                // in transaction bytes, plus this descriptor's own framing.
                *txn_count as usize * *txn_bytes as usize + 24
            }
        }
    }

    /// A digest committing to the payload contents, mixed into the block id.
    pub fn digest(&self) -> HashValue {
        match self {
            Payload::Transactions(txns) => {
                let mut h = Hasher::new("payload-txns");
                for txn in txns {
                    h = h.field(txn.id().as_ref());
                }
                h.finish()
            }
            Payload::Synthetic {
                txn_count,
                txn_bytes,
                tag,
            } => Hasher::new("payload-synth")
                .field(&txn_count.to_be_bytes())
                .field(&txn_bytes.to_be_bytes())
                .field(&tag.to_be_bytes())
                .finish(),
        }
    }
}

impl fmt::Debug for Payload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Payload::Transactions(txns) => write!(f, "Payload({} txns)", txns.len()),
            Payload::Synthetic {
                txn_count,
                txn_bytes,
                tag,
            } => {
                write!(f, "Payload(synthetic {txn_count}x{txn_bytes}B #{tag})")
            }
        }
    }
}

impl Encode for Payload {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            Payload::Transactions(txns) => {
                buf.push(0);
                txns.encode(buf);
            }
            Payload::Synthetic {
                txn_count,
                txn_bytes,
                tag,
            } => {
                buf.push(1);
                txn_count.encode(buf);
                txn_bytes.encode(buf);
                tag.encode(buf);
            }
        }
    }
}

impl Decode for Payload {
    fn decode(buf: &mut &[u8]) -> Result<Self, DecodeError> {
        match u8::decode(buf)? {
            0 => Ok(Payload::Transactions(Vec::decode(buf)?)),
            1 => Ok(Payload::Synthetic {
                txn_count: u32::decode(buf)?,
                txn_bytes: u32::decode(buf)?,
                tag: u64::decode(buf)?,
            }),
            t => Err(DecodeError::InvalidTag(t)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn txn_id_binds_all_fields() {
        let base = Transaction::new(1, 2, vec![3]);
        assert_ne!(base.id(), Transaction::new(9, 2, vec![3]).id());
        assert_ne!(base.id(), Transaction::new(1, 9, vec![3]).id());
        assert_ne!(base.id(), Transaction::new(1, 2, vec![9]).id());
        assert_eq!(base.id(), Transaction::new(1, 2, vec![3]).id());
    }

    #[test]
    fn txn_accessors() {
        let txn = Transaction::new(5, 7, vec![1, 2, 3]);
        assert_eq!(txn.client(), 5);
        assert_eq!(txn.seq(), 7);
        assert_eq!(txn.payload(), &[1, 2, 3]);
        assert_eq!(format!("{txn:?}"), "Txn(client=5, seq=7, 3B)");
    }

    #[test]
    fn txn_codec_roundtrip() {
        let txn = Transaction::new(1, 2, vec![0xab; 100]);
        let bytes = txn.to_bytes();
        assert_eq!(bytes.len(), txn.encoded_len());
        assert_eq!(Transaction::from_bytes(&bytes).unwrap(), txn);
    }

    #[test]
    fn txn_decode_rejects_truncated_payload() {
        let txn = Transaction::new(1, 2, vec![7; 50]);
        let bytes = txn.to_bytes();
        assert_eq!(
            Transaction::from_bytes(&bytes[..bytes.len() - 1]),
            Err(DecodeError::UnexpectedEof)
        );
    }

    #[test]
    fn txn_decode_rejects_hostile_length() {
        let mut bytes = Vec::new();
        1u64.encode(&mut bytes);
        2u64.encode(&mut bytes);
        u64::MAX.encode(&mut bytes);
        assert!(matches!(
            Transaction::from_bytes(&bytes),
            Err(DecodeError::LengthOverflow(_))
        ));
    }

    #[test]
    fn payload_counts() {
        assert_eq!(Payload::empty().txn_count(), 0);
        assert!(Payload::empty().is_empty());
        let p = Payload::Transactions(vec![
            Transaction::new(1, 0, vec![]),
            Transaction::new(1, 1, vec![]),
        ]);
        assert_eq!(p.txn_count(), 2);
        assert_eq!(Payload::synthetic(1000, 450, 0).txn_count(), 1000);
    }

    #[test]
    fn synthetic_wire_bytes_match_paper_workload() {
        // ~1000 txns of ~450 B each ≈ 450 KB blocks (§4).
        let p = Payload::synthetic(1000, 450, 1);
        assert_eq!(p.wire_bytes(), 450_024);
    }

    #[test]
    fn inline_wire_bytes_are_encoded_len() {
        let p = Payload::Transactions(vec![Transaction::new(0, 0, vec![9; 10])]);
        assert_eq!(p.wire_bytes(), p.to_bytes().len());
    }

    #[test]
    fn digests_distinguish_contents() {
        let a = Payload::Transactions(vec![Transaction::new(1, 0, vec![1])]);
        let b = Payload::Transactions(vec![Transaction::new(1, 0, vec![2])]);
        assert_ne!(a.digest(), b.digest());
        let s1 = Payload::synthetic(10, 10, 1);
        let s2 = Payload::synthetic(10, 10, 2);
        assert_ne!(s1.digest(), s2.digest());
        // Representation matters: a synthetic batch never collides with an
        // inline one (domain separation).
        assert_ne!(a.digest(), s1.digest());
    }

    #[test]
    fn payload_codec_roundtrip() {
        for p in [
            Payload::empty(),
            Payload::Transactions(vec![Transaction::new(3, 4, vec![5, 6])]),
            Payload::synthetic(1000, 450, 99),
        ] {
            assert_eq!(Payload::from_bytes(&p.to_bytes()).unwrap(), p);
        }
    }

    #[test]
    fn payload_bad_tag_rejected() {
        assert_eq!(Payload::from_bytes(&[9]), Err(DecodeError::InvalidTag(9)));
    }
}
