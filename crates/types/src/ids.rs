//! Identifier newtypes: [`ReplicaId`], [`Round`], and [`Height`].
//!
//! Rounds and heights are distinct concepts in the paper: DiemBFT rules are
//! *round-based* while Streamlet rules are *height-based* (Appendix D.1), so
//! the two get distinct types to keep them from being mixed up.

use std::fmt;

/// Index of a replica in the validator set (`1..=n` in the paper; `0..n`
/// here).
///
/// # Examples
///
/// ```
/// use sft_types::ReplicaId;
///
/// let r = ReplicaId::new(7);
/// assert_eq!(r.as_usize(), 7);
/// assert_eq!(r.to_string(), "r7");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ReplicaId(u16);

impl ReplicaId {
    /// Creates a replica id from its index.
    pub const fn new(index: u16) -> Self {
        Self(index)
    }

    /// The raw index.
    pub const fn as_u16(self) -> u16 {
        self.0
    }

    /// The index as `usize`, for table lookups.
    pub const fn as_usize(self) -> usize {
        self.0 as usize
    }

    /// The index as `u64`, for signing.
    pub const fn as_u64(self) -> u64 {
        self.0 as u64
    }
}

impl fmt::Debug for ReplicaId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl fmt::Display for ReplicaId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl From<u16> for ReplicaId {
    fn from(v: u16) -> Self {
        Self(v)
    }
}

/// A protocol round (view) number. Genesis is round 0; real rounds start
/// at 1.
///
/// # Examples
///
/// ```
/// use sft_types::Round;
///
/// let r = Round::new(5);
/// assert_eq!(r.next(), Round::new(6));
/// assert_eq!(r.prev(), Some(Round::new(4)));
/// assert!(Round::ZERO.prev().is_none());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Round(u64);

impl Round {
    /// Round 0 — the genesis round.
    pub const ZERO: Round = Round(0);

    /// Creates a round from its number.
    pub const fn new(v: u64) -> Self {
        Self(v)
    }

    /// The raw round number.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// The following round.
    pub const fn next(self) -> Round {
        Round(self.0 + 1)
    }

    /// The preceding round, or `None` at round 0.
    pub const fn prev(self) -> Option<Round> {
        match self.0.checked_sub(1) {
            Some(v) => Some(Round(v)),
            None => None,
        }
    }

    /// `self + delta`.
    pub const fn add(self, delta: u64) -> Round {
        Round(self.0 + delta)
    }

    /// Saturating `self - delta`.
    pub const fn saturating_sub(self, delta: u64) -> Round {
        Round(self.0.saturating_sub(delta))
    }

    /// True if `self` and `other` are consecutive (`other == self + 1`).
    pub const fn precedes(self, other: Round) -> bool {
        self.0 + 1 == other.0
    }
}

impl fmt::Debug for Round {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Round({})", self.0)
    }
}

impl fmt::Display for Round {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u64> for Round {
    fn from(v: u64) -> Self {
        Self(v)
    }
}

/// A block's position (height) in the chain. Genesis is height 0.
///
/// # Examples
///
/// ```
/// use sft_types::Height;
///
/// assert_eq!(Height::new(3).next(), Height::new(4));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Height(u64);

impl Height {
    /// Height 0 — the genesis height.
    pub const ZERO: Height = Height(0);

    /// Creates a height from its number.
    pub const fn new(v: u64) -> Self {
        Self(v)
    }

    /// The raw height number.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// The following height.
    pub const fn next(self) -> Height {
        Height(self.0 + 1)
    }

    /// The preceding height, or `None` at height 0.
    pub const fn prev(self) -> Option<Height> {
        match self.0.checked_sub(1) {
            Some(v) => Some(Height(v)),
            None => None,
        }
    }
}

impl fmt::Debug for Height {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Height({})", self.0)
    }
}

impl fmt::Display for Height {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u64> for Height {
    fn from(v: u64) -> Self {
        Self(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_arithmetic() {
        let r = Round::new(10);
        assert_eq!(r.next().as_u64(), 11);
        assert_eq!(r.prev(), Some(Round::new(9)));
        assert_eq!(r.add(5), Round::new(15));
        assert_eq!(r.saturating_sub(20), Round::ZERO);
        assert!(r.precedes(Round::new(11)));
        assert!(!r.precedes(Round::new(12)));
        assert!(!r.precedes(Round::new(10)));
    }

    #[test]
    fn round_zero_has_no_prev() {
        assert_eq!(Round::ZERO.prev(), None);
    }

    #[test]
    fn height_arithmetic() {
        assert_eq!(Height::new(2).next(), Height::new(3));
        assert_eq!(Height::new(1).prev(), Some(Height::ZERO));
        assert_eq!(Height::ZERO.prev(), None);
    }

    #[test]
    fn ordering() {
        assert!(Round::new(1) < Round::new(2));
        assert!(Height::new(1) < Height::new(2));
        assert!(ReplicaId::new(1) < ReplicaId::new(2));
    }

    #[test]
    fn display_forms() {
        assert_eq!(ReplicaId::new(3).to_string(), "r3");
        assert_eq!(Round::new(3).to_string(), "3");
        assert_eq!(Height::new(3).to_string(), "3");
        assert_eq!(format!("{:?}", Round::new(3)), "Round(3)");
    }

    #[test]
    fn conversions() {
        assert_eq!(ReplicaId::from(4u16).as_u64(), 4);
        assert_eq!(Round::from(4u64), Round::new(4));
        assert_eq!(Height::from(4u64), Height::new(4));
    }
}
