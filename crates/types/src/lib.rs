//! # sft-types
//!
//! Protocol data types shared by every layer of the SFT replication stack:
//! identifier newtypes, (strong-)votes with endorsement info, the round
//! interval sets of §3.4, block payloads, the strong-commit log of §5,
//! virtual time, and the deterministic wire codec.
//!
//! ## Paper-concept map
//!
//! | Paper concept | Module / type |
//! |---|---|
//! | replica index `i`, round `r`, height `k` (§2) | [`ids`]: [`ReplicaId`], [`Round`], [`Height`] |
//! | strong-vote `⟨vote, B, r, marker⟩_i` (§3.2, Fig 4) | [`vote`]: [`StrongVote`], [`VoteData`] |
//! | endorsement marker / interval set `I` (§3.2, §3.4) | [`vote`]: [`EndorseInfo`]; [`interval`]: [`RoundIntervalSet`] |
//! | endorser accounting per block (§3.2) | [`bitset`]: [`SignerSet`] |
//! | timeout `⟨timeout, r⟩_i`, TC (main protocol liveness) | [`timeout`]: [`TimeoutMsg`], [`TimeoutCertificate`] |
//! | strong-commit `Log` for light clients (§5) | [`commit_log`]: [`StrongCommitUpdate`] |
//! | block-sync fetch (catch-up subprotocol) | [`sync`]: [`BlockRequest`] |
//! | block contents / workload of §4 | [`transaction`]: [`Transaction`], [`Payload`] |
//! | strength-as-SLA client acks (§3 grading, productized) | [`client`]: [`ClientRequest`], [`ClientAck`] |
//! | injected delays δ of the evaluation (§4) | [`time`]: [`SimTime`], [`SimDuration`] |
//! | transport wire unit + framing (harness, not paper) | [`envelope`]: [`Envelope`], [`Dest`], [`ProtocolTag`] |
//!
//! ## Example
//!
//! ```
//! use sft_crypto::{HashValue, KeyRegistry};
//! use sft_types::{EndorseInfo, Round, StrongVote, VoteData};
//!
//! let registry = KeyRegistry::deterministic(4);
//! let kp = registry.key_pair(0).expect("replica 0");
//! let data = VoteData::new(HashValue::of(b"B2"), Round::new(2), HashValue::of(b"B1"), Round::new(1));
//! // A strong-vote with marker 0 endorses every ancestor round > 0.
//! let vote = StrongVote::new(data, EndorseInfo::Marker(Round::ZERO), &kp);
//! assert!(vote.verify(&registry));
//! assert!(vote.endorse().endorses_ancestor_round(Round::new(1)));
//! ```

#![deny(missing_docs)]

pub mod bitset;
pub mod client;
pub mod codec;
pub mod commit_log;
pub mod durability;
pub mod envelope;
pub mod ids;
pub mod interval;
pub mod sync;
pub mod time;
pub mod timeout;
pub mod transaction;
pub mod vote;

pub use bitset::SignerSet;
pub use client::{ClientAck, ClientFrame, ClientRequest};
pub use codec::{Decode, DecodeError, Encode};
pub use commit_log::{commit_log_digest, StrongCommitUpdate};
pub use durability::{PersistSeq, SendGate, Watermark};
pub use envelope::{Dest, Envelope, ProtocolTag, FRAME_HEADER_LEN, MAX_FRAME_LEN};
pub use ids::{Height, ReplicaId, Round};
pub use interval::{RoundInterval, RoundIntervalSet};
pub use sync::BlockRequest;
pub use time::{SimDuration, SimTime};
pub use timeout::{
    timeout_signing_digest, TimeoutAggregator, TimeoutCertificate, TimeoutMsg, TimeoutOutcome,
    VerifyPolicy,
};
pub use transaction::{BatchConfig, Payload, Transaction};
pub use vote::{
    vote_signing_digest, vote_signing_digest_with, EndorseInfo, EndorseMode, StrongVote, VoteData,
};
