//! The strong-commit `Log` carried in block proposals (§5, "Proving Strong
//! Commit to Light Clients").
//!
//! Every proposal records, as [`StrongCommitUpdate`] entries, any increase
//! in the strong-commit level of earlier blocks caused by the strong-QC the
//! proposal contains. Once the proposal itself is certified (2f+1 votes),
//! at least one honest replica vouched for the update (assuming at most 2f
//! faults, the ceiling of the SFT guarantee), so showing the certified log
//! entry to a light client proves the strong commit without replaying the
//! chain.

use std::fmt;

use sft_crypto::{HashValue, Hasher};

use crate::codec::{Decode, DecodeError, Encode};
use crate::{Height, Round};

/// One entry of the commit log: "block `block_id` is now `level`-strong
/// committed".
///
/// `level` is the absolute strength `x` of Definition 1 — the commit stays
/// safe provided at most `x` replicas are Byzantine. The regular commit is
/// `level = f`; the ceiling is `level = 2f`.
///
/// # Examples
///
/// ```
/// use sft_crypto::HashValue;
/// use sft_types::{Height, Round, StrongCommitUpdate};
///
/// let up = StrongCommitUpdate::new(HashValue::of(b"B7"), Round::new(7), Height::new(7), 40);
/// assert_eq!(up.level(), 40);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct StrongCommitUpdate {
    block_id: HashValue,
    round: Round,
    height: Height,
    level: u64,
}

impl StrongCommitUpdate {
    /// Creates an update entry.
    pub fn new(block_id: HashValue, round: Round, height: Height, level: u64) -> Self {
        Self {
            block_id,
            round,
            height,
            level,
        }
    }

    /// The block whose strength increased.
    pub fn block_id(&self) -> HashValue {
        self.block_id
    }

    /// The block's round.
    pub fn round(&self) -> Round {
        self.round
    }

    /// The block's height.
    pub fn height(&self) -> Height {
        self.height
    }

    /// The new strong-commit level `x` (tolerates up to `x` Byzantine
    /// faults, Definition 1).
    pub fn level(&self) -> u64 {
        self.level
    }

    /// Digest of this entry, mixed into the block id so the log is bound by
    /// the proposal signature and by every vote on the block.
    pub fn digest(&self) -> HashValue {
        Hasher::new("strong-commit-update")
            .field(self.block_id.as_ref())
            .field(&self.round.as_u64().to_be_bytes())
            .field(&self.height.as_u64().to_be_bytes())
            .field(&self.level.to_be_bytes())
            .finish()
    }
}

impl fmt::Debug for StrongCommitUpdate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "StrongCommitUpdate({} r={} h={} -> {}-strong)",
            self.block_id.short(),
            self.round,
            self.height,
            self.level
        )
    }
}

impl Encode for StrongCommitUpdate {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.block_id.encode(buf);
        self.round.encode(buf);
        self.height.encode(buf);
        self.level.encode(buf);
    }
    fn encoded_len(&self) -> usize {
        32 + 8 + 8 + 8
    }
}

impl Decode for StrongCommitUpdate {
    fn decode(buf: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(Self {
            block_id: HashValue::decode(buf)?,
            round: Round::decode(buf)?,
            height: Height::decode(buf)?,
            level: u64::decode(buf)?,
        })
    }
}

/// Digest of a whole commit log (the `Log` of §5), bound into the block id.
pub fn commit_log_digest(entries: &[StrongCommitUpdate]) -> HashValue {
    let mut h = Hasher::new("commit-log");
    for entry in entries {
        h = h.field(entry.digest().as_ref());
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(level: u64) -> StrongCommitUpdate {
        StrongCommitUpdate::new(HashValue::of(b"blk"), Round::new(4), Height::new(3), level)
    }

    #[test]
    fn accessors() {
        let up = sample(35);
        assert_eq!(up.block_id(), HashValue::of(b"blk"));
        assert_eq!(up.round(), Round::new(4));
        assert_eq!(up.height(), Height::new(3));
        assert_eq!(up.level(), 35);
    }

    #[test]
    fn digest_binds_level() {
        assert_ne!(sample(35).digest(), sample(36).digest());
    }

    #[test]
    fn digest_binds_block() {
        let other =
            StrongCommitUpdate::new(HashValue::of(b"other"), Round::new(4), Height::new(3), 35);
        assert_ne!(sample(35).digest(), other.digest());
    }

    #[test]
    fn codec_roundtrip() {
        let up = sample(40);
        let bytes = up.to_bytes();
        assert_eq!(bytes.len(), up.encoded_len());
        assert_eq!(StrongCommitUpdate::from_bytes(&bytes).unwrap(), up);
    }

    #[test]
    fn log_digest_is_order_sensitive() {
        let a = sample(35);
        let b = sample(40);
        assert_ne!(commit_log_digest(&[a, b]), commit_log_digest(&[b, a]));
        assert_eq!(commit_log_digest(&[]), commit_log_digest(&[]));
        assert_ne!(commit_log_digest(&[]), commit_log_digest(&[a]));
    }

    #[test]
    fn debug_contains_level() {
        assert!(format!("{:?}", sample(12)).contains("12-strong"));
    }
}
