//! [`RoundIntervalSet`]: the set `I` of endorsed rounds carried by a
//! generalized strong-vote (§3.4).
//!
//! A strong-vote for block `B'` endorses an ancestor `B` at round `r` iff
//! `r ∈ I`. The minimal solution of §3.2 is the special case
//! `I = [marker+1, r']` where `r'` is the vote's round; the generalized
//! solution subtracts, per conflicting fork `F` the voter ever voted on, the
//! non-endorsed window `D_F = [r_l + 1, r_h]` (`r_h` = highest conflicting
//! voted round on `F`, `r_l` = round of the common ancestor).
//!
//! The representation is a sorted list of disjoint inclusive ranges, so
//! membership is a binary search and the wire size is two `u64`s per
//! interval — at most `t` intervals during synchrony (§3.4), keeping the
//! vote overhead linear in the number of actual faults.

use std::fmt;

use crate::codec::{Decode, DecodeError, Encode};
use crate::Round;

/// An inclusive range of round numbers `[lo, hi]`.
///
/// # Examples
///
/// ```
/// use sft_types::{Round, RoundInterval};
///
/// let iv = RoundInterval::new(Round::new(3), Round::new(7));
/// assert!(iv.contains(Round::new(3)));
/// assert!(iv.contains(Round::new(7)));
/// assert!(!iv.contains(Round::new(8)));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RoundInterval {
    lo: Round,
    hi: Round,
}

impl RoundInterval {
    /// Creates the inclusive interval `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn new(lo: Round, hi: Round) -> Self {
        assert!(lo <= hi, "empty interval [{lo}, {hi}]");
        Self { lo, hi }
    }

    /// The lower endpoint.
    pub fn lo(&self) -> Round {
        self.lo
    }

    /// The upper endpoint.
    pub fn hi(&self) -> Round {
        self.hi
    }

    /// True if `round` lies within the interval.
    pub fn contains(&self, round: Round) -> bool {
        self.lo <= round && round <= self.hi
    }
}

impl fmt::Debug for RoundInterval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.lo, self.hi)
    }
}

impl fmt::Display for RoundInterval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.lo, self.hi)
    }
}

impl Encode for RoundInterval {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.lo.encode(buf);
        self.hi.encode(buf);
    }
    fn encoded_len(&self) -> usize {
        16
    }
}

impl Decode for RoundInterval {
    fn decode(buf: &mut &[u8]) -> Result<Self, DecodeError> {
        let lo = Round::decode(buf)?;
        let hi = Round::decode(buf)?;
        if lo > hi {
            return Err(DecodeError::InvalidTag(0));
        }
        Ok(Self { lo, hi })
    }
}

/// A normalized set of round numbers stored as sorted, disjoint,
/// non-adjacent inclusive intervals.
///
/// # Examples
///
/// ```
/// use sft_types::{Round, RoundIntervalSet};
///
/// // I = [1, 10] \ [4, 6]  — the voter endorses rounds 1-3 and 7-10.
/// let mut set = RoundIntervalSet::full_range(Round::new(1), Round::new(10));
/// set.subtract(Round::new(4), Round::new(6));
/// assert!(set.contains(Round::new(3)));
/// assert!(!set.contains(Round::new(5)));
/// assert!(set.contains(Round::new(7)));
/// assert_eq!(set.intervals().len(), 2);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct RoundIntervalSet {
    /// Sorted, disjoint, non-adjacent intervals.
    intervals: Vec<RoundInterval>,
}

impl RoundIntervalSet {
    /// Creates the empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates the set containing exactly `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn full_range(lo: Round, hi: Round) -> Self {
        Self {
            intervals: vec![RoundInterval::new(lo, hi)],
        }
    }

    /// The marker special case of §3.2: `I = [marker + 1, vote_round]`, or
    /// the empty set if the marker already covers the vote round.
    pub fn from_marker(marker: Round, vote_round: Round) -> Self {
        if marker >= vote_round {
            Self::new()
        } else {
            Self::full_range(marker.next(), vote_round)
        }
    }

    /// The underlying sorted intervals.
    pub fn intervals(&self) -> &[RoundInterval] {
        &self.intervals
    }

    /// True if the set contains no rounds.
    pub fn is_empty(&self) -> bool {
        self.intervals.is_empty()
    }

    /// True if `round` is a member.
    pub fn contains(&self, round: Round) -> bool {
        self.intervals
            .binary_search_by(|iv| {
                if iv.hi < round {
                    std::cmp::Ordering::Less
                } else if iv.lo > round {
                    std::cmp::Ordering::Greater
                } else {
                    std::cmp::Ordering::Equal
                }
            })
            .is_ok()
    }

    /// The smallest member, if any.
    pub fn min(&self) -> Option<Round> {
        self.intervals.first().map(|iv| iv.lo)
    }

    /// The largest member, if any.
    pub fn max(&self) -> Option<Round> {
        self.intervals.last().map(|iv| iv.hi)
    }

    /// Number of rounds in the set.
    pub fn count_rounds(&self) -> u64 {
        self.intervals
            .iter()
            .map(|iv| iv.hi.as_u64() - iv.lo.as_u64() + 1)
            .sum()
    }

    /// Adds `[lo, hi]` to the set, merging overlapping or adjacent
    /// intervals.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn insert(&mut self, lo: Round, hi: Round) {
        assert!(lo <= hi, "empty interval [{lo}, {hi}]");
        // Find all existing intervals that overlap or touch [lo, hi] and
        // replace them with a single merged interval.
        let mut new_lo = lo;
        let mut new_hi = hi;
        let mut merged = Vec::with_capacity(self.intervals.len() + 1);
        let mut placed = false;
        for iv in &self.intervals {
            // Touching counts as mergeable: [1,3] + [4,6] = [1,6].
            let touches_below = iv.hi.as_u64().saturating_add(1) >= new_lo.as_u64();
            let touches_above = new_hi.as_u64().saturating_add(1) >= iv.lo.as_u64();
            if touches_below && touches_above {
                new_lo = new_lo.min(iv.lo);
                new_hi = new_hi.max(iv.hi);
            } else if iv.hi < new_lo {
                merged.push(*iv);
            } else {
                if !placed {
                    merged.push(RoundInterval::new(new_lo, new_hi));
                    placed = true;
                }
                merged.push(*iv);
            }
        }
        if !placed {
            merged.push(RoundInterval::new(new_lo, new_hi));
        }
        self.intervals = merged;
    }

    /// Removes `[lo, hi]` from the set (the `D_F` subtraction of §3.4).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn subtract(&mut self, lo: Round, hi: Round) {
        assert!(lo <= hi, "empty interval [{lo}, {hi}]");
        let mut result = Vec::with_capacity(self.intervals.len() + 1);
        for iv in &self.intervals {
            if iv.hi < lo || iv.lo > hi {
                result.push(*iv);
                continue;
            }
            // Left remainder: [iv.lo, lo-1] if non-empty.
            if iv.lo < lo {
                result.push(RoundInterval::new(iv.lo, Round::new(lo.as_u64() - 1)));
            }
            // Right remainder: [hi+1, iv.hi] if non-empty.
            if iv.hi > hi {
                result.push(RoundInterval::new(hi.next(), iv.hi));
            }
        }
        self.intervals = result;
    }

    /// Restricts the set to `[lo, hi]` — used for the bounded variant
    /// `I = [r − n, r] \ (∪ D_F)` of §3.4.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn clamp(&mut self, lo: Round, hi: Round) {
        assert!(lo <= hi, "empty clamp [{lo}, {hi}]");
        if lo > Round::ZERO {
            self.subtract(Round::ZERO, Round::new(lo.as_u64() - 1));
        }
        if hi < Round::new(u64::MAX) {
            self.subtract(hi.next(), Round::new(u64::MAX));
        }
    }

    /// True if every member of `self` is also in `other`.
    pub fn is_subset_of(&self, other: &RoundIntervalSet) -> bool {
        self.intervals.iter().all(|iv| {
            // The containing interval of `iv.lo` in `other` must reach `iv.hi`.
            other
                .intervals
                .iter()
                .any(|o| o.lo <= iv.lo && iv.hi <= o.hi)
        })
    }

    /// Checks the representation invariant: sorted, disjoint, non-adjacent.
    /// Exposed for property tests.
    pub fn is_normalized(&self) -> bool {
        self.intervals.windows(2).all(|w| {
            w[0].hi
                .as_u64()
                .checked_add(1)
                .map(|boundary| boundary < w[1].lo.as_u64())
                .unwrap_or(false)
        })
    }
}

impl fmt::Debug for RoundIntervalSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RoundIntervalSet")?;
        f.debug_list().entries(&self.intervals).finish()
    }
}

impl Encode for RoundIntervalSet {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.intervals.encode(buf);
    }
    fn encoded_len(&self) -> usize {
        8 + 16 * self.intervals.len()
    }
}

impl Decode for RoundIntervalSet {
    fn decode(buf: &mut &[u8]) -> Result<Self, DecodeError> {
        let intervals = Vec::<RoundInterval>::decode(buf)?;
        let set = Self { intervals };
        if !set.is_normalized() {
            // A peer sending denormalized intervals is malformed; reject
            // rather than silently renormalizing so signatures stay stable.
            return Err(DecodeError::InvalidTag(1));
        }
        Ok(set)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(v: u64) -> Round {
        Round::new(v)
    }

    fn set_of(ranges: &[(u64, u64)]) -> RoundIntervalSet {
        let mut s = RoundIntervalSet::new();
        for &(lo, hi) in ranges {
            s.insert(r(lo), r(hi));
        }
        s
    }

    #[test]
    fn from_marker_matches_section_3_2() {
        // marker = 4, vote round = 9  =>  I = [5, 9].
        let s = RoundIntervalSet::from_marker(r(4), r(9));
        assert!(!s.contains(r(4)));
        assert!(s.contains(r(5)));
        assert!(s.contains(r(9)));
        assert!(!s.contains(r(10)));
        // Degenerate marker >= round gives the empty set.
        assert!(RoundIntervalSet::from_marker(r(9), r(9)).is_empty());
        assert!(RoundIntervalSet::from_marker(r(10), r(9)).is_empty());
    }

    #[test]
    fn insert_merges_overlaps() {
        let s = set_of(&[(1, 3), (5, 7), (2, 6)]);
        assert_eq!(s.intervals().len(), 1);
        assert_eq!(s.intervals()[0], RoundInterval::new(r(1), r(7)));
    }

    #[test]
    fn insert_merges_adjacent() {
        let s = set_of(&[(1, 3), (4, 6)]);
        assert_eq!(s.intervals().len(), 1);
        assert_eq!(s.count_rounds(), 6);
    }

    #[test]
    fn insert_keeps_disjoint_sorted() {
        let s = set_of(&[(10, 12), (1, 2), (5, 6)]);
        let spans: Vec<(u64, u64)> = s
            .intervals()
            .iter()
            .map(|iv| (iv.lo().as_u64(), iv.hi().as_u64()))
            .collect();
        assert_eq!(spans, vec![(1, 2), (5, 6), (10, 12)]);
        assert!(s.is_normalized());
    }

    #[test]
    fn subtract_splits_interval() {
        let mut s = set_of(&[(1, 10)]);
        s.subtract(r(4), r(6));
        assert!(s.contains(r(3)));
        assert!(!s.contains(r(4)));
        assert!(!s.contains(r(6)));
        assert!(s.contains(r(7)));
        assert_eq!(s.count_rounds(), 7);
        assert!(s.is_normalized());
    }

    #[test]
    fn subtract_edges_and_disjoint() {
        let mut s = set_of(&[(1, 5), (8, 12)]);
        s.subtract(r(5), r(8)); // clips both neighbours
        assert_eq!(
            s.intervals(),
            &[
                RoundInterval::new(r(1), r(4)),
                RoundInterval::new(r(9), r(12))
            ]
        );
        s.subtract(r(20), r(30)); // outside: no-op
        assert_eq!(s.count_rounds(), 8);
        s.subtract(r(1), r(12)); // everything
        assert!(s.is_empty());
    }

    #[test]
    fn clamp_restricts_range() {
        let mut s = set_of(&[(1, 20)]);
        s.subtract(r(5), r(6));
        s.clamp(r(3), r(10));
        assert!(!s.contains(r(2)));
        assert!(s.contains(r(3)));
        assert!(!s.contains(r(5)));
        assert!(s.contains(r(10)));
        assert!(!s.contains(r(11)));
    }

    #[test]
    fn min_max_count() {
        let s = set_of(&[(3, 4), (8, 8)]);
        assert_eq!(s.min(), Some(r(3)));
        assert_eq!(s.max(), Some(r(8)));
        assert_eq!(s.count_rounds(), 3);
        assert_eq!(RoundIntervalSet::new().min(), None);
    }

    #[test]
    fn subset_relation() {
        let big = set_of(&[(1, 10)]);
        let mut small = big.clone();
        small.subtract(r(2), r(3));
        assert!(small.is_subset_of(&big));
        assert!(!big.is_subset_of(&small));
        assert!(RoundIntervalSet::new().is_subset_of(&small));
    }

    #[test]
    fn marker_set_is_subset_of_interval_set() {
        // §3.4: attaching only the marker is always a sound (subset)
        // approximation of the full interval computation.
        let full = {
            let mut s = RoundIntervalSet::full_range(r(1), r(20));
            s.subtract(r(4), r(7)); // some fork's D_F
            s
        };
        // The single-marker approximation uses marker = max non-endorsed
        // round = 7, i.e. I = [8, 20].
        let marker = RoundIntervalSet::from_marker(r(7), r(20));
        assert!(marker.is_subset_of(&full));
    }

    #[test]
    fn codec_roundtrip() {
        let s = set_of(&[(1, 3), (9, 9), (20, 40)]);
        let back = RoundIntervalSet::from_bytes(&s.to_bytes()).unwrap();
        assert_eq!(back, s);
        assert_eq!(s.to_bytes().len(), s.encoded_len());
    }

    #[test]
    fn codec_rejects_denormalized() {
        // Hand-encode two adjacent intervals [1,2][3,4]: decoder must reject.
        let raw = vec![
            RoundInterval::new(r(1), r(2)),
            RoundInterval::new(r(3), r(4)),
        ];
        let mut bytes = Vec::new();
        raw.encode(&mut bytes);
        assert!(RoundIntervalSet::from_bytes(&bytes).is_err());
    }

    #[test]
    fn codec_rejects_inverted_interval() {
        let mut bytes = Vec::new();
        1u64.encode(&mut bytes); // one interval
        r(9).encode(&mut bytes); // lo
        r(3).encode(&mut bytes); // hi < lo
        assert!(RoundIntervalSet::from_bytes(&bytes).is_err());
    }

    #[test]
    #[should_panic(expected = "empty interval")]
    fn inverted_insert_panics() {
        set_of(&[(5, 3)]);
    }

    // Property tests driven by a seeded PRNG instead of `proptest` (no
    // property-testing crate in the approved offline dependency set). The
    // op distribution mirrors what proptest generated: up to 40 random
    // insert/subtract ops over rounds 0..250.
    mod properties {
        use super::*;
        use sft_crypto::rng::{RngCore, SplitMix64};

        fn random_ops(rng: &mut SplitMix64) -> Vec<(bool, u64, u64)> {
            let count = rng.next_below(41);
            (0..count)
                .map(|_| {
                    let ins = rng.next_u64() & 1 == 0;
                    let lo = rng.next_below(200);
                    let len = rng.next_below(50);
                    (ins, lo, lo + len)
                })
                .collect()
        }

        /// The interval set agrees with a reference implementation on a
        /// naive HashSet of rounds, for arbitrary insert/subtract mixes.
        #[test]
        fn matches_reference_set() {
            let mut rng = SplitMix64::new(0x5f74_2d69_7674);
            for case in 0..200 {
                let ops = random_ops(&mut rng);
                let mut fast = RoundIntervalSet::new();
                let mut slow = std::collections::HashSet::new();
                for &(ins, lo, hi) in &ops {
                    if ins {
                        fast.insert(r(lo), r(hi));
                        slow.extend(lo..=hi);
                    } else {
                        fast.subtract(r(lo), r(hi));
                        for v in lo..=hi {
                            slow.remove(&v);
                        }
                    }
                    assert!(fast.is_normalized(), "case {case}: {ops:?}");
                }
                for v in 0..=260u64 {
                    assert_eq!(
                        fast.contains(r(v)),
                        slow.contains(&v),
                        "case {case}, round {v}: {ops:?}"
                    );
                }
                assert_eq!(
                    fast.count_rounds(),
                    slow.len() as u64,
                    "case {case}: {ops:?}"
                );
            }
        }

        /// Encoding round-trips for arbitrary normalized sets.
        #[test]
        fn codec_roundtrip_prop() {
            let mut rng = SplitMix64::new(0xc0de_c0de);
            for case in 0..200 {
                let ops = random_ops(&mut rng);
                let mut s = RoundIntervalSet::new();
                for &(ins, lo, hi) in &ops {
                    if ins {
                        s.insert(r(lo), r(hi));
                    } else {
                        s.subtract(r(lo), r(hi));
                    }
                }
                let back = RoundIntervalSet::from_bytes(&s.to_bytes()).unwrap();
                assert_eq!(back, s, "case {case}: {ops:?}");
            }
        }
    }
}
