//! The wire envelope shared by every transport.
//!
//! An [`Envelope`] is the unit both transports move: the source replica, a
//! destination (one peer or a broadcast), a [`ProtocolTag`] naming the
//! protocol family the payload belongs to, and the opaque encoded message
//! bytes. It formalizes the `Arc<[u8]>` shape the deterministic simulator
//! always used — a broadcast encodes its message once and every recipient
//! shares the buffer — so the TCP transport and the simulator speak the
//! same unit and a replica engine cannot tell them apart.
//!
//! ## Framing
//!
//! Sockets deliver byte streams, not messages, so the envelope also
//! defines its own length-prefixed framing: a 4-byte big-endian body
//! length (bounded by [`MAX_FRAME_LEN`]) followed by the encoded envelope.
//! [`Envelope::decode_frame`] is incremental — it distinguishes "not
//! enough bytes yet" (`Ok(None)`) from "malformed" (`Err`) — which is
//! exactly what a socket reader needs.
//!
//! ## Example
//!
//! ```
//! use sft_types::{Dest, Envelope, ProtocolTag, ReplicaId};
//!
//! let env = Envelope::broadcast(ReplicaId::new(2), ProtocolTag::Fbft, vec![1, 2, 3]);
//! let frame = env.to_frame();
//! let (back, used) = Envelope::decode_frame(&frame).unwrap().unwrap();
//! assert_eq!(used, frame.len());
//! assert_eq!(back, env);
//! assert_eq!(back.dest, Dest::Broadcast);
//! ```

use std::fmt;
use std::sync::Arc;

use crate::codec::{Decode, DecodeError, Encode};
use crate::ReplicaId;

/// Upper bound on a frame body (and therefore on a payload): 16 MiB.
/// A hostile or corrupt length prefix beyond this is rejected before any
/// allocation happens.
pub const MAX_FRAME_LEN: usize = 1 << 24;

/// Bytes of the length prefix in front of every frame body.
pub const FRAME_HEADER_LEN: usize = 4;

/// Where an envelope is going: one named peer, or everyone but the sender.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Dest {
    /// Deliver to every replica except the source.
    Broadcast,
    /// Deliver to exactly this replica.
    Peer(ReplicaId),
}

impl Encode for Dest {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            Dest::Broadcast => buf.push(0),
            Dest::Peer(id) => {
                buf.push(1);
                id.encode(buf);
            }
        }
    }
}

impl Decode for Dest {
    fn decode(buf: &mut &[u8]) -> Result<Self, DecodeError> {
        match u8::decode(buf)? {
            0 => Ok(Dest::Broadcast),
            1 => Ok(Dest::Peer(ReplicaId::decode(buf)?)),
            t => Err(DecodeError::InvalidTag(t)),
        }
    }
}

/// Which protocol family an envelope's payload belongs to. A transport is
/// configured with one tag and drops frames carrying another, so a
/// Streamlet deployment can never accidentally feed DiemBFT bytes to a
/// Streamlet replica (or vice versa).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ProtocolTag {
    /// SFT-Streamlet (Appendix D) messages.
    Streamlet,
    /// SFT-DiemBFT (§2–§3) messages.
    Fbft,
    /// Client-plane frames ([`crate::ClientFrame`]): submissions into a
    /// replica's mempool and strength-graded acks streamed back. Rides
    /// the same envelope framing as replica traffic but is routed to the
    /// client gateway, never into a consensus engine.
    Client,
}

impl Encode for ProtocolTag {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.push(match self {
            ProtocolTag::Streamlet => 0,
            ProtocolTag::Fbft => 1,
            ProtocolTag::Client => 2,
        });
    }
}

impl Decode for ProtocolTag {
    fn decode(buf: &mut &[u8]) -> Result<Self, DecodeError> {
        match u8::decode(buf)? {
            0 => Ok(ProtocolTag::Streamlet),
            1 => Ok(ProtocolTag::Fbft),
            2 => Ok(ProtocolTag::Client),
            t => Err(DecodeError::InvalidTag(t)),
        }
    }
}

/// One transport-level message: source, destination, protocol tag, and the
/// opaque encoded payload. The payload is reference-counted so a broadcast
/// costs one encoding regardless of fan-out.
#[derive(Clone, PartialEq, Eq)]
pub struct Envelope {
    /// The sending replica.
    pub src: ReplicaId,
    /// One peer, or a broadcast to everyone but the source.
    pub dest: Dest,
    /// The protocol family the payload belongs to.
    pub protocol: ProtocolTag,
    /// The encoded protocol message, shared across recipients.
    pub payload: Arc<[u8]>,
}

impl Envelope {
    /// A broadcast envelope.
    pub fn broadcast(src: ReplicaId, protocol: ProtocolTag, payload: impl Into<Arc<[u8]>>) -> Self {
        Self {
            src,
            dest: Dest::Broadcast,
            protocol,
            payload: payload.into(),
        }
    }

    /// A point-to-point envelope.
    pub fn to_peer(
        src: ReplicaId,
        to: ReplicaId,
        protocol: ProtocolTag,
        payload: impl Into<Arc<[u8]>>,
    ) -> Self {
        Self {
            src,
            dest: Dest::Peer(to),
            protocol,
            payload: payload.into(),
        }
    }

    /// Encodes the envelope behind its 4-byte length prefix — the exact
    /// bytes a socket writer sends.
    ///
    /// # Panics
    ///
    /// Panics if the encoded body exceeds [`MAX_FRAME_LEN`] (a payload that
    /// large could never be decoded by a peer, so sending it is a bug).
    pub fn to_frame(&self) -> Vec<u8> {
        let mut body = Vec::with_capacity(self.payload.len() + 16);
        self.encode(&mut body);
        assert!(
            body.len() <= MAX_FRAME_LEN,
            "envelope body {}B exceeds MAX_FRAME_LEN",
            body.len()
        );
        let mut frame = Vec::with_capacity(FRAME_HEADER_LEN + body.len());
        frame.extend_from_slice(&(body.len() as u32).to_be_bytes());
        frame.extend_from_slice(&body);
        frame
    }

    /// Attempts to decode one frame from the front of `buf`.
    ///
    /// Returns `Ok(None)` while `buf` holds only part of a frame (read
    /// more bytes and retry), or `Ok(Some((envelope, consumed)))` when a
    /// complete frame was decoded — `consumed` is the number of bytes the
    /// frame occupied, so a reader can advance its buffer and decode the
    /// next one.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] when the bytes can never become a valid
    /// frame: a length prefix beyond [`MAX_FRAME_LEN`], or a complete body
    /// that fails to decode (bad tags, truncated fields, trailing bytes).
    pub fn decode_frame(buf: &[u8]) -> Result<Option<(Envelope, usize)>, DecodeError> {
        if buf.len() < FRAME_HEADER_LEN {
            return Ok(None);
        }
        let mut len_bytes = [0u8; FRAME_HEADER_LEN];
        len_bytes.copy_from_slice(&buf[..FRAME_HEADER_LEN]);
        let body_len = u32::from_be_bytes(len_bytes) as usize;
        if body_len > MAX_FRAME_LEN {
            return Err(DecodeError::LengthOverflow(body_len as u64));
        }
        let total = FRAME_HEADER_LEN + body_len;
        if buf.len() < total {
            return Ok(None);
        }
        let envelope = Envelope::from_bytes(&buf[FRAME_HEADER_LEN..total])?;
        Ok(Some((envelope, total)))
    }
}

impl fmt::Debug for Envelope {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Envelope({} -> {:?} {:?} {}B)",
            self.src,
            self.dest,
            self.protocol,
            self.payload.len()
        )
    }
}

impl Encode for Envelope {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.src.encode(buf);
        self.dest.encode(buf);
        self.protocol.encode(buf);
        (self.payload.len() as u64).encode(buf);
        buf.extend_from_slice(&self.payload);
    }
}

impl Decode for Envelope {
    fn decode(buf: &mut &[u8]) -> Result<Self, DecodeError> {
        let src = ReplicaId::decode(buf)?;
        let dest = Dest::decode(buf)?;
        let protocol = ProtocolTag::decode(buf)?;
        let len = u64::decode(buf)?;
        if len > MAX_FRAME_LEN as u64 {
            return Err(DecodeError::LengthOverflow(len));
        }
        let len = len as usize;
        if buf.len() < len {
            return Err(DecodeError::UnexpectedEof);
        }
        let (payload, rest) = buf.split_at(len);
        let payload: Arc<[u8]> = payload.into();
        *buf = rest;
        Ok(Self {
            src,
            dest,
            protocol,
            payload,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env() -> Envelope {
        Envelope::to_peer(
            ReplicaId::new(3),
            ReplicaId::new(1),
            ProtocolTag::Streamlet,
            vec![0xde, 0xad, 0xbe, 0xef],
        )
    }

    #[test]
    fn envelope_roundtrips() {
        let e = env();
        let back = Envelope::from_bytes(&e.to_bytes()).expect("decode");
        assert_eq!(back, e);
    }

    #[test]
    fn frame_roundtrips_and_reports_consumed() {
        let e = env();
        let frame = e.to_frame();
        let (back, used) = Envelope::decode_frame(&frame).unwrap().unwrap();
        assert_eq!(used, frame.len());
        assert_eq!(back, e);
    }

    #[test]
    fn incomplete_frames_ask_for_more_bytes() {
        let frame = env().to_frame();
        for cut in 0..frame.len() {
            assert_eq!(
                Envelope::decode_frame(&frame[..cut]).unwrap(),
                None,
                "prefix of {cut} bytes is incomplete, not malformed"
            );
        }
    }

    #[test]
    fn concatenated_frames_decode_in_sequence() {
        let a = env();
        let b = Envelope::broadcast(ReplicaId::new(0), ProtocolTag::Fbft, vec![7; 32]);
        let mut stream = a.to_frame();
        stream.extend_from_slice(&b.to_frame());
        let (first, used) = Envelope::decode_frame(&stream).unwrap().unwrap();
        assert_eq!(first, a);
        let (second, used2) = Envelope::decode_frame(&stream[used..]).unwrap().unwrap();
        assert_eq!(second, b);
        assert_eq!(used + used2, stream.len());
    }

    #[test]
    fn hostile_length_prefix_rejected_before_allocation() {
        let frame = u32::MAX.to_be_bytes();
        assert!(matches!(
            Envelope::decode_frame(&frame),
            Err(DecodeError::LengthOverflow(_))
        ));
    }

    #[test]
    fn garbage_body_is_an_error_not_a_stall() {
        // A complete frame whose body is junk must fail loudly.
        let mut frame = 4u32.to_be_bytes().to_vec();
        frame.extend_from_slice(&[0xff; 4]);
        assert!(Envelope::decode_frame(&frame).is_err());
    }

    #[test]
    fn payload_length_must_match_the_body() {
        // Claim an 8-byte payload but supply 2: EOF inside the body.
        let mut body = Vec::new();
        ReplicaId::new(0).encode(&mut body);
        Dest::Broadcast.encode(&mut body);
        ProtocolTag::Fbft.encode(&mut body);
        8u64.encode(&mut body);
        body.extend_from_slice(&[1, 2]);
        let mut frame = (body.len() as u32).to_be_bytes().to_vec();
        frame.extend_from_slice(&body);
        assert_eq!(
            Envelope::decode_frame(&frame),
            Err(DecodeError::UnexpectedEof)
        );
    }
}
