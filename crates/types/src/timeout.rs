//! Timeout messages and timeout certificates — the liveness machinery of
//! the round-based main protocol (SFT-DiemBFT).
//!
//! When a replica's round timer expires before it sees a quorum certificate
//! for the round, it broadcasts a signed [`TimeoutMsg`] naming the round and
//! the highest QC round it knows. `2f + 1` distinct timeout messages for the
//! same round aggregate into a [`TimeoutCertificate`] (TC), which justifies
//! every replica advancing to the next round even though nothing was
//! certified — the synchronizer pattern of the DiemBFT / Jolteon lineage.
//!
//! The [`TimeoutAggregator`] mirrors [`VoteTracker`](../sft_core) at the
//! timeout layer: it verifies signatures, deduplicates authors per round,
//! and emits each round's certificate exactly once.

use std::collections::{HashMap, HashSet};
use std::fmt;

use sft_crypto::{HashValue, Hasher, KeyPair, KeyRegistry, Signature};

use crate::codec::{Decode, DecodeError, Encode};
use crate::{ReplicaId, Round, SignerSet};

/// Signing preimage for a timeout message: binds the timed-out round and
/// the sender's highest QC round under one signature.
pub fn timeout_signing_digest(round: Round, high_qc_round: Round) -> HashValue {
    Hasher::new("timeout")
        .field(&round.as_u64().to_be_bytes())
        .field(&high_qc_round.as_u64().to_be_bytes())
        .finish()
}

/// A replica's signed declaration that `round` expired without a QC:
/// `⟨timeout, r, qc_high⟩_i`.
///
/// # Examples
///
/// ```
/// use sft_crypto::KeyRegistry;
/// use sft_types::{ReplicaId, Round, TimeoutMsg};
///
/// let registry = KeyRegistry::deterministic(4);
/// let msg = TimeoutMsg::new(Round::new(5), Round::new(3), &registry.key_pair(2).unwrap());
/// assert_eq!(msg.author(), ReplicaId::new(2));
/// assert!(msg.verify(&registry));
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct TimeoutMsg {
    round: Round,
    high_qc_round: Round,
    author: ReplicaId,
    signature: Signature,
    /// The TC that justified the sender's current round, if it was entered
    /// on the timeout path — DiemBFT's `SyncInfo` piggyback in minimal
    /// form. Self-certifying (a TC carries its own signer quorum), so it is
    /// deliberately *outside* the signing preimage: receivers validate it
    /// structurally, and a replica stranded in an earlier round because the
    /// certificate that closed it was lost jumps forward on it.
    justification: Option<TimeoutCertificate>,
}

impl TimeoutMsg {
    /// Creates and signs a timeout message.
    pub fn new(round: Round, high_qc_round: Round, key_pair: &KeyPair) -> Self {
        let digest = timeout_signing_digest(round, high_qc_round);
        Self {
            round,
            high_qc_round,
            author: ReplicaId::new(key_pair.signer() as u16),
            signature: key_pair.sign(digest.as_ref()),
            justification: None,
        }
    }

    /// Attaches the TC that justified the sender's current round (the
    /// catch-up piggyback for replicas that missed it).
    pub fn with_justification(mut self, tc: Option<TimeoutCertificate>) -> Self {
        self.justification = tc;
        self
    }

    /// Reassembles a message from parts (decoder and Byzantine harnesses).
    pub fn from_parts(
        round: Round,
        high_qc_round: Round,
        author: ReplicaId,
        signature: Signature,
    ) -> Self {
        Self {
            round,
            high_qc_round,
            author,
            signature,
            justification: None,
        }
    }

    /// The round that timed out.
    pub fn round(&self) -> Round {
        self.round
    }

    /// The highest QC round the sender had seen when it timed out.
    pub fn high_qc_round(&self) -> Round {
        self.high_qc_round
    }

    /// The sending replica.
    pub fn author(&self) -> ReplicaId {
        self.author
    }

    /// The signature over `(round, high_qc_round)`.
    pub fn signature(&self) -> &Signature {
        &self.signature
    }

    /// The piggybacked TC justifying the sender's round, if any.
    pub fn justification(&self) -> Option<&TimeoutCertificate> {
        self.justification.as_ref()
    }

    /// Verifies the signature against the PKI.
    pub fn verify(&self, registry: &KeyRegistry) -> bool {
        let digest = timeout_signing_digest(self.round, self.high_qc_round);
        registry.verify(self.author.as_u64(), digest.as_ref(), &self.signature)
    }
}

impl fmt::Debug for TimeoutMsg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "TimeoutMsg({} r={} qc_high={})",
            self.author, self.round, self.high_qc_round
        )
    }
}

impl Encode for TimeoutMsg {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.round.encode(buf);
        self.high_qc_round.encode(buf);
        self.author.encode(buf);
        self.signature.encode(buf);
        self.justification.encode(buf);
    }
}

impl Decode for TimeoutMsg {
    fn decode(buf: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(Self {
            round: Round::decode(buf)?,
            high_qc_round: Round::decode(buf)?,
            author: ReplicaId::decode(buf)?,
            signature: Signature::decode(buf)?,
            justification: Option::<TimeoutCertificate>::decode(buf)?,
        })
    }
}

/// Proof that `2f + 1` distinct replicas timed out in the same round.
///
/// Carries the maximum `high_qc_round` among the aggregated messages — the
/// next leader must propose on a QC at least that fresh, which is what
/// makes the timeout path safe (no certified block can be forgotten).
///
/// As with [`QuorumCertificate`](../sft_core), the per-message signatures
/// live with the aggregator; the certificate carries the signer set, which
/// is all downstream logic consumes.
#[derive(Clone, PartialEq, Eq)]
pub struct TimeoutCertificate {
    round: Round,
    max_high_qc_round: Round,
    signers: SignerSet,
}

impl TimeoutCertificate {
    /// Assembles a certificate from parts. Callers are expected to have
    /// verified the underlying timeout messages (the aggregator has).
    pub fn new(round: Round, max_high_qc_round: Round, signers: SignerSet) -> Self {
        Self {
            round,
            max_high_qc_round,
            signers,
        }
    }

    /// The round the certificate closes.
    pub fn round(&self) -> Round {
        self.round
    }

    /// The freshest QC round any aggregated replica had seen.
    pub fn max_high_qc_round(&self) -> Round {
        self.max_high_qc_round
    }

    /// The replicas whose timeout messages formed the certificate.
    pub fn signers(&self) -> &SignerSet {
        &self.signers
    }

    /// Digest of the certificate (mixed into proposal signing preimages).
    pub fn digest(&self) -> HashValue {
        Hasher::new("timeout-certificate")
            .field(&self.to_bytes())
            .finish()
    }
}

impl fmt::Debug for TimeoutCertificate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "TC(r={} qc_high={} by {:?})",
            self.round, self.max_high_qc_round, self.signers
        )
    }
}

impl Encode for TimeoutCertificate {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.round.encode(buf);
        self.max_high_qc_round.encode(buf);
        self.signers.encode(buf);
    }
}

impl Decode for TimeoutCertificate {
    fn decode(buf: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(Self {
            round: Round::decode(buf)?,
            max_high_qc_round: Round::decode(buf)?,
            signers: SignerSet::decode(buf)?,
        })
    }
}

/// Outcome of feeding one timeout message to a [`TimeoutAggregator`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TimeoutOutcome {
    /// The message was counted; the round now has this many timeouts.
    Counted(usize),
    /// The message completed the quorum: the round's certificate formed.
    /// Emitted at most once per round.
    Certified(TimeoutCertificate),
    /// This replica already timed out in this round — ignored.
    Duplicate,
    /// The signature did not verify — ignored.
    BadSignature,
}

/// Aggregates verified timeout messages into timeout certificates.
///
/// The quorum is passed as a plain count (the `2f + 1` of the protocol
/// configuration) so this crate stays independent of the quorum arithmetic
/// in `sft-core`.
///
/// # Examples
///
/// ```
/// use sft_crypto::KeyRegistry;
/// use sft_types::{Round, TimeoutAggregator, TimeoutMsg, TimeoutOutcome};
///
/// let registry = KeyRegistry::deterministic(4);
/// let mut agg = TimeoutAggregator::new(4, 3, registry.clone());
/// for i in 0..2 {
///     let msg = TimeoutMsg::new(Round::new(1), Round::ZERO, &registry.key_pair(i).unwrap());
///     assert!(matches!(agg.add(&msg), TimeoutOutcome::Counted(_)));
/// }
/// let msg = TimeoutMsg::new(Round::new(1), Round::ZERO, &registry.key_pair(2).unwrap());
/// assert!(matches!(agg.add(&msg), TimeoutOutcome::Certified(_)));
/// ```
#[derive(Clone, Debug)]
pub struct TimeoutAggregator {
    n: usize,
    quorum: usize,
    registry: KeyRegistry,
    /// Per round: the distinct signers and the max `high_qc_round` seen.
    by_round: HashMap<Round, (SignerSet, Round)>,
    /// Rounds that already produced a certificate (emit-once).
    certified: HashSet<Round>,
}

impl TimeoutAggregator {
    /// Creates an aggregator for `n` replicas with the given quorum count.
    ///
    /// # Panics
    ///
    /// Panics if `quorum` is zero or exceeds `n`.
    pub fn new(n: usize, quorum: usize, registry: KeyRegistry) -> Self {
        assert!(quorum >= 1 && quorum <= n, "bad quorum {quorum} for n={n}");
        Self {
            n,
            quorum,
            registry,
            by_round: HashMap::new(),
            certified: HashSet::new(),
        }
    }

    /// Verifies and counts one timeout message. See [`TimeoutOutcome`].
    pub fn add(&mut self, msg: &TimeoutMsg) -> TimeoutOutcome {
        if !msg.verify(&self.registry) {
            return TimeoutOutcome::BadSignature;
        }
        let n = self.n;
        let (signers, max_high) = self
            .by_round
            .entry(msg.round())
            .or_insert_with(|| (SignerSet::new(n), Round::ZERO));
        if !signers.insert(msg.author()) {
            return TimeoutOutcome::Duplicate;
        }
        *max_high = (*max_high).max(msg.high_qc_round());
        let count = signers.len();
        if count >= self.quorum && self.certified.insert(msg.round()) {
            let (signers, max_high) = &self.by_round[&msg.round()];
            return TimeoutOutcome::Certified(TimeoutCertificate::new(
                msg.round(),
                *max_high,
                signers.clone(),
            ));
        }
        TimeoutOutcome::Counted(count)
    }

    /// Number of distinct replicas that timed out in `round` so far.
    pub fn timeouts_for(&self, round: Round) -> usize {
        self.by_round.get(&round).map_or(0, |(s, _)| s.len())
    }

    /// True if `round` already produced a certificate.
    pub fn is_certified(&self, round: Round) -> bool {
        self.certified.contains(&round)
    }

    /// Drops per-round state for all rounds below `round` — the caller has
    /// advanced past them, so their certificates can never matter again.
    pub fn prune_below(&mut self, round: Round) {
        self.by_round.retain(|r, _| *r >= round);
        self.certified.retain(|r| *r >= round);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (KeyRegistry, TimeoutAggregator) {
        let registry = KeyRegistry::deterministic(4);
        let agg = TimeoutAggregator::new(4, 3, registry.clone());
        (registry, agg)
    }

    fn msg(registry: &KeyRegistry, signer: u64, round: u64, high: u64) -> TimeoutMsg {
        TimeoutMsg::new(
            Round::new(round),
            Round::new(high),
            &registry.key_pair(signer).unwrap(),
        )
    }

    #[test]
    fn sign_and_verify() {
        let (registry, _) = setup();
        let m = msg(&registry, 1, 5, 3);
        assert!(m.verify(&registry));
        assert_eq!(m.round(), Round::new(5));
        assert_eq!(m.high_qc_round(), Round::new(3));
        assert_eq!(m.author(), ReplicaId::new(1));
    }

    #[test]
    fn tampered_round_fails_verification() {
        let (registry, _) = setup();
        let honest = msg(&registry, 1, 5, 3);
        let forged = TimeoutMsg::from_parts(
            Round::new(6),
            honest.high_qc_round(),
            honest.author(),
            *honest.signature(),
        );
        assert!(!forged.verify(&registry));
    }

    #[test]
    fn quorum_certifies_exactly_once() {
        let (registry, mut agg) = setup();
        assert_eq!(
            agg.add(&msg(&registry, 0, 2, 0)),
            TimeoutOutcome::Counted(1)
        );
        assert_eq!(
            agg.add(&msg(&registry, 1, 2, 1)),
            TimeoutOutcome::Counted(2)
        );
        let outcome = agg.add(&msg(&registry, 2, 2, 0));
        let TimeoutOutcome::Certified(tc) = outcome else {
            panic!("expected certification, got {outcome:?}");
        };
        assert_eq!(tc.round(), Round::new(2));
        assert_eq!(tc.max_high_qc_round(), Round::new(1), "max of aggregated");
        assert_eq!(tc.signers().len(), 3);
        assert!(agg.is_certified(Round::new(2)));
        // A fourth message still counts but does not re-certify.
        assert_eq!(
            agg.add(&msg(&registry, 3, 2, 0)),
            TimeoutOutcome::Counted(4)
        );
        assert_eq!(agg.timeouts_for(Round::new(2)), 4);
    }

    #[test]
    fn duplicates_and_bad_signatures_ignored() {
        let (registry, mut agg) = setup();
        agg.add(&msg(&registry, 0, 1, 0));
        assert_eq!(agg.add(&msg(&registry, 0, 1, 0)), TimeoutOutcome::Duplicate);
        let honest = msg(&registry, 1, 1, 0);
        let forged = TimeoutMsg::from_parts(
            honest.round(),
            honest.high_qc_round(),
            ReplicaId::new(2), // wrong author for the signature
            *honest.signature(),
        );
        assert_eq!(agg.add(&forged), TimeoutOutcome::BadSignature);
        assert_eq!(agg.timeouts_for(Round::new(1)), 1);
    }

    #[test]
    fn rounds_are_independent() {
        let (registry, mut agg) = setup();
        agg.add(&msg(&registry, 0, 1, 0));
        agg.add(&msg(&registry, 0, 2, 0));
        assert_eq!(agg.timeouts_for(Round::new(1)), 1);
        assert_eq!(agg.timeouts_for(Round::new(2)), 1);
    }

    #[test]
    fn prune_drops_stale_rounds() {
        let (registry, mut agg) = setup();
        for s in 0..3 {
            agg.add(&msg(&registry, s, 1, 0));
        }
        agg.add(&msg(&registry, 0, 5, 0));
        assert!(agg.is_certified(Round::new(1)));
        agg.prune_below(Round::new(4));
        assert!(!agg.is_certified(Round::new(1)));
        assert_eq!(agg.timeouts_for(Round::new(1)), 0);
        assert_eq!(agg.timeouts_for(Round::new(5)), 1, "live rounds survive");
    }

    #[test]
    fn codec_roundtrips() {
        let (registry, mut agg) = setup();
        let m = msg(&registry, 3, 7, 4);
        let back = TimeoutMsg::from_bytes(&m.to_bytes()).unwrap();
        assert_eq!(back, m);
        assert!(back.verify(&registry));

        agg.add(&msg(&registry, 0, 7, 0));
        agg.add(&msg(&registry, 1, 7, 1));
        let TimeoutOutcome::Certified(tc) = agg.add(&msg(&registry, 2, 7, 2)) else {
            panic!("third timeout certifies");
        };
        let back = TimeoutCertificate::from_bytes(&tc.to_bytes()).unwrap();
        assert_eq!(back, tc);
    }

    #[test]
    #[should_panic(expected = "bad quorum")]
    fn zero_quorum_panics() {
        TimeoutAggregator::new(4, 0, KeyRegistry::deterministic(4));
    }
}
