//! Timeout messages and timeout certificates — the liveness machinery of
//! the round-based main protocol (SFT-DiemBFT).
//!
//! When a replica's round timer expires before it sees a quorum certificate
//! for the round, it broadcasts a signed [`TimeoutMsg`] naming the round and
//! the highest QC round it knows. `2f + 1` distinct timeout messages for the
//! same round aggregate into a [`TimeoutCertificate`] (TC), which justifies
//! every replica advancing to the next round even though nothing was
//! certified — the synchronizer pattern of the DiemBFT / Jolteon lineage.
//!
//! The [`TimeoutAggregator`] mirrors [`VoteTracker`](../sft_core) at the
//! timeout layer: it verifies signatures, deduplicates authors per round,
//! and emits each round's certificate exactly once. Under
//! [`VerifyPolicy::OnQuorum`] it defers signature checks until a quorum
//! forms, batch-verifying the whole forming certificate in one pass —
//! see [`VerifyPolicy`] for the semantics.

use std::collections::{HashMap, HashSet};
use std::fmt;

use sft_crypto::{BatchItem, HashValue, Hasher, KeyPair, KeyRegistry, SigStats, Signature};

use crate::codec::{Decode, DecodeError, Encode};
use crate::{ReplicaId, Round, SignerSet};

/// When a vote/timeout aggregator checks signatures.
///
/// The protocol only ever *acts* on a quorum, so per-message verification
/// at arrival is `O(n)` checks per replica per round — `O(n²)` across the
/// system — most of which are spent on messages that merely raise a count.
/// Deferring to quorum formation turns that into one amortized batch pass
/// per certificate and never verifies byte-identical retransmissions at
/// all. The trade: a forged message can inflate a count until the batch
/// check at quorum exposes it (the aggregate comparison fails, the
/// bisection names the forged signer, and the count rolls back), so
/// certificates are exactly as trustworthy either way — only transient
/// counts can differ.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum VerifyPolicy {
    /// Check every signature when its message arrives (the classic path).
    #[default]
    OnArrival,
    /// Count optimistically, batch-verify when a quorum forms.
    OnQuorum,
}

/// Signing preimage for a timeout message: binds the timed-out round and
/// the sender's highest QC round under one signature.
pub fn timeout_signing_digest(round: Round, high_qc_round: Round) -> HashValue {
    Hasher::new("timeout")
        .field(&round.as_u64().to_be_bytes())
        .field(&high_qc_round.as_u64().to_be_bytes())
        .finish()
}

/// A replica's signed declaration that `round` expired without a QC:
/// `⟨timeout, r, qc_high⟩_i`.
///
/// # Examples
///
/// ```
/// use sft_crypto::KeyRegistry;
/// use sft_types::{ReplicaId, Round, TimeoutMsg};
///
/// let registry = KeyRegistry::deterministic(4);
/// let msg = TimeoutMsg::new(Round::new(5), Round::new(3), &registry.key_pair(2).unwrap());
/// assert_eq!(msg.author(), ReplicaId::new(2));
/// assert!(msg.verify(&registry));
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct TimeoutMsg {
    round: Round,
    high_qc_round: Round,
    author: ReplicaId,
    signature: Signature,
    /// The TC that justified the sender's current round, if it was entered
    /// on the timeout path — DiemBFT's `SyncInfo` piggyback in minimal
    /// form. Self-certifying (a TC carries its own signer quorum), so it is
    /// deliberately *outside* the signing preimage: receivers validate it
    /// structurally, and a replica stranded in an earlier round because the
    /// certificate that closed it was lost jumps forward on it.
    justification: Option<TimeoutCertificate>,
}

impl TimeoutMsg {
    /// Creates and signs a timeout message.
    pub fn new(round: Round, high_qc_round: Round, key_pair: &KeyPair) -> Self {
        let digest = timeout_signing_digest(round, high_qc_round);
        Self {
            round,
            high_qc_round,
            author: ReplicaId::new(key_pair.signer() as u16),
            signature: key_pair.sign(digest.as_ref()),
            justification: None,
        }
    }

    /// Attaches the TC that justified the sender's current round (the
    /// catch-up piggyback for replicas that missed it).
    pub fn with_justification(mut self, tc: Option<TimeoutCertificate>) -> Self {
        self.justification = tc;
        self
    }

    /// Reassembles a message from parts (decoder and Byzantine harnesses).
    pub fn from_parts(
        round: Round,
        high_qc_round: Round,
        author: ReplicaId,
        signature: Signature,
    ) -> Self {
        Self {
            round,
            high_qc_round,
            author,
            signature,
            justification: None,
        }
    }

    /// The round that timed out.
    pub fn round(&self) -> Round {
        self.round
    }

    /// The highest QC round the sender had seen when it timed out.
    pub fn high_qc_round(&self) -> Round {
        self.high_qc_round
    }

    /// The sending replica.
    pub fn author(&self) -> ReplicaId {
        self.author
    }

    /// The signature over `(round, high_qc_round)`.
    pub fn signature(&self) -> &Signature {
        &self.signature
    }

    /// The piggybacked TC justifying the sender's round, if any.
    pub fn justification(&self) -> Option<&TimeoutCertificate> {
        self.justification.as_ref()
    }

    /// Verifies the signature against the PKI.
    pub fn verify(&self, registry: &KeyRegistry) -> bool {
        let digest = timeout_signing_digest(self.round, self.high_qc_round);
        registry.verify(self.author.as_u64(), digest.as_ref(), &self.signature)
    }
}

impl fmt::Debug for TimeoutMsg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "TimeoutMsg({} r={} qc_high={})",
            self.author, self.round, self.high_qc_round
        )
    }
}

impl Encode for TimeoutMsg {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.round.encode(buf);
        self.high_qc_round.encode(buf);
        self.author.encode(buf);
        self.signature.encode(buf);
        self.justification.encode(buf);
    }
}

impl Decode for TimeoutMsg {
    fn decode(buf: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(Self {
            round: Round::decode(buf)?,
            high_qc_round: Round::decode(buf)?,
            author: ReplicaId::decode(buf)?,
            signature: Signature::decode(buf)?,
            justification: Option::<TimeoutCertificate>::decode(buf)?,
        })
    }
}

/// Proof that `2f + 1` distinct replicas timed out in the same round.
///
/// Carries the maximum `high_qc_round` among the aggregated messages — the
/// next leader must propose on a QC at least that fresh, which is what
/// makes the timeout path safe (no certified block can be forgotten).
///
/// As with [`QuorumCertificate`](../sft_core), the per-message signatures
/// live with the aggregator; the certificate carries the signer set, which
/// is all downstream logic consumes.
#[derive(Clone, PartialEq, Eq)]
pub struct TimeoutCertificate {
    round: Round,
    max_high_qc_round: Round,
    signers: SignerSet,
}

impl TimeoutCertificate {
    /// Assembles a certificate from parts. Callers are expected to have
    /// verified the underlying timeout messages (the aggregator has).
    pub fn new(round: Round, max_high_qc_round: Round, signers: SignerSet) -> Self {
        Self {
            round,
            max_high_qc_round,
            signers,
        }
    }

    /// The round the certificate closes.
    pub fn round(&self) -> Round {
        self.round
    }

    /// The freshest QC round any aggregated replica had seen.
    pub fn max_high_qc_round(&self) -> Round {
        self.max_high_qc_round
    }

    /// The replicas whose timeout messages formed the certificate.
    pub fn signers(&self) -> &SignerSet {
        &self.signers
    }

    /// Digest of the certificate (mixed into proposal signing preimages).
    pub fn digest(&self) -> HashValue {
        Hasher::new("timeout-certificate")
            .field(&self.to_bytes())
            .finish()
    }
}

impl fmt::Debug for TimeoutCertificate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "TC(r={} qc_high={} by {:?})",
            self.round, self.max_high_qc_round, self.signers
        )
    }
}

impl Encode for TimeoutCertificate {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.round.encode(buf);
        self.max_high_qc_round.encode(buf);
        self.signers.encode(buf);
    }
}

impl Decode for TimeoutCertificate {
    fn decode(buf: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(Self {
            round: Round::decode(buf)?,
            max_high_qc_round: Round::decode(buf)?,
            signers: SignerSet::decode(buf)?,
        })
    }
}

/// Outcome of feeding one timeout message to a [`TimeoutAggregator`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TimeoutOutcome {
    /// The message was counted; the round now has this many timeouts.
    Counted(usize),
    /// The message completed the quorum: the round's certificate formed.
    /// Emitted at most once per round.
    Certified(TimeoutCertificate),
    /// This replica already timed out in this round — ignored.
    Duplicate,
    /// The signature did not verify — ignored.
    BadSignature,
}

/// Aggregates verified timeout messages into timeout certificates.
///
/// The quorum is passed as a plain count (the `2f + 1` of the protocol
/// configuration) so this crate stays independent of the quorum arithmetic
/// in `sft-core`.
///
/// # Examples
///
/// ```
/// use sft_crypto::KeyRegistry;
/// use sft_types::{Round, TimeoutAggregator, TimeoutMsg, TimeoutOutcome};
///
/// let registry = KeyRegistry::deterministic(4);
/// let mut agg = TimeoutAggregator::new(4, 3, registry.clone());
/// for i in 0..2 {
///     let msg = TimeoutMsg::new(Round::new(1), Round::ZERO, &registry.key_pair(i).unwrap());
///     assert!(matches!(agg.add(&msg), TimeoutOutcome::Counted(_)));
/// }
/// let msg = TimeoutMsg::new(Round::new(1), Round::ZERO, &registry.key_pair(2).unwrap());
/// assert!(matches!(agg.add(&msg), TimeoutOutcome::Certified(_)));
/// ```
#[derive(Clone, Debug)]
pub struct TimeoutAggregator {
    n: usize,
    quorum: usize,
    registry: KeyRegistry,
    policy: VerifyPolicy,
    /// Per round, per author: the message content and whether its
    /// signature has been checked yet (always `true` under
    /// [`VerifyPolicy::OnArrival`]).
    by_round: HashMap<Round, HashMap<ReplicaId, PendingTimeout>>,
    /// Rounds that already produced a certificate (emit-once).
    certified: HashSet<Round>,
    stats: SigStats,
    /// Claimed authors of signatures a batch check rejected.
    forged: Vec<ReplicaId>,
}

/// A counted timeout, stored until (and after) its signature is checked.
#[derive(Clone, Debug)]
struct PendingTimeout {
    high_qc_round: Round,
    signature: Signature,
    verified: bool,
}

impl TimeoutAggregator {
    /// Creates an aggregator for `n` replicas with the given quorum count,
    /// verifying signatures on arrival.
    ///
    /// # Panics
    ///
    /// Panics if `quorum` is zero or exceeds `n`.
    pub fn new(n: usize, quorum: usize, registry: KeyRegistry) -> Self {
        assert!(quorum >= 1 && quorum <= n, "bad quorum {quorum} for n={n}");
        Self {
            n,
            quorum,
            registry,
            policy: VerifyPolicy::OnArrival,
            by_round: HashMap::new(),
            certified: HashSet::new(),
            stats: SigStats::default(),
            forged: Vec::new(),
        }
    }

    /// Selects when this aggregator checks signatures.
    pub fn with_policy(mut self, policy: VerifyPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// The verification policy in effect.
    pub fn policy(&self) -> VerifyPolicy {
        self.policy
    }

    /// Signature-verification work counters for this aggregator.
    pub fn sig_stats(&self) -> SigStats {
        self.stats
    }

    /// Claimed authors of signatures a batch check rejected — the output
    /// of the bisection over a bad batch.
    pub fn forged_signers(&self) -> &[ReplicaId] {
        &self.forged
    }

    /// Counts one timeout message, verifying per [`VerifyPolicy`]. See
    /// [`TimeoutOutcome`].
    pub fn add(&mut self, msg: &TimeoutMsg) -> TimeoutOutcome {
        match self.policy {
            VerifyPolicy::OnArrival => self.add_on_arrival(msg),
            VerifyPolicy::OnQuorum => self.add_on_quorum(msg),
        }
    }

    fn verify_one(&mut self, msg: &TimeoutMsg) -> bool {
        self.stats.count_verify();
        msg.verify(&self.registry)
    }

    fn add_on_arrival(&mut self, msg: &TimeoutMsg) -> TimeoutOutcome {
        if !self.verify_one(msg) {
            return TimeoutOutcome::BadSignature;
        }
        let entries = self.by_round.entry(msg.round()).or_default();
        if entries.contains_key(&msg.author()) {
            return TimeoutOutcome::Duplicate;
        }
        entries.insert(
            msg.author(),
            PendingTimeout {
                high_qc_round: msg.high_qc_round(),
                signature: *msg.signature(),
                verified: true,
            },
        );
        let count = entries.len();
        if count >= self.quorum {
            if let Some(tc) = self.try_certify(msg.round()) {
                return TimeoutOutcome::Certified(tc);
            }
        }
        TimeoutOutcome::Counted(count)
    }

    fn add_on_quorum(&mut self, msg: &TimeoutMsg) -> TimeoutOutcome {
        let stored = self
            .by_round
            .entry(msg.round())
            .or_default()
            .get(&msg.author())
            .map(|p| (p.high_qc_round, p.signature, p.verified));
        if let Some((stored_high, stored_sig, stored_verified)) = stored {
            // Byte-identical retransmission: deduplicated without ever
            // touching the signature — the common case deferral makes free.
            if stored_high == msg.high_qc_round() && stored_sig == *msg.signature() {
                return TimeoutOutcome::Duplicate;
            }
            // Conflicting content under one author: settle the stored
            // message's signature now so a forger cannot frame an honest
            // replica out of the round (nor an honest first message be
            // displaced by a forged second one).
            let probe = TimeoutMsg::from_parts(msg.round(), stored_high, msg.author(), stored_sig);
            if stored_verified || self.verify_one(&probe) {
                self.by_round
                    .get_mut(&msg.round())
                    .and_then(|e| e.get_mut(&msg.author()))
                    .expect("entry exists")
                    .verified = true;
                return if self.verify_one(msg) {
                    TimeoutOutcome::Duplicate
                } else {
                    TimeoutOutcome::BadSignature
                };
            }
            // The stored message was forged: roll it back and let the
            // arriving one take the slot (still unverified).
            self.forged.push(msg.author());
        }
        let entries = self.by_round.get_mut(&msg.round()).expect("entry exists");
        entries.insert(
            msg.author(),
            PendingTimeout {
                high_qc_round: msg.high_qc_round(),
                signature: *msg.signature(),
                verified: false,
            },
        );
        if entries.len() >= self.quorum {
            if let Some(tc) = self.try_certify(msg.round()) {
                return TimeoutOutcome::Certified(tc);
            }
        }
        if !self.by_round[&msg.round()].contains_key(&msg.author()) {
            // The arriving message itself was exposed as forged by the
            // batch check it triggered.
            return TimeoutOutcome::BadSignature;
        }
        TimeoutOutcome::Counted(self.timeouts_for(msg.round()))
    }

    /// Certifies `round` if it (still) holds a verified quorum,
    /// batch-checking any deferred signatures first. Emits at most once.
    fn try_certify(&mut self, round: Round) -> Option<TimeoutCertificate> {
        if self.certified.contains(&round) {
            return None;
        }
        let entries = self.by_round.get(&round)?;
        if entries.len() < self.quorum {
            return None;
        }
        let mut unverified: Vec<ReplicaId> = entries
            .iter()
            .filter(|(_, p)| !p.verified)
            .map(|(author, _)| *author)
            .collect();
        // Deterministic batch order regardless of hash-map iteration.
        unverified.sort_unstable();
        if !unverified.is_empty() {
            let digests: Vec<HashValue> = unverified
                .iter()
                .map(|author| timeout_signing_digest(round, entries[author].high_qc_round))
                .collect();
            let items: Vec<BatchItem<'_>> = unverified
                .iter()
                .zip(&digests)
                .map(|(author, digest)| {
                    BatchItem::new(author.as_u64(), digest.as_ref(), &entries[author].signature)
                })
                .collect();
            // Pooled: shards the MAC work over the crypto worker pool
            // above a threshold, serial below it — result-identical.
            let result = self.registry.verify_batch_pooled(&items);
            drop(items);
            self.stats.count_batch(unverified.len(), result.is_err());
            let forged_indices = result.err().unwrap_or_default();
            let entries = self.by_round.get_mut(&round).expect("entry exists");
            let mut forged_iter = forged_indices.iter().peekable();
            for (index, author) in unverified.iter().enumerate() {
                if forged_iter.peek() == Some(&&index) {
                    forged_iter.next();
                    entries.remove(author);
                    self.forged.push(*author);
                } else {
                    entries.get_mut(author).expect("entry exists").verified = true;
                }
            }
        }
        let entries = self.by_round.get(&round).expect("entry exists");
        if entries.len() < self.quorum {
            return None;
        }
        self.certified.insert(round);
        let max_high = entries
            .values()
            .map(|p| p.high_qc_round)
            .max()
            .unwrap_or(Round::ZERO);
        let signers = SignerSet::from_iter_with_capacity(self.n, entries.keys().copied());
        Some(TimeoutCertificate::new(round, max_high, signers))
    }

    /// Number of distinct replicas that timed out in `round` so far
    /// (under [`VerifyPolicy::OnQuorum`], optimistically counted ones
    /// included until a batch check settles them).
    pub fn timeouts_for(&self, round: Round) -> usize {
        self.by_round.get(&round).map_or(0, HashMap::len)
    }

    /// True if `round` already produced a certificate.
    pub fn is_certified(&self, round: Round) -> bool {
        self.certified.contains(&round)
    }

    /// Drops per-round state for all rounds below `round` — the caller has
    /// advanced past them, so their certificates can never matter again.
    pub fn prune_below(&mut self, round: Round) {
        self.by_round.retain(|r, _| *r >= round);
        self.certified.retain(|r| *r >= round);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (KeyRegistry, TimeoutAggregator) {
        let registry = KeyRegistry::deterministic(4);
        let agg = TimeoutAggregator::new(4, 3, registry.clone());
        (registry, agg)
    }

    fn msg(registry: &KeyRegistry, signer: u64, round: u64, high: u64) -> TimeoutMsg {
        TimeoutMsg::new(
            Round::new(round),
            Round::new(high),
            &registry.key_pair(signer).unwrap(),
        )
    }

    #[test]
    fn sign_and_verify() {
        let (registry, _) = setup();
        let m = msg(&registry, 1, 5, 3);
        assert!(m.verify(&registry));
        assert_eq!(m.round(), Round::new(5));
        assert_eq!(m.high_qc_round(), Round::new(3));
        assert_eq!(m.author(), ReplicaId::new(1));
    }

    #[test]
    fn tampered_round_fails_verification() {
        let (registry, _) = setup();
        let honest = msg(&registry, 1, 5, 3);
        let forged = TimeoutMsg::from_parts(
            Round::new(6),
            honest.high_qc_round(),
            honest.author(),
            *honest.signature(),
        );
        assert!(!forged.verify(&registry));
    }

    #[test]
    fn quorum_certifies_exactly_once() {
        let (registry, mut agg) = setup();
        assert_eq!(
            agg.add(&msg(&registry, 0, 2, 0)),
            TimeoutOutcome::Counted(1)
        );
        assert_eq!(
            agg.add(&msg(&registry, 1, 2, 1)),
            TimeoutOutcome::Counted(2)
        );
        let outcome = agg.add(&msg(&registry, 2, 2, 0));
        let TimeoutOutcome::Certified(tc) = outcome else {
            panic!("expected certification, got {outcome:?}");
        };
        assert_eq!(tc.round(), Round::new(2));
        assert_eq!(tc.max_high_qc_round(), Round::new(1), "max of aggregated");
        assert_eq!(tc.signers().len(), 3);
        assert!(agg.is_certified(Round::new(2)));
        // A fourth message still counts but does not re-certify.
        assert_eq!(
            agg.add(&msg(&registry, 3, 2, 0)),
            TimeoutOutcome::Counted(4)
        );
        assert_eq!(agg.timeouts_for(Round::new(2)), 4);
    }

    #[test]
    fn duplicates_and_bad_signatures_ignored() {
        let (registry, mut agg) = setup();
        agg.add(&msg(&registry, 0, 1, 0));
        assert_eq!(agg.add(&msg(&registry, 0, 1, 0)), TimeoutOutcome::Duplicate);
        let honest = msg(&registry, 1, 1, 0);
        let forged = TimeoutMsg::from_parts(
            honest.round(),
            honest.high_qc_round(),
            ReplicaId::new(2), // wrong author for the signature
            *honest.signature(),
        );
        assert_eq!(agg.add(&forged), TimeoutOutcome::BadSignature);
        assert_eq!(agg.timeouts_for(Round::new(1)), 1);
    }

    #[test]
    fn rounds_are_independent() {
        let (registry, mut agg) = setup();
        agg.add(&msg(&registry, 0, 1, 0));
        agg.add(&msg(&registry, 0, 2, 0));
        assert_eq!(agg.timeouts_for(Round::new(1)), 1);
        assert_eq!(agg.timeouts_for(Round::new(2)), 1);
    }

    #[test]
    fn prune_drops_stale_rounds() {
        let (registry, mut agg) = setup();
        for s in 0..3 {
            agg.add(&msg(&registry, s, 1, 0));
        }
        agg.add(&msg(&registry, 0, 5, 0));
        assert!(agg.is_certified(Round::new(1)));
        agg.prune_below(Round::new(4));
        assert!(!agg.is_certified(Round::new(1)));
        assert_eq!(agg.timeouts_for(Round::new(1)), 0);
        assert_eq!(agg.timeouts_for(Round::new(5)), 1, "live rounds survive");
    }

    #[test]
    fn codec_roundtrips() {
        let (registry, mut agg) = setup();
        let m = msg(&registry, 3, 7, 4);
        let back = TimeoutMsg::from_bytes(&m.to_bytes()).unwrap();
        assert_eq!(back, m);
        assert!(back.verify(&registry));

        agg.add(&msg(&registry, 0, 7, 0));
        agg.add(&msg(&registry, 1, 7, 1));
        let TimeoutOutcome::Certified(tc) = agg.add(&msg(&registry, 2, 7, 2)) else {
            panic!("third timeout certifies");
        };
        let back = TimeoutCertificate::from_bytes(&tc.to_bytes()).unwrap();
        assert_eq!(back, tc);
    }

    #[test]
    #[should_panic(expected = "bad quorum")]
    fn zero_quorum_panics() {
        TimeoutAggregator::new(4, 0, KeyRegistry::deterministic(4));
    }

    fn setup_deferred() -> (KeyRegistry, TimeoutAggregator) {
        let registry = KeyRegistry::deterministic(4);
        let agg =
            TimeoutAggregator::new(4, 3, registry.clone()).with_policy(VerifyPolicy::OnQuorum);
        (registry, agg)
    }

    #[test]
    fn on_quorum_certifies_with_one_batch_pass() {
        let (registry, mut agg) = setup_deferred();
        assert_eq!(agg.policy(), VerifyPolicy::OnQuorum);
        assert_eq!(
            agg.add(&msg(&registry, 0, 2, 0)),
            TimeoutOutcome::Counted(1)
        );
        assert_eq!(
            agg.add(&msg(&registry, 1, 2, 1)),
            TimeoutOutcome::Counted(2)
        );
        let TimeoutOutcome::Certified(tc) = agg.add(&msg(&registry, 2, 2, 0)) else {
            panic!("third timeout certifies");
        };
        assert_eq!(tc.round(), Round::new(2));
        assert_eq!(tc.max_high_qc_round(), Round::new(1));
        assert_eq!(tc.signers().len(), 3);
        let stats = agg.sig_stats();
        assert_eq!(stats.verifications, 0, "nothing verified before quorum");
        assert_eq!(stats.batch_calls, 1);
        assert_eq!(stats.batch_verified, 3);
        assert_eq!(stats.batch_rejects, 0);
    }

    #[test]
    fn on_quorum_retransmission_never_verifies() {
        let (registry, mut agg) = setup_deferred();
        let m = msg(&registry, 0, 1, 0);
        agg.add(&m);
        assert_eq!(agg.add(&m), TimeoutOutcome::Duplicate);
        let stats = agg.sig_stats();
        assert_eq!(stats.verifications + stats.batch_verified, 0);
    }

    #[test]
    fn on_quorum_bisection_rolls_back_forged_count() {
        let (registry, mut agg) = setup_deferred();
        // A forged message claiming replica 3 is counted optimistically...
        let forged = TimeoutMsg::from_parts(
            Round::new(1),
            Round::ZERO,
            ReplicaId::new(3),
            sft_crypto::Signature::from_tag(3, [0x5a; 32]),
        );
        assert_eq!(agg.add(&forged), TimeoutOutcome::Counted(1));
        assert_eq!(
            agg.add(&msg(&registry, 0, 1, 0)),
            TimeoutOutcome::Counted(2)
        );
        // ...until the batch check at quorum exposes it: the count rolls
        // back and no certificate forms.
        assert_eq!(
            agg.add(&msg(&registry, 1, 1, 2)),
            TimeoutOutcome::Counted(2)
        );
        assert!(!agg.is_certified(Round::new(1)));
        assert_eq!(agg.forged_signers(), &[ReplicaId::new(3)]);
        assert_eq!(agg.sig_stats().batch_rejects, 1);
        // A third honest replica restores the quorum; the earlier
        // survivors are not re-verified.
        let TimeoutOutcome::Certified(tc) = agg.add(&msg(&registry, 2, 1, 1)) else {
            panic!("honest quorum certifies");
        };
        assert_eq!(tc.max_high_qc_round(), Round::new(2));
        assert!(!tc.signers().contains(ReplicaId::new(3)));
        assert_eq!(agg.sig_stats().batch_verified, 3 + 1);
    }

    #[test]
    fn on_quorum_forged_trigger_message_is_rejected() {
        let (registry, mut agg) = setup_deferred();
        agg.add(&msg(&registry, 0, 1, 0));
        agg.add(&msg(&registry, 1, 1, 0));
        let forged = TimeoutMsg::from_parts(
            Round::new(1),
            Round::ZERO,
            ReplicaId::new(2),
            sft_crypto::Signature::from_tag(2, [0x11; 32]),
        );
        assert_eq!(agg.add(&forged), TimeoutOutcome::BadSignature);
        assert!(!agg.is_certified(Round::new(1)));
        assert_eq!(agg.timeouts_for(Round::new(1)), 2);
    }

    #[test]
    fn on_quorum_forger_cannot_displace_honest_message() {
        let (registry, mut agg) = setup_deferred();
        let honest = msg(&registry, 0, 1, 2);
        agg.add(&honest);
        // A forged variant under the same author resolves the stored
        // message (valid) and rejects the imposter.
        let forged = TimeoutMsg::from_parts(
            Round::new(1),
            Round::new(9),
            ReplicaId::new(0),
            sft_crypto::Signature::from_tag(0, [0x77; 32]),
        );
        assert_eq!(agg.add(&forged), TimeoutOutcome::BadSignature);
        agg.add(&msg(&registry, 1, 1, 0));
        let TimeoutOutcome::Certified(tc) = agg.add(&msg(&registry, 2, 1, 0)) else {
            panic!("quorum certifies");
        };
        assert_eq!(
            tc.max_high_qc_round(),
            Round::new(2),
            "honest high survives"
        );
    }

    #[test]
    fn on_quorum_forged_slot_is_reclaimed_by_honest_message() {
        let (registry, mut agg) = setup_deferred();
        // Forged message squats on replica 0's slot...
        let forged = TimeoutMsg::from_parts(
            Round::new(1),
            Round::new(9),
            ReplicaId::new(0),
            sft_crypto::Signature::from_tag(0, [0x77; 32]),
        );
        assert_eq!(agg.add(&forged), TimeoutOutcome::Counted(1));
        // ...but the honest original evicts it on arrival.
        assert_eq!(
            agg.add(&msg(&registry, 0, 1, 2)),
            TimeoutOutcome::Counted(1)
        );
        assert_eq!(agg.forged_signers(), &[ReplicaId::new(0)]);
        agg.add(&msg(&registry, 1, 1, 0));
        let TimeoutOutcome::Certified(tc) = agg.add(&msg(&registry, 2, 1, 0)) else {
            panic!("quorum certifies");
        };
        assert_eq!(tc.max_high_qc_round(), Round::new(2));
    }

    #[test]
    fn policies_agree_on_certificates() {
        let registry = KeyRegistry::deterministic(4);
        let mut arrival = TimeoutAggregator::new(4, 3, registry.clone());
        let mut quorum =
            TimeoutAggregator::new(4, 3, registry.clone()).with_policy(VerifyPolicy::OnQuorum);
        let mut tcs = (None, None);
        for s in 0..4 {
            let m = msg(&registry, s, 3, s);
            if let TimeoutOutcome::Certified(tc) = arrival.add(&m) {
                tcs.0 = Some(tc);
            }
            if let TimeoutOutcome::Certified(tc) = quorum.add(&m) {
                tcs.1 = Some(tc);
            }
        }
        assert_eq!(tcs.0, tcs.1);
        assert!(tcs.0.is_some());
        assert!(arrival.sig_stats().verifications > quorum.sig_stats().verifications);
    }
}
