//! Deterministic binary wire codec.
//!
//! Every wire type implements [`Encode`] and [`Decode`]. Encoding is
//! deterministic (no maps, fixed integer widths, length-prefixed sequences),
//! which makes encoded bytes suitable as signing preimages. The codec
//! replaces serde: the simulator needs byte-identical preimages for
//! signatures and exact wire-size accounting for the message-complexity
//! experiments, and the approved offline dependency set has no serde
//! format crate.

use std::fmt;

use sft_crypto::{HashValue, Signature};

/// Error returned when decoding malformed bytes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer ended before the value was complete.
    UnexpectedEof,
    /// A tag byte or enum discriminant had no meaning.
    InvalidTag(u8),
    /// A length prefix exceeded the sanity bound.
    LengthOverflow(u64),
    /// Trailing bytes remained after a complete top-level decode.
    TrailingBytes(usize),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::UnexpectedEof => write!(f, "unexpected end of input"),
            DecodeError::InvalidTag(t) => write!(f, "invalid tag byte {t}"),
            DecodeError::LengthOverflow(n) => write!(f, "length prefix {n} too large"),
            DecodeError::TrailingBytes(n) => write!(f, "{n} trailing bytes after value"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Maximum element count accepted for any length-prefixed sequence.
/// Prevents hostile length prefixes from causing huge allocations.
pub const MAX_SEQ_LEN: u64 = 1 << 24;

/// Serializes `self` into a byte buffer.
pub trait Encode {
    /// Appends the encoding of `self` to `buf`.
    fn encode(&self, buf: &mut Vec<u8>);

    /// Convenience: encodes into a fresh buffer.
    fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        self.encode(&mut buf);
        buf
    }

    /// The encoded size in bytes. Default implementation encodes and counts;
    /// types on hot paths may override with an analytic computation.
    fn encoded_len(&self) -> usize {
        self.to_bytes().len()
    }
}

/// Deserializes a value from a byte cursor.
pub trait Decode: Sized {
    /// Reads one value from the front of `buf`, advancing it.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] if the bytes are truncated or malformed.
    fn decode(buf: &mut &[u8]) -> Result<Self, DecodeError>;

    /// Decodes a complete buffer, rejecting trailing bytes.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] on malformed input or leftover bytes.
    fn from_bytes(mut bytes: &[u8]) -> Result<Self, DecodeError> {
        let value = Self::decode(&mut bytes)?;
        if bytes.is_empty() {
            Ok(value)
        } else {
            Err(DecodeError::TrailingBytes(bytes.len()))
        }
    }
}

fn take<'a>(buf: &mut &'a [u8], n: usize) -> Result<&'a [u8], DecodeError> {
    if buf.len() < n {
        return Err(DecodeError::UnexpectedEof);
    }
    let (head, tail) = buf.split_at(n);
    *buf = tail;
    Ok(head)
}

macro_rules! impl_codec_uint {
    ($($ty:ty),*) => {
        $(
            impl Encode for $ty {
                fn encode(&self, buf: &mut Vec<u8>) {
                    buf.extend_from_slice(&self.to_be_bytes());
                }
                fn encoded_len(&self) -> usize {
                    std::mem::size_of::<$ty>()
                }
            }
            impl Decode for $ty {
                fn decode(buf: &mut &[u8]) -> Result<Self, DecodeError> {
                    let bytes = take(buf, std::mem::size_of::<$ty>())?;
                    let mut arr = [0u8; std::mem::size_of::<$ty>()];
                    arr.copy_from_slice(bytes);
                    Ok(<$ty>::from_be_bytes(arr))
                }
            }
        )*
    };
}

impl_codec_uint!(u8, u16, u32, u64);

impl Encode for bool {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.push(u8::from(*self));
    }
    fn encoded_len(&self) -> usize {
        1
    }
}

impl Decode for bool {
    fn decode(buf: &mut &[u8]) -> Result<Self, DecodeError> {
        match u8::decode(buf)? {
            0 => Ok(false),
            1 => Ok(true),
            t => Err(DecodeError::InvalidTag(t)),
        }
    }
}

impl<T: Encode> Encode for Vec<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        (self.len() as u64).encode(buf);
        for item in self {
            item.encode(buf);
        }
    }
}

impl<T: Decode> Decode for Vec<T> {
    fn decode(buf: &mut &[u8]) -> Result<Self, DecodeError> {
        let len = u64::decode(buf)?;
        if len > MAX_SEQ_LEN {
            return Err(DecodeError::LengthOverflow(len));
        }
        let mut out = Vec::with_capacity((len as usize).min(1024));
        for _ in 0..len {
            out.push(T::decode(buf)?);
        }
        Ok(out)
    }
}

impl<T: Encode> Encode for Option<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            None => buf.push(0),
            Some(v) => {
                buf.push(1);
                v.encode(buf);
            }
        }
    }
}

impl<T: Decode> Decode for Option<T> {
    fn decode(buf: &mut &[u8]) -> Result<Self, DecodeError> {
        match u8::decode(buf)? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(buf)?)),
            t => Err(DecodeError::InvalidTag(t)),
        }
    }
}

impl Encode for HashValue {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(self.as_bytes());
    }
    fn encoded_len(&self) -> usize {
        HashValue::LEN
    }
}

impl Decode for HashValue {
    fn decode(buf: &mut &[u8]) -> Result<Self, DecodeError> {
        let bytes = take(buf, HashValue::LEN)?;
        let mut arr = [0u8; HashValue::LEN];
        arr.copy_from_slice(bytes);
        Ok(HashValue::from_bytes(arr))
    }
}

impl Encode for Signature {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.signer().encode(buf);
        buf.extend_from_slice(self.tag());
    }
    fn encoded_len(&self) -> usize {
        8 + 32
    }
}

impl Decode for Signature {
    fn decode(buf: &mut &[u8]) -> Result<Self, DecodeError> {
        let signer = u64::decode(buf)?;
        let bytes = take(buf, 32)?;
        let mut tag = [0u8; 32];
        tag.copy_from_slice(bytes);
        Ok(Signature::from_tag(signer, tag))
    }
}

impl Encode for crate::ReplicaId {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.as_u16().encode(buf);
    }
    fn encoded_len(&self) -> usize {
        2
    }
}

impl Decode for crate::ReplicaId {
    fn decode(buf: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(Self::new(u16::decode(buf)?))
    }
}

impl Encode for crate::Round {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.as_u64().encode(buf);
    }
    fn encoded_len(&self) -> usize {
        8
    }
}

impl Decode for crate::Round {
    fn decode(buf: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(Self::new(u64::decode(buf)?))
    }
}

impl Encode for crate::Height {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.as_u64().encode(buf);
    }
    fn encoded_len(&self) -> usize {
        8
    }
}

impl Decode for crate::Height {
    fn decode(buf: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(Self::new(u64::decode(buf)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Height, ReplicaId, Round};

    fn roundtrip<T: Encode + Decode + PartialEq + fmt::Debug>(value: T) {
        let bytes = value.to_bytes();
        assert_eq!(bytes.len(), value.encoded_len());
        let back = T::from_bytes(&bytes).expect("decode");
        assert_eq!(back, value);
    }

    #[test]
    fn primitive_roundtrips() {
        roundtrip(0u8);
        roundtrip(255u8);
        roundtrip(u16::MAX);
        roundtrip(u32::MAX);
        roundtrip(u64::MAX);
        roundtrip(true);
        roundtrip(false);
    }

    #[test]
    fn id_roundtrips() {
        roundtrip(ReplicaId::new(99));
        roundtrip(Round::new(1 << 40));
        roundtrip(Height::new(7));
    }

    #[test]
    fn container_roundtrips() {
        let v: Vec<u64> = vec![1, 2, 3, u64::MAX];
        let bytes = v.to_bytes();
        assert_eq!(Vec::<u64>::from_bytes(&bytes).unwrap(), v);
        let o: Option<u32> = Some(5);
        assert_eq!(Option::<u32>::from_bytes(&o.to_bytes()).unwrap(), o);
        let n: Option<u32> = None;
        assert_eq!(Option::<u32>::from_bytes(&n.to_bytes()).unwrap(), n);
    }

    #[test]
    fn hash_signature_roundtrips() {
        roundtrip(HashValue::of(b"abc"));
        roundtrip(Signature::from_tag(3, [9u8; 32]));
    }

    #[test]
    fn eof_detected() {
        let bytes = 12345u64.to_bytes();
        assert_eq!(
            u64::from_bytes(&bytes[..4]),
            Err(DecodeError::UnexpectedEof)
        );
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut bytes = 1u8.to_bytes();
        bytes.push(0);
        assert_eq!(u8::from_bytes(&bytes), Err(DecodeError::TrailingBytes(1)));
    }

    #[test]
    fn bad_bool_tag() {
        assert_eq!(bool::from_bytes(&[2]), Err(DecodeError::InvalidTag(2)));
    }

    #[test]
    fn hostile_length_rejected() {
        let mut bytes = Vec::new();
        (u64::MAX).encode(&mut bytes);
        assert_eq!(
            Vec::<u8>::from_bytes(&bytes),
            Err(DecodeError::LengthOverflow(u64::MAX))
        );
    }

    #[test]
    fn option_bad_tag() {
        assert_eq!(
            Option::<u8>::from_bytes(&[7]),
            Err(DecodeError::InvalidTag(7))
        );
    }

    #[test]
    fn error_display() {
        assert!(DecodeError::UnexpectedEof
            .to_string()
            .contains("end of input"));
        assert!(DecodeError::InvalidTag(3).to_string().contains('3'));
    }
}
