//! Virtual time for the deterministic simulation: [`SimTime`] (an instant)
//! and [`SimDuration`] (a span), both counted in integer microseconds.
//!
//! The paper's evaluation (§4) injects fixed inter-region delays (δ = 100 ms
//! or 200 ms) and measures commit latencies in seconds. Microsecond
//! resolution is three orders of magnitude finer than any quantity the
//! experiments care about, and integer arithmetic keeps the discrete-event
//! simulation exactly reproducible across platforms (no floating-point
//! accumulation).

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

use crate::codec::{Decode, DecodeError, Encode};

/// An instant in simulated time, in microseconds since simulation start.
///
/// # Examples
///
/// ```
/// use sft_types::{SimDuration, SimTime};
///
/// let t = SimTime::ZERO + SimDuration::from_millis(250);
/// assert_eq!(t.as_micros(), 250_000);
/// assert_eq!(t.to_string(), "0.250s");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The simulation start instant.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates an instant from raw microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        Self(micros)
    }

    /// Creates an instant from milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        Self(millis * 1_000)
    }

    /// Creates an instant from seconds.
    pub const fn from_secs(secs: u64) -> Self {
        Self(secs * 1_000_000)
    }

    /// The raw microsecond count.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// The instant expressed in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Time elapsed since `earlier`, saturating to zero if `earlier` is
    /// later than `self`.
    pub const fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Time elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier` is after `self`.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        debug_assert!(
            earlier.0 <= self.0,
            "since({earlier:?}) called on earlier {self:?}"
        );
        SimDuration(self.0 - earlier.0)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimTime({self})")
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}.{:03}s",
            self.0 / 1_000_000,
            (self.0 % 1_000_000) / 1_000
        )
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;

    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

/// A span of simulated time, in microseconds.
///
/// # Examples
///
/// ```
/// use sft_types::SimDuration;
///
/// let d = SimDuration::from_millis(100) * 3;
/// assert_eq!(d, SimDuration::from_millis(300));
/// assert_eq!(d.as_secs_f64(), 0.3);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimDuration {
    /// The zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a span from raw microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        Self(micros)
    }

    /// Creates a span from milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        Self(millis * 1_000)
    }

    /// Creates a span from seconds.
    pub const fn from_secs(secs: u64) -> Self {
        Self(secs * 1_000_000)
    }

    /// Creates a span from fractional seconds, rounding to microseconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "invalid duration {secs}");
        Self((secs * 1e6).round() as u64)
    }

    /// The raw microsecond count.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// The span in whole milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// The span expressed in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// True if this is the zero span.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub const fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Multiplies the span by a fractional factor, rounding to microseconds.
    ///
    /// Used by the pacemaker's exponential timeout back-off.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "invalid factor {factor}"
        );
        SimDuration((self.0 as f64 * factor).round() as u64)
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimDuration({self})")
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

impl Add for SimDuration {
    type Output = SimDuration;

    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl std::ops::Mul<u64> for SimDuration {
    type Output = SimDuration;

    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl std::iter::Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl Encode for SimTime {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
    }
    fn encoded_len(&self) -> usize {
        8
    }
}

impl Decode for SimTime {
    fn decode(buf: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(Self(u64::decode(buf)?))
    }
}

impl Encode for SimDuration {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
    }
    fn encoded_len(&self) -> usize {
        8
    }
}

impl Decode for SimDuration {
    fn decode(buf: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(Self(u64::decode(buf)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_secs(1), SimTime::from_millis(1_000));
        assert_eq!(SimTime::from_millis(1), SimTime::from_micros(1_000));
        assert_eq!(
            SimDuration::from_secs(2),
            SimDuration::from_micros(2_000_000)
        );
    }

    #[test]
    fn instant_plus_span() {
        let t = SimTime::from_millis(100) + SimDuration::from_millis(50);
        assert_eq!(t, SimTime::from_millis(150));
        let mut t2 = SimTime::ZERO;
        t2 += SimDuration::from_secs(1);
        assert_eq!(t2, SimTime::from_secs(1));
    }

    #[test]
    fn elapsed_since() {
        let a = SimTime::from_millis(100);
        let b = SimTime::from_millis(350);
        assert_eq!(b.since(a), SimDuration::from_millis(250));
        assert_eq!(b - a, SimDuration::from_millis(250));
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
    }

    #[test]
    fn float_conversions() {
        assert_eq!(SimDuration::from_secs_f64(0.25).as_millis(), 250);
        assert!((SimTime::from_millis(1_500).as_secs_f64() - 1.5).abs() < 1e-12);
        assert!((SimDuration::from_millis(10).as_secs_f64() - 0.01).abs() < 1e-12);
    }

    #[test]
    fn duration_arithmetic() {
        let d = SimDuration::from_millis(100);
        assert_eq!(d * 3, SimDuration::from_millis(300));
        assert_eq!(d + d, SimDuration::from_millis(200));
        assert_eq!(
            d.saturating_sub(SimDuration::from_millis(150)),
            SimDuration::ZERO
        );
        assert_eq!(d.mul_f64(1.5), SimDuration::from_millis(150));
        assert!(SimDuration::ZERO.is_zero());
        assert!(!d.is_zero());
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = [1u64, 2, 3]
            .iter()
            .map(|&ms| SimDuration::from_millis(ms))
            .sum();
        assert_eq!(total, SimDuration::from_millis(6));
    }

    #[test]
    fn display_forms() {
        assert_eq!(SimTime::from_millis(1_250).to_string(), "1.250s");
        assert_eq!(SimDuration::from_secs(2).to_string(), "2.000s");
        assert_eq!(SimDuration::from_millis(5).to_string(), "5.000ms");
        assert_eq!(SimDuration::from_micros(7).to_string(), "7us");
    }

    #[test]
    fn codec_roundtrip() {
        let t = SimTime::from_micros(123_456_789);
        let d = SimDuration::from_micros(42);
        assert_eq!(SimTime::from_bytes(&t.to_bytes()).unwrap(), t);
        assert_eq!(SimDuration::from_bytes(&d.to_bytes()).unwrap(), d);
    }

    #[test]
    #[should_panic(expected = "invalid duration")]
    fn negative_seconds_panic() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_millis(1) < SimTime::from_millis(2));
        assert!(SimDuration::from_millis(1) < SimDuration::from_millis(2));
    }
}
