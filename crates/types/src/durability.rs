//! The durability watermark: the one value the pipelined persistence
//! path synchronizes on.
//!
//! A group-commit WAL assigns every appended record a monotone *persist
//! sequence number* and, after each (batched) fsync, publishes the
//! highest sequence number now durable — the **watermark**. Everything
//! downstream gates on that single value:
//!
//! - the WAL-writer thread [`advance`](Watermark::advance)s it after
//!   every fsync;
//! - transport writer threads hold an outbound frame until the
//!   watermark [`covers`](Watermark::covers) the frame's
//!   [`SendGate`] — persist-before-send becomes watermark-before-flush,
//!   so the consensus loop never blocks on an fsync;
//! - shutdown paths [`wait_covers`](Watermark::wait_covers) to drain.
//!
//! The type lives in `sft-types` (not `sft-core`, where the WAL itself
//! lives) because both sides of the contract need it: the WAL writer
//! that advances it and the transports that wait on it share no other
//! crate.
//!
//! Reads are a single relaxed-free atomic load (the common case on the
//! transport flush path); waits go through a mutex + condvar that
//! [`advance`](Watermark::advance) notifies.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// A persist sequence number assigned by a WAL to one appended record.
/// Sequence numbers start at 1; `0` means "nothing appended yet", so a
/// fresh watermark (at 0) covers exactly the empty log.
pub type PersistSeq = u64;

/// Shared interior of a [`Watermark`]: the cached value for lock-free
/// reads plus the mutex/condvar pair waiters sleep on.
struct WatermarkInner {
    /// Mirror of `durable` for lock-free reads. Updated while the lock
    /// is held, so it never runs ahead of the condvar-protected value.
    cached: AtomicU64,
    durable: Mutex<PersistSeq>,
    advanced: Condvar,
}

/// The durability watermark: the highest [`PersistSeq`] known durable.
/// Cheap to clone (shared handle); advanced only by the WAL writer,
/// read and waited on by everyone else.
#[derive(Clone)]
pub struct Watermark {
    inner: Arc<WatermarkInner>,
}

impl Watermark {
    /// A fresh watermark at 0 (nothing durable yet).
    pub fn new() -> Self {
        Self {
            inner: Arc::new(WatermarkInner {
                cached: AtomicU64::new(0),
                durable: Mutex::new(0),
                advanced: Condvar::new(),
            }),
        }
    }

    /// The highest sequence number known durable. One atomic load.
    pub fn get(&self) -> PersistSeq {
        self.inner.cached.load(Ordering::Acquire)
    }

    /// True once every record up to and including `seq` is durable.
    pub fn covers(&self, seq: PersistSeq) -> bool {
        self.get() >= seq
    }

    /// Publishes durability up to `seq` and wakes every waiter. The
    /// watermark is monotone: an advance below the current value is a
    /// no-op (batches may race only in tests; the WAL writer is one
    /// thread).
    pub fn advance(&self, seq: PersistSeq) {
        let mut durable = self.inner.durable.lock().expect("watermark lock");
        if seq > *durable {
            *durable = seq;
            self.inner.cached.store(seq, Ordering::Release);
            self.inner.advanced.notify_all();
        }
    }

    /// Blocks until the watermark covers `seq`.
    pub fn wait_covers(&self, seq: PersistSeq) {
        let mut durable = self.inner.durable.lock().expect("watermark lock");
        while *durable < seq {
            durable = self.inner.advanced.wait(durable).expect("watermark lock");
        }
    }

    /// Blocks until the watermark covers `seq` or `timeout` elapses.
    /// Returns whether `seq` is covered — shutdown-aware waiters loop on
    /// this with a short timeout so a dead WAL writer cannot wedge them.
    pub fn wait_covers_timeout(&self, seq: PersistSeq, timeout: Duration) -> bool {
        let mut durable = self.inner.durable.lock().expect("watermark lock");
        let deadline = std::time::Instant::now() + timeout;
        while *durable < seq {
            let Some(left) = deadline.checked_duration_since(std::time::Instant::now()) else {
                return false;
            };
            let (guard, timed_out) = self
                .inner
                .advanced
                .wait_timeout(durable, left)
                .expect("watermark lock");
            durable = guard;
            if timed_out.timed_out() {
                return *durable >= seq;
            }
        }
        true
    }
}

impl Default for Watermark {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Watermark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Watermark({})", self.get())
    }
}

/// A durability gate attached to one outbound frame: the frame may hit
/// the wire only once `watermark` covers `seq` — every WAL record that
/// justifies the message is then durable. Frames are gated in enqueue
/// order with monotone sequence numbers, so gating delays sends without
/// ever reordering them.
#[derive(Clone, Debug)]
pub struct SendGate {
    watermark: Watermark,
    seq: PersistSeq,
}

impl SendGate {
    /// Gates a frame on `watermark` covering `seq`.
    pub fn new(watermark: Watermark, seq: PersistSeq) -> Self {
        Self { watermark, seq }
    }

    /// The persist sequence this gate waits for.
    pub fn seq(&self) -> PersistSeq {
        self.seq
    }

    /// True once the frame may be sent. One atomic load.
    pub fn is_open(&self) -> bool {
        self.watermark.covers(self.seq)
    }

    /// Blocks until the frame may be sent.
    pub fn wait_open(&self) {
        self.watermark.wait_covers(self.seq);
    }

    /// Blocks until the frame may be sent or `timeout` elapses; returns
    /// whether the gate is open.
    pub fn wait_open_timeout(&self, timeout: Duration) -> bool {
        self.watermark.wait_covers_timeout(self.seq, timeout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_watermark_covers_only_zero() {
        let wm = Watermark::new();
        assert_eq!(wm.get(), 0);
        assert!(wm.covers(0));
        assert!(!wm.covers(1));
    }

    #[test]
    fn advance_is_monotone_and_visible() {
        let wm = Watermark::new();
        wm.advance(5);
        assert_eq!(wm.get(), 5);
        wm.advance(3); // stale advance: no-op
        assert_eq!(wm.get(), 5);
        wm.advance(9);
        assert!(wm.covers(9));
    }

    #[test]
    fn wait_covers_wakes_on_advance() {
        let wm = Watermark::new();
        let waiter = {
            let wm = wm.clone();
            std::thread::spawn(move || wm.wait_covers(4))
        };
        std::thread::sleep(Duration::from_millis(10));
        wm.advance(2); // not enough: waiter stays asleep
        wm.advance(4);
        waiter.join().expect("waiter returns once covered");
    }

    #[test]
    fn wait_covers_timeout_reports_coverage() {
        let wm = Watermark::new();
        assert!(!wm.wait_covers_timeout(1, Duration::from_millis(20)));
        wm.advance(1);
        assert!(wm.wait_covers_timeout(1, Duration::from_millis(20)));
    }

    #[test]
    fn gate_opens_when_watermark_passes_its_seq() {
        let wm = Watermark::new();
        let gate = SendGate::new(wm.clone(), 3);
        assert_eq!(gate.seq(), 3);
        assert!(!gate.is_open());
        wm.advance(2);
        assert!(!gate.is_open());
        wm.advance(3);
        assert!(gate.is_open());
        gate.wait_open(); // returns immediately once open
        assert!(gate.wait_open_timeout(Duration::from_millis(1)));
    }
}
