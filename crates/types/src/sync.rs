//! Block-sync (catch-up) request messages.
//!
//! A replica that learns a certificate for a block it never received —
//! e.g. the losing half of an equivocation split, or any replica behind a
//! partition — asks a peer for the missing chain segment with a
//! [`BlockRequest`]. The response type lives in `sft-core` (it carries
//! whole blocks); the request is pure identifiers and so belongs here with
//! the rest of the wire vocabulary.
//!
//! Requests are point-to-point, bounded (`max_blocks`), and idempotent:
//! re-asking for the same target is always safe, and responders never need
//! per-requester state.

use sft_crypto::HashValue;

use crate::codec::{Decode, DecodeError, Encode};
use crate::ReplicaId;

/// A bounded request for the chain segment ending at `target`.
///
/// # Examples
///
/// ```
/// use sft_crypto::HashValue;
/// use sft_types::{BlockRequest, Decode, Encode, ReplicaId};
///
/// let req = BlockRequest::new(ReplicaId::new(3), HashValue::of(b"B7"), 16);
/// let back = BlockRequest::from_bytes(&req.to_bytes()).unwrap();
/// assert_eq!(back, req);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlockRequest {
    requester: ReplicaId,
    target: HashValue,
    max_blocks: u32,
}

impl BlockRequest {
    /// Creates a request by `requester` for the segment ending at `target`,
    /// at most `max_blocks` long.
    pub fn new(requester: ReplicaId, target: HashValue, max_blocks: u32) -> Self {
        Self {
            requester,
            target,
            max_blocks,
        }
    }

    /// The replica asking (responses are sent point-to-point back to it).
    pub fn requester(&self) -> ReplicaId {
        self.requester
    }

    /// The certified-but-unknown block the requester wants, together with
    /// as many of its ancestors as the bound allows.
    pub fn target(&self) -> HashValue {
        self.target
    }

    /// Upper bound on the number of blocks the responder may return.
    pub fn max_blocks(&self) -> u32 {
        self.max_blocks
    }
}

impl Encode for BlockRequest {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.requester.encode(buf);
        self.target.encode(buf);
        self.max_blocks.encode(buf);
    }
    fn encoded_len(&self) -> usize {
        2 + HashValue::LEN + 4
    }
}

impl Decode for BlockRequest {
    fn decode(buf: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(Self {
            requester: ReplicaId::decode(buf)?,
            target: HashValue::decode(buf)?,
            max_blocks: u32::decode(buf)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_len() {
        let req = BlockRequest::new(ReplicaId::new(9), HashValue::of(b"tip"), 64);
        let bytes = req.to_bytes();
        assert_eq!(bytes.len(), req.encoded_len());
        assert_eq!(BlockRequest::from_bytes(&bytes).unwrap(), req);
        assert_eq!(req.requester(), ReplicaId::new(9));
        assert_eq!(req.target(), HashValue::of(b"tip"));
        assert_eq!(req.max_blocks(), 64);
    }

    #[test]
    fn truncated_request_rejected() {
        let req = BlockRequest::new(ReplicaId::new(1), HashValue::of(b"x"), 8);
        let bytes = req.to_bytes();
        assert_eq!(
            BlockRequest::from_bytes(&bytes[..bytes.len() - 1]),
            Err(DecodeError::UnexpectedEof)
        );
    }
}
